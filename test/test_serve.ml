(* Integration tests for the HTTP serve mode: a live in-process server
   (the accept loop runs in its own domain), concurrent mapping requests
   checked byte-for-byte against the CLI pipeline through the shared
   renderer, and Prometheus scrapes validated with the exposition
   checker. *)

(* ---------------------------------------------------------------- *)
(* A minimal blocking HTTP client over Unix sockets                 *)
(* ---------------------------------------------------------------- *)

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let recv_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then (
      Buffer.add_subbytes buf chunk 0 n;
      go ())
  in
  go ();
  Buffer.contents buf

(* [http_full ~port ~meth ~path ()] returns (status code, lower-cased
   response headers, body).  The server answers Connection: close, so
   the body is everything after the blank line up to EOF. *)
let http_full ~port ~meth ~path ?(headers = []) ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let extra =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
      in
      send_all fd
        (Printf.sprintf
           "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n%s\
            Connection: close\r\n\r\n%s"
           meth path (String.length body) extra body);
      let resp = recv_all fd in
      let status =
        match String.split_on_char ' ' resp with
        | _http :: code :: _ -> int_of_string_opt code
        | _ -> None
      in
      let rec blank i =
        if i + 4 > String.length resp then String.length resp
        else if String.sub resp i 4 = "\r\n\r\n" then i + 4
        else blank (i + 1)
      in
      let start = blank 0 in
      let resp_headers =
        String.sub resp 0 (max 0 (start - 4))
        |> String.split_on_char '\n'
        |> List.filter_map (fun line ->
               match String.index_opt line ':' with
               | Some i ->
                   Some
                     ( String.lowercase_ascii
                         (String.trim (String.sub line 0 i)),
                       String.trim
                         (String.sub line (i + 1)
                            (String.length line - i - 1)) )
               | None -> None)
      in
      ( Option.value ~default:0 status,
        resp_headers,
        String.sub resp start (String.length resp - start) ))

let http ~port ~meth ~path ?(body = "") () =
  let status, _, body = http_full ~port ~meth ~path ~body () in
  (status, body)

(* Value of one exposition series by exact name match (no label block),
   e.g. the [_count] series of a histogram family. *)
let series_value body name =
  String.split_on_char '\n' body
  |> List.find_map (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
             float_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
         | _ -> None)

(* ---------------------------------------------------------------- *)
(* Server lifecycle                                                 *)
(* ---------------------------------------------------------------- *)

let with_server ?workers ?queue_depth ?cache_entries ?slos ?profile
    ?profile_interval f =
  Obs.set_enabled true;
  Obs.reset ();
  (* keep per-request access-log lines out of the test output; the
     records still reach the in-memory ring and the request ring *)
  Obs.Log.to_null ();
  let server =
    Serve.Server.create ~port:0 ?workers ?queue_depth ?cache_entries ?slos
      ?profile ?profile_interval ()
  in
  let srv = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join srv;
      Obs.Log.to_stderr ();
      Obs.reset ();
      Obs.set_enabled false)
    (fun () -> f (Serve.Server.port server))

let map_body ~circuit ~algo =
  Printf.sprintf "{\"circuit\": %S, \"k\": 5, \"algo\": %S}" circuit algo

(* ---------------------------------------------------------------- *)
(* Concurrent mapping requests, byte-identical to the CLI path       *)
(* ---------------------------------------------------------------- *)

let test_concurrent_map () =
  with_server ~workers:4 (fun port ->
      (* Expected bodies: a direct [Synth.run] rendered through the
         same [result_json] the server uses.  Computed before any
         request is in flight — the pipeline is process-global and the
         server serializes it behind the accept loop. *)
      let circuits = [| "bbara"; "dk16" |] in
      let expected name =
        let spec = Option.get (Workloads.Suite.find name) in
        let nl = Workloads.Suite.build spec in
        let options = Turbosyn.Synth.default_options ~k:5 () in
        let r = Turbosyn.Synth.run ~options `Turbomap nl in
        Obs.Json.to_string (Serve.Server.result_json ~circuit:name ~k:5 r)
        ^ "\n"
      in
      let want = Array.map expected circuits in
      let jobs = 8 in
      let replies =
        Array.init jobs (fun i ->
            Domain.spawn (fun () ->
                http ~port ~meth:"POST" ~path:"/map"
                  ~body:
                    (map_body
                       ~circuit:circuits.(i mod Array.length circuits)
                       ~algo:"turbomap")
                  ()))
        |> Array.map Domain.join
      in
      Array.iteri
        (fun i (status, body) ->
          Alcotest.(check int) (Printf.sprintf "request %d status" i) 200 status;
          Alcotest.(check string)
            (Printf.sprintf "request %d body identical to direct run" i)
            want.(i mod Array.length circuits)
            body)
        replies;
      (* the GET form answers the same document *)
      let status, body =
        http ~port ~meth:"GET" ~path:"/map?circuit=bbara&k=5&algo=turbomap" ()
      in
      Alcotest.(check int) "GET form status" 200 status;
      Alcotest.(check string) "GET form body" want.(0) body;
      (* failing requests answer errors without killing the loop *)
      let status, _ =
        http ~port ~meth:"POST" ~path:"/map"
          ~body:(map_body ~circuit:"no-such-circuit" ~algo:"turbomap")
          ()
      in
      Alcotest.(check int) "unknown circuit rejected" 400 status;
      let status, _ = http ~port ~meth:"GET" ~path:"/nowhere" () in
      Alcotest.(check int) "unknown route" 404 status;
      let status, body = http ~port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "alive after errors" 200 status;
      match Obs.Json.of_string body with
      | Error e -> Alcotest.failf "healthz not JSON: %s" e
      | Ok doc ->
          Alcotest.(check bool) "healthz status ok" true
            (Obs.Json.member "status" doc = Some (Obs.Json.Str "ok"));
          List.iter
            (fun field ->
              Alcotest.(check bool) ("healthz has " ^ field) true
                (match Obs.Json.member field doc with
                | Some (Obs.Json.Int _) -> true
                | _ -> false))
            [
              "workers"; "workers_busy"; "queue_depth"; "queue_capacity";
              "cache_entries"; "cache_capacity"; "shed_total";
            ])

(* ---------------------------------------------------------------- *)
(* Byte-identity across worker counts: the /map document must not    *)
(* depend on how many domains serve it, nor on hit vs miss           *)
(* ---------------------------------------------------------------- *)

let test_workers_invariance () =
  let expected =
    let spec = Option.get (Workloads.Suite.find "bbara") in
    let nl = Workloads.Suite.build spec in
    let options = Turbosyn.Synth.default_options ~k:5 () in
    let r = Turbosyn.Synth.run ~options `Turbomap nl in
    Obs.Json.to_string (Serve.Server.result_json ~circuit:"bbara" ~k:5 r)
    ^ "\n"
  in
  List.iter
    (fun workers ->
      with_server ~workers (fun port ->
          (* miss then hit: both must equal the direct run *)
          List.iter
            (fun attempt ->
              let status, hdrs, body =
                http_full ~port ~meth:"POST" ~path:"/map"
                  ~body:(map_body ~circuit:"bbara" ~algo:"turbomap")
                  ()
              in
              Alcotest.(check int)
                (Printf.sprintf "workers=%d %s status" workers attempt)
                200 status;
              Alcotest.(check string)
                (Printf.sprintf "workers=%d %s body" workers attempt)
                expected body;
              Alcotest.(check bool)
                (Printf.sprintf "workers=%d %s x-cache" workers attempt)
                true
                (List.assoc_opt "x-cache" hdrs = Some attempt))
            [ "miss"; "hit" ]))
    [ 1; 2; 4 ]

(* ---------------------------------------------------------------- *)
(* Result cache: X-Cache markers, single-flight dedup, bypass        *)
(* ---------------------------------------------------------------- *)

let test_cache_single_flight () =
  with_server ~workers:4 (fun port ->
      (* concurrent identical submissions: the pipeline runs once; one
         leader reports miss, joiners and later requests report hit,
         and every body is byte-identical *)
      let jobs = 6 in
      let replies =
        Array.init jobs (fun _ ->
            Domain.spawn (fun () ->
                http_full ~port ~meth:"POST" ~path:"/map"
                  ~body:(map_body ~circuit:"dk16" ~algo:"turbomap")
                  ()))
        |> Array.map Domain.join
      in
      let bodies =
        Array.map (fun (_, _, body) -> body) replies |> Array.to_list
      in
      Array.iter
        (fun (status, _, _) ->
          Alcotest.(check int) "single-flight status" 200 status)
        replies;
      List.iter
        (fun b ->
          Alcotest.(check string) "single-flight bodies identical"
            (List.hd bodies) b)
        bodies;
      let misses =
        Array.to_list replies
        |> List.filter (fun (_, hdrs, _) ->
               List.assoc_opt "x-cache" hdrs = Some "miss")
        |> List.length
      in
      Alcotest.(check int) "exactly one miss per key" 1 misses;
      Alcotest.(check int) "everyone else hit" (jobs - 1)
        (Array.to_list replies
        |> List.filter (fun (_, hdrs, _) ->
               List.assoc_opt "x-cache" hdrs = Some "hit")
        |> List.length);
      (* a different k is a different key: miss again *)
      let _, hdrs, _ =
        http_full ~port ~meth:"GET"
          ~path:"/map?circuit=dk16&k=4&algo=turbomap" ()
      in
      Alcotest.(check (option string)) "distinct key misses" (Some "miss")
        (List.assoc_opt "x-cache" hdrs);
      (* the hit outcome is visible in the request ring as "cached" *)
      let _, _, ring = http_full ~port ~meth:"GET" ~path:"/debug/requests" () in
      match Obs.Json.of_string ring with
      | Error e -> Alcotest.failf "/debug/requests: %s" e
      | Ok doc ->
          let requests =
            match Obs.Json.member "requests" doc with
            | Some (Obs.Json.List rs) -> rs
            | _ -> Alcotest.fail "no requests array"
          in
          Alcotest.(check bool) "ring has cached outcome" true
            (List.exists
               (fun r ->
                 Obs.Json.member "outcome" r
                 = Some (Obs.Json.Str "cached"))
               requests))

let test_cache_bypass () =
  with_server ~cache_entries:0 (fun port ->
      List.iter
        (fun _ ->
          let status, hdrs, _ =
            http_full ~port ~meth:"POST" ~path:"/map"
              ~body:(map_body ~circuit:"bbara" ~algo:"turbomap")
              ()
          in
          Alcotest.(check int) "bypass status" 200 status;
          Alcotest.(check (option string)) "cache disabled bypasses"
            (Some "bypass")
            (List.assoc_opt "x-cache" hdrs))
        [ (); () ])

(* ---------------------------------------------------------------- *)
(* Admission control: queue_depth 0 sheds every /map with 429 +      *)
(* Retry-After while the monitoring routes stay answerable           *)
(* ---------------------------------------------------------------- *)

let test_shed () =
  with_server ~queue_depth:0 (fun port ->
      let status, hdrs, _ =
        http_full ~port ~meth:"POST" ~path:"/map"
          ~headers:[ ("X-Request-Id", "itest-shed-1") ]
          ~body:(map_body ~circuit:"bbara" ~algo:"turbomap")
          ()
      in
      Alcotest.(check int) "shed status" 429 status;
      Alcotest.(check bool) "retry-after present" true
        (List.assoc_opt "retry-after" hdrs <> None);
      Alcotest.(check (option string)) "shed echoes id"
        (Some "itest-shed-1")
        (List.assoc_opt "x-request-id" hdrs);
      (* monitoring survives overload *)
      let status, body = http ~port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "healthz alive under shed" 200 status;
      (match Obs.Json.of_string body with
      | Ok doc ->
          Alcotest.(check bool) "healthz counts the shed" true
            (match Obs.Json.member "shed_total" doc with
            | Some (Obs.Json.Int n) -> n >= 1
            | _ -> false)
      | Error e -> Alcotest.failf "healthz not JSON: %s" e);
      let status, scrape = http ~port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check int) "metrics alive under shed" 200 status;
      (match series_value scrape "turbosyn_serve_shed_total" with
      | Some v -> Alcotest.(check bool) "shed counter nonzero" true (v >= 1.)
      | None -> Alcotest.fail "turbosyn_serve_shed_total missing");
      (* the ring records the shed with its outcome *)
      let _, _, ring = http_full ~port ~meth:"GET" ~path:"/debug/requests" () in
      match Obs.Json.of_string ring with
      | Error e -> Alcotest.failf "/debug/requests: %s" e
      | Ok doc -> (
          let requests =
            match Obs.Json.member "requests" doc with
            | Some (Obs.Json.List rs) -> rs
            | _ -> Alcotest.fail "no requests array"
          in
          match
            List.find_opt
              (fun r ->
                Obs.Json.member "id" r = Some (Obs.Json.Str "itest-shed-1"))
              requests
          with
          | None -> Alcotest.fail "shed request missing from ring"
          | Some r ->
              Alcotest.(check bool) "shed outcome" true
                (Obs.Json.member "outcome" r = Some (Obs.Json.Str "shed"))))

(* ---------------------------------------------------------------- *)
(* Prometheus scrape: valid exposition, live histograms, monotone     *)
(* counters across scrapes                                           *)
(* ---------------------------------------------------------------- *)

let test_scrape () =
  with_server (fun port ->
      (* one full-pipeline request so the label engine, max-flow and
         expansion histograms all record observations *)
      let status, _ =
        http ~port ~meth:"POST" ~path:"/map"
          ~body:(map_body ~circuit:"bbara" ~algo:"turbosyn")
          ()
      in
      Alcotest.(check int) "turbosyn map status" 200 status;
      let status, scrape1 = http ~port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check int) "first scrape status" 200 status;
      (match Obs.Prometheus.validate scrape1 with
      | Ok () -> ()
      | Error vs ->
          Alcotest.failf "first scrape invalid: %s" (String.concat "; " vs));
      List.iter
        (fun family ->
          let series = family ^ "_count" in
          match series_value scrape1 series with
          | Some v ->
              Alcotest.(check bool) (series ^ " nonzero") true (v > 0.)
          | None -> Alcotest.failf "series %s missing from scrape" series)
        [
          "turbosyn_maxflow_augmenting_paths_per_flow";
          "turbosyn_expand_nodes_per_build";
          "turbosyn_label_cut_test_seconds";
          "turbosyn_synth_e2e_seconds";
          "turbosyn_serve_request_seconds";
        ];
      (* serve v2 families: cache counters, pool/cache gauges, and the
         labeled per-route/status request family *)
      List.iter
        (fun series ->
          match series_value scrape1 series with
          | Some _ -> ()
          | None -> Alcotest.failf "series %s missing from scrape" series)
        [
          "turbosyn_serve_cache_hits_total";
          "turbosyn_serve_cache_misses_total";
          "turbosyn_serve_cache_joins_total";
          "turbosyn_serve_shed_total";
          "turbosyn_serve_queue_depth";
          "turbosyn_serve_workers";
          "turbosyn_serve_workers_busy";
          "turbosyn_serve_cache_size";
          "turbosyn_serve_cache_capacity";
        ];
      (match series_value scrape1 "turbosyn_serve_cache_misses_total" with
      | Some v -> Alcotest.(check bool) "miss counted" true (v >= 1.)
      | None -> Alcotest.fail "cache_misses missing");
      (match series_value scrape1 "turbosyn_serve_workers" with
      | Some v -> Alcotest.(check bool) "workers gauge live" true (v >= 1.)
      | None -> Alcotest.fail "workers gauge missing");
      (match
         series_value scrape1
           "turbosyn_serve_requests{route=\"map\",status=\"200\"}"
       with
      | Some v -> Alcotest.(check bool) "labeled requests" true (v >= 1.)
      | None -> Alcotest.fail "labeled serve_requests series missing");
      (* the flat rendering of the same underlying counter is excluded:
         one registry counter, one exposition series *)
      Alcotest.(check (option (float 0.)))
        "flat request counter suppressed" None
        (series_value scrape1 "turbosyn_serve_requests_map_200_total");
      (* a second scrape after more traffic: every counter series is
         still present and has not decreased *)
      let status, _ =
        http ~port ~meth:"POST" ~path:"/map"
          ~body:(map_body ~circuit:"bbara" ~algo:"turbomap")
          ()
      in
      Alcotest.(check int) "second map status" 200 status;
      let status, scrape2 = http ~port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check int) "second scrape status" 200 status;
      (match Obs.Prometheus.validate scrape2 with
      | Ok () -> ()
      | Error vs ->
          Alcotest.failf "second scrape invalid: %s" (String.concat "; " vs));
      let before = Obs.Prometheus.counter_values scrape1 in
      let after = Obs.Prometheus.counter_values scrape2 in
      Alcotest.(check bool) "scrape has counters" true (before <> []);
      List.iter
        (fun (series, v1) ->
          match List.assoc_opt series after with
          | Some v2 ->
              if v2 < v1 then
                Alcotest.failf "counter %s regressed: %g -> %g" series v1 v2
          | None -> Alcotest.failf "counter %s vanished" series)
        before)

(* ---------------------------------------------------------------- *)
(* Correlation ids: header extraction, echo, ring, per-request trace *)
(* ---------------------------------------------------------------- *)

let test_request_id_extraction () =
  (* pure header logic, no server needed *)
  Alcotest.(check string) "x-request-id wins" "client-id-1"
    (Serve.Server.request_id_of_headers
       [
         ("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01");
         ("x-request-id", "client-id-1");
       ]);
  Alcotest.(check string) "traceparent trace-id"
    "4bf92f3577b34da6a3ce929d0e0e4736"
    (Serve.Server.request_id_of_headers
       [ ("traceparent", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01") ]);
  (* malformed ids are replaced, not propagated *)
  List.iter
    (fun bad ->
      let id = Serve.Server.request_id_of_headers [ ("x-request-id", bad) ] in
      Alcotest.(check bool)
        (Printf.sprintf "bad id %S regenerated" bad)
        true
        (id <> bad && String.length id = 16))
    [ ""; "has space"; "semi;colon"; String.make 80 'a' ];
  Alcotest.(check bool) "generated without headers" true
    (String.length (Serve.Server.request_id_of_headers []) = 16);
  Alcotest.(check string) "outcomes" "served,rejected,shed,failed"
    (String.concat ","
       (List.map Serve.Server.outcome_of_status [ 200; 400; 429; 500 ]))

let test_request_tracing () =
  with_server (fun port ->
      (* client-supplied id round-trips through /map *)
      let status, hdrs, _ =
        http_full ~port ~meth:"POST" ~path:"/map"
          ~headers:[ ("X-Request-Id", "itest-map-1") ]
          ~body:(map_body ~circuit:"bbara" ~algo:"turbomap")
          ()
      in
      Alcotest.(check int) "map status" 200 status;
      Alcotest.(check (option string)) "id echoed" (Some "itest-map-1")
        (List.assoc_opt "x-request-id" hdrs);
      (* server-generated ids are distinct per request *)
      let _, h1, _ = http_full ~port ~meth:"GET" ~path:"/healthz" () in
      let _, h2, _ = http_full ~port ~meth:"GET" ~path:"/healthz" () in
      let gen h = List.assoc_opt "x-request-id" h in
      Alcotest.(check bool) "generated ids present and distinct" true
        (gen h1 <> None && gen h1 <> gen h2);
      (* a failing request keeps its id and lands as "rejected" *)
      let status, hdrs, _ =
        http_full ~port ~meth:"POST" ~path:"/map"
          ~headers:[ ("X-Request-Id", "itest-bad-1") ]
          ~body:(map_body ~circuit:"no-such" ~algo:"turbomap")
          ()
      in
      Alcotest.(check int) "bad map status" 400 status;
      Alcotest.(check (option string)) "id echoed on error"
        (Some "itest-bad-1")
        (List.assoc_opt "x-request-id" hdrs);
      (* the ring lists both, newest first, with outcomes and phases *)
      let status, _, body =
        http_full ~port ~meth:"GET" ~path:"/debug/requests" ()
      in
      Alcotest.(check int) "debug requests status" 200 status;
      let doc =
        match Obs.Json.of_string body with
        | Ok d -> d
        | Error e -> Alcotest.failf "/debug/requests: %s" e
      in
      Alcotest.(check bool) "ring schema" true
        (Obs.Json.member "schema" doc
        = Some (Obs.Json.Str "turbosyn-debug-requests/1"));
      let requests =
        match Obs.Json.member "requests" doc with
        | Some (Obs.Json.List rs) -> rs
        | _ -> Alcotest.fail "no requests array"
      in
      let find id =
        List.find_opt
          (fun r -> Obs.Json.member "id" r = Some (Obs.Json.Str id))
          requests
      in
      (match find "itest-map-1" with
      | None -> Alcotest.fail "map request missing from ring"
      | Some r ->
          Alcotest.(check bool) "served outcome" true
            (Obs.Json.member "outcome" r = Some (Obs.Json.Str "served"));
          Alcotest.(check bool) "has phases" true
            (match Obs.Json.member "phases" r with
            | Some (Obs.Json.Obj phases) ->
                List.mem_assoc "synth.total" phases
            | _ -> false));
      (match find "itest-bad-1" with
      | None -> Alcotest.fail "rejected request missing from ring"
      | Some r ->
          Alcotest.(check bool) "rejected outcome" true
            (Obs.Json.member "outcome" r = Some (Obs.Json.Str "rejected")));
      (* per-request trace: summary document *)
      let status, _, body =
        http_full ~port ~meth:"GET" ~path:"/debug/trace/itest-map-1" ()
      in
      Alcotest.(check int) "trace status" 200 status;
      (match Obs.Json.of_string body with
      | Error e -> Alcotest.failf "/debug/trace: %s" e
      | Ok doc -> (
          Alcotest.(check bool) "trace schema" true
            (Obs.Json.member "schema" doc
            = Some (Obs.Json.Str "turbosyn-debug-trace/1"));
          match Obs.Json.member "request" doc with
          | Some req ->
              Alcotest.(check bool) "trace id" true
                (Obs.Json.member "id" req
                = Some (Obs.Json.Str "itest-map-1"));
              Alcotest.(check bool) "trace has slices" true
                (match Obs.Json.member "slices" req with
                | Some (Obs.Json.List (_ :: _)) -> true
                | _ -> false)
          | None -> Alcotest.fail "no request member"));
      (* folded form: well-formed stacks rooted at serve.request *)
      let status, _, folded =
        http_full ~port ~meth:"GET"
          ~path:"/debug/trace/itest-map-1?format=folded" ()
      in
      Alcotest.(check int) "folded status" 200 status;
      Alcotest.(check bool) "folded rooted at serve.request" true
        (String.length folded >= 13
        && String.sub folded 0 13 = "serve.request");
      String.split_on_char '\n' folded
      |> List.iter (fun line ->
             if line <> "" then
               match String.rindex_opt line ' ' with
               | None -> Alcotest.failf "malformed folded line %S" line
               | Some i -> (
                   match
                     int_of_string_opt
                       (String.sub line (i + 1) (String.length line - i - 1))
                   with
                   | Some w when w > 0 -> ()
                   | _ -> Alcotest.failf "bad weight in %S" line));
      (* chrome form parses as a trace document *)
      let status, _, chrome =
        http_full ~port ~meth:"GET"
          ~path:"/debug/trace/itest-map-1?format=chrome" ()
      in
      Alcotest.(check int) "chrome status" 200 status;
      (match Obs.Json.of_string chrome with
      | Ok doc ->
          Alcotest.(check bool) "chrome traceEvents" true
            (match Obs.Json.member "traceEvents" doc with
            | Some (Obs.Json.List _) -> true
            | _ -> false)
      | Error e -> Alcotest.failf "chrome trace: %s" e);
      (* unknown and evicted ids answer 404 *)
      let status, _, _ =
        http_full ~port ~meth:"GET" ~path:"/debug/trace/nonexistent" ()
      in
      Alcotest.(check int) "unknown trace id" 404 status;
      (* non-map ring entries have no retained trace *)
      let healthz_id = Option.get (gen h1) in
      let status, _, _ =
        http_full ~port ~meth:"GET"
          ~path:("/debug/trace/" ^ healthz_id)
          ()
      in
      Alcotest.(check int) "untraced route answers 404" 404 status)

(* ---------------------------------------------------------------- *)
(* Response accounting: Content-Length and the per-route bytes family *)
(* ---------------------------------------------------------------- *)

let test_response_bytes () =
  with_server (fun port ->
      (* every response declares its exact body length *)
      let content_length hdrs body what =
        match List.assoc_opt "content-length" hdrs with
        | None -> Alcotest.failf "%s: no Content-Length" what
        | Some v ->
            Alcotest.(check string)
              (what ^ " content-length matches body")
              (string_of_int (String.length body))
              v
      in
      let _, hhdrs, hbody = http_full ~port ~meth:"GET" ~path:"/healthz" () in
      content_length hhdrs hbody "/healthz";
      let status, mhdrs, mbody =
        http_full ~port ~meth:"POST" ~path:"/map"
          ~body:(map_body ~circuit:"bbara" ~algo:"turbomap")
          ()
      in
      Alcotest.(check int) "map status" 200 status;
      content_length mhdrs mbody "/map";
      (* ... and the bytes written land on the per-route counter,
         rendered as one labelled family on the scrape *)
      let _, _, scrape = http_full ~port ~meth:"GET" ~path:"/metrics" () in
      (match
         series_value scrape
           "turbosyn_serve_response_bytes_total{route=\"map\"}"
       with
      | None -> Alcotest.fail "no response-bytes series for /map"
      | Some v ->
          Alcotest.(check bool) "map bytes cover the body" true
            (v >= float_of_int (String.length mbody)));
      (match
         series_value scrape
           "turbosyn_serve_response_bytes_total{route=\"healthz\"}"
       with
      | None -> Alcotest.fail "no response-bytes series for /healthz"
      | Some v ->
          Alcotest.(check bool) "healthz bytes cover the body" true
            (v >= float_of_int (String.length hbody)));
      (* the flat per-route counters stay off the scrape — only the
         labelled family renders *)
      Alcotest.(check bool) "flat counter suppressed" true
        (series_value scrape "turbosyn_serve_response_bytes_map_total" = None))

(* ---------------------------------------------------------------- *)
(* Profiling and SLO endpoints                                       *)
(* ---------------------------------------------------------------- *)

let test_profiling_and_slo () =
  let slos =
    match Obs.Slo.parse_all [ "route=/map,p99=250ms,err=0.1%" ] with
    | Ok slos -> slos
    | Error e -> Alcotest.failf "slo spec: %s" e
  in
  with_server ~slos ~profile:true ~profile_interval:0.002 (fun port ->
      (* served bytes are identical with the sampler attached: the
         response must equal a direct (unprofiled-path) rendering *)
      let expected =
        match
          Serve.Server.map_response ~circuit:"bbara" ~k:5
            ~algo:(Option.get (Serve.Server.algo_of_string "turbomap"))
        with
        | Ok doc -> Obs.Json.to_string doc ^ "\n"
        | Error e -> Alcotest.failf "direct map: %s" e
      in
      let status, _, body =
        http_full ~port ~meth:"POST" ~path:"/map"
          ~body:(map_body ~circuit:"bbara" ~algo:"turbomap")
          ()
      in
      Alcotest.(check int) "map status" 200 status;
      Alcotest.(check string) "byte-identical under the profiler" expected
        body;
      (* /debug/prof reports the attached sampler *)
      let status, _, body =
        http_full ~port ~meth:"GET" ~path:"/debug/prof" ()
      in
      Alcotest.(check int) "prof status" 200 status;
      let doc =
        match Obs.Json.of_string body with
        | Ok d -> d
        | Error e -> Alcotest.failf "/debug/prof: %s" e
      in
      Alcotest.(check bool) "prof schema" true
        (Obs.Json.member "schema" doc
        = Some (Obs.Json.Str "turbosyn-prof/1"));
      Alcotest.(check bool) "sampler attached" true
        (Obs.Json.member "attached" doc = Some (Obs.Json.Bool true));
      Alcotest.(check bool) "interval published" true
        (match Obs.Json.member "interval_seconds" doc with
        | Some (Obs.Json.Float f) -> f = 0.002
        | _ -> false);
      Alcotest.(check bool) "sample accounting" true
        (match
           ( Obs.Json.member "samples" doc,
             Obs.Json.member "dropped" doc,
             Obs.Json.member "overhead_seconds" doc )
         with
        | Some (Obs.Json.Int s), Some (Obs.Json.Int d), Some _ ->
            s >= 0 && d >= 0
        | _ -> false);
      (* folded and chrome renderings answer (possibly empty on a fast
         run; weights must parse when present) *)
      let status, _, folded =
        http_full ~port ~meth:"GET" ~path:"/debug/prof?format=folded" ()
      in
      Alcotest.(check int) "folded status" 200 status;
      String.split_on_char '\n' folded
      |> List.iter (fun line ->
             if line <> "" then
               match String.rindex_opt line ' ' with
               | None -> Alcotest.failf "malformed folded line %S" line
               | Some i -> (
                   match
                     int_of_string_opt
                       (String.sub line (i + 1) (String.length line - i - 1))
                   with
                   | Some w when w > 0 -> ()
                   | _ -> Alcotest.failf "bad weight in %S" line));
      let status, _, chrome =
        http_full ~port ~meth:"GET" ~path:"/debug/prof?format=chrome" ()
      in
      Alcotest.(check int) "chrome status" 200 status;
      (match Obs.Json.of_string chrome with
      | Ok doc ->
          Alcotest.(check bool) "chrome traceEvents" true
            (match Obs.Json.member "traceEvents" doc with
            | Some (Obs.Json.List _) -> true
            | _ -> false)
      | Error e -> Alcotest.failf "prof chrome trace: %s" e);
      (* /debug/slo evaluates the configured objective against the
         route histogram, exemplars linking into /debug/trace *)
      let status, _, body =
        http_full ~port ~meth:"GET" ~path:"/debug/slo" ()
      in
      Alcotest.(check int) "slo status" 200 status;
      let doc =
        match Obs.Json.of_string body with
        | Ok d -> d
        | Error e -> Alcotest.failf "/debug/slo: %s" e
      in
      Alcotest.(check bool) "slo schema" true
        (Obs.Json.member "schema" doc = Some (Obs.Json.Str "turbosyn-slo/1"));
      let objective =
        match Obs.Json.member "objectives" doc with
        | Some (Obs.Json.List [ o ]) -> o
        | _ -> Alcotest.fail "expected exactly one objective"
      in
      Alcotest.(check bool) "objective route" true
        (Obs.Json.member "route" objective = Some (Obs.Json.Str "/map"));
      Alcotest.(check bool) "histogram named for reproduction" true
        (Obs.Json.member "histogram" objective
        = Some (Obs.Json.Str "serve.route_seconds.map"));
      (match Obs.Json.member "latency" objective with
      | Some lat ->
          Alcotest.(check bool) "one served request counted" true
            (Obs.Json.member "count" lat = Some (Obs.Json.Int 1));
          Alcotest.(check bool) "good at or under target" true
            (Obs.Json.member "good" lat = Some (Obs.Json.Int 1));
          Alcotest.(check bool) "burn rate present" true
            (Obs.Json.member "burn_rate" lat <> None)
      | None -> Alcotest.fail "no latency verdict");
      (match Obs.Json.member "errors" objective with
      | Some errs ->
          Alcotest.(check bool) "no errors burned" true
            (Obs.Json.member "errors" errs = Some (Obs.Json.Int 0))
      | None -> Alcotest.fail "no error verdict");
      (match Obs.Json.member "slowest" objective with
      | Some (Obs.Json.List (ex :: _)) ->
          Alcotest.(check bool) "exemplar links into /debug/trace" true
            (match Obs.Json.member "trace" ex with
            | Some (Obs.Json.Str path) ->
                String.length path > 13
                && String.sub path 0 13 = "/debug/trace/"
            | _ -> false)
      | _ -> Alcotest.fail "no slowest exemplars");
      (* the same verdicts reach the scrape as turbosyn_slo_* gauges,
         and the sampler's own accounting as prof_* series *)
      let _, _, scrape = http_full ~port ~meth:"GET" ~path:"/metrics" () in
      (match
         series_value scrape
           "turbosyn_slo_latency_burn_rate{route=\"/map\",objective=\"p99\"}"
       with
      | None -> Alcotest.fail "no latency burn-rate gauge"
      | Some burn ->
          Alcotest.(check bool) "burn within budget" true
            (burn >= 0. && burn <= 1.));
      (match series_value scrape "turbosyn_slo_ok{route=\"/map\"}" with
      | None -> Alcotest.fail "no slo ok gauge"
      | Some ok -> Alcotest.(check (float 0.)) "objective holding" 1. ok);
      Alcotest.(check bool) "error budget gauge" true
        (series_value scrape "turbosyn_slo_error_budget{route=\"/map\"}"
        = Some 0.001);
      Alcotest.(check bool) "sampler accounting on the scrape" true
        (series_value scrape "turbosyn_prof_samples" <> None
        && series_value scrape "turbosyn_prof_overhead_seconds" <> None);
      (* the route histogram the verdict reproduces from is scraped *)
      match
        series_value scrape "turbosyn_serve_route_seconds_map_count"
      with
      | None -> Alcotest.fail "no route histogram on the scrape"
      | Some n -> Alcotest.(check (float 0.)) "one observation" 1. n)

(* Without objectives or the sampler, the debug endpoints still answer
   (empty and detached, not 404) — dashboards can always scrape them. *)
let test_prof_slo_defaults () =
  with_server (fun port ->
      let status, _, body =
        http_full ~port ~meth:"GET" ~path:"/debug/prof" ()
      in
      Alcotest.(check int) "prof status" 200 status;
      (match Obs.Json.of_string body with
      | Ok doc ->
          Alcotest.(check bool) "sampler detached" true
            (Obs.Json.member "attached" doc = Some (Obs.Json.Bool false))
      | Error e -> Alcotest.failf "/debug/prof: %s" e);
      let status, _, body = http_full ~port ~meth:"GET" ~path:"/debug/slo" () in
      Alcotest.(check int) "slo status" 200 status;
      match Obs.Json.of_string body with
      | Ok doc ->
          Alcotest.(check bool) "no objectives" true
            (Obs.Json.member "objectives" doc = Some (Obs.Json.List []))
      | Error e -> Alcotest.failf "/debug/slo: %s" e)

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "concurrent mapping requests" `Quick
            test_concurrent_map;
          Alcotest.test_case "byte-identity across worker counts" `Quick
            test_workers_invariance;
          Alcotest.test_case "cache single-flight" `Quick
            test_cache_single_flight;
          Alcotest.test_case "cache bypass" `Quick test_cache_bypass;
          Alcotest.test_case "admission control sheds" `Quick test_shed;
          Alcotest.test_case "prometheus scrape" `Quick test_scrape;
          Alcotest.test_case "request id extraction" `Quick
            test_request_id_extraction;
          Alcotest.test_case "request tracing" `Quick test_request_tracing;
          Alcotest.test_case "content-length and response bytes" `Quick
            test_response_bytes;
          Alcotest.test_case "profiling and slo endpoints" `Quick
            test_profiling_and_slo;
          Alcotest.test_case "prof and slo defaults" `Quick
            test_prof_slo_defaults;
        ] );
    ]
