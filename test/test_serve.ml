(* Integration tests for the HTTP serve mode: a live in-process server
   (the accept loop runs in its own domain), concurrent mapping requests
   checked byte-for-byte against the CLI pipeline through the shared
   renderer, and Prometheus scrapes validated with the exposition
   checker. *)

(* ---------------------------------------------------------------- *)
(* A minimal blocking HTTP client over Unix sockets                 *)
(* ---------------------------------------------------------------- *)

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let recv_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then (
      Buffer.add_subbytes buf chunk 0 n;
      go ())
  in
  go ();
  Buffer.contents buf

(* [http ~port ~meth ~path ()] returns (status code, body).  The server
   answers Connection: close, so the body is everything after the blank
   line up to EOF. *)
let http ~port ~meth ~path ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      send_all fd
        (Printf.sprintf
           "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\
            Connection: close\r\n\r\n%s"
           meth path (String.length body) body);
      let resp = recv_all fd in
      let status =
        match String.split_on_char ' ' resp with
        | _http :: code :: _ -> int_of_string_opt code
        | _ -> None
      in
      let rec blank i =
        if i + 4 > String.length resp then String.length resp
        else if String.sub resp i 4 = "\r\n\r\n" then i + 4
        else blank (i + 1)
      in
      let start = blank 0 in
      ( Option.value ~default:0 status,
        String.sub resp start (String.length resp - start) ))

(* Value of one exposition series by exact name match (no label block),
   e.g. the [_count] series of a histogram family. *)
let series_value body name =
  String.split_on_char '\n' body
  |> List.find_map (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
             float_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
         | _ -> None)

(* ---------------------------------------------------------------- *)
(* Server lifecycle                                                 *)
(* ---------------------------------------------------------------- *)

let with_server f =
  Obs.set_enabled true;
  Obs.reset ();
  let server = Serve.Server.create ~port:0 () in
  let srv = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join srv;
      Obs.reset ();
      Obs.set_enabled false)
    (fun () -> f (Serve.Server.port server))

let map_body ~circuit ~algo =
  Printf.sprintf "{\"circuit\": %S, \"k\": 5, \"algo\": %S}" circuit algo

(* ---------------------------------------------------------------- *)
(* Concurrent mapping requests, byte-identical to the CLI path       *)
(* ---------------------------------------------------------------- *)

let test_concurrent_map () =
  with_server (fun port ->
      (* Expected bodies: a direct [Synth.run] rendered through the
         same [result_json] the server uses.  Computed before any
         request is in flight — the pipeline is process-global and the
         server serializes it behind the accept loop. *)
      let circuits = [| "bbara"; "dk16" |] in
      let expected name =
        let spec = Option.get (Workloads.Suite.find name) in
        let nl = Workloads.Suite.build spec in
        let options = Turbosyn.Synth.default_options ~k:5 () in
        let r = Turbosyn.Synth.run ~options `Turbomap nl in
        Obs.Json.to_string (Serve.Server.result_json ~circuit:name ~k:5 r)
        ^ "\n"
      in
      let want = Array.map expected circuits in
      let jobs = 8 in
      let replies =
        Array.init jobs (fun i ->
            Domain.spawn (fun () ->
                http ~port ~meth:"POST" ~path:"/map"
                  ~body:
                    (map_body
                       ~circuit:circuits.(i mod Array.length circuits)
                       ~algo:"turbomap")
                  ()))
        |> Array.map Domain.join
      in
      Array.iteri
        (fun i (status, body) ->
          Alcotest.(check int) (Printf.sprintf "request %d status" i) 200 status;
          Alcotest.(check string)
            (Printf.sprintf "request %d body identical to direct run" i)
            want.(i mod Array.length circuits)
            body)
        replies;
      (* the GET form answers the same document *)
      let status, body =
        http ~port ~meth:"GET" ~path:"/map?circuit=bbara&k=5&algo=turbomap" ()
      in
      Alcotest.(check int) "GET form status" 200 status;
      Alcotest.(check string) "GET form body" want.(0) body;
      (* failing requests answer errors without killing the loop *)
      let status, _ =
        http ~port ~meth:"POST" ~path:"/map"
          ~body:(map_body ~circuit:"no-such-circuit" ~algo:"turbomap")
          ()
      in
      Alcotest.(check int) "unknown circuit rejected" 400 status;
      let status, _ = http ~port ~meth:"GET" ~path:"/nowhere" () in
      Alcotest.(check int) "unknown route" 404 status;
      let status, body = http ~port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "alive after errors" 200 status;
      Alcotest.(check string) "healthz body" "ok\n" body)

(* ---------------------------------------------------------------- *)
(* Prometheus scrape: valid exposition, live histograms, monotone     *)
(* counters across scrapes                                           *)
(* ---------------------------------------------------------------- *)

let test_scrape () =
  with_server (fun port ->
      (* one full-pipeline request so the label engine, max-flow and
         expansion histograms all record observations *)
      let status, _ =
        http ~port ~meth:"POST" ~path:"/map"
          ~body:(map_body ~circuit:"bbara" ~algo:"turbosyn")
          ()
      in
      Alcotest.(check int) "turbosyn map status" 200 status;
      let status, scrape1 = http ~port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check int) "first scrape status" 200 status;
      (match Obs.Prometheus.validate scrape1 with
      | Ok () -> ()
      | Error vs ->
          Alcotest.failf "first scrape invalid: %s" (String.concat "; " vs));
      List.iter
        (fun family ->
          let series = family ^ "_count" in
          match series_value scrape1 series with
          | Some v ->
              Alcotest.(check bool) (series ^ " nonzero") true (v > 0.)
          | None -> Alcotest.failf "series %s missing from scrape" series)
        [
          "turbosyn_maxflow_augmenting_paths_per_flow";
          "turbosyn_expand_nodes_per_build";
          "turbosyn_label_cut_test_seconds";
          "turbosyn_synth_e2e_seconds";
          "turbosyn_serve_request_seconds";
        ];
      (* a second scrape after more traffic: every counter series is
         still present and has not decreased *)
      let status, _ =
        http ~port ~meth:"POST" ~path:"/map"
          ~body:(map_body ~circuit:"bbara" ~algo:"turbomap")
          ()
      in
      Alcotest.(check int) "second map status" 200 status;
      let status, scrape2 = http ~port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check int) "second scrape status" 200 status;
      (match Obs.Prometheus.validate scrape2 with
      | Ok () -> ()
      | Error vs ->
          Alcotest.failf "second scrape invalid: %s" (String.concat "; " vs));
      let before = Obs.Prometheus.counter_values scrape1 in
      let after = Obs.Prometheus.counter_values scrape2 in
      Alcotest.(check bool) "scrape has counters" true (before <> []);
      List.iter
        (fun (series, v1) ->
          match List.assoc_opt series after with
          | Some v2 ->
              if v2 < v1 then
                Alcotest.failf "counter %s regressed: %g -> %g" series v1 v2
          | None -> Alcotest.failf "counter %s vanished" series)
        before)

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "concurrent mapping requests" `Quick
            test_concurrent_map;
          Alcotest.test_case "prometheus scrape" `Quick test_scrape;
        ] );
    ]
