(* Tests for the sequential mapping core: expanded circuits, label
   computation, PLD, minimum-ratio search, and mapping generation.

   The strongest checks: (1) the generated LUT network's MDR ratio never
   exceeds the phi returned by the search (achievability), and (2) the
   mapped circuit is sequentially equivalent to the source from consistent
   initial states (Equiv.mapped_equal). *)

open Prelude
open Logic
open Circuit
open Seqmap

let rat = Alcotest.testable Rat.pp Rat.equal

(* v = xor(x, v@1): one-gate accumulator *)
let accumulator () =
  let nl = Netlist.create ~name:"acc" () in
  let x = Netlist.add_pi ~name:"x" nl in
  let v = Netlist.reserve_gate ~name:"v" nl in
  Netlist.define_gate nl v (Truthtable.xor_all 2) [| (x, 0); (v, 1) |];
  ignore (Netlist.add_po ~name:"y" nl ~driver:v ~weight:0);
  nl

(* loop of [g] xor gates each also fed by its own PI, [f] FFs on the loop *)
let pi_loop g f =
  let nl = Netlist.create ~name:(Printf.sprintf "loop%d_%d" g f) () in
  let pis = Array.init g (fun i -> Netlist.add_pi ~name:(Printf.sprintf "x%d" i) nl) in
  let gates = Array.init g (fun i -> Netlist.reserve_gate ~name:(Printf.sprintf "g%d" i) nl) in
  for i = 0 to g - 1 do
    let prev = gates.((i + g - 1) mod g) in
    let w = if i < f then 1 else 0 in
    Netlist.define_gate nl gates.(i) (Truthtable.xor_all 2)
      [| (pis.(i), 0); (prev, w) |]
  done;
  ignore (Netlist.add_po ~name:"y" nl ~driver:gates.(g - 1) ~weight:0);
  nl

let test_expanded_basic () =
  let nl = accumulator () in
  let v = Option.get (Netlist.find_by_name nl "v") in
  let labels = Array.make (Netlist.n nl) Rat.zero in
  labels.(v) <- Rat.one;
  let ex =
    Expanded.build nl ~root:v ~labels ~phi:Rat.one ~threshold:Rat.zero
      ~extra_depth:2 ~max_nodes:100
  in
  Alcotest.(check bool) "root internal" true ex.Expanded.internal.(0);
  Alcotest.(check bool) "root is v^0" true
    (ex.Expanded.nodes.(0) = { Expanded.u = v; w = 0 });
  Alcotest.(check bool) "no overflow" false ex.Expanded.overflow;
  (* x^0 has height 1 > 0 -> internal; v^1 height 1 - 1 + 1 = 1 > 0 internal;
     expansion continues: x^1, v^2 ... *)
  Alcotest.(check bool) "several nodes" true (Array.length ex.Expanded.nodes >= 4)

let test_expanded_overflow () =
  let nl = pi_loop 4 1 in
  let labels = Array.make (Netlist.n nl) Rat.one in
  List.iter (fun p -> labels.(p) <- Rat.zero) (Netlist.pis nl);
  let v = Option.get (Netlist.find_by_name nl "g0") in
  let ex =
    (* impossible threshold forces unbounded internal expansion into the
       node budget *)
    Expanded.build nl ~root:v ~labels ~phi:(Rat.make 1 100)
      ~threshold:(Rat.of_int (-100)) ~extra_depth:0 ~max_nodes:16
  in
  Alcotest.(check bool) "overflow reported" true ex.Expanded.overflow

let test_expanded_cone () =
  let nl = accumulator () in
  let v = Option.get (Netlist.find_by_name nl "v") in
  (* cut {x^0, v^1}: function must be xor *)
  let tt = Mapgen.cut_function nl ~root:v ~cut:[| (0, 0); (v, 1) |] in
  Alcotest.(check bool) "xor recovered" true
    (Truthtable.equal tt (Truthtable.xor_all 2));
  (* deeper cut through the loop: v = xor(x^0, xor(x^1, v^2)) *)
  let x = Option.get (Netlist.find_by_name nl "x") in
  let tt2 = Mapgen.cut_function nl ~root:v ~cut:[| (x, 0); (x, 1); (v, 2) |] in
  Alcotest.(check bool) "unrolled xor3" true
    (Truthtable.equal tt2 (Truthtable.xor_all 3));
  (* invalid cut raises *)
  Alcotest.check_raises "uncovered"
    (Invalid_argument "Mapgen.cut_function: cut does not cover a path")
    (fun () -> ignore (Mapgen.cut_function nl ~root:v ~cut:[| (x, 0) |]))

let test_frontier_cut () =
  let nl = accumulator () in
  let v = Option.get (Netlist.find_by_name nl "v") in
  let labels = Array.make (Netlist.n nl) Rat.zero in
  labels.(v) <- Rat.one;
  (* threshold 0: x^0 (height 1) is internal but is a PI -> no frontier *)
  let ex =
    Expanded.build nl ~root:v ~labels ~phi:Rat.one ~threshold:Rat.zero
      ~extra_depth:2 ~max_nodes:100
  in
  Alcotest.(check (list int)) "no frontier below PIs" []
    (Expanded.frontier_cut ex);
  (* threshold 1: x^0 and v^1 are cut candidates; frontier = both *)
  let ex1 =
    Expanded.build nl ~root:v ~labels ~phi:Rat.one ~threshold:Rat.one
      ~extra_depth:2 ~max_nodes:100
  in
  let cut = Expanded.frontier_cut ex1 in
  Alcotest.(check bool) "frontier nonempty" true (cut <> []);
  (* the frontier cut must be a valid cover: the cone function evaluates *)
  let pairs =
    List.map
      (fun i ->
        let nd = ex1.Expanded.nodes.(i) in
        (nd.Expanded.u, nd.Expanded.w))
      cut
  in
  let tt = Mapgen.cut_function nl ~root:v ~cut:(Array.of_list pairs) in
  Alcotest.(check bool) "xor recovered" true
    (Truthtable.equal tt (Truthtable.xor_all (List.length cut)))

let test_labels_accumulator () =
  let nl = accumulator () in
  let opts = Label_engine.default_options ~k:4 in
  (match fst (Label_engine.run opts nl ~phi:Rat.one) with
  | Label_engine.Feasible { labels; impls; prov = _ } ->
      let v = Option.get (Netlist.find_by_name nl "v") in
      Alcotest.check rat "label 1" Rat.one labels.(v);
      Alcotest.(check bool) "impl present" true (impls.(v) <> None)
  | Label_engine.Infeasible -> Alcotest.fail "phi=1 must be feasible");
  (* phi=1/2 is feasible with K=4: the LUT can unroll the loop and read
     v@3 (cut {x, x@1, x@2, v@3}), giving a self-loop of ratio 1/3 *)
  (match fst (Label_engine.run opts nl ~phi:(Rat.make 1 2)) with
  | Label_engine.Feasible _ -> ()
  | Label_engine.Infeasible -> Alcotest.fail "phi=1/2 must be feasible at K=4");
  (* with K=2 no such unrolling fits: infeasible *)
  let opts2 = Label_engine.default_options ~k:2 in
  match fst (Label_engine.run opts2 nl ~phi:(Rat.make 1 2)) with
  | Label_engine.Infeasible -> ()
  | Label_engine.Feasible _ -> Alcotest.fail "phi=1/2 must be infeasible at K=2"

let test_minimum_ratio_accumulator () =
  let nl = accumulator () in
  let opts = Label_engine.default_options ~k:4 in
  let phi, probes, _ = Turbomap.minimum_ratio opts nl in
  (* ratios below 1 are feasible for the engine (loop unrolling), but the
     search floors at 1 as in the paper: the clock period cannot drop
     below one LUT delay *)
  Alcotest.check rat "phi* = 1" Rat.one phi;
  Alcotest.(check bool) "few probes" true (probes < 64);
  (* K=2 cannot unroll: phi* = 1 *)
  let phi2, _, _ = Turbomap.minimum_ratio (Label_engine.default_options ~k:2) nl in
  Alcotest.check rat "k=2 phi* = 1" Rat.one phi2

let test_minimum_ratio_collapsible_loop () =
  (* 3-gate loop with 1 FF and per-gate PIs: with K=5 the whole loop fits
     in one LUT (4 inputs) -> phi* = 1; with K=2 it cannot *)
  let nl = pi_loop 3 1 in
  let opts5 = Label_engine.default_options ~k:5 in
  let phi5, _, _ = Turbomap.minimum_ratio opts5 nl in
  Alcotest.check rat "k=5 collapses to 1" Rat.one phi5;
  let opts2 = Label_engine.default_options ~k:2 in
  let phi2, _, _ = Turbomap.minimum_ratio opts2 nl in
  Alcotest.(check bool) "k=2 worse" true Rat.(phi2 > phi5);
  (* trivial mapping gives MDR 3; TurboMap must not exceed it *)
  (match Netlist.mdr_ratio nl with
  | Graphs.Cycle_ratio.Ratio ub -> Alcotest.(check bool) "<= UB" true Rat.(phi2 <= ub)
  | _ -> Alcotest.fail "expected ratio")

let test_acyclic_zero () =
  let nl = Netlist.create () in
  let x = Netlist.add_pi nl in
  let a = Build.not_ nl x in
  let b = Build.buf ~w:1 nl a in
  ignore (Netlist.add_po nl ~driver:b ~weight:0);
  let opts = Label_engine.default_options ~k:4 in
  let phi, _, _ = Turbomap.minimum_ratio opts nl in
  Alcotest.check rat "acyclic -> 0" Rat.zero phi

(* random K-bounded sequential circuits without combinational loops *)
let random_seq rng ~pis ~gates ~max_arity =
  let nl = Netlist.create ~name:"rand" () in
  let pi_ids = Array.init pis (fun i -> Netlist.add_pi ~name:(Printf.sprintf "x%d" i) nl) in
  let gate_ids = Array.init gates (fun i -> Netlist.reserve_gate ~name:(Printf.sprintf "g%d" i) nl) in
  for i = 0 to gates - 1 do
    let arity = 1 + Rng.int rng max_arity in
    let fanins =
      Array.init arity (fun _ ->
          if Rng.int rng 3 = 0 then
            (* registered edge to anywhere, including feedback *)
            (Rng.pick rng (Array.append pi_ids gate_ids), 1 + Rng.int rng 2)
          else begin
            (* combinational edge to an earlier node only *)
            let pool =
              Array.append pi_ids (Array.sub gate_ids 0 i)
            in
            (Rng.pick rng pool, 0)
          end)
    in
    Netlist.define_gate nl gate_ids.(i)
      (Truthtable.random_nondegenerate rng arity)
      fanins
  done;
  for j = 0 to 1 do
    ignore
      (Netlist.add_po ~name:(Printf.sprintf "y%d" j) nl
         ~driver:(Rng.pick rng gate_ids) ~weight:(Rng.int rng 2))
  done;
  nl

let check_mapped_against nl k ~resynthesize rng =
  let opts =
    { (Label_engine.default_options ~k) with Label_engine.resynthesize }
  in
  let mapped, report = Turbomap.map ~options:opts nl ~k in
  (* structure *)
  Alcotest.(check (list string)) "valid" []
    (List.map (Format.asprintf "%a" Netlist.pp_error) (Netlist.validate ~k mapped));
  (* achievability: the mapped circuit's MDR never exceeds phi* *)
  (match report.Turbomap.mapped_mdr with
  | Graphs.Cycle_ratio.Ratio m ->
      Alcotest.(check bool)
        (Format.asprintf "mdr %a <= phi %a" Rat.pp m Rat.pp report.Turbomap.phi)
        true
        Rat.(m <= report.Turbomap.phi)
  | Graphs.Cycle_ratio.No_cycle -> ()
  | Graphs.Cycle_ratio.Infinite -> Alcotest.fail "mapped comb loop");
  (* sequential equivalence from consistent initial states *)
  Alcotest.(check bool) "mapped_equal" true
    (Sim.Equiv.mapped_equal ~runs:3 ~cycles:32 ~warmup:32 rng nl mapped);
  report

let test_map_random_turbomap () =
  let rng = Rng.create 111 in
  for iter = 1 to 10 do
    let nl = random_seq rng ~pis:3 ~gates:10 ~max_arity:3 in
    let _ = check_mapped_against nl 4 ~resynthesize:false rng in
    ignore iter
  done

let test_map_random_turbosyn () =
  let rng = Rng.create 222 in
  for iter = 1 to 8 do
    let nl = random_seq rng ~pis:3 ~gates:10 ~max_arity:3 in
    let _ = check_mapped_against nl 4 ~resynthesize:true rng in
    ignore iter
  done

let test_turbosyn_no_worse () =
  let rng = Rng.create 333 in
  for _ = 1 to 8 do
    let nl = random_seq rng ~pis:3 ~gates:12 ~max_arity:3 in
    let tm = Label_engine.default_options ~k:4 in
    let ts = { tm with Label_engine.resynthesize = true } in
    let phi_tm, _, _ = Turbomap.minimum_ratio tm nl in
    let phi_ts, _, _ = Turbomap.minimum_ratio ts nl in
    Alcotest.(check bool)
      (Format.asprintf "turbosyn %a <= turbomap %a" Rat.pp phi_ts Rat.pp phi_tm)
      true
      Rat.(phi_ts <= phi_tm)
  done

(* The worklist engine — with its snapshot, arena and witness fast paths —
   must be label-for-label identical to the sweep baseline: same
   feasibility verdict, same labels (hence the same mapping depth), same
   iteration count, with PLD on and off and resynthesis on and off. *)
let test_engine_equivalence () =
  let sweep o = { o with Label_engine.engine = Label_engine.Sweep } in
  let check name opts nl phi =
    let out_w, s_w = Label_engine.run opts nl ~phi in
    let out_s, s_s = Label_engine.run (sweep opts) nl ~phi in
    (match (out_w, out_s) with
    | ( Label_engine.Feasible { labels = lw; _ },
        Label_engine.Feasible { labels = ls; _ } ) ->
        Alcotest.(check (array rat)) (name ^ " labels") ls lw;
        let depth = Array.fold_left Rat.max Rat.zero in
        Alcotest.check rat (name ^ " mapping depth") (depth ls) (depth lw)
    | Label_engine.Infeasible, Label_engine.Infeasible -> ()
    | _ -> Alcotest.fail (name ^ ": engines disagree on feasibility"));
    Alcotest.(check int)
      (name ^ " iterations")
      s_s.Label_engine.iterations s_w.Label_engine.iterations
  in
  let rng = Rng.create 555 in
  let circuits =
    List.init 6 (fun i ->
        ( Printf.sprintf "rand%d" i,
          random_seq rng ~pis:3 ~gates:(10 + i) ~max_arity:3 ))
    @ [ ("loop6_3", pi_loop 6 3); ("loop5_1", pi_loop 5 1) ]
  in
  List.iter
    (fun (cname, nl) ->
      List.iter
        (fun (oname, opts) ->
          let phi_star, _, _ = Turbomap.minimum_ratio opts nl in
          List.iter
            (fun phi ->
              if Rat.( > ) phi Rat.zero then
                check
                  (Format.asprintf "%s/%s phi=%a" cname oname Rat.pp phi)
                  opts nl phi)
            [ phi_star; Rat.one; Rat.mul_int phi_star 2 ])
        [
          ("turbomap", Label_engine.default_options ~k:4);
          ( "turbosyn",
            {
              (Label_engine.default_options ~k:4) with
              Label_engine.resynthesize = true;
            } );
          ( "nopld",
            { (Label_engine.default_options ~k:4) with Label_engine.pld = false }
          );
        ])
    circuits

(* Speculative parallel probing must not change the search result: the
   decisive verdicts replay the sequential descent exactly. *)
let test_jobs_determinism () =
  let rng = Rng.create 777 in
  for i = 1 to 5 do
    let nl = random_seq rng ~pis:3 ~gates:(10 + i) ~max_arity:3 in
    let opts =
      {
        (Label_engine.default_options ~k:4) with
        Label_engine.resynthesize = true;
      }
    in
    let phi1, _, _ = Turbomap.minimum_ratio ~jobs:1 opts nl in
    let phi4, _, _ = Turbomap.minimum_ratio ~jobs:4 opts nl in
    Alcotest.check rat
      (Format.asprintf "jobs=4 phi %a = jobs=1 phi %a" Rat.pp phi4 Rat.pp phi1)
      phi1 phi4
  done

(* The intra-phi parallel scheduler must be invisible in results: for
   every lane count, the verdict, the labels, the provenance, and (on
   feasible runs) the stats are byte-identical to the sequential engine
   (doc/CONCURRENCY.md). *)
let test_intra_phi_invariance () =
  let rng = Rng.create 909 in
  let circuits =
    [
      ( "bbara",
        5,
        Workloads.Suite.build (Option.get (Workloads.Suite.find "bbara")) );
    ]
    @ List.init 3 (fun i ->
          ( Printf.sprintf "rand%d" i,
            4,
            random_seq rng ~pis:3 ~gates:(12 + (2 * i)) ~max_arity:3 ))
    @ [ ("loop6_2", 4, pi_loop 6 2) ]
  in
  List.iter
    (fun (cname, k, nl) ->
      let opts =
        { (Label_engine.default_options ~k) with Label_engine.resynthesize = true }
      in
      let phi_star, _, _ = Turbomap.minimum_ratio opts nl in
      if Rat.( > ) phi_star Rat.zero then
        (* phi* is the smallest feasible ratio, so phi*/2 is certainly
           infeasible: the verdict must also be lane-count invariant *)
        let phis = [ phi_star; Rat.div phi_star (Rat.of_int 2) ] in
        List.iter
          (fun phi ->
            let base, base_stats = Label_engine.run opts nl ~phi in
            List.iter
              (fun jobs ->
                let par, par_stats =
                  Label_engine.run { opts with Label_engine.jobs } nl ~phi
                in
                let name j what =
                  Format.asprintf "%s phi=%a jobs=%d %s" cname Rat.pp phi j what
                in
                match (base, par) with
                | ( Label_engine.Feasible { labels = l1; prov = p1; _ },
                    Label_engine.Feasible { labels = l2; prov = p2; _ } ) ->
                    Alcotest.(check (array rat)) (name jobs "labels") l1 l2;
                    Alcotest.(check bool) (name jobs "provenance") true (p1 = p2);
                    Alcotest.(check int) (name jobs "iterations")
                      base_stats.Label_engine.iterations
                      par_stats.Label_engine.iterations;
                    Alcotest.(check int) (name jobs "flow tests")
                      base_stats.Label_engine.flow_tests
                      par_stats.Label_engine.flow_tests
                | Label_engine.Infeasible, Label_engine.Infeasible -> ()
                | _ ->
                    Alcotest.fail (name jobs "verdict: lane counts disagree"))
              [ 2; 4; 8 ])
          phis)
    circuits

(* The scheduling counters of the parallel engine: levels and tasks are
   recorded, and the single-writer ownership tripwire never fires. *)
let test_intra_phi_counters () =
  let nl = Workloads.Suite.build (Option.get (Workloads.Suite.find "bbara")) in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    (fun () ->
      let opts =
        {
          (Label_engine.default_options ~k:5) with
          Label_engine.resynthesize = true;
          jobs = 4;
        }
      in
      let phi_star, _, _ = Turbomap.minimum_ratio opts nl in
      ignore (Label_engine.run opts nl ~phi:phi_star);
      let get name =
        match Obs.Counter.find name with
        | Some v -> v
        | None -> Alcotest.failf "counter %s never registered" name
      in
      Alcotest.(check bool) "scc levels recorded" true (get "label.scc_levels" > 0);
      Alcotest.(check bool) "domain tasks recorded" true
        (get "label.domain_tasks" > 0);
      Alcotest.(check int) "no merge conflicts" 0 (get "label.merge_conflicts"))

(* Cross-phi cut memo (cut-engine layer 2, doc/PERF.md): handing a memo
   to the ratio search and then to label runs at phi* must not change
   phi or any label — memo hits are verdict-exact — while the memo
   itself demonstrably engages (cut.memo_hits > 0).  A memo sized for a
   different netlist is rejected. *)
let test_cut_memo () =
  let nl = Workloads.Suite.build (Option.get (Workloads.Suite.find "bbara")) in
  let opts =
    { (Label_engine.default_options ~k:5) with Label_engine.resynthesize = true }
  in
  let phi_a, _, _ = Turbomap.minimum_ratio opts nl in
  let memo = Label_engine.new_cut_memo nl in
  let phi_b, _, _ = Turbomap.minimum_ratio ~cutmemo:memo opts nl in
  Alcotest.(check bool) "phi invariant under the memo" true
    (Rat.equal phi_a phi_b);
  let labels_of ?cutmemo () =
    match Label_engine.run ?cutmemo opts nl ~phi:phi_a with
    | Label_engine.Feasible { labels; _ }, _ -> labels
    | Label_engine.Infeasible, _ -> Alcotest.fail "infeasible at phi*"
  in
  Alcotest.(check bool) "labels invariant under the memo" true
    (labels_of () = labels_of ~cutmemo:memo ());
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    (fun () ->
      ignore (Label_engine.run ~cutmemo:memo opts nl ~phi:phi_a);
      let hits = Option.value ~default:0 (Obs.Counter.find "cut.memo_hits") in
      Alcotest.(check bool) "memo hits recorded" true (hits > 0));
  let other =
    Workloads.Suite.build (Option.get (Workloads.Suite.find "dk16"))
  in
  Alcotest.check_raises "memo for another netlist rejected"
    (Invalid_argument "Label_engine.run: cut memo sized for another netlist")
    (fun () -> ignore (Label_engine.run ~cutmemo:memo opts other ~phi:phi_a))

(* Per-lane arena ownership: arenas are private to one lane; distinct
   arenas solve concurrently without interference, and one arena is
   reusable across sequential solves (the busy flag is released even
   though results are copied out). *)
let test_arena_isolation () =
  (* a small diamond spec: 0,1 sources; 3 = sink side *)
  let spec =
    {
      Flow.Kcut.n = 4;
      edges = [| (0, 2); (1, 2); (0, 3); (2, 3) |];
      sink_side = [| false; false; false; true |];
      sources = [ 0; 1 ];
    }
  in
  let expected = Flow.Kcut.find spec ~k:2 in
  (* sequential reuse: the same arena across many solves *)
  let arena = Flow.Kcut.new_arena () in
  for _ = 1 to 10 do
    Alcotest.(check bool) "arena reuse agrees" true
      (Flow.Kcut.find ~arena spec ~k:2 = expected)
  done;
  (* cross-domain isolation: one arena per pool lane, concurrent solves *)
  Pool.with_pool ~domains:4 (fun pool ->
      let arenas = Array.init (Pool.size pool) (fun _ -> Flow.Kcut.new_arena ()) in
      let results = Array.make 64 None in
      Pool.run pool ~n:64 (fun worker i ->
          results.(i) <- Some (Flow.Kcut.find ~arena:arenas.(worker) spec ~k:2));
      Array.iteri
        (fun i r ->
          Alcotest.(check bool)
            (Printf.sprintf "lane solve %d agrees" i)
            true (r = Some expected))
        results);
  (* same discipline for expansion arenas *)
  let nl = pi_loop 6 2 in
  let v = Option.get (Netlist.find_by_name nl "g0") in
  let labels = Array.make (Netlist.n nl) Rat.one in
  List.iter (fun p -> labels.(p) <- Rat.zero) (Netlist.pis nl);
  let build arena =
    Expanded.build ~arena nl ~root:v ~labels ~phi:Rat.one ~threshold:Rat.zero
      ~extra_depth:2 ~max_nodes:100
  in
  let earena = Expanded.new_arena () in
  let a = build earena in
  let b = build earena in
  Alcotest.(check bool) "expansion arena reuse agrees" true
    (a.Expanded.nodes = b.Expanded.nodes && a.Expanded.internal = b.Expanded.internal)

let test_pld_equivalence () =
  (* PLD on/off must agree on the minimum ratio *)
  let rng = Rng.create 444 in
  for _ = 1 to 8 do
    let nl = random_seq rng ~pis:2 ~gates:8 ~max_arity:2 in
    let on = Label_engine.default_options ~k:3 in
    let off = { on with Label_engine.pld = false } in
    let phi_on, _, s_on = Turbomap.minimum_ratio on nl in
    let phi_off, _, _ = Turbomap.minimum_ratio off nl in
    Alcotest.check rat "same phi" phi_off phi_on;
    ignore s_on
  done

let test_pld_triggers_and_saves_iterations () =
  (* an infeasible probe just below the optimum ratio: labels rise slowly,
     so without PLD the quadratic iteration cap is the only stop; PLD's
     6n-iteration isolation test (Theorem 2) exits much earlier *)
  let nl = pi_loop 8 4 in
  let on = Label_engine.default_options ~k:2 in
  let off = { on with Label_engine.pld = false } in
  (* optimum ratio is 2; probe just below it so labels rise very slowly *)
  let phi = Rat.make 119 60 in
  let out_on, s_on = Label_engine.run on nl ~phi in
  let out_off, s_off = Label_engine.run off nl ~phi in
  Alcotest.(check bool) "both infeasible" true
    (out_on = Label_engine.Infeasible && out_off = Label_engine.Infeasible);
  Alcotest.(check bool)
    (Printf.sprintf "pld faster: %d < %d" s_on.Label_engine.iterations
       s_off.Label_engine.iterations)
    true
    (s_on.Label_engine.iterations < s_off.Label_engine.iterations);
  Alcotest.(check bool) "pld hit recorded" true (s_on.Label_engine.pld_hits > 0)

let test_full_expansion_agrees () =
  (* the SeqMapII-style construction must agree on feasibility; it only
     costs more *)
  let nl = pi_loop 4 2 in
  let partial = Label_engine.default_options ~k:3 in
  let full = { partial with Label_engine.full_expansion = true; max_expansion = 20000 } in
  List.iter
    (fun phi ->
      let a = fst (Label_engine.run partial nl ~phi) in
      let b = fst (Label_engine.run full nl ~phi) in
      let feas = function Label_engine.Feasible _ -> true | _ -> false in
      Alcotest.(check bool)
        (Format.asprintf "agree at %a" Rat.pp phi)
        (feas a) (feas b))
    [ Rat.one; Rat.make 3 2; Rat.of_int 2; Rat.make 1 2 ]

let test_realize () =
  let nl = pi_loop 3 1 in
  let mapped, report = Turbomap.map nl ~k:5 in
  match Turbomap.realize mapped with
  | None -> Alcotest.fail "no comb loop expected"
  | Some (final, period, _latency) ->
      Alcotest.(check int) "period is ceil(mdr)"
        (match report.Turbomap.mapped_mdr with
        | Graphs.Cycle_ratio.Ratio r -> max 1 (Rat.ceil r)
        | _ -> 1)
        period;
      Alcotest.(check int) "achieved" period (Retime.Retiming.clock_period final)

let test_obs_counters_on_suite () =
  (* a TurboSYN search over a real suite workload must exercise the
     instrumented hot paths: flow-based cut tests, decomposition
     attempts, and max-flow augmentation all leave nonzero counters *)
  let spec = Option.get (Workloads.Suite.find "bbara") in
  let nl = Workloads.Suite.build spec in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    (fun () ->
      let opts =
        { (Label_engine.default_options ~k:5) with
          Label_engine.resynthesize = true }
      in
      let _phi, _, _ = Turbomap.minimum_ratio opts nl in
      let nonzero name =
        match Obs.Counter.find name with
        | Some v when v > 0 -> ()
        | Some v -> Alcotest.failf "%s = %d, expected nonzero" name v
        | None -> Alcotest.failf "counter %s never registered" name
      in
      List.iter nonzero
        [
          "label.iterations";
          "label.cut_tests";
          "label.decomp_attempts";
          "maxflow.augmenting_paths";
          "expand.builds";
        ];
      match Obs.Span.all () |> List.filter (fun (_, _, n) -> n > 0) with
      | [] -> Alcotest.fail "no span recorded any entries"
      | _ -> ())

let test_map_preserves_interface () =
  let rng = Rng.create 555 in
  let nl = random_seq rng ~pis:4 ~gates:8 ~max_arity:3 in
  let mapped, _ = Turbomap.map nl ~k:4 in
  Alcotest.(check (list string)) "pi names"
    (List.map (Netlist.node_name nl) (Netlist.pis nl))
    (List.map (Netlist.node_name mapped) (Netlist.pis mapped));
  Alcotest.(check (list string)) "po names"
    (List.map (Netlist.node_name nl) (Netlist.pos nl))
    (List.map (Netlist.node_name mapped) (Netlist.pos mapped))

let () =
  Alcotest.run "seqmap"
    [
      ( "expanded",
        [
          Alcotest.test_case "basic" `Quick test_expanded_basic;
          Alcotest.test_case "overflow" `Quick test_expanded_overflow;
          Alcotest.test_case "cone function" `Quick test_expanded_cone;
          Alcotest.test_case "frontier cut" `Quick test_frontier_cut;
        ] );
      ( "labels",
        [
          Alcotest.test_case "accumulator" `Quick test_labels_accumulator;
          Alcotest.test_case "minimum ratio accumulator" `Quick
            test_minimum_ratio_accumulator;
          Alcotest.test_case "collapsible loop" `Quick
            test_minimum_ratio_collapsible_loop;
          Alcotest.test_case "acyclic" `Quick test_acyclic_zero;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "random turbomap" `Slow test_map_random_turbomap;
          Alcotest.test_case "random turbosyn" `Slow test_map_random_turbosyn;
          Alcotest.test_case "turbosyn no worse" `Slow test_turbosyn_no_worse;
          Alcotest.test_case "interface preserved" `Quick
            test_map_preserves_interface;
          Alcotest.test_case "realize" `Quick test_realize;
          Alcotest.test_case "full expansion agrees" `Quick
            test_full_expansion_agrees;
          Alcotest.test_case "obs counters on suite workload" `Slow
            test_obs_counters_on_suite;
        ] );
      ( "engines",
        [
          Alcotest.test_case "worklist/sweep equivalence" `Slow
            test_engine_equivalence;
          Alcotest.test_case "parallel jobs determinism" `Slow
            test_jobs_determinism;
          Alcotest.test_case "intra-phi lane invariance" `Slow
            test_intra_phi_invariance;
          Alcotest.test_case "intra-phi scheduling counters" `Slow
            test_intra_phi_counters;
          Alcotest.test_case "cross-phi cut memo" `Slow test_cut_memo;
          Alcotest.test_case "arena isolation" `Quick test_arena_isolation;
        ] );
      ( "pld",
        [
          Alcotest.test_case "on/off equivalence" `Slow test_pld_equivalence;
          Alcotest.test_case "saves iterations" `Quick
            test_pld_triggers_and_saves_iterations;
        ] );
    ]
