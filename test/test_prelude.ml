(* Tests for the prelude library: exact rationals, RNG, table printer. *)

open Prelude

let rat = Alcotest.testable Rat.pp Rat.equal

let test_make_normalizes () =
  Alcotest.check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  Alcotest.check rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  Alcotest.check rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  Alcotest.check rat "0/-7 = 0" Rat.zero (Rat.make 0 (-7));
  Alcotest.check_raises "den 0" (Invalid_argument "Rat.make: zero denominator")
    (fun () -> ignore (Rat.make 1 0))

let test_arith () =
  let half = Rat.make 1 2 and third = Rat.make 1 3 in
  Alcotest.check rat "1/2+1/3" (Rat.make 5 6) (Rat.add half third);
  Alcotest.check rat "1/2-1/3" (Rat.make 1 6) (Rat.sub half third);
  Alcotest.check rat "1/2*1/3" (Rat.make 1 6) (Rat.mul half third);
  Alcotest.check rat "1/2 / 1/3" (Rat.make 3 2) (Rat.div half third);
  Alcotest.check rat "neg" (Rat.make (-1) 2) (Rat.neg half);
  Alcotest.check rat "mul_int" (Rat.make 3 2) (Rat.mul_int half 3);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div half Rat.zero))

let test_floor_ceil () =
  let check_fc name r fl ce =
    Alcotest.(check int) (name ^ " floor") fl (Rat.floor r);
    Alcotest.(check int) (name ^ " ceil") ce (Rat.ceil r)
  in
  check_fc "3/2" (Rat.make 3 2) 1 2;
  check_fc "-3/2" (Rat.make (-3) 2) (-2) (-1);
  check_fc "2" (Rat.of_int 2) 2 2;
  check_fc "-2" (Rat.of_int (-2)) (-2) (-2);
  check_fc "0" Rat.zero 0 0

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true Rat.(make 1 2 < make 2 3);
  Alcotest.(check bool) "2/3 > 1/2" true Rat.(make 2 3 > make 1 2);
  Alcotest.(check bool) "1/2 <= 2/4" true Rat.(make 1 2 <= make 2 4);
  Alcotest.check rat "min" (Rat.make 1 2) (Rat.min (Rat.make 1 2) (Rat.make 2 3));
  Alcotest.check rat "max" (Rat.make 2 3) (Rat.max (Rat.make 1 2) (Rat.make 2 3));
  Alcotest.(check int) "sign neg" (-1) (Rat.sign (Rat.make (-1) 5));
  Alcotest.(check int) "sign zero" 0 (Rat.sign Rat.zero)

let test_mediant () =
  Alcotest.check rat "mediant 0/1 1/1" (Rat.make 1 2)
    (Rat.mediant Rat.zero Rat.one)

(* stern_brocot_min must recover an arbitrary hidden threshold exactly. *)
let test_stern_brocot_exact () =
  let check_threshold p q =
    let theta = Rat.make p q in
    let feasible r = Rat.(r >= theta) in
    match
      Rat.stern_brocot_min ~lo:Rat.zero ~hi:(Rat.of_int 4096) ~max_den:4096
        ~feasible
    with
    | None -> Alcotest.failf "no result for %d/%d" p q
    | Some r -> Alcotest.check rat (Printf.sprintf "theta %d/%d" p q) theta r
  in
  check_threshold 1 1;
  check_threshold 355 113;
  check_threshold 1 4096;
  check_threshold 4095 4096;
  check_threshold 2048 1;
  check_threshold 17 5;
  check_threshold 1000 999

let test_stern_brocot_none () =
  let r =
    Rat.stern_brocot_min ~lo:Rat.zero ~hi:Rat.one ~max_den:10 ~feasible:(fun _ ->
        false)
  in
  Alcotest.(check bool) "no feasible" true (r = None)

let test_stern_brocot_lo_feasible () =
  let r =
    Rat.stern_brocot_min ~lo:Rat.one ~hi:(Rat.of_int 2) ~max_den:10
      ~feasible:(fun _ -> true)
  in
  Alcotest.check rat "lo returned" Rat.one
    (match r with Some x -> x | None -> Alcotest.fail "expected Some")

let qcheck_rat_props =
  let open QCheck in
  let gen_rat =
    let g =
      Gen.map2
        (fun n d -> Rat.make n (1 + abs d))
        (Gen.int_range (-1000) 1000) (Gen.int_range 0 999)
    in
    make ~print:Rat.to_string g
  in
  [
    Test.make ~name:"add commutes" ~count:500 (pair gen_rat gen_rat)
      (fun (a, b) -> Rat.equal (Rat.add a b) (Rat.add b a));
    Test.make ~name:"add assoc" ~count:500 (triple gen_rat gen_rat gen_rat)
      (fun (a, b, c) ->
        Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c));
    Test.make ~name:"sub inverse of add" ~count:500 (pair gen_rat gen_rat)
      (fun (a, b) -> Rat.equal a (Rat.sub (Rat.add a b) b));
    Test.make ~name:"mul distributes" ~count:500 (triple gen_rat gen_rat gen_rat)
      (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)));
    Test.make ~name:"floor <= r < floor+1" ~count:500 gen_rat (fun r ->
        let f = Rat.floor r in
        Rat.(of_int f <= r) && Rat.(r < of_int (f + 1)));
    Test.make ~name:"ceil is -floor(-r)" ~count:500 gen_rat (fun r ->
        Rat.ceil r = -Rat.floor (Rat.neg r));
    Test.make ~name:"compare consistent with float" ~count:500
      (pair gen_rat gen_rat) (fun (a, b) ->
        let c = Rat.compare a b in
        let fc = compare (Rat.to_float a) (Rat.to_float b) in
        (* floats of small rationals are exact enough for sign agreement *)
        (c = 0 && fc = 0) || (c < 0 && fc < 0) || (c > 0 && fc > 0));
    Test.make ~name:"normalized: gcd(num,den)=1" ~count:500 gen_rat (fun r ->
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        Rat.den r > 0 && gcd (abs (Rat.num r)) (Rat.den r) <= 1 || Rat.num r = 0);
    Test.make ~name:"mediant lies strictly between" ~count:500
      (pair gen_rat gen_rat) (fun (a, b) ->
        QCheck.assume (not (Rat.equal a b));
        let lo = Rat.min a b and hi = Rat.max a b in
        let m = Rat.mediant lo hi in
        Rat.(lo < m) && Rat.(m < hi));
  ]

let qcheck_stern_brocot =
  let open QCheck in
  let gen =
    Gen.(
      let* den = int_range 1 64 in
      let* num = int_range 1 (4 * den) in
      return (num, den))
  in
  [
    Test.make ~name:"stern-brocot recovers random thresholds" ~count:200
      (make ~print:(fun (p, q) -> Printf.sprintf "%d/%d" p q) gen)
      (fun (p, q) ->
        let theta = Rat.make p q in
        match
          Rat.stern_brocot_min ~lo:Rat.zero ~hi:(Rat.of_int 256) ~max_den:64
            ~feasible:(fun r -> Rat.(r >= theta))
        with
        | Some r -> Rat.equal r theta
        | None -> false);
  ]

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let c = Rng.split a in
  let x = Rng.int64 a and y = Rng.int64 c in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_rng_of_string () =
  let a = Rng.of_string "bbara" and b = Rng.of_string "bbara" in
  let c = Rng.of_string "bbsse" in
  Alcotest.(check int64) "same name same stream" (Rng.int64 a) (Rng.int64 b);
  let a2 = Rng.of_string "bbara" in
  Alcotest.(check bool) "different names differ" true
    (Rng.int64 a2 <> Rng.int64 c)

let test_rng_sample () =
  let r = Rng.create 3 in
  for _ = 1 to 50 do
    let s = Rng.sample r 10 30 in
    Alcotest.(check int) "size" 10 (List.length s);
    Alcotest.(check int) "distinct" 10
      (List.length (List.sort_uniq compare s));
    List.iter (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v < 30)) s
  done;
  let all = List.sort compare (Rng.sample r 5 5) in
  Alcotest.(check (list int)) "k=n is a permutation" [ 0; 1; 2; 3; 4 ] all

let test_rng_shuffle () =
  let r = Rng.create 9 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_table_render () =
  let t = Table.create [ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "foo"; "12" ];
  Table.add_row t [ "barbaz"; "3" ];
  Table.add_rule t;
  Table.add_row t [ "sum"; "15" ];
  let s = Format.asprintf "%a" Table.pp t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0
    &&
    let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
    List.length lines = 6
    && String.trim (List.nth lines 0) = "| name   |  n |")

let test_table_pads_short_rows () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Table.add_row t [ "x" ];
  let s = Format.asprintf "%a" Table.pp t in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "1"; "2"; "3" ])

let test_timer () =
  let (), dt = Timer.time (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0))) in
  Alcotest.(check bool) "non-negative wall" true (dt >= 0.0);
  let (), dc = Timer.time_cpu (fun () -> ()) in
  Alcotest.(check bool) "non-negative cpu" true (dc >= 0.0)

(* ---------------------------------------------------------------- *)
(* Bqueue: the bounded MPMC queue behind the serve worker pool       *)
(* ---------------------------------------------------------------- *)

let test_bqueue_basic () =
  let q = Prelude.Bqueue.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Prelude.Bqueue.capacity q);
  Alcotest.(check bool) "push 1" true (Prelude.Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Prelude.Bqueue.try_push q 2);
  Alcotest.(check bool) "full rejects" false (Prelude.Bqueue.try_push q 3);
  Alcotest.(check int) "length" 2 (Prelude.Bqueue.length q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Prelude.Bqueue.pop q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Prelude.Bqueue.pop q);
  Alcotest.(check bool) "room again" true (Prelude.Bqueue.try_push q 4);
  Prelude.Bqueue.close q;
  Alcotest.(check bool) "closed rejects" false (Prelude.Bqueue.try_push q 5);
  Alcotest.(check (option int)) "drains after close" (Some 4)
    (Prelude.Bqueue.pop q);
  Alcotest.(check (option int)) "then empty" None (Prelude.Bqueue.pop q);
  Alcotest.(check bool) "is_closed" true (Prelude.Bqueue.is_closed q);
  (* zero capacity: the always-shed configuration *)
  let z = Prelude.Bqueue.create ~capacity:0 in
  Alcotest.(check bool) "zero capacity rejects" false
    (Prelude.Bqueue.try_push z 1);
  Alcotest.check
    (Alcotest.testable (fun fmt -> Format.fprintf fmt "%b") ( = ))
    "negative capacity raises" true
    (try
       ignore (Prelude.Bqueue.create ~capacity:(-1));
       false
     with Invalid_argument _ -> true)

let test_bqueue_concurrent () =
  (* N producers x M consumers: every pushed element is popped exactly
     once, consumers unblock and exit on close *)
  let q = Prelude.Bqueue.create ~capacity:4 in
  let producers, consumers, per = (3, 3, 200) in
  let popped = Array.init consumers (fun _ -> ref []) in
  let cs =
    Array.init consumers (fun c ->
        Domain.spawn (fun () ->
            let rec go () =
              match Prelude.Bqueue.pop q with
              | Some v ->
                  popped.(c) := v :: !(popped.(c));
                  go ()
              | None -> ()
            in
            go ()))
  in
  let ps =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let v = (p * per) + i in
              (* spin until the bounded queue has room *)
              while not (Prelude.Bqueue.try_push q v) do
                Domain.cpu_relax ()
              done
            done))
  in
  Array.iter Domain.join ps;
  Prelude.Bqueue.close q;
  Array.iter Domain.join cs;
  let all =
    Array.to_list popped |> List.concat_map (fun r -> !r) |> List.sort compare
  in
  Alcotest.(check int) "element count" (producers * per) (List.length all);
  Alcotest.(check (list int)) "each element exactly once"
    (List.init (producers * per) Fun.id)
    all

let () =
  Alcotest.run "prelude"
    [
      ( "rat",
        [
          Alcotest.test_case "make normalizes" `Quick test_make_normalizes;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "compare/min/max/sign" `Quick test_compare;
          Alcotest.test_case "mediant" `Quick test_mediant;
          Alcotest.test_case "stern-brocot exact" `Quick test_stern_brocot_exact;
          Alcotest.test_case "stern-brocot none" `Quick test_stern_brocot_none;
          Alcotest.test_case "stern-brocot lo feasible" `Quick
            test_stern_brocot_lo_feasible;
        ] );
      ("rat-props", List.map QCheck_alcotest.to_alcotest qcheck_rat_props);
      ("stern-brocot-props", List.map QCheck_alcotest.to_alcotest qcheck_stern_brocot);
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "of_string" `Quick test_rng_of_string;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "padding" `Quick test_table_pads_short_rows;
        ] );
      ("timer", [ Alcotest.test_case "timing" `Quick test_timer ]);
      ( "bqueue",
        [
          Alcotest.test_case "basic" `Quick test_bqueue_basic;
          Alcotest.test_case "concurrent" `Quick test_bqueue_concurrent;
        ] );
    ]
