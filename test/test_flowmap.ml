(* Tests for FlowMap/FlowSYN: label optimality vs brute-force cut
   enumeration, mapping correctness (symbolic), FlowSYN depth wins, and
   sequential wrapping (simulation equivalence). *)

open Logic
open Flowmap

let mk_comb kinds fanins roots =
  { Comb.kind = Array.of_list kinds; fanins = Array.of_list fanins; roots }

(* balanced and-tree over 2^levels inputs *)
let and_tree levels =
  let nins = 1 lsl levels in
  let kinds = ref [] and fanins = ref [] in
  let count = ref 0 in
  let fresh k f =
    kinds := !kinds @ [ k ];
    fanins := !fanins @ [ f ];
    let id = !count in
    incr count;
    id
  in
  let layer = ref (List.init nins (fun _ -> fresh Comb.In [||])) in
  while List.length !layer > 1 do
    let rec pair = function
      | a :: b :: rest ->
          fresh (Comb.Gate (Truthtable.and_all 2)) [| a; b |] :: pair rest
      | rest -> rest
    in
    layer := pair !layer
  done;
  let root = List.hd !layer in
  (mk_comb !kinds !fanins [ root ], root)

let test_cone_function () =
  (* g = (a and b) xor c *)
  let c =
    mk_comb
      [ Comb.In; Comb.In; Comb.In;
        Comb.Gate (Truthtable.and_all 2); Comb.Gate (Truthtable.xor_all 2) ]
      [ [||]; [||]; [||]; [| 0; 1 |]; [| 3; 2 |] ]
      [ 4 ]
  in
  Comb.validate c;
  let tt = Comb.cone_function c ~root:4 ~inputs:[| 0; 1; 2 |] in
  for m = 0 to 7 do
    let a = m land 1 <> 0 and b = m land 2 <> 0 and cc = m land 4 <> 0 in
    Alcotest.(check bool) "cone fn" ((a && b) <> cc) (Truthtable.eval_bits tt m)
  done;
  (* escaping the cut raises *)
  Alcotest.check_raises "escape"
    (Invalid_argument "Comb.cone_function: path escapes the cut") (fun () ->
      ignore (Comb.cone_function c ~root:4 ~inputs:[| 0; 2 |]))

let test_depth () =
  let t, root = and_tree 3 in
  let d = Comb.depth t in
  Alcotest.(check int) "tree depth" 3 d.(root)

let test_flowmap_tree () =
  (* 8-input and tree: K=2 gives depth 3; K=4 gives depth 2; K=8 would
     give 1 but K is capped at 6 -> depth 2 *)
  let t, root = and_tree 3 in
  let r2 = Labels.compute t ~k:2 in
  Alcotest.(check int) "k=2 depth 3" 3 r2.Labels.labels.(root);
  let r4 = Labels.compute t ~k:4 in
  Alcotest.(check int) "k=4 depth 2" 2 r4.Labels.labels.(root)

(* brute-force optimal-depth mapping via exhaustive cut enumeration *)
let brute_depth t ~k root =
  let n = Comb.n t in
  (* enumerate K-feasible cuts of v (sets of nodes covering v's cone) *)
  let cuts_memo = Array.make n None in
  let rec cuts v =
    match cuts_memo.(v) with
    | Some c -> c
    | None ->
        let c =
          match t.Comb.kind.(v) with
          | Comb.In -> [ [ v ] ]
          | Comb.Gate _ ->
              let fanin_cuts =
                Array.to_list (Array.map (fun u -> [ u ] :: cuts u) t.Comb.fanins.(v))
              in
              (* cartesian merge, keep sets of size <= k *)
              let merged =
                List.fold_left
                  (fun acc cu ->
                    List.concat_map
                      (fun partial ->
                        List.filter_map
                          (fun c ->
                            let s = List.sort_uniq compare (partial @ c) in
                            if List.length s <= k then Some s else None)
                          cu)
                      acc)
                  [ [] ] fanin_cuts
              in
              List.sort_uniq compare merged
        in
        cuts_memo.(v) <- Some c;
        c
  in
  let depth_memo = Array.make n (-1) in
  let rec depth v =
    if depth_memo.(v) >= 0 then depth_memo.(v)
    else begin
      let d =
        match t.Comb.kind.(v) with
        | Comb.In -> 0
        | Comb.Gate _ ->
            List.fold_left
              (fun best cut ->
                if List.mem v cut then best
                else
                  let d = 1 + List.fold_left (fun a u -> max a (depth u)) 0 cut in
                  min best d)
              max_int (cuts v)
      in
      depth_memo.(v) <- d;
      d
    end
  in
  depth root

let qcheck_flowmap_optimal =
  let open QCheck in
  (* small random K-bounded DAGs *)
  let gen =
    Gen.(
      let* nin = int_range 2 4 in
      let* ngates = int_range 2 8 in
      let* seeds = list_repeat ngates (pair Gen.int64 (list_size (int_range 1 3) Gen.int)) in
      return (nin, ngates, seeds))
  in
  let build (nin, _ngates, seeds) =
    let kinds = ref [] and fanins = ref [] in
    let count = ref 0 in
    let fresh k f =
      kinds := !kinds @ [ k ];
      fanins := !fanins @ [ f ];
      let id = !count in
      incr count;
      id
    in
    for _ = 1 to nin do
      ignore (fresh Comb.In [||])
    done;
    List.iter
      (fun (bits, srcs) ->
        let srcs = List.map (fun s -> abs s mod !count) srcs in
        let srcs = List.sort_uniq compare srcs in
        let arity = List.length srcs in
        let tt = Truthtable.create arity bits in
        ignore (fresh (Comb.Gate tt) (Array.of_list srcs)))
      seeds;
    let root = !count - 1 in
    mk_comb !kinds !fanins [ root ]
  in
  [
    Test.make ~name:"flowmap labels are optimal depths" ~count:150
      (make ~print:(fun _ -> "comb dag") gen)
      (fun input ->
        let t = build input in
        let root = List.hd t.Comb.roots in
        let res = Labels.compute t ~k:3 in
        (match t.Comb.kind.(root) with
        | Comb.In -> true
        | Comb.Gate _ ->
            res.Labels.labels.(root) = brute_depth t ~k:3 root));
  ]

let qcheck_mapper_correct =
  let open QCheck in
  let gen =
    Gen.(
      let* nin = int_range 2 5 in
      let* ngates = int_range 2 10 in
      let* seeds =
        list_repeat ngates (pair Gen.int64 (list_size (int_range 1 4) Gen.int))
      in
      return (nin, ngates, seeds))
  in
  let build (nin, _, seeds) =
    let kinds = ref [] and fanins = ref [] in
    let count = ref 0 in
    let fresh k f =
      kinds := !kinds @ [ k ];
      fanins := !fanins @ [ f ];
      let id = !count in
      incr count;
      id
    in
    for _ = 1 to nin do
      ignore (fresh Comb.In [||])
    done;
    List.iter
      (fun (bits, srcs) ->
        let srcs = List.sort_uniq compare (List.map (fun s -> abs s mod !count) srcs) in
        let tt = Truthtable.create (List.length srcs) bits in
        ignore (fresh (Comb.Gate tt) (Array.of_list srcs)))
      seeds;
    let root = !count - 1 in
    mk_comb !kinds !fanins [ root ]
  in
  [
    Test.make ~name:"mapped networks are equivalent and k-bounded" ~count:150
      (make ~print:(fun _ -> "comb dag") gen)
      (fun input ->
        let t = build input in
        let res = Labels.compute ~resynthesize:true t ~k:4 in
        let mapped = Mapper.generate t res in
        Mapper.check t mapped ~k:4);
  ]

let test_flowsyn_beats_flowmap_on_xor_wall () =
  (* a wide xor wall: xor of 7 inputs built as a K-bounded gate chain;
     FlowMap with k=4 needs depth 2; resynthesis cannot beat the
     combinational limit here, so instead test a function where resyn
     saves depth: 6-input xor of ands, classic FlowSYN win *)
  let kinds =
    [ Comb.In; Comb.In; Comb.In; Comb.In; Comb.In; Comb.In; Comb.In;
      Comb.Gate (Truthtable.xor_all 2); Comb.Gate (Truthtable.xor_all 2);
      Comb.Gate (Truthtable.xor_all 2); Comb.Gate (Truthtable.xor_all 2);
      Comb.Gate (Truthtable.xor_all 2); Comb.Gate (Truthtable.xor_all 2) ]
  in
  let fanins =
    [ [||]; [||]; [||]; [||]; [||]; [||]; [||];
      [| 0; 1 |]; [| 7; 2 |]; [| 8; 3 |]; [| 9; 4 |]; [| 10; 5 |]; [| 11; 6 |] ]
  in
  let t = mk_comb kinds fanins [ 12 ] in
  Comb.validate t;
  let plain = Labels.compute t ~k:4 in
  let resyn = Labels.compute ~resynthesize:true t ~k:4 in
  Alcotest.(check bool) "resyn at least as good" true
    (resyn.Labels.labels.(12) <= plain.Labels.labels.(12));
  (* map both and verify *)
  let m = Mapper.generate t resyn in
  Alcotest.(check bool) "verified" true (Mapper.check t m ~k:4)

let random_sequential rng ngates =
  let open Circuit in
  let nl = Netlist.create () in
  let pis = List.init 3 (fun i -> Netlist.add_pi ~name:(Printf.sprintf "x%d" i) nl) in
  let nodes = ref (Array.of_list pis) in
  for _ = 1 to ngates do
    let k = 1 + Prelude.Rng.int rng 3 in
    let fanins =
      Array.init k (fun _ ->
          (Prelude.Rng.pick rng !nodes, if Prelude.Rng.int rng 4 = 0 then 1 else 0))
    in
    (* distinct drivers not required by netlist, but keep as-is *)
    let tt = Truthtable.random_nondegenerate rng k in
    let g = Netlist.add_gate nl tt fanins in
    nodes := Array.append !nodes [| g |]
  done;
  for i = 0 to 1 do
    ignore
      (Netlist.add_po ~name:(Printf.sprintf "y%d" i) nl
         ~driver:(Prelude.Rng.pick rng !nodes) ~weight:0)
  done;
  nl

let test_map_sequential_equiv () =
  let rng = Prelude.Rng.create 314 in
  for iter = 1 to 15 do
    let nl = random_sequential rng 15 in
    List.iter
      (fun resynthesize ->
        let mapped, report = Flowsyn.map_sequential ~resynthesize nl ~k:4 in
        Alcotest.(check bool)
          (Printf.sprintf "iter %d resyn=%b equivalent" iter resynthesize)
          true
          (Sim.Equiv.io_equal ~cycles:48 ~runs:4 rng nl mapped);
        Alcotest.(check bool) "luts positive" true (report.Flowsyn.luts >= 0))
      [ false; true ]
  done

let test_map_sequential_with_registered_po () =
  let open Circuit in
  let nl = Netlist.create () in
  let x = Netlist.add_pi nl in
  let g = Build.not_ nl x in
  ignore (Netlist.add_po nl ~driver:g ~weight:2);
  let mapped, _ = Flowsyn.map_sequential nl ~k:4 in
  let rng = Prelude.Rng.create 4 in
  Alcotest.(check bool) "registered po" true (Sim.Equiv.io_equal rng nl mapped)

let test_to_comb_roots () =
  let open Circuit in
  let nl = Netlist.create () in
  let x = Netlist.add_pi nl in
  let a = Build.not_ nl x in
  let b = Build.buf ~w:1 nl a in
  ignore (Netlist.add_po nl ~driver:b ~weight:0);
  let comb, origin = Flowsyn.to_comb nl in
  (* roots: a (drives registered edge) and b (drives po) *)
  Alcotest.(check int) "two roots" 2 (List.length comb.Comb.roots);
  (* one pseudo input for (a, 1) *)
  let pseudo =
    Array.to_list origin
    |> List.filteri (fun i _ -> comb.Comb.kind.(i) = Comb.In)
    |> List.filter (fun (_, w) -> w > 0)
  in
  Alcotest.(check (list (pair int int))) "pseudo input" [ (a, 1) ] pseudo

(* The priority-cut enumeration pre-filter (cut-engine layer 1,
   doc/PERF.md) answers cone queries in the combinational flow: on a
   tree, every gate cone is small enough to enumerate, so the max-flow
   fallback should never be consulted. *)
let test_enum_prefilter_engages () =
  let t, root = and_tree 4 in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    (fun () ->
      let r = Labels.compute t ~k:5 in
      Alcotest.(check int) "tree of 16 under K=5 maps in depth 2" 2
        r.Labels.labels.(root);
      let get name = Option.value ~default:0 (Obs.Counter.find name) in
      Alcotest.(check bool) "enum pre-filter answered cone queries" true
        (get "cut.enum_hits" > 0);
      Alcotest.(check int) "no flow network was ever built" 0
        (get "maxflow.networks"))

let () =
  Alcotest.run "flowmap"
    [
      ( "comb",
        [
          Alcotest.test_case "cone function" `Quick test_cone_function;
          Alcotest.test_case "depth" `Quick test_depth;
        ] );
      ( "labels",
        [
          Alcotest.test_case "and tree" `Quick test_flowmap_tree;
          Alcotest.test_case "resyn xor wall" `Quick
            test_flowsyn_beats_flowmap_on_xor_wall;
          Alcotest.test_case "enum pre-filter engages" `Quick
            test_enum_prefilter_engages;
        ] );
      ("labels-props", List.map QCheck_alcotest.to_alcotest qcheck_flowmap_optimal);
      ("mapper-props", List.map QCheck_alcotest.to_alcotest qcheck_mapper_correct);
      ( "flowsyn",
        [
          Alcotest.test_case "sequential equivalence" `Quick
            test_map_sequential_equiv;
          Alcotest.test_case "registered po" `Quick
            test_map_sequential_with_registered_po;
          Alcotest.test_case "to_comb roots" `Quick test_to_comb_roots;
        ] );
    ]
