(* Tests for the observability layer: counter registry semantics, span
   nesting, disabled-mode no-ops, trace ring-buffer bounds, and the
   stats-report JSON schema (including a parse/print round trip). *)

let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    f

(* ---------------------------------------------------------------- *)
(* Counters                                                         *)
(* ---------------------------------------------------------------- *)

let test_counter_registry () =
  with_obs (fun () ->
      let a = Obs.Counter.make "test.alpha" in
      let a' = Obs.Counter.make "test.alpha" in
      Alcotest.(check bool) "idempotent make" true (a == a');
      Obs.Counter.incr a;
      Obs.Counter.add a' 4;
      Alcotest.(check int) "shared state" 5 (Obs.Counter.value a);
      Alcotest.(check (option int)) "find" (Some 5) (Obs.Counter.find "test.alpha");
      Alcotest.(check (option int)) "find missing" None
        (Obs.Counter.find "test.never-registered");
      Alcotest.(check bool) "listed" true
        (List.mem_assoc "test.alpha" (Obs.Counter.all ()));
      Obs.Counter.reset_all ();
      Alcotest.(check int) "reset" 0 (Obs.Counter.value a))

let test_counter_record_max () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.peak" in
      Obs.Counter.record_max c 7;
      Obs.Counter.record_max c 3;
      Alcotest.(check int) "high water" 7 (Obs.Counter.value c);
      Obs.Counter.record_max c 11;
      Alcotest.(check int) "raised" 11 (Obs.Counter.value c))

let test_counter_negative_add () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.neg" in
      Alcotest.check_raises "negative add"
        (Invalid_argument "Obs.Counter.add: negative increment") (fun () ->
          Obs.Counter.add c (-1)))

(* ---------------------------------------------------------------- *)
(* Disabled mode                                                    *)
(* ---------------------------------------------------------------- *)

let test_disabled_no_ops () =
  Obs.set_enabled false;
  Obs.reset ();
  let c = Obs.Counter.make "test.disabled" in
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.Counter.record_max c 42;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  let s = Obs.Span.make "test.disabled-span" in
  let r = Obs.Span.time s (fun () -> 17) in
  Alcotest.(check int) "span passes value through" 17 r;
  Alcotest.(check int) "span not entered" 0 (Obs.Span.count s);
  Obs.Trace.emit "test.event" [ ("x", Obs.Json.Int 1) ];
  Alcotest.(check int) "trace empty" 0 (Obs.Trace.length ())

(* ---------------------------------------------------------------- *)
(* Spans                                                            *)
(* ---------------------------------------------------------------- *)

let test_span_nesting () =
  with_obs (fun () ->
      let outer = Obs.Span.make "test.outer" in
      let inner = Obs.Span.make "test.inner" in
      Obs.Span.time outer (fun () ->
          Obs.Span.time inner (fun () -> Unix.sleepf 0.005);
          Obs.Span.time inner (fun () -> ()));
      Alcotest.(check int) "outer entries" 1 (Obs.Span.count outer);
      Alcotest.(check int) "inner entries" 2 (Obs.Span.count inner);
      Alcotest.(check bool) "outer covers inner" true
        (Obs.Span.seconds outer >= Obs.Span.seconds inner);
      Alcotest.(check bool) "inner nonzero" true (Obs.Span.seconds inner > 0.))

let test_span_recursion () =
  with_obs (fun () ->
      let s = Obs.Span.make "test.recursive" in
      let rec go n = Obs.Span.time s (fun () -> if n > 0 then go (n - 1)) in
      go 5;
      (* only the outermost activation completes an entry *)
      Alcotest.(check int) "one outermost entry" 1 (Obs.Span.count s))

let test_span_exception_safety () =
  with_obs (fun () ->
      let s = Obs.Span.make "test.raises" in
      (try Obs.Span.time s (fun () -> failwith "boom") with Failure _ -> ());
      Alcotest.(check int) "entry recorded despite raise" 1 (Obs.Span.count s);
      (* the span is closed: a new timing still works *)
      Obs.Span.time s (fun () -> ());
      Alcotest.(check int) "reusable" 2 (Obs.Span.count s);
      (* spurious exit is ignored *)
      Obs.Span.exit s;
      Alcotest.(check int) "spurious exit ignored" 2 (Obs.Span.count s))

(* ---------------------------------------------------------------- *)
(* Trace ring buffer                                                *)
(* ---------------------------------------------------------------- *)

let test_trace_ring () =
  with_obs (fun () ->
      Obs.Trace.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Obs.Trace.set_capacity 4096)
        (fun () ->
          for i = 0 to 5 do
            Obs.Trace.emit "tick" [ ("i", Obs.Json.Int i) ]
          done;
          Alcotest.(check int) "bounded" 4 (Obs.Trace.length ());
          Alcotest.(check int) "dropped" 2 (Obs.Trace.dropped ());
          let evs = Obs.Trace.events () in
          Alcotest.(check int) "oldest surviving seq" 2
            (List.hd evs).Obs.Trace.seq;
          Alcotest.(check int) "newest seq" 5
            (List.nth evs 3).Obs.Trace.seq;
          (* every line of the JSON-lines sink parses *)
          List.iter
            (fun e ->
              match
                Obs.Json.of_string
                  (Obs.Json.to_string (Obs.Trace.event_json e))
              with
              | Ok _ -> ()
              | Error m -> Alcotest.failf "unparseable event: %s" m)
            evs))

(* ---------------------------------------------------------------- *)
(* JSON round trip and the stats schema                             *)
(* ---------------------------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("null", Null);
          ("bools", List [ Bool true; Bool false ]);
          ("ints", List [ Int 0; Int (-42); Int max_int ]);
          ("floats", List [ Float 0.5; Float 1e-3; Float 1234.0 ]);
          ("string", Str "quote \" backslash \\ newline \n tab \t");
          ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
        ])
  in
  (match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact round trip" true (Obs.Json.equal v v')
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Obs.Json.of_string (Obs.Json.to_pretty_string v) with
  | Ok v' -> Alcotest.(check bool) "pretty round trip" true (Obs.Json.equal v v')
  | Error m -> Alcotest.failf "pretty parse failed: %s" m);
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" bad
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]

let test_stats_schema () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.schema-counter" in
      Obs.Counter.add c 3;
      Obs.Span.time (Obs.Span.make "test.schema-span") (fun () -> ());
      let extra = [ ("run", Obs.Json.Obj [ ("k", Obs.Json.Int 5) ]) ] in
      let report = Obs.Report.stats_json ~extra () in
      (* the document round-trips through the printer and parser *)
      (match Obs.Json.of_string (Obs.Json.to_string report) with
      | Ok v ->
          Alcotest.(check bool) "schema round trip" true
            (Obs.Json.equal report v)
      | Error m -> Alcotest.failf "report does not parse: %s" m);
      (* versioned header *)
      Alcotest.(check bool) "schema tag" true
        (Obs.Json.member "schema" report
        = Some (Obs.Json.Str Obs.Report.schema_version));
      Alcotest.(check bool) "enabled flag" true
        (Obs.Json.member "enabled" report = Some (Obs.Json.Bool true));
      (* extra members are spliced in *)
      Alcotest.(check bool) "run member" true
        (Obs.Json.member "run" report <> None);
      (* counters and spans land under their sections *)
      (match Obs.Json.member "counters" report with
      | Some counters ->
          Alcotest.(check bool) "counter value" true
            (Obs.Json.member "test.schema-counter" counters
            = Some (Obs.Json.Int 3))
      | None -> Alcotest.fail "no counters object");
      match Obs.Json.member "spans" report with
      | Some spans -> (
          match Obs.Json.member "test.schema-span" spans with
          | Some span ->
              Alcotest.(check bool) "span entries" true
                (Obs.Json.member "entries" span = Some (Obs.Json.Int 1))
          | None -> Alcotest.fail "span missing")
      | None -> Alcotest.fail "no spans object")

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "registry" `Quick test_counter_registry;
          Alcotest.test_case "record max" `Quick test_counter_record_max;
          Alcotest.test_case "negative add" `Quick test_counter_negative_add;
        ] );
      ( "disabled",
        [ Alcotest.test_case "all hooks no-op" `Quick test_disabled_no_ops ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "recursion" `Quick test_span_recursion;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
        ] );
      ("trace", [ Alcotest.test_case "ring buffer" `Quick test_trace_ring ]);
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "stats schema" `Quick test_stats_schema;
        ] );
    ]
