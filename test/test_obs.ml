(* Tests for the observability layer: counter registry semantics, span
   nesting, disabled-mode no-ops, trace ring-buffer bounds, and the
   stats-report JSON schema (including a parse/print round trip). *)

let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    f

(* ---------------------------------------------------------------- *)
(* Counters                                                         *)
(* ---------------------------------------------------------------- *)

let test_counter_registry () =
  with_obs (fun () ->
      let a = Obs.Counter.make "test.alpha" in
      let a' = Obs.Counter.make "test.alpha" in
      Alcotest.(check bool) "idempotent make" true (a == a');
      Obs.Counter.incr a;
      Obs.Counter.add a' 4;
      Alcotest.(check int) "shared state" 5 (Obs.Counter.value a);
      Alcotest.(check (option int)) "find" (Some 5) (Obs.Counter.find "test.alpha");
      Alcotest.(check (option int)) "find missing" None
        (Obs.Counter.find "test.never-registered");
      Alcotest.(check bool) "listed" true
        (List.mem_assoc "test.alpha" (Obs.Counter.all ()));
      Obs.Counter.reset_all ();
      Alcotest.(check int) "reset" 0 (Obs.Counter.value a))

let test_counter_record_max () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.peak" in
      Obs.Counter.record_max c 7;
      Obs.Counter.record_max c 3;
      Alcotest.(check int) "high water" 7 (Obs.Counter.value c);
      Obs.Counter.record_max c 11;
      Alcotest.(check int) "raised" 11 (Obs.Counter.value c))

let test_counter_negative_add () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.neg" in
      Alcotest.check_raises "negative add"
        (Invalid_argument "Obs.Counter.add: negative increment") (fun () ->
          Obs.Counter.add c (-1)))

(* ---------------------------------------------------------------- *)
(* Disabled mode                                                    *)
(* ---------------------------------------------------------------- *)

let test_disabled_no_ops () =
  Obs.set_enabled false;
  Obs.reset ();
  let c = Obs.Counter.make "test.disabled" in
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.Counter.record_max c 42;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  let s = Obs.Span.make "test.disabled-span" in
  let r = Obs.Span.time s (fun () -> 17) in
  Alcotest.(check int) "span passes value through" 17 r;
  Alcotest.(check int) "span not entered" 0 (Obs.Span.count s);
  Obs.Trace.emit "test.event" [ ("x", Obs.Json.Int 1) ];
  Alcotest.(check int) "trace empty" 0 (Obs.Trace.length ())

(* ---------------------------------------------------------------- *)
(* Spans                                                            *)
(* ---------------------------------------------------------------- *)

let test_span_nesting () =
  with_obs (fun () ->
      let outer = Obs.Span.make "test.outer" in
      let inner = Obs.Span.make "test.inner" in
      Obs.Span.time outer (fun () ->
          Obs.Span.time inner (fun () -> Unix.sleepf 0.005);
          Obs.Span.time inner (fun () -> ()));
      Alcotest.(check int) "outer entries" 1 (Obs.Span.count outer);
      Alcotest.(check int) "inner entries" 2 (Obs.Span.count inner);
      Alcotest.(check bool) "outer covers inner" true
        (Obs.Span.seconds outer >= Obs.Span.seconds inner);
      Alcotest.(check bool) "inner nonzero" true (Obs.Span.seconds inner > 0.))

let test_span_recursion () =
  with_obs (fun () ->
      let s = Obs.Span.make "test.recursive" in
      let rec go n = Obs.Span.time s (fun () -> if n > 0 then go (n - 1)) in
      go 5;
      (* only the outermost activation completes an entry *)
      Alcotest.(check int) "one outermost entry" 1 (Obs.Span.count s))

let test_span_exception_safety () =
  with_obs (fun () ->
      let s = Obs.Span.make "test.raises" in
      (try Obs.Span.time s (fun () -> failwith "boom") with Failure _ -> ());
      Alcotest.(check int) "entry recorded despite raise" 1 (Obs.Span.count s);
      (* the span is closed: a new timing still works *)
      Obs.Span.time s (fun () -> ());
      Alcotest.(check int) "reusable" 2 (Obs.Span.count s);
      (* spurious exit is ignored *)
      Obs.Span.exit s;
      Alcotest.(check int) "spurious exit ignored" 2 (Obs.Span.count s))

(* ---------------------------------------------------------------- *)
(* Trace ring buffer                                                *)
(* ---------------------------------------------------------------- *)

let test_trace_ring () =
  with_obs (fun () ->
      Obs.Trace.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Obs.Trace.set_capacity 4096)
        (fun () ->
          for i = 0 to 5 do
            Obs.Trace.emit "tick" [ ("i", Obs.Json.Int i) ]
          done;
          Alcotest.(check int) "bounded" 4 (Obs.Trace.length ());
          Alcotest.(check int) "dropped" 2 (Obs.Trace.dropped ());
          let evs = Obs.Trace.events () in
          Alcotest.(check int) "oldest surviving seq" 2
            (List.hd evs).Obs.Trace.seq;
          Alcotest.(check int) "newest seq" 5
            (List.nth evs 3).Obs.Trace.seq;
          (* every line of the JSON-lines sink parses *)
          List.iter
            (fun e ->
              match
                Obs.Json.of_string
                  (Obs.Json.to_string (Obs.Trace.event_json e))
              with
              | Ok _ -> ()
              | Error m -> Alcotest.failf "unparseable event: %s" m)
            evs))

(* ---------------------------------------------------------------- *)
(* Reset semantics                                                  *)
(* ---------------------------------------------------------------- *)

(* [Obs.reset] clears counters, spans, the trace ring and the timeline
   ring together — no consumer can observe a half-cleared state
   (doc/OBSERVABILITY.md, "Reset"). *)
let test_reset_clears_everything () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.reset-counter" in
      Obs.Counter.add c 9;
      let s = Obs.Span.make "test.reset-span" in
      Obs.Span.time s (fun () -> ());
      Obs.Trace.set_capacity 2;
      Fun.protect
        ~finally:(fun () -> Obs.Trace.set_capacity 4096)
        (fun () ->
          for i = 0 to 4 do
            Obs.Trace.emit "tick" [ ("i", Obs.Json.Int i) ]
          done;
          Alcotest.(check bool) "trace dropped some" true
            (Obs.Trace.dropped () > 0);
          Alcotest.(check bool) "timeline recorded" true
            (Obs.Timeline.length () > 0);
          Obs.reset ();
          Alcotest.(check int) "counter zero" 0 (Obs.Counter.value c);
          Alcotest.(check int) "span entries zero" 0 (Obs.Span.count s);
          Alcotest.(check int) "trace empty" 0 (Obs.Trace.length ());
          Alcotest.(check int) "trace dropped zero" 0 (Obs.Trace.dropped ());
          Alcotest.(check int) "timeline empty" 0 (Obs.Timeline.length ());
          Alcotest.(check int) "timeline dropped zero" 0
            (Obs.Timeline.dropped ());
          (* sequence numbers restart from zero after a reset *)
          Obs.Trace.emit "fresh" [];
          Alcotest.(check int) "seq restarts" 0
            (List.hd (Obs.Trace.events ())).Obs.Trace.seq))

(* A span that is entered when reset runs loses its in-flight
   activation: the pending exit is ignored, and [entries] counts only
   activations completed entirely after the reset. *)
let test_reset_while_entered () =
  with_obs (fun () ->
      let s = Obs.Span.make "test.reset-inflight" in
      Obs.Span.time s (fun () -> ());
      Alcotest.(check int) "one entry before" 1 (Obs.Span.count s);
      Obs.Span.enter s;
      Obs.reset ();
      Obs.Span.exit s;
      (* the orphaned exit is dropped, not counted *)
      Alcotest.(check int) "orphaned exit ignored" 0 (Obs.Span.count s);
      Alcotest.(check int) "no timeline slice from the orphan" 0
        (Obs.Timeline.length ());
      (* the span works normally afterwards *)
      Obs.Span.time s (fun () -> ());
      Alcotest.(check int) "fresh entry counts" 1 (Obs.Span.count s);
      Alcotest.(check int) "fresh slice recorded" 1 (Obs.Timeline.length ()))

(* ---------------------------------------------------------------- *)
(* Per-domain shards (parallel phases, doc/CONCURRENCY.md)          *)
(* ---------------------------------------------------------------- *)

let test_shard_reset_guard () =
  with_obs (fun () ->
      let sh = Obs.Shard.create () in
      Alcotest.(check int) "one live shard" 1 (Obs.Shard.active ());
      (match Obs.reset () with
      | () -> Alcotest.fail "Obs.reset succeeded with a live shard"
      | exception Invalid_argument _ -> ());
      Obs.Shard.release sh;
      Obs.Shard.release sh;
      (* idempotent *)
      Alcotest.(check int) "released" 0 (Obs.Shard.active ());
      (* reset works again once no shard is live *)
      Obs.reset ())

let test_shard_merge () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.shard-adds" in
      let p = Obs.Counter.make "test.shard-peak" in
      let h = Obs.Histogram.make "test.shard-hist" in
      Obs.Counter.incr c;
      Obs.Counter.record_max p 10;
      let sh = Obs.Shard.create () in
      Obs.Shard.wrap sh (fun () ->
          Obs.Counter.add c 4;
          Obs.Counter.record_max p 7;
          (* below the global peak: max-merge must keep 10 *)
          Obs.Histogram.observe h 1.0;
          Obs.Histogram.observe h 2.0);
      (* nothing reaches the globals until the coordinator merges *)
      Alcotest.(check int) "adds buffered" 1 (Obs.Counter.value c);
      Alcotest.(check int) "hist buffered" 0 (Obs.Histogram.count h);
      Obs.Shard.merge sh;
      Alcotest.(check int) "adds merged by sum" 5 (Obs.Counter.value c);
      Alcotest.(check int) "peak merged by max" 10 (Obs.Counter.value p);
      Alcotest.(check int) "hist merged" 2 (Obs.Histogram.count h);
      (* a shard is reusable per level: wrap + merge again *)
      Obs.Shard.wrap sh (fun () -> Obs.Counter.record_max p 25);
      Obs.Shard.merge sh;
      Alcotest.(check int) "peak raised on remerge" 25 (Obs.Counter.value p);
      Obs.Shard.release sh)

let test_shard_span_and_timeline () =
  with_obs (fun () ->
      let s = Obs.Span.make "test.shard-span" in
      let sh = Obs.Shard.create () in
      Obs.Shard.wrap sh (fun () -> Obs.Span.time s (fun () -> ()));
      Alcotest.(check int) "span buffered" 0 (Obs.Span.count s);
      Alcotest.(check int) "timeline buffered" 0 (Obs.Timeline.length ());
      Obs.Shard.merge sh;
      Obs.Shard.release sh;
      Alcotest.(check int) "span merged" 1 (Obs.Span.count s);
      Alcotest.(check int) "timeline slice merged" 1 (Obs.Timeline.length ()))

(* ---------------------------------------------------------------- *)
(* JSON round trip and the stats schema                             *)
(* ---------------------------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("null", Null);
          ("bools", List [ Bool true; Bool false ]);
          ("ints", List [ Int 0; Int (-42); Int max_int ]);
          ("floats", List [ Float 0.5; Float 1e-3; Float 1234.0 ]);
          ("string", Str "quote \" backslash \\ newline \n tab \t");
          ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
        ])
  in
  (match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact round trip" true (Obs.Json.equal v v')
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Obs.Json.of_string (Obs.Json.to_pretty_string v) with
  | Ok v' -> Alcotest.(check bool) "pretty round trip" true (Obs.Json.equal v v')
  | Error m -> Alcotest.failf "pretty parse failed: %s" m);
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" bad
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]

(* Generator for arbitrary JSON values.  Floats are drawn from a finite
   range (non-finite floats deliberately print as null and do not round
   trip); strings exercise escapes, control characters and non-ASCII
   bytes. *)
let json_gen =
  let open QCheck.Gen in
  let string_gen =
    string_size ~gen:(graft_corners (char_range '\000' '\255') [ '"'; '\\'; '\n'; '\t'; '\x1f'; 'u' ] ()) (0 -- 12)
  in
  let leaf =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) (oneof [ small_signed_int; int ]);
        map (fun f -> Obs.Json.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Obs.Json.Str s) string_gen;
        (* exact rationals travel as strings in the audit schema *)
        map2
          (fun n d -> Obs.Json.Str (Printf.sprintf "%d/%d" n (max 1 d)))
          small_signed_int small_nat;
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then leaf
          else
            frequency
              [
                (2, leaf);
                ( 1,
                  map
                    (fun l -> Obs.Json.List l)
                    (list_size (0 -- 4) (self (n / 2))) );
                ( 1,
                  map
                    (fun l -> Obs.Json.Obj l)
                    (list_size (0 -- 4)
                       (pair string_gen (self (n / 2)))) );
              ])
        (min n 6))

let json_arbitrary =
  QCheck.make ~print:(fun v -> Obs.Json.to_string v) json_gen

let prop_round_trip to_s =
  QCheck.Test.make ~count:500 ~name:"print/parse round trip" json_arbitrary
    (fun v ->
      match Obs.Json.of_string (to_s v) with
      | Ok v' -> Obs.Json.equal v v'
      | Error _ -> false)

let test_json_properties () =
  let run t =
    match QCheck.Test.check_exn t with
    | () -> ()
    | exception QCheck.Test.Test_fail (name, cex) ->
        Alcotest.failf "%s failed on %s" name (String.concat "; " cex)
  in
  run (prop_round_trip Obs.Json.to_string);
  run (prop_round_trip Obs.Json.to_pretty_string)

let test_stats_schema () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.schema-counter" in
      Obs.Counter.add c 3;
      Obs.Span.time (Obs.Span.make "test.schema-span") (fun () -> ());
      let extra = [ ("run", Obs.Json.Obj [ ("k", Obs.Json.Int 5) ]) ] in
      let report = Obs.Report.stats_json ~extra () in
      (* the document round-trips through the printer and parser *)
      (match Obs.Json.of_string (Obs.Json.to_string report) with
      | Ok v ->
          Alcotest.(check bool) "schema round trip" true
            (Obs.Json.equal report v)
      | Error m -> Alcotest.failf "report does not parse: %s" m);
      (* versioned header *)
      Alcotest.(check bool) "schema tag" true
        (Obs.Json.member "schema" report
        = Some (Obs.Json.Str Obs.Report.schema_version));
      Alcotest.(check bool) "enabled flag" true
        (Obs.Json.member "enabled" report = Some (Obs.Json.Bool true));
      (* extra members are spliced in *)
      Alcotest.(check bool) "run member" true
        (Obs.Json.member "run" report <> None);
      (* counters and spans land under their sections *)
      (match Obs.Json.member "counters" report with
      | Some counters ->
          Alcotest.(check bool) "counter value" true
            (Obs.Json.member "test.schema-counter" counters
            = Some (Obs.Json.Int 3))
      | None -> Alcotest.fail "no counters object");
      match Obs.Json.member "spans" report with
      | Some spans -> (
          match Obs.Json.member "test.schema-span" spans with
          | Some span ->
              Alcotest.(check bool) "span entries" true
                (Obs.Json.member "entries" span = Some (Obs.Json.Int 1))
          | None -> Alcotest.fail "span missing")
      | None -> Alcotest.fail "no spans object")

(* ---------------------------------------------------------------- *)
(* Histogram properties                                             *)
(* ---------------------------------------------------------------- *)

let run_qcheck t =
  match QCheck.Test.check_exn t with
  | () -> ()
  | exception QCheck.Test.Test_fail (name, cex) ->
      Alcotest.failf "%s failed on %s" name (String.concat "; " cex)

(* Mostly positive magnitudes spanning many buckets, with zero,
   negatives (bucket 0) and huge values (clamped top bucket) mixed
   in. *)
let value_gen =
  QCheck.Gen.(
    frequency
      [
        (8, float_range 1e-6 1e6);
        (1, return 0.);
        (1, float_range (-100.) 0.);
        (1, float_range 1e6 1e18);
      ])

let print_values vs = String.concat ", " (List.map string_of_float vs)

let values_arbitrary =
  QCheck.make ~print:print_values QCheck.Gen.(list_size (0 -- 64) value_gen)

let nonempty_values_arbitrary =
  QCheck.make ~print:print_values QCheck.Gen.(list_size (1 -- 64) value_gen)

(* Zero every histogram, replay [vs] into one, and return its snapshot
   (snapshots are immutable, so later resets do not disturb it). *)
let snapshot_of_values vs =
  Obs.Histogram.reset_all ();
  let h = Obs.Histogram.make "test.hist-prop" in
  List.iter (Obs.Histogram.observe h) vs;
  Obs.Histogram.snapshot h

let test_histogram_buckets () =
  (* fixed global layout, independent of the observability switch *)
  for i = 0 to Obs.Histogram.nbuckets - 2 do
    Alcotest.(check bool) "upper bounds strictly increase" true
      (Obs.Histogram.bucket_upper i < Obs.Histogram.bucket_upper (i + 1))
  done;
  Alcotest.(check bool) "last bucket unbounded" true
    (Obs.Histogram.bucket_upper (Obs.Histogram.nbuckets - 1) = infinity);
  let pair_arb =
    QCheck.make
      ~print:(fun (a, b) -> Printf.sprintf "(%g, %g)" a b)
      QCheck.Gen.(pair value_gen value_gen)
  in
  run_qcheck
    (QCheck.Test.make ~count:1000 ~name:"bucket_of weakly monotone" pair_arb
       (fun (a, b) ->
         let lo = Float.min a b and hi = Float.max a b in
         Obs.Histogram.bucket_of lo <= Obs.Histogram.bucket_of hi));
  run_qcheck
    (QCheck.Test.make ~count:1000 ~name:"value under its bucket bound"
       (QCheck.make ~print:string_of_float value_gen)
       (fun v -> v <= Obs.Histogram.bucket_upper (Obs.Histogram.bucket_of v)))

let test_histogram_merge () =
  with_obs (fun () ->
      let pair_arb =
        QCheck.make
          ~print:(fun (xs, ys) ->
            Printf.sprintf "[%s] / [%s]" (print_values xs) (print_values ys))
          QCheck.Gen.(
            pair (list_size (0 -- 64) value_gen) (list_size (0 -- 64) value_gen))
      in
      run_qcheck
        (QCheck.Test.make ~count:200 ~name:"merge commutes and preserves mass"
           pair_arb (fun (xs, ys) ->
             let a = snapshot_of_values xs in
             let b = snapshot_of_values ys in
             let m = Obs.Histogram.merge a b in
             m = Obs.Histogram.merge b a
             && m.Obs.Histogram.s_count = List.length xs + List.length ys
             && List.fold_left
                  (fun acc (_, c) -> acc + c)
                  0 m.Obs.Histogram.s_buckets
                = m.Obs.Histogram.s_count)))

let test_histogram_quantiles () =
  with_obs (fun () ->
      run_qcheck
        (QCheck.Test.make ~count:200 ~name:"quantiles ordered and bounded"
           nonempty_values_arbitrary (fun vs ->
             let s = snapshot_of_values vs in
             let q p = Obs.Histogram.snapshot_quantile s p in
             let p50 = q 0.5 and p90 = q 0.9 and p99 = q 0.99 in
             s.Obs.Histogram.s_min <= p50
             && p50 <= p90 && p90 <= p99
             && p99 <= s.Obs.Histogram.s_max)))

let test_histogram_json () =
  with_obs (fun () ->
      run_qcheck
        (QCheck.Test.make ~count:200 ~name:"snapshot JSON round trip"
           values_arbitrary (fun vs ->
             let s = snapshot_of_values vs in
             let j = Obs.Histogram.snapshot_to_json s in
             let direct =
               match Obs.Histogram.snapshot_of_json j with
               | Ok s' -> s' = s
               | Error _ -> false
             in
             let through_text =
               match Obs.Json.of_string (Obs.Json.to_string j) with
               | Ok j' -> (
                   match Obs.Histogram.snapshot_of_json j' with
                   | Ok s' -> s' = s
                   | Error _ -> false)
               | Error _ -> false
             in
             direct && through_text)))

(* ---------------------------------------------------------------- *)
(* Scopes: request-scoped capture, merge routing, close semantics    *)
(* ---------------------------------------------------------------- *)

let test_scope_capture () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.scope-counter" in
      let s = Obs.Span.make "test.scope-span" in
      let scope = Obs.Scope.create ~id:"req-1" () in
      Alcotest.(check string) "explicit id" "req-1" (Obs.Scope.id scope);
      Obs.Scope.run scope (fun () ->
          Obs.Counter.add c 3;
          Obs.Span.time s (fun () -> ());
          (* buffered in the scope, not yet global *)
          Alcotest.(check int) "global untouched inside" 0
            (Obs.Counter.value c);
          Alcotest.(check (option string))
            "ambient request id" (Some "req-1")
            (Obs.Log.current_request_id ()));
      Alcotest.(check (option string)) "request id restored" None
        (Obs.Log.current_request_id ());
      (* a live scope holds a shard: reset refuses *)
      Alcotest.(check bool) "reset refused while open" true
        (match Obs.reset () with
        | exception Invalid_argument _ -> true
        | () -> false);
      let summary = Obs.Scope.close scope in
      Alcotest.(check int) "global after close" 3 (Obs.Counter.value c);
      Alcotest.(check int) "span merged" 1 (Obs.Span.count s);
      Alcotest.(check (option int)) "summary counter" (Some 3)
        (List.assoc_opt "test.scope-counter" summary.Obs.Scope.sc_counters);
      Alcotest.(check bool) "summary span" true
        (Obs.Scope.span_seconds summary "test.scope-span" <> None);
      Alcotest.(check bool) "summary slice" true
        (List.exists
           (fun (sl : Obs.Timeline.slice) -> sl.name = "test.scope-span")
           summary.Obs.Scope.sc_slices);
      (* the summary renders as JSON *)
      (match
         Obs.Json.of_string
           (Obs.Json.to_string (Obs.Scope.summary_json summary))
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "summary does not round trip: %s" e);
      Alcotest.(check bool) "double close refused" true
        (match Obs.Scope.close scope with
        | exception Invalid_argument _ -> true
        | _ -> false);
      Alcotest.(check bool) "run after close refused" true
        (match Obs.Scope.run scope (fun () -> ()) with
        | exception Invalid_argument _ -> true
        | () -> false))

(* the same instrumented work, bare vs inside a scope, leaves the
   global registries identical — the byte-identity the stats/audit
   gates rely on *)
let test_scope_transparency () =
  with_obs (fun () ->
      let work () =
        let c = Obs.Counter.make "test.scope-id-counter" in
        let p = Obs.Counter.make "test.scope-id-peak" in
        let h = Obs.Histogram.make "test.scope-id-hist" in
        let s = Obs.Span.make "test.scope-id-span" in
        Obs.Counter.add c 5;
        Obs.Counter.record_max p 9;
        Obs.Counter.record_max p 4;
        List.iter (Obs.Histogram.observe h) [ 0.001; 0.5; 70.; 3.2 ];
        Obs.Span.time s (fun () -> Obs.Counter.incr c)
      in
      work ();
      let bare_counters = Obs.Counter.all () in
      let bare_hists = Obs.Histogram.all () in
      Obs.reset ();
      let (), _summary = Obs.Scope.wrap (fun _ -> work ()) in
      Alcotest.(check bool) "counters identical" true
        (Obs.Counter.all () = bare_counters);
      Alcotest.(check bool) "histograms identical" true
        (Obs.Histogram.all () = bare_hists))

(* nesting: an inner scope closed inside an outer [run] folds into the
   outer scope, not the globals; lane shards inside a scope do too *)
let test_scope_nesting () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.scope-nest" in
      let outer = Obs.Scope.create () in
      Obs.Scope.run outer (fun () ->
          let (), inner_summary =
            Obs.Scope.wrap (fun _ -> Obs.Counter.add c 2)
          in
          Alcotest.(check (option int)) "inner summary sees its adds"
            (Some 2)
            (List.assoc_opt "test.scope-nest"
               inner_summary.Obs.Scope.sc_counters);
          Alcotest.(check int) "inner close lands in outer, not global" 0
            (Obs.Counter.value c);
          (* a lane shard (the parallel-phase protocol) inside the scope:
             merge resolves to the enclosing scope as well *)
          let lane = Obs.Shard.create () in
          Obs.Shard.wrap lane (fun () -> Obs.Counter.add c 7);
          Obs.Shard.merge lane;
          Obs.Shard.release lane;
          Alcotest.(check int) "lane merge lands in outer" 0
            (Obs.Counter.value c));
      let summary = Obs.Scope.close outer in
      Alcotest.(check (option int)) "outer summary accumulated" (Some 9)
        (List.assoc_opt "test.scope-nest" summary.Obs.Scope.sc_counters);
      Alcotest.(check int) "globals after outer close" 9
        (Obs.Counter.value c))

let test_scope_fresh_ids () =
  let a = Obs.Scope.fresh_id () in
  let b = Obs.Scope.fresh_id () in
  Alcotest.(check bool) "distinct" true (a <> b);
  List.iter
    (fun id ->
      Alcotest.(check int) "16 chars" 16 (String.length id);
      Alcotest.(check bool) "lower-case hex" true
        (String.for_all
           (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
           id))
    [ a; b ]

(* Concurrent scopes on worker domains, closed by the coordinator in an
   arbitrary order: the integer merges (sums, peaks, histogram counts)
   are associative and commutative, so the global totals depend only on
   the multiset of operations — never on the interleaving or the close
   order. *)
let test_scope_concurrent_merge () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.scope-conc" in
      let p = Obs.Counter.make "test.scope-conc-peak" in
      let h = Obs.Histogram.make "test.scope-conc-hist" in
      let gen =
        QCheck.Gen.(
          pair
            (list_size (1 -- 4) (list_size (0 -- 16) (0 -- 100)))
            bool)
      in
      let print (per_scope, rev) =
        Printf.sprintf "%s close_reversed=%b"
          (String.concat " | "
             (List.map
                (fun l -> String.concat "," (List.map string_of_int l))
                per_scope))
          rev
      in
      run_qcheck
        (QCheck.Test.make ~count:30
           ~name:"concurrent scopes merge to the op multiset"
           (QCheck.make ~print gen)
           (fun (per_scope, reverse_close) ->
             Obs.Counter.reset_all ();
             Obs.Histogram.reset_all ();
             let scopes =
               List.map
                 (fun adds ->
                   let scope = Obs.Scope.create () in
                   let d =
                     Domain.spawn (fun () ->
                         Obs.Scope.run scope (fun () ->
                             List.iter
                               (fun v ->
                                 Obs.Counter.add c v;
                                 Obs.Counter.record_max p v;
                                 Obs.Histogram.observe h (float_of_int v))
                               adds))
                   in
                   Domain.join d;
                   scope)
                 per_scope
             in
             (* close order must not matter *)
             let scopes =
               if reverse_close then List.rev scopes else scopes
             in
             List.iter (fun s -> ignore (Obs.Scope.close s)) scopes;
             let want_sum =
               List.fold_left
                 (fun acc l -> List.fold_left ( + ) acc l)
                 0 per_scope
             in
             let want_peak =
               List.fold_left
                 (fun acc l -> List.fold_left max acc l)
                 0 per_scope
             in
             let want_count =
               List.fold_left (fun acc l -> acc + List.length l) 0 per_scope
             in
             Obs.Counter.value c = want_sum
             && Obs.Counter.value p = want_peak
             && (Obs.Histogram.snapshot h).Obs.Histogram.s_count
                = want_count)))

(* ---------------------------------------------------------------- *)
(* Flamegraph folding                                                *)
(* ---------------------------------------------------------------- *)

let folded_well_formed text =
  String.split_on_char '\n' text
  |> List.for_all (fun line ->
         line = ""
         ||
         match String.rindex_opt line ' ' with
         | None -> false
         | Some i -> (
             let stack = String.sub line 0 i in
             let weight =
               String.sub line (i + 1) (String.length line - i - 1)
             in
             stack <> ""
             && List.for_all
                  (fun fr -> fr <> "" && not (String.contains fr ' '))
                  (String.split_on_char ';' stack)
             &&
             match int_of_string_opt weight with
             | Some w -> w > 0
             | None -> false))

let slice name start stop = { Obs.Timeline.name; start; stop }

let test_flame_fold () =
  (* A contains B contains C, and sibling D; self times are durations
     minus direct children *)
  let folded =
    Obs.Flame.fold_slices
      [
        slice "A" 0. 10.;
        slice "B" 2. 6.;
        slice "C" 3. 4.;
        slice "D" 7. 9.;
      ]
  in
  let get k = List.assoc_opt k folded in
  Alcotest.(check (option (float 1e-9))) "A self" (Some 4.) (get "A");
  Alcotest.(check (option (float 1e-9))) "A;B self" (Some 3.) (get "A;B");
  Alcotest.(check (option (float 1e-9))) "A;B;C self" (Some 1.) (get "A;B;C");
  Alcotest.(check (option (float 1e-9))) "A;D self" (Some 2.) (get "A;D");
  Alcotest.(check int) "no other stacks" 4 (List.length folded);
  let text = Obs.Flame.to_string folded in
  Alcotest.(check bool) "well-formed" true (folded_well_formed text);
  Alcotest.(check string) "exact lines"
    "A 4000000\nA;B 3000000\nA;B;C 1000000\nA;D 2000000\n" text;
  (* overlapping (parallel-lane) slices fold as siblings *)
  let overlap =
    Obs.Flame.fold_slices [ slice "X" 0. 4.; slice "Y" 2. 6. ]
  in
  Alcotest.(check (option (float 1e-9))) "X sibling" (Some 4.)
    (List.assoc_opt "X" overlap);
  Alcotest.(check (option (float 1e-9))) "Y sibling" (Some 4.)
    (List.assoc_opt "Y" overlap);
  (* frame names are sanitized: separators cannot corrupt the format *)
  let dirty = Obs.Flame.fold_slices [ slice "a;b c\nd" 0. 1. ] in
  Alcotest.(check bool) "frame sanitized" true
    (List.mem_assoc "a_b_c_d" dirty);
  (* repeated identical stacks accumulate *)
  let acc =
    Obs.Flame.fold_slices [ slice "R" 0. 1.; slice "R" 5. 7. ]
  in
  Alcotest.(check (option (float 1e-9))) "accumulated" (Some 3.)
    (List.assoc_opt "R" acc)

let test_flame_timeline_round_trip () =
  with_obs (fun () ->
      let outer = Obs.Span.make "test.flame-outer" in
      let inner = Obs.Span.make "test.flame-inner" in
      Obs.Span.time outer (fun () ->
          Obs.Span.time inner (fun () -> Unix.sleepf 0.002));
      let slices = Obs.Timeline.slices () in
      Alcotest.(check int) "two slices" 2 (List.length slices);
      let direct = Obs.Flame.of_slices slices in
      (* through the Chrome-trace document, as `flame --from-timeline`
         consumes it *)
      let doc = Obs.Report.timeline_json () in
      match Obs.Flame.slices_of_timeline_json doc with
      | Error e -> Alcotest.failf "trace does not parse back: %s" e
      | Ok recovered ->
          Alcotest.(check int) "slice count preserved" 2
            (List.length recovered);
          let through = Obs.Flame.of_slices recovered in
          Alcotest.(check bool) "both well-formed" true
            (folded_well_formed direct && folded_well_formed through);
          Alcotest.(check bool) "nesting preserved" true
            (let mem sub s =
               let n = String.length sub in
               let rec go i =
                 i + n <= String.length s
                 && (String.sub s i n = sub || go (i + 1))
               in
               go 0
             in
             mem "test.flame-outer;test.flame-inner" through))

(* ring overflow: with parents or children evicted, the fold and the
   Chrome-trace document both stay well-formed *)
let test_timeline_overflow_flame () =
  with_obs (fun () ->
      Obs.Timeline.set_capacity 8;
      Fun.protect
        ~finally:(fun () -> Obs.Timeline.set_capacity 65536)
        (fun () ->
          (* innermost-first recording (real exit order): eviction drops
             the innermost frames, keeping parents *)
          for i = 31 downto 0 do
            Obs.Timeline.record
              (Printf.sprintf "deep%d" i)
              ~start:(float_of_int i)
              ~stop:(float_of_int (64 - i))
          done;
          Alcotest.(check int) "ring bounded" 8 (Obs.Timeline.length ());
          Alcotest.(check int) "drops counted" 24 (Obs.Timeline.dropped ());
          let text = Obs.Flame.of_slices (Obs.Timeline.slices ()) in
          Alcotest.(check bool) "fold well-formed after child eviction"
            true (folded_well_formed text);
          (* outermost-first recording: eviction drops the PARENTS; the
             orphaned children must still fold cleanly *)
          Obs.Timeline.clear ();
          for i = 0 to 31 do
            Obs.Timeline.record
              (Printf.sprintf "deep%d" i)
              ~start:(float_of_int i)
              ~stop:(float_of_int (64 - i))
          done;
          let slices = Obs.Timeline.slices () in
          let text = Obs.Flame.of_slices slices in
          Alcotest.(check bool) "fold well-formed after parent eviction"
            true (folded_well_formed text);
          Alcotest.(check bool) "deepest surviving frame is a root" true
            (String.length text >= 6 && String.sub text 0 6 = "deep24");
          (* the /debug/trace document over the same slices parses *)
          match
            Obs.Json.of_string
              (Obs.Json.to_string (Obs.Report.timeline_json ~slices ()))
          with
          | Ok doc -> (
              match Obs.Flame.slices_of_timeline_json doc with
              | Ok r ->
                  Alcotest.(check int) "document carries the ring" 8
                    (List.length r)
              | Error e -> Alcotest.failf "trace parse: %s" e)
          | Error e -> Alcotest.failf "trace document: %s" e))

(* ---------------------------------------------------------------- *)
(* Sampling profiler (Obs.Prof, doc/PROFILING.md)                    *)
(* ---------------------------------------------------------------- *)

(* Attach/detach lifecycle, and the satellite guarantee that
   [Obs.reset] refuses while the sampler's tick thread could be
   reading live span state. *)
let test_prof_lifecycle () =
  with_obs (fun () ->
      Alcotest.(check bool) "detached initially" false (Obs.Prof.attached ());
      Alcotest.(check bool) "non-positive interval refused" true
        (match Obs.Prof.attach ~interval:0. () with
        | exception Invalid_argument _ -> true
        | () -> false);
      Obs.Prof.attach ~interval:0.002 ();
      Fun.protect
        ~finally:(fun () -> Obs.Prof.detach ())
        (fun () ->
          Alcotest.(check bool) "attached" true (Obs.Prof.attached ());
          Alcotest.(check (float 1e-9)) "interval" 0.002 (Obs.Prof.interval ());
          Alcotest.(check bool) "double attach refused" true
            (match Obs.Prof.attach () with
            | exception Invalid_argument _ -> true
            | () -> false);
          (* the reset guard: the tick thread reads live span stacks,
             so clearing the registries under it is refused *)
          Alcotest.(check bool) "Obs.reset refused while attached" true
            (match Obs.reset () with
            | exception Invalid_argument _ -> true
            | () -> false));
      Alcotest.(check bool) "detached" false (Obs.Prof.attached ());
      Obs.Prof.detach ();
      (* idempotent *)
      Obs.reset ();
      (* allowed again *)
      Obs.Prof.reset ();
      Alcotest.(check int) "reset clears samples" 0 (Obs.Prof.samples ()))

(* Real sampled stacks: nested spans on a route, long enough (sleeps
   release the runtime lock, so the tick systhread observes them) that
   samples land deterministically, and the folded output reflects the
   nesting. *)
let test_prof_sampling () =
  with_obs (fun () ->
      let outer = Obs.Span.make "test.prof-outer" in
      let inner = Obs.Span.make "test.prof-inner" in
      Obs.Prof.reset ();
      Obs.Prof.attach ~interval:0.002 ();
      Fun.protect
        ~finally:(fun () -> Obs.Prof.detach ())
        (fun () ->
          Obs.Prof.with_route "map" (fun () ->
              Obs.Span.time outer (fun () ->
                  Obs.Span.time inner (fun () -> Unix.sleepf 0.06))));
      Alcotest.(check bool) "samples landed" true (Obs.Prof.samples () > 0);
      Alcotest.(check bool) "nothing dropped" true (Obs.Prof.dropped () = 0);
      Alcotest.(check bool) "overhead accounted" true
        (Obs.Prof.overhead_seconds () >= 0.);
      Alcotest.(check (list string)) "route recorded" [ "map" ]
        (Obs.Prof.routes ());
      let folded = Obs.Prof.folded () in
      Alcotest.(check bool) "folded non-empty" true (folded <> []);
      List.iter
        (fun (stack, w) ->
          Alcotest.(check bool) ("positive weight for " ^ stack) true (w > 0.);
          List.iter
            (fun fr ->
              Alcotest.(check bool) "frame sane" true
                (fr <> "" && not (String.contains fr ' ')))
            (String.split_on_char ';' stack))
        folded;
      Alcotest.(check bool) "nested stack sampled" true
        (List.mem_assoc "test.prof-outer;test.prof-inner" folded);
      (* the sleep runs under the inner span: it dominates self time *)
      (match Obs.Prof.top_self () with
      | (frame, _) :: _ ->
          Alcotest.(check string) "heaviest self frame" "test.prof-inner"
            frame
      | [] -> Alcotest.fail "top_self empty");
      Alcotest.(check bool) "folded text well-formed" true
        (folded_well_formed (Obs.Prof.folded_text ()));
      (* route filtering *)
      Alcotest.(check bool) "unknown route filters to nothing" true
        (Obs.Prof.folded ~route:"nope" () = []);
      Alcotest.(check bool) "route filter keeps the samples" true
        (Obs.Prof.folded ~route:"map" () <> []);
      (* raw samples render as a parseable Chrome-trace document *)
      let slices = Obs.Prof.slices () in
      Alcotest.(check bool) "slices non-empty" true (slices <> []);
      List.iter
        (fun (sl : Obs.Timeline.slice) ->
          Alcotest.(check bool) "slice ordered" true (sl.stop > sl.start))
        slices;
      (match
         Obs.Json.of_string
           (Obs.Json.to_string (Obs.Report.timeline_json ~slices ()))
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "prof chrome trace: %s" e);
      (* reset forgets the samples *)
      Obs.Prof.reset ();
      Alcotest.(check int) "samples cleared" 0 (Obs.Prof.samples ());
      Alcotest.(check bool) "folded cleared" true (Obs.Prof.folded () = []))

(* qcheck: whatever nesting program runs under the sampler, the folded
   output stays well-formed — frames non-empty and separator-free,
   weights strictly positive (sampling is timing-dependent; the
   property must hold for ANY subset of stacks the ticks observed). *)
let test_prof_folded_qcheck () =
  with_obs (fun () ->
      let frame_names = [| "prof.qa"; "prof.qb"; "prof.qc"; "prof.qd" |] in
      let gen =
        QCheck.Gen.(
          list_size (1 -- 3)
            (list_size (1 -- 3) (0 -- (Array.length frame_names - 1))))
      in
      let print paths =
        String.concat " | "
          (List.map
             (fun p ->
               String.concat ";"
                 (List.map (fun i -> frame_names.(i)) p))
             paths)
      in
      run_qcheck
        (QCheck.Test.make ~count:8 ~name:"sampled folded stacks well-formed"
           (QCheck.make ~print gen)
           (fun paths ->
             Obs.Prof.reset ();
             Obs.Prof.attach ~interval:0.001 ();
             Fun.protect
               ~finally:(fun () -> Obs.Prof.detach ())
               (fun () ->
                 List.iter
                   (fun path ->
                     let rec nest = function
                       | [] -> Unix.sleepf 0.004
                       | i :: rest ->
                           Obs.Span.time
                             (Obs.Span.make frame_names.(i))
                             (fun () -> nest rest)
                     in
                     nest path)
                   paths);
             let folded = Obs.Prof.folded () in
             List.for_all
               (fun (stack, w) ->
                 w > 0. && stack <> ""
                 && List.for_all
                      (fun fr ->
                        fr <> ""
                        && not (String.contains fr ' ')
                        && not (String.contains fr '\n'))
                      (String.split_on_char ';' stack))
               folded
             && folded_well_formed (Obs.Prof.folded_text ()))));
  Obs.Prof.reset ()

(* ---------------------------------------------------------------- *)
(* Scope resource accounting                                         *)
(* ---------------------------------------------------------------- *)

let test_scope_resources () =
  with_obs (fun () ->
      Alcotest.(check (float 0.)) "zero_resources cpu" 0.
        Obs.Scope.zero_resources.Obs.Scope.r_cpu_seconds;
      let scope = Obs.Scope.create () in
      Obs.Scope.run scope (fun () ->
          ignore (Sys.opaque_identity (List.init 50_000 Fun.id)));
      let s = Obs.Scope.close ~queue_wait:0.25 scope in
      let r = s.Obs.Scope.sc_resources in
      Alcotest.(check bool) "allocation observed" true
        (r.Obs.Scope.r_minor_words > 0.);
      List.iter
        (fun (what, v) ->
          Alcotest.(check bool) (what ^ " non-negative") true (v >= 0.))
        [
          ("cpu", r.Obs.Scope.r_cpu_seconds);
          ("minor", r.Obs.Scope.r_minor_words);
          ("promoted", r.Obs.Scope.r_promoted_words);
          ("major", r.Obs.Scope.r_major_words);
          ("queue", r.Obs.Scope.r_queue_wait);
        ];
      Alcotest.(check (float 1e-9)) "queue wait recorded" 0.25
        r.Obs.Scope.r_queue_wait;
      (* negative queue wait clamps to zero *)
      let scope2 = Obs.Scope.create () in
      Obs.Scope.run scope2 (fun () -> ());
      let s2 = Obs.Scope.close ~queue_wait:(-3.) scope2 in
      Alcotest.(check (float 0.)) "negative queue wait clamped" 0.
        s2.Obs.Scope.sc_resources.Obs.Scope.r_queue_wait;
      (* the summary document carries the resources object *)
      match Obs.Json.member "resources" (Obs.Scope.summary_json s) with
      | Some res ->
          List.iter
            (fun field ->
              Alcotest.(check bool) ("resources." ^ field) true
                (match Obs.Json.member field res with
                | Some (Obs.Json.Float _) | Some (Obs.Json.Int _) -> true
                | _ -> false))
            [
              "cpu_seconds"; "minor_words"; "promoted_words"; "major_words";
              "queue_wait_seconds";
            ]
      | None -> Alcotest.fail "summary_json has no resources member")

(* qcheck: resource deltas are non-negative for every child, and — the
   GC words being monotone per-domain counters — a parent scope's delta
   bounds the sum of its sequential children's. *)
let test_scope_resources_additive () =
  with_obs (fun () ->
      let gen = QCheck.Gen.(list_size (1 -- 4) (0 -- 5000)) in
      let print l = String.concat "," (List.map string_of_int l) in
      run_qcheck
        (QCheck.Test.make ~count:20
           ~name:"scope resources non-negative and parent-bounded"
           (QCheck.make ~print gen)
           (fun sizes ->
             let parent = Obs.Scope.create () in
             let children =
               Obs.Scope.run parent (fun () ->
                   List.map
                     (fun n ->
                       let (), summary =
                         Obs.Scope.wrap (fun _ ->
                             ignore
                               (Sys.opaque_identity (List.init n Fun.id)))
                       in
                       summary.Obs.Scope.sc_resources)
                     sizes)
             in
             let p = (Obs.Scope.close parent).Obs.Scope.sc_resources in
             let nonneg (r : Obs.Scope.resources) =
               r.Obs.Scope.r_cpu_seconds >= 0.
               && r.Obs.Scope.r_minor_words >= 0.
               && r.Obs.Scope.r_promoted_words >= 0.
               && r.Obs.Scope.r_major_words >= 0.
               && r.Obs.Scope.r_queue_wait >= 0.
             in
             let sum f = List.fold_left (fun a r -> a +. f r) 0. children in
             List.for_all nonneg children && nonneg p
             && p.Obs.Scope.r_minor_words +. 1e-6
                >= sum (fun r -> r.Obs.Scope.r_minor_words)
             && p.Obs.Scope.r_promoted_words +. 1e-6
                >= sum (fun r -> r.Obs.Scope.r_promoted_words)
             && p.Obs.Scope.r_major_words +. 1e-6
                >= sum (fun r -> r.Obs.Scope.r_major_words)
             && p.Obs.Scope.r_cpu_seconds +. 1e-6
                >= sum (fun r -> r.Obs.Scope.r_cpu_seconds))))

(* ---------------------------------------------------------------- *)
(* SLOs: spec parsing, burn-rate evaluation, scrape families         *)
(* ---------------------------------------------------------------- *)

let test_slo_parse () =
  (match Obs.Slo.parse "route=/map,p99=250ms,err=0.1%" with
  | Error e -> Alcotest.failf "canonical spec rejected: %s" e
  | Ok o ->
      Alcotest.(check string) "route" "/map" o.Obs.Slo.o_route;
      (match o.Obs.Slo.o_latency with
      | Some (label, q, t) ->
          Alcotest.(check string) "label" "p99" label;
          Alcotest.(check (float 1e-9)) "quantile" 0.99 q;
          Alcotest.(check (float 1e-9)) "target" 0.25 t
      | None -> Alcotest.fail "no latency objective");
      match o.Obs.Slo.o_err with
      | Some b -> Alcotest.(check (float 1e-12)) "budget" 0.001 b
      | None -> Alcotest.fail "no error objective");
  (* p-digit quantiles scale by digit count; seconds spellings work *)
  (match Obs.Slo.parse "route=/map,p999=1.5s" with
  | Ok { Obs.Slo.o_latency = Some (_, q, t); _ } ->
      Alcotest.(check (float 1e-9)) "p999" 0.999 q;
      Alcotest.(check (float 1e-9)) "seconds" 1.5 t
  | _ -> Alcotest.fail "p999 spec rejected");
  (match Obs.Slo.parse "route=/map,p50=10ms" with
  | Ok { Obs.Slo.o_latency = Some (_, q, _); _ } ->
      Alcotest.(check (float 1e-9)) "p50" 0.5 q
  | _ -> Alcotest.fail "p50 spec rejected");
  (* rejections *)
  List.iter
    (fun bad ->
      match Obs.Slo.parse bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [
      "";
      "p99=250ms" (* no route *);
      "route=/map" (* no objective *);
      "route=/map,p99=fast";
      "route=/map,p99=0ms";
      "route=/map,err=150%";
      "route=/map,err=0";
      "route=/map,latency=250ms" (* unknown key *);
      "route=,p99=250ms";
    ];
  (* parse_all surfaces the first error *)
  (match Obs.Slo.parse_all [ "route=/map,p99=1ms"; "bogus" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse_all ignored a bad spec");
  match Obs.Slo.parse_all [ "route=/a,p99=1ms"; "route=/b,err=1%" ] with
  | Ok [ a; b ] ->
      Alcotest.(check string) "first" "/a" a.Obs.Slo.o_route;
      Alcotest.(check string) "second" "/b" b.Obs.Slo.o_route
  | _ -> Alcotest.fail "parse_all lost a spec"

let test_slo_parse_file () =
  let path = Filename.temp_file "turbosyn-slo" ".conf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            "# objectives for the serve smoke\n\n\
             route=/map,p99=250ms,err=0.1%\n\
             route=/healthz,p95=5ms\n");
      match Obs.Slo.parse_file path with
      | Ok [ a; b ] ->
          Alcotest.(check string) "first route" "/map" a.Obs.Slo.o_route;
          Alcotest.(check string) "second route" "/healthz" b.Obs.Slo.o_route
      | Ok _ -> Alcotest.fail "wrong objective count"
      | Error e -> Alcotest.failf "parse_file: %s" e)

let test_slo_evaluate () =
  with_obs (fun () ->
      let o =
        match Obs.Slo.parse "route=/map,p99=250ms,err=0.1%" with
        | Ok o -> o
        | Error e -> Alcotest.failf "spec: %s" e
      in
      (* 20 fast observations, 5 slow: bad_fraction 0.2 against a p99
         objective burns at 0.2/0.01 = 20 *)
      let snap =
        snapshot_of_values
          (List.init 20 (fun _ -> 0.01) @ List.init 5 (fun _ -> 100.))
      in
      let v = Obs.Slo.evaluate o ~latency:snap ~total:25 ~errors:1 in
      (match v.Obs.Slo.v_latency with
      | Some l ->
          Alcotest.(check int) "good" 20 l.Obs.Slo.lv_good;
          Alcotest.(check int) "count" 25 l.Obs.Slo.lv_count;
          Alcotest.(check (float 1e-9)) "bad fraction" 0.2
            l.Obs.Slo.lv_bad_fraction;
          Alcotest.(check (float 1e-6)) "latency burn" 20. l.Obs.Slo.lv_burn;
          Alcotest.(check bool) "latency violated" false l.Obs.Slo.lv_ok;
          (* the evaluated boundary is the documented bucket upper *)
          Alcotest.(check (float 1e-12)) "good upper"
            (Obs.Histogram.bucket_upper (Obs.Histogram.bucket_of 0.25))
            l.Obs.Slo.lv_good_upper
      | None -> Alcotest.fail "no latency verdict");
      (match v.Obs.Slo.v_err with
      | Some e ->
          Alcotest.(check (float 1e-9)) "error rate" 0.04 e.Obs.Slo.ev_rate;
          Alcotest.(check (float 1e-6)) "error burn" 40. e.Obs.Slo.ev_burn;
          Alcotest.(check bool) "errors violated" false e.Obs.Slo.ev_ok
      | None -> Alcotest.fail "no error verdict");
      Alcotest.(check bool) "overall violated" false v.Obs.Slo.v_ok;
      (* empty data burns nothing *)
      let v0 =
        Obs.Slo.evaluate o ~latency:(snapshot_of_values []) ~total:0
          ~errors:0
      in
      Alcotest.(check bool) "empty ok" true v0.Obs.Slo.v_ok;
      (match v0.Obs.Slo.v_latency with
      | Some l -> Alcotest.(check (float 0.)) "empty burn" 0. l.Obs.Slo.lv_burn
      | None -> Alcotest.fail "no latency verdict on empty");
      (* the verdict document parses and carries the burn rates *)
      (match
         Obs.Json.of_string (Obs.Json.to_string (Obs.Slo.verdict_json v))
       with
      | Error e -> Alcotest.failf "verdict json: %s" e
      | Ok doc -> (
          Alcotest.(check bool) "route member" true
            (Obs.Json.member "route" doc = Some (Obs.Json.Str "/map"));
          match Obs.Json.member "latency" doc with
          | Some lat ->
              Alcotest.(check bool) "burn member" true
                (Obs.Json.member "burn_rate" lat <> None)
          | None -> Alcotest.fail "no latency object"));
      (* the scrape families render and validate *)
      let fams = Obs.Slo.families [ v ] in
      Alcotest.(check int) "five families" 5 (List.length fams);
      match Obs.Prometheus.validate (Obs.Prometheus.render ~extra:fams ()) with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "slo families invalid: %s" (String.concat "; " es))

(* qcheck: [lv_good] always equals the recomputation from the published
   boundary over the snapshot's cumulative buckets, and the burn rate
   follows from (good, count, q) — the exact arithmetic the serve-load
   bench replays from a /metrics scrape. *)
let test_slo_reproduction () =
  with_obs (fun () ->
      let gen =
        QCheck.Gen.(pair (list_size (0 -- 64) value_gen) (float_range 1e-4 10.))
      in
      let print (vs, t) =
        Printf.sprintf "target=%g values=[%s]" t (print_values vs)
      in
      run_qcheck
        (QCheck.Test.make ~count:200 ~name:"burn rate reproducible"
           (QCheck.make ~print gen)
           (fun (vs, target) ->
             let spec = Printf.sprintf "route=/map,p99=%fs" target in
             match Obs.Slo.parse spec with
             | Error _ -> false
             | Ok o -> (
                 let snap = snapshot_of_values vs in
                 let total = List.length vs in
                 let v = Obs.Slo.evaluate o ~latency:snap ~total ~errors:0 in
                 match v.Obs.Slo.v_latency with
                 | None -> false
                 | Some l ->
                     let good_re =
                       List.fold_left
                         (fun acc (i, c) ->
                           if
                             Obs.Histogram.bucket_upper i
                             <= l.Obs.Slo.lv_good_upper
                           then acc + c
                           else acc)
                         0 snap.Obs.Histogram.s_buckets
                     in
                     let burn_re =
                       if l.Obs.Slo.lv_count = 0 then 0.
                       else
                         float_of_int (l.Obs.Slo.lv_count - good_re)
                         /. float_of_int l.Obs.Slo.lv_count
                         /. (1. -. l.Obs.Slo.lv_quantile)
                     in
                     good_re = l.Obs.Slo.lv_good
                     && Float.abs (burn_re -. l.Obs.Slo.lv_burn) <= 1e-9))))

(* ---------------------------------------------------------------- *)
(* Structured logging                                                *)
(* ---------------------------------------------------------------- *)

(* route to the null sink and restore defaults afterwards *)
let with_log f =
  Obs.Log.to_null ();
  Obs.Log.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_ring_capacity Obs.Log.default_ring_capacity;
      Obs.Log.set_level Obs.Log.Info;
      Obs.Log.clear ();
      Obs.Log.to_stderr ())
    f

let test_log_levels_and_ring () =
  with_log (fun () ->
      (* logging is independent of the metrics switch *)
      Obs.set_enabled false;
      Obs.Log.set_level Obs.Log.Warn;
      Obs.Log.info "test.below" [];
      Alcotest.(check int) "below threshold dropped" 0 (Obs.Log.length ());
      Obs.Log.error "test.above" [];
      Alcotest.(check int) "above threshold kept" 1 (Obs.Log.length ());
      Alcotest.(check bool) "enabled_for" true
        ((not (Obs.Log.enabled_for Obs.Log.Debug))
        && Obs.Log.enabled_for Obs.Log.Error);
      (* bounded ring *)
      Obs.Log.clear ();
      Obs.Log.set_level Obs.Log.Debug;
      Obs.Log.set_ring_capacity 4;
      for i = 0 to 5 do
        Obs.Log.debug "test.tick" [ ("i", Obs.Json.Int i) ]
      done;
      Alcotest.(check int) "ring bounded" 4 (Obs.Log.length ());
      Alcotest.(check int) "ring drops counted" 2 (Obs.Log.dropped ());
      (match Obs.Log.recent () with
      | first :: _ ->
          Alcotest.(check bool) "oldest surviving record" true
            (first.Obs.Log.fields = [ ("i", Obs.Json.Int 2) ])
      | [] -> Alcotest.fail "ring empty");
      (* level names round trip, and "warning" is accepted *)
      List.iter
        (fun lvl ->
          Alcotest.(check (option bool)) (Obs.Log.level_name lvl) (Some true)
            (Option.map
               (fun l -> l = lvl)
               (Obs.Log.level_of_string (Obs.Log.level_name lvl))))
        [ Obs.Log.Debug; Obs.Log.Info; Obs.Log.Warn; Obs.Log.Error ];
      Alcotest.(check bool) "warning alias" true
        (Obs.Log.level_of_string "WARNING" = Some Obs.Log.Warn);
      Alcotest.(check bool) "unknown level" true
        (Obs.Log.level_of_string "loud" = None))

let test_log_schema_and_request_id () =
  with_log (fun () ->
      Obs.Log.with_request_id "outer-req" (fun () ->
          Alcotest.(check (option string)) "ambient" (Some "outer-req")
            (Obs.Log.current_request_id ());
          Obs.Log.with_request_id "inner-req" (fun () ->
              Alcotest.(check (option string)) "shadowed" (Some "inner-req")
                (Obs.Log.current_request_id ()));
          Alcotest.(check (option string)) "restored" (Some "outer-req")
            (Obs.Log.current_request_id ());
          Obs.Log.info "test.rid" [ ("answer", Obs.Json.Int 42) ]);
      Alcotest.(check (option string)) "cleared outside" None
        (Obs.Log.current_request_id ());
      match List.rev (Obs.Log.recent ()) with
      | [] -> Alcotest.fail "no record ringed"
      | record :: _ ->
          Alcotest.(check (option string)) "record carries request id"
            (Some "outer-req") record.Obs.Log.request_id;
          (* the JSON line matches the documented turbosyn-log/1 shape *)
          let line = Obs.Json.to_string (Obs.Log.record_json record) in
          (match Obs.Json.of_string line with
          | Error e -> Alcotest.failf "log line does not parse: %s" e
          | Ok doc ->
              let str k =
                match Obs.Json.member k doc with
                | Some (Obs.Json.Str s) -> Some s
                | _ -> None
              in
              Alcotest.(check bool) "ts is a number" true
                (match Obs.Json.member "ts" doc with
                | Some (Obs.Json.Float _) | Some (Obs.Json.Int _) -> true
                | _ -> false);
              Alcotest.(check (option string)) "level" (Some "info")
                (str "level");
              Alcotest.(check (option string)) "event" (Some "test.rid")
                (str "event");
              Alcotest.(check (option string)) "request_id"
                (Some "outer-req") (str "request_id");
              Alcotest.(check bool) "field spliced" true
                (Obs.Json.member "answer" doc = Some (Obs.Json.Int 42))))

let test_log_file_sink () =
  let path = Filename.temp_file "turbosyn-log" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.to_stderr ();
      Obs.Log.clear ();
      Obs.Log.set_level Obs.Log.Info;
      Sys.remove path)
    (fun () ->
      Obs.Log.to_file path;
      Alcotest.(check (option string)) "output path" (Some path)
        (Obs.Log.output_path ());
      Obs.Log.info "test.file" [ ("n", Obs.Json.Int 1) ];
      Obs.Log.info "test.file" [ ("n", Obs.Json.Int 2) ];
      Obs.Log.to_stderr ();
      Alcotest.(check (option string)) "path cleared" None
        (Obs.Log.output_path ());
      let lines =
        In_channel.with_open_bin path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "one line per record" 2 (List.length lines);
      List.iter
        (fun l ->
          match Obs.Json.of_string l with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "unparseable line %S: %s" l e)
        lines)

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "registry" `Quick test_counter_registry;
          Alcotest.test_case "record max" `Quick test_counter_record_max;
          Alcotest.test_case "negative add" `Quick test_counter_negative_add;
        ] );
      ( "disabled",
        [ Alcotest.test_case "all hooks no-op" `Quick test_disabled_no_ops ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "recursion" `Quick test_span_recursion;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
        ] );
      ("trace", [ Alcotest.test_case "ring buffer" `Quick test_trace_ring ]);
      ( "reset",
        [
          Alcotest.test_case "clears everything" `Quick
            test_reset_clears_everything;
          Alcotest.test_case "while entered" `Quick test_reset_while_entered;
        ] );
      ( "shard",
        [
          Alcotest.test_case "reset guard" `Quick test_shard_reset_guard;
          Alcotest.test_case "merge semantics" `Quick test_shard_merge;
          Alcotest.test_case "span and timeline" `Quick
            test_shard_span_and_timeline;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "properties" `Quick test_json_properties;
          Alcotest.test_case "stats schema" `Quick test_stats_schema;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket layout" `Quick test_histogram_buckets;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "json round trip" `Quick test_histogram_json;
        ] );
      ( "scope",
        [
          Alcotest.test_case "capture and close" `Quick test_scope_capture;
          Alcotest.test_case "transparent merge" `Quick
            test_scope_transparency;
          Alcotest.test_case "nesting and lane shards" `Quick
            test_scope_nesting;
          Alcotest.test_case "fresh ids" `Quick test_scope_fresh_ids;
          Alcotest.test_case "concurrent merge associativity" `Quick
            test_scope_concurrent_merge;
        ] );
      ( "flame",
        [
          Alcotest.test_case "containment fold" `Quick test_flame_fold;
          Alcotest.test_case "timeline round trip" `Quick
            test_flame_timeline_round_trip;
          Alcotest.test_case "ring overflow" `Quick
            test_timeline_overflow_flame;
        ] );
      ( "prof",
        [
          Alcotest.test_case "lifecycle and reset guard" `Quick
            test_prof_lifecycle;
          Alcotest.test_case "sampling" `Quick test_prof_sampling;
          Alcotest.test_case "folded well-formed" `Quick
            test_prof_folded_qcheck;
        ] );
      ( "resources",
        [
          Alcotest.test_case "scope deltas" `Quick test_scope_resources;
          Alcotest.test_case "non-negative and additive" `Quick
            test_scope_resources_additive;
        ] );
      ( "slo",
        [
          Alcotest.test_case "parse" `Quick test_slo_parse;
          Alcotest.test_case "parse file" `Quick test_slo_parse_file;
          Alcotest.test_case "evaluate" `Quick test_slo_evaluate;
          Alcotest.test_case "burn reproduction" `Quick
            test_slo_reproduction;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels and ring" `Quick
            test_log_levels_and_ring;
          Alcotest.test_case "schema and request id" `Quick
            test_log_schema_and_request_id;
          Alcotest.test_case "file sink" `Quick test_log_file_sink;
        ] );
    ]
