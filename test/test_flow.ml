(* Tests for max-flow and K-feasible node cuts, validated against brute
   force subset enumeration on small random cone networks. *)

open Flow

let test_maxflow_basic () =
  (* classic diamond: s=0, t=3, caps 0->1:3, 0->2:2, 1->3:2, 2->3:3, 1->2:1 *)
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3;
  Maxflow.add_edge net ~src:0 ~dst:2 ~cap:2;
  Maxflow.add_edge net ~src:1 ~dst:3 ~cap:2;
  Maxflow.add_edge net ~src:2 ~dst:3 ~cap:3;
  Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1;
  Alcotest.(check int) "flow 5" 5 (Maxflow.max_flow net ~s:0 ~t:3 ~limit:100)

let test_maxflow_limit () =
  let net = Maxflow.create 2 in
  for _ = 1 to 10 do
    Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1
  done;
  let f = Maxflow.max_flow net ~s:0 ~t:1 ~limit:3 in
  Alcotest.(check bool) "stops early" true (f >= 4 && f <= 10);
  Alcotest.(check bool) "exceeds limit" true (f > 3)

let test_maxflow_disconnected () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5;
  Alcotest.(check int) "no path" 0 (Maxflow.max_flow net ~s:0 ~t:2 ~limit:10)

let test_maxflow_reset () =
  let net = Maxflow.create 2 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:4;
  Alcotest.(check int) "first" 4 (Maxflow.max_flow net ~s:0 ~t:1 ~limit:10);
  Maxflow.reset net;
  Alcotest.(check int) "after reset" 4 (Maxflow.max_flow net ~s:0 ~t:1 ~limit:10)

let test_residual_cut () =
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge net ~src:1 ~dst:2 ~cap:5;
  Maxflow.add_edge net ~src:2 ~dst:3 ~cap:5;
  ignore (Maxflow.max_flow net ~s:0 ~t:3 ~limit:100);
  let r = Maxflow.residual_reachable net ~s:0 in
  Alcotest.(check (list bool))
    "cut after 0->1"
    [ true; false; false; false ]
    (List.init 4 r)

(* --- Kcut --- *)

(* chain: 0 -> 1 -> 2(root) *)
let test_kcut_chain () =
  let spec =
    {
      Kcut.n = 3;
      edges = [| (0, 1); (1, 2) |];
      sink_side = [| false; false; true |];
      sources = [ 0 ];
    }
  in
  (match Kcut.find spec ~k:1 with
  | Kcut.Cut c -> Alcotest.(check int) "cut size 1" 1 (List.length c)
  | Kcut.Exceeds -> Alcotest.fail "chain has a 1-cut");
  match Kcut.find spec ~k:0 with
  | Kcut.Exceeds -> ()
  | Kcut.Cut _ -> Alcotest.fail "no 0-cut exists"

let test_kcut_forced_frontier () =
  (* the only source is itself forced to the sink side: no cut *)
  let spec =
    {
      Kcut.n = 2;
      edges = [| (0, 1) |];
      sink_side = [| true; true |];
      sources = [ 0 ];
    }
  in
  Alcotest.(check bool) "exceeds" true (Kcut.find spec ~k:5 = Kcut.Exceeds)

let test_kcut_reconvergence () =
  (* two paths from node 0 reconverge at root 3: cutting node 0 beats
     cutting both branches *)
  let spec =
    {
      Kcut.n = 4;
      edges = [| (0, 1); (0, 2); (1, 3); (2, 3) |];
      sink_side = [| false; false; false; true |];
      sources = [ 0 ];
    }
  in
  match Kcut.find spec ~k:1 with
  | Kcut.Cut [ 0 ] -> ()
  | Kcut.Cut c -> Alcotest.failf "expected [0], got %d nodes" (List.length c)
  | Kcut.Exceeds -> Alcotest.fail "expected a 1-cut"

let test_kcut_validate () =
  Alcotest.check_raises "empty sink" (Invalid_argument "Kcut: empty sink side")
    (fun () ->
      ignore
        (Kcut.find
           { Kcut.n = 1; edges = [||]; sink_side = [| false |]; sources = [] }
           ~k:1))

(* brute force: minimal separating node set not touching sink_side *)
let brute_min_cut (spec : Kcut.spec) =
  let n = spec.n in
  let adj = Array.make n [] in
  Array.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) spec.edges;
  let separates removed =
    (* BFS from sources avoiding removed; fails if it reaches sink side.
       Sources themselves may be removed (they can be cut nodes). *)
    let visited = Array.make n false in
    let q = Queue.create () in
    List.iter
      (fun s ->
        if not removed.(s) then begin
          visited.(s) <- true;
          Queue.add s q
        end)
      spec.sources;
    let bad = ref (List.exists (fun s -> (not removed.(s)) && spec.sink_side.(s)) spec.sources) in
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun w ->
          if (not visited.(w)) && not removed.(w) then begin
            visited.(w) <- true;
            if spec.sink_side.(w) then bad := true else Queue.add w q
          end)
        adj.(v)
    done;
    not !bad
  in
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    let removed = Array.init n (fun v -> mask land (1 lsl v) <> 0) in
    let ok = ref true in
    for v = 0 to n - 1 do
      if removed.(v) && spec.sink_side.(v) then ok := false
    done;
    if !ok && separates removed then begin
      let size = List.length (List.filter Fun.id (Array.to_list removed)) in
      if size < !best then best := size
    end
  done;
  if List.exists (fun s -> spec.sink_side.(s)) spec.sources then None
  else if !best = max_int then None
  else Some !best

let cut_is_valid (spec : Kcut.spec) cut =
  let removed = Array.make spec.n false in
  List.iter (fun v -> removed.(v) <- true) cut;
  let ok_nodes = List.for_all (fun v -> not spec.sink_side.(v)) cut in
  let adj = Array.make spec.n [] in
  Array.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) spec.edges;
  let visited = Array.make spec.n false in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if not removed.(s) then begin
        visited.(s) <- true;
        Queue.add s q
      end)
    spec.sources;
  let bad = ref false in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if spec.sink_side.(v) then bad := true;
    List.iter
      (fun w ->
        if (not visited.(w)) && not removed.(w) then begin
          visited.(w) <- true;
          Queue.add w q
        end)
      adj.(v)
  done;
  ok_nodes && not !bad

(* reference max-flow, independent of lib/flow: BFS augmenting paths on
   a dense residual matrix — the solver the Dinic rewrite replaced, kept
   here as the agreement oracle *)
let ref_max_flow n edges ~s ~t =
  let cap = Array.make_matrix n n 0 in
  List.iter (fun (u, v, c) -> cap.(u).(v) <- cap.(u).(v) + c) edges;
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let parent = Array.make n (-1) in
    parent.(s) <- s;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      for w = 0 to n - 1 do
        if parent.(w) < 0 && cap.(v).(w) > 0 then begin
          parent.(w) <- v;
          Queue.add w q
        end
      done
    done;
    if parent.(t) < 0 then continue := false
    else begin
      let b = ref max_int in
      let v = ref t in
      while !v <> s do
        let p = parent.(!v) in
        b := min !b cap.(p).(!v);
        v := p
      done;
      let v = ref t in
      while !v <> s do
        let p = parent.(!v) in
        cap.(p).(!v) <- cap.(p).(!v) - !b;
        cap.(!v).(p) <- cap.(!v).(p) + !b;
        v := p
      done;
      total := !total + !b
    end
  done;
  !total

(* the split-node network Kcut.solve builds, as an explicit edge list:
   v_in = 2v, v_out = 2v+1, super-source 2n, sink 2n+1 *)
let split_network (spec : Kcut.spec) ~inf =
  let n' = (2 * spec.n) + 2 in
  let s' = 2 * spec.n and t' = (2 * spec.n) + 1 in
  let edges = ref [] in
  for v = 0 to spec.n - 1 do
    if not spec.sink_side.(v) then edges := (2 * v, (2 * v) + 1, 1) :: !edges
  done;
  Array.iter
    (fun (u, v) ->
      if not spec.sink_side.(u) then
        if spec.sink_side.(v) then edges := ((2 * u) + 1, t', inf) :: !edges
        else edges := ((2 * u) + 1, 2 * v, inf) :: !edges)
    spec.edges;
  List.iter (fun v -> edges := (s', 2 * v, inf) :: !edges) spec.sources;
  (n', !edges, s', t')

let qcheck_kcut =
  let open QCheck in
  (* random layered cone networks: nodes 0..n-1, edges only forward,
     root = n-1 is always sink-side; a random prefix are sources *)
  let gen =
    Gen.(
      sized_size (int_range 4 9) (fun n ->
          let* nedges = int_range (n - 1) (2 * n) in
          let* edges =
            list_repeat nedges
              (let* u = int_range 0 (n - 2) in
               let* v = int_range (u + 1) (n - 1) in
               return (u, v))
          in
          let* nsrc = int_range 1 (max 1 (n / 3)) in
          let* extra_sink = list_size (int_range 0 2) (int_range 0 (n - 2)) in
          return (n, edges, nsrc, extra_sink)))
  in
  let to_spec (n, edges, nsrc, extra_sink) =
    let sink_side = Array.make n false in
    sink_side.(n - 1) <- true;
    List.iter (fun v -> if v >= nsrc then sink_side.(v) <- true) extra_sink;
    {
      Kcut.n;
      edges = Array.of_list edges;
      sink_side;
      sources = List.init nsrc Fun.id;
    }
  in
  let print (n, edges, nsrc, extra) =
    Printf.sprintf "n=%d src<%d sinks+%s edges=%s" n nsrc
      (String.concat "," (List.map string_of_int extra))
      (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) edges))
  in
  [
    Test.make ~name:"kcut matches brute-force minimum" ~count:400
      (make ~print gen)
      (fun input ->
        let spec = to_spec input in
        let brute = brute_min_cut spec in
        match (Kcut.min_cut spec, brute) with
        | None, None -> true
        | Some cut, Some size ->
            List.length cut = size && cut_is_valid spec cut
        | Some _, None | None, Some _ -> false);
    Test.make ~name:"kcut decision consistent at every k" ~count:200
      (make ~print gen)
      (fun input ->
        let spec = to_spec input in
        match brute_min_cut spec with
        | None -> Kcut.find spec ~k:spec.n = Kcut.Exceeds
        | Some size ->
            let ok = ref true in
            for k = 0 to spec.n do
              match Kcut.find spec ~k with
              | Kcut.Cut c ->
                  if k < size then ok := false
                  else if not (cut_is_valid spec c && List.length c <= k) then
                    ok := false
              | Kcut.Exceeds -> if k >= size then ok := false
            done;
            !ok);
    Test.make ~name:"dinic agrees with reference solver on split networks"
      ~count:300 (make ~print gen)
      (fun input ->
        let spec = to_spec input in
        let inf = 1000 in
        let n', edges, s', t' = split_network spec ~inf in
        let net = Maxflow.create n' in
        List.iter
          (fun (src, dst, cap) -> Maxflow.add_edge net ~src ~dst ~cap)
          edges;
        let full = Maxflow.max_flow net ~s:s' ~t:t' ~limit:(n' * inf) in
        full = ref_max_flow n' edges ~s:s' ~t:t');
    Test.make ~name:"enum conclusive implies flow verdict" ~count:300
      (make ~print gen)
      (fun input ->
        let spec = to_spec input in
        let arena = Pricut.new_arena () in
        let ok = ref true in
        for k = 0 to spec.n do
          (* default budgets, and starved budgets that force truncation:
             conclusive verdicts must agree with max-flow either way *)
          List.iter
            (fun verdict ->
              match (verdict, Kcut.find spec ~k) with
              | Pricut.Unknown, _ -> ()
              | Pricut.Cut c, Kcut.Cut _ ->
                  if not (cut_is_valid spec c && List.length c <= k) then
                    ok := false
              | Pricut.Exceeds, Kcut.Exceeds -> ()
              | Pricut.Cut _, Kcut.Exceeds | Pricut.Exceeds, Kcut.Cut _ ->
                  ok := false)
            [
              Pricut.decide ~arena spec ~k;
              Pricut.decide ~max_cuts:1 ~cand_cap:2 spec ~k;
            ]
        done;
        !ok);
  ]

let () =
  Alcotest.run "flow"
    [
      ( "maxflow",
        [
          Alcotest.test_case "diamond" `Quick test_maxflow_basic;
          Alcotest.test_case "limit" `Quick test_maxflow_limit;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "reset" `Quick test_maxflow_reset;
          Alcotest.test_case "residual cut" `Quick test_residual_cut;
        ] );
      ( "kcut",
        [
          Alcotest.test_case "chain" `Quick test_kcut_chain;
          Alcotest.test_case "forced frontier" `Quick test_kcut_forced_frontier;
          Alcotest.test_case "reconvergence" `Quick test_kcut_reconvergence;
          Alcotest.test_case "validation" `Quick test_kcut_validate;
        ] );
      ("kcut-props", List.map QCheck_alcotest.to_alcotest qcheck_kcut);
    ]
