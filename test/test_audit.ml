(* Tests for the audit layer: netlist/rational JSON codecs, build +
   independent verification of audit documents (both label engines),
   rejection of mutated certificates, stats-diff regression gating, and
   the Chrome-trace timeline document shape. *)

module J = Obs.Json
module Netlist = Circuit.Netlist
module Rat = Prelude.Rat

let suite name =
  match Workloads.Suite.find name with
  | Some spec -> Workloads.Suite.build spec
  | None -> Alcotest.failf "unknown suite circuit %s" name

let run_audit ?(engine = Seqmap.Label_engine.Worklist) name =
  let nl = suite name in
  let options =
    { (Turbosyn.Synth.default_options ~k:5 ()) with engine } in
  let r = Turbosyn.Synth.run ~options `Turbosyn nl in
  match Audit.build ~source:nl ~options r with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "%s: audit build failed: %s" name e

let verify_ok doc =
  match Audit.verify ~seed:7 doc with
  | Ok v -> v.Audit.v_ok
  | Error e -> Alcotest.failf "verify errored: %s" e

(* Replace member [k] of the object at path [path] using [f]. *)
let rec patch path f doc =
  match (path, doc) with
  | [], v -> f v
  | k :: rest, J.Obj members ->
      J.Obj
        (List.map
           (fun (k', v) -> if k' = k then (k', patch rest f v) else (k', v))
           members)
  | _ -> Alcotest.fail "patch: path does not lead through objects"

(* ---------------------------------------------------------------- *)
(* Codecs                                                           *)
(* ---------------------------------------------------------------- *)

let test_netlist_codec () =
  let nl = suite "bbara" in
  let j = Audit.Circuit_json.to_json nl in
  (* the document survives the printer and parser *)
  let j' =
    match J.of_string (J.to_string j) with
    | Ok v -> v
    | Error m -> Alcotest.failf "netlist json does not parse: %s" m
  in
  Alcotest.(check bool) "print/parse round trip" true (J.equal j j');
  (* decoding and re-encoding reproduces the document bit for bit *)
  match Audit.Circuit_json.of_json j' with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok nl' ->
      (match Netlist.validate ~k:6 nl' with
      | [] -> ()
      | e :: _ ->
          Alcotest.failf "decoded netlist invalid: %s"
            (Format.asprintf "%a" Netlist.pp_error e));
      Alcotest.(check bool) "re-encode fixpoint" true
        (J.equal j (Audit.Circuit_json.to_json nl'));
      let s = Netlist.stats nl and s' = Netlist.stats nl' in
      Alcotest.(check int) "gate count" s.Netlist.n_gates s'.Netlist.n_gates

let test_netlist_codec_rejects () =
  List.iter
    (fun bad ->
      match Audit.Circuit_json.of_json bad with
      | Ok _ -> Alcotest.fail "accepted a malformed netlist document"
      | Error _ -> ())
    [
      J.Null;
      J.Obj [ ("name", J.Str "x") ];
      J.Obj [ ("name", J.Str "x"); ("nodes", J.Int 3) ];
      (* gate with a dangling fanin *)
      J.Obj
        [
          ("name", J.Str "x");
          ( "nodes",
            J.List
              [
                J.Obj
                  [
                    ("kind", J.Str "gate");
                    ("name", J.Str "g");
                    ("arity", J.Int 1);
                    ("bits", J.Str "0x2");
                    ("fanins", J.List [ J.List [ J.Int 9; J.Int 0 ] ]);
                  ];
              ] );
        ];
    ]

let test_rat_codec () =
  List.iter
    (fun r ->
      match Audit.Circuit_json.(rat_of_json (rat_to_json r)) with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "round trip %s" (Rat.to_string r))
            true (Rat.equal r r')
      | Error m -> Alcotest.failf "rat decode failed: %s" m)
    [ Rat.zero; Rat.one; Rat.make 7 3; Rat.make (-5) 4; Rat.of_int 123 ];
  List.iter
    (fun bad ->
      match Audit.Circuit_json.rat_of_json bad with
      | Ok _ -> Alcotest.fail "accepted a malformed rational"
      | Error _ -> ())
    [ J.Str ""; J.Str "a/b"; J.Str "1/0"; J.Int 3; J.Null ]

(* ---------------------------------------------------------------- *)
(* Build + verify                                                   *)
(* ---------------------------------------------------------------- *)

let test_verify_worklist () =
  let doc = run_audit "bbara" in
  Alcotest.(check bool) "bbara worklist accepted" true (verify_ok doc)

let test_verify_sweep () =
  let doc = run_audit ~engine:Seqmap.Label_engine.Sweep "bbara" in
  Alcotest.(check bool) "bbara sweep accepted" true (verify_ok doc)

let test_verify_second_circuit () =
  let doc = run_audit "dk16" in
  Alcotest.(check bool) "dk16 accepted" true (verify_ok doc)

(* ---------------------------------------------------------------- *)
(* Mutation rejection                                               *)
(* ---------------------------------------------------------------- *)

let failed_check doc =
  match Audit.verify ~seed:7 doc with
  | Ok v ->
      if v.Audit.v_ok then Alcotest.fail "mutated document accepted";
      let bad =
        List.filter (fun c -> not c.Audit.c_ok) v.Audit.v_checks in
      List.map (fun c -> c.Audit.c_name) bad
  | Error _ -> [ "malformed" ]

let test_reject_mutated_certificate () =
  let doc = run_audit "bbara" in
  match J.member "certificate" doc with
  | None | Some J.Null ->
      (* bbara has cycles through FFs; the certificate should exist *)
      Alcotest.fail "no certificate to mutate"
  | Some _ ->
      (* claim one fewer register on the loop: the ratio no longer
         matches delay/weight, or the edge sums break *)
      let doc' =
        patch [ "certificate" ]
          (function
            | J.Obj ms ->
                J.Obj
                  (List.map
                     (function
                       | "weight", J.Int w -> ("weight", J.Int (w + 1))
                       | m -> m)
                     ms)
            | _ -> Alcotest.fail "certificate not an object")
          doc
      in
      let bad = failed_check doc' in
      Alcotest.(check bool) "certificate check fires" true
        (List.mem "certificate" bad)

let test_reject_mutated_label () =
  let doc = run_audit "bbara" in
  let doc' =
    patch [ "labels" ]
      (function
        | J.List (l :: rest) ->
            (* labels are PI-first; bump the first gate label instead of
               a PI to hit the fixpoint rather than the pi-zero check *)
            let bump = function
              | J.Str s ->
                  (match Audit.Circuit_json.rat_of_json (J.Str s) with
                  | Ok r ->
                      Audit.Circuit_json.rat_to_json
                        (Rat.add r (Rat.of_int 1000))
                  | Error m -> Alcotest.failf "label decode: %s" m)
              | _ -> Alcotest.fail "label not a string"
            in
            J.List (bump l :: rest)
        | _ -> Alcotest.fail "labels not a list")
      doc
  in
  let bad = failed_check doc' in
  Alcotest.(check bool) "labels or provenance check fires" true
    (List.mem "labels-fixpoint" bad || List.mem "provenance" bad)

let test_reject_mutated_witness () =
  let doc = run_audit "bbara" in
  let doc' =
    patch [ "witness" ]
      (function
        | J.Obj ms ->
            J.Obj
              (List.map
                 (function
                   | "period", J.Int p -> ("period", J.Int (p - 1))
                   | m -> m)
                 ms)
        | _ -> Alcotest.fail "witness not an object")
      doc
  in
  let bad = failed_check doc' in
  Alcotest.(check bool) "witness check fires" true (List.mem "witness" bad)

(* ---------------------------------------------------------------- *)
(* Stats diff                                                       *)
(* ---------------------------------------------------------------- *)

let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    f

let test_diff_gating () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.diff-counter" in
      Obs.Counter.add c 100;
      Obs.Span.time (Obs.Span.make "test.diff-span") (fun () -> ());
      let base = Obs.Report.stats_json () in
      (* identical documents pass *)
      (match Audit.Diff.diff ~base ~cur:base () with
      | Ok d ->
          Alcotest.(check bool) "self diff ok" true d.Audit.Diff.ok;
          Alcotest.(check (list string)) "nothing missing" []
            d.Audit.Diff.missing
      | Error e -> Alcotest.failf "self diff errored: %s" e);
      (* inject a regression: the counter more than 1.25x + 16 over base *)
      let cur =
        patch [ "counters"; "test.diff-counter" ]
          (fun _ -> J.Int 200)
          base
      in
      (match Audit.Diff.diff ~base ~cur () with
      | Ok d ->
          Alcotest.(check bool) "regression detected" false d.Audit.Diff.ok;
          let item =
            List.find
              (fun i -> i.Audit.Diff.name = "test.diff-counter")
              d.Audit.Diff.counters
          in
          Alcotest.(check bool) "item regressed" true item.Audit.Diff.regressed;
          Alcotest.(check int) "limit" (125 + 16) item.Audit.Diff.limit
      | Error e -> Alcotest.failf "diff errored: %s" e);
      (* an override can absorb the same regression *)
      (match
         Audit.Diff.diff
           ~overrides:
             [ ("test.diff-counter", { Audit.Diff.ratio = 3.0; slack = 0 }) ]
           ~base ~cur ()
       with
      | Ok d -> Alcotest.(check bool) "override absorbs" true d.Audit.Diff.ok
      | Error e -> Alcotest.failf "diff errored: %s" e);
      (* a counter missing from the current document fails the diff *)
      let cur_missing =
        patch [ "counters" ]
          (function
            | J.Obj ms ->
                J.Obj (List.filter (fun (k, _) -> k <> "test.diff-counter") ms)
            | _ -> Alcotest.fail "counters not an object")
          base
      in
      (match Audit.Diff.diff ~base ~cur:cur_missing () with
      | Ok d ->
          Alcotest.(check bool) "missing counter fails" false d.Audit.Diff.ok;
          Alcotest.(check bool) "reported missing" true
            (List.mem "test.diff-counter" d.Audit.Diff.missing)
      | Error e -> Alcotest.failf "diff errored: %s" e);
      (* schema mismatch is a hard error *)
      match
        Audit.Diff.diff ~base ~cur:(J.Obj [ ("schema", J.Str "nope") ]) ()
      with
      | Ok _ -> Alcotest.fail "accepted a non-stats document"
      | Error _ -> ())

(* a committed v1 baseline keeps gating v2 documents: forward compat *)
let test_diff_v1_baseline () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.diff-v1-counter" in
      Obs.Counter.add c 100;
      Obs.Histogram.observe_int (Obs.Histogram.make "test.diff-v1-hist") 3;
      let cur = Obs.Report.stats_json () in
      Alcotest.(check (option string))
        "current is v2"
        (Some "turbosyn-stats/2")
        (match J.member "schema" cur with
        | Some (J.Str s) -> Some s
        | _ -> None);
      (* a v1 baseline: counters and spans only, no histograms section *)
      let base =
        J.Obj
          [
            ("schema", J.Str "turbosyn-stats/1");
            ("enabled", J.Bool true);
            ( "counters",
              J.Obj [ ("test.diff-v1-counter", J.Int 100) ] );
            ( "spans",
              J.Obj
                [
                  ( "test.absent-span",
                    J.Obj
                      [ ("seconds", J.Float 0.); ("entries", J.Int 0) ] );
                ] );
          ]
      in
      (* the v1 baseline's span is absent from the current registry only
         if never registered; register it so the diff is clean *)
      ignore (Obs.Span.make "test.absent-span");
      let cur = Obs.Report.stats_json () in
      (match Audit.Diff.diff ~base ~cur () with
      | Ok d ->
          Alcotest.(check bool) "v1 base vs v2 cur ok" true d.Audit.Diff.ok;
          Alcotest.(check (list string)) "nothing missing" [] d.Audit.Diff.missing
      | Error e -> Alcotest.failf "v1/v2 diff errored: %s" e);
      (* an injected counter regression still gates across versions *)
      let base_low =
        patch [ "counters"; "test.diff-v1-counter" ] (fun _ -> J.Int 10) base
      in
      (match Audit.Diff.diff ~base:base_low ~cur () with
      | Ok d ->
          Alcotest.(check bool) "regression detected across versions" false
            d.Audit.Diff.ok
      | Error e -> Alcotest.failf "v1/v2 diff errored: %s" e);
      (* the reverse skew — v2 baseline against a v1 document — errors *)
      match Audit.Diff.diff ~base:cur ~cur:base () with
      | Ok _ -> Alcotest.fail "accepted a newer baseline"
      | Error _ -> ())

(* histogram observation counts gate when both documents carry them *)
let test_diff_histogram_gating () =
  with_obs (fun () ->
      let h = Obs.Histogram.make "test.diff-hist" in
      for i = 1 to 100 do
        Obs.Histogram.observe_int h i
      done;
      let base = Obs.Report.stats_json () in
      (match Audit.Diff.diff ~base ~cur:base () with
      | Ok d ->
          Alcotest.(check bool) "self diff ok" true d.Audit.Diff.ok;
          Alcotest.(check bool) "histogram item present" true
            (List.exists
               (fun i -> i.Audit.Diff.name = "test.diff-hist")
               d.Audit.Diff.histograms)
      | Error e -> Alcotest.failf "self diff errored: %s" e);
      (* 100 -> 200 observations exceeds 100 * 1.25 + 16 *)
      let cur =
        patch
          [ "histograms"; "test.diff-hist"; "count" ]
          (fun _ -> J.Int 200)
          base
      in
      match Audit.Diff.diff ~base ~cur () with
      | Ok d ->
          Alcotest.(check bool) "histogram regression detected" false
            d.Audit.Diff.ok
      | Error e -> Alcotest.failf "diff errored: %s" e)

(* ---------------------------------------------------------------- *)
(* Timeline                                                         *)
(* ---------------------------------------------------------------- *)

let test_timeline_shape () =
  with_obs (fun () ->
      let s = Obs.Span.make "test.timeline-span" in
      Obs.Span.time s (fun () -> ());
      Obs.Span.time s (fun () -> ());
      Obs.Trace.emit "test.timeline-event" [ ("x", J.Int 1) ];
      let doc = Obs.Report.timeline_json () in
      (* the document parses back and is Chrome-trace shaped *)
      (match J.of_string (J.to_string doc) with
      | Ok v -> Alcotest.(check bool) "round trip" true (J.equal doc v)
      | Error m -> Alcotest.failf "timeline does not parse: %s" m);
      match J.member "traceEvents" doc with
      | Some (J.List evs) ->
          let phase e =
            match J.member "ph" e with Some (J.Str p) -> p | _ -> "?" in
          let complete = List.filter (fun e -> phase e = "X") evs in
          let instants = List.filter (fun e -> phase e = "i") evs in
          Alcotest.(check int) "two complete slices" 2 (List.length complete);
          Alcotest.(check int) "one instant" 1 (List.length instants);
          (* named tracks: process_name/thread_name metadata events with
             an args.name, so Perfetto shows labels instead of bare pids *)
          let meta_name key =
            List.exists
              (fun e ->
                phase e = "M"
                && J.member "name" e = Some (J.Str key)
                &&
                match J.member "args" e with
                | Some args -> (
                    match J.member "name" args with
                    | Some (J.Str n) -> n <> ""
                    | _ -> false)
                | None -> false)
              evs
          in
          Alcotest.(check bool) "process_name metadata" true
            (meta_name "process_name");
          Alcotest.(check bool) "thread_name metadata" true
            (meta_name "thread_name");
          List.iter
            (fun e ->
              (match J.member "ts" e with
              | Some (J.Float _ | J.Int _) -> ()
              | _ -> Alcotest.fail "slice without ts");
              match J.member "dur" e with
              | Some (J.Float _ | J.Int _) -> ()
              | _ -> Alcotest.fail "slice without dur")
            complete
      | _ -> Alcotest.fail "no traceEvents list")

(* ---------------------------------------------------------------- *)
(* Document comparison and the jobs-invariance oracle               *)
(* ---------------------------------------------------------------- *)

let test_equal_documents () =
  let doc =
    J.Obj
      [
        ("a", J.Int 1);
        ("b", J.List [ J.Str "x"; J.Obj [ ("c", J.Float 2.5) ] ]);
      ]
  in
  (match Audit.equal_documents doc doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "identical docs compared unequal: %s" e);
  let expect_error mutated sub =
    match Audit.equal_documents doc mutated with
    | Ok () -> Alcotest.fail "differing docs compared equal"
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "diagnosis %S mentions %S" e sub)
          true
          (try
             ignore (Str.search_forward (Str.regexp_string sub) e 0);
             true
           with Not_found -> false)
  in
  expect_error (J.Obj [ ("a", J.Int 2); ("b", J.Null) ]) "$.a";
  expect_error
    (J.Obj
       [ ("a", J.Int 1); ("b", J.List [ J.Str "x" ]) ])
    "$.b";
  expect_error
    (J.Obj
       [
         ("a", J.Int 1);
         ("b", J.List [ J.Str "y"; J.Obj [ ("c", J.Float 2.5) ] ]);
       ])
    "$.b[0]";
  expect_error
    (J.Obj
       [
         ("a", J.Int 1);
         ("b", J.List [ J.Str "x"; J.Obj [ ("c", J.Float 3.5) ] ]);
       ])
    "$.b[1].c"

(* Audit documents serialize everything downstream consumers see: their
   equality across lane counts is the end-to-end jobs-invariance gate
   (doc/CONCURRENCY.md). *)
let test_jobs_invariant_document () =
  let nl = suite "bbara" in
  let doc_of jobs =
    let options = { (Turbosyn.Synth.default_options ~k:5 ()) with jobs } in
    let r = Turbosyn.Synth.run ~options `Turbosyn nl in
    match Audit.build ~source:nl ~options r with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "jobs=%d: audit build failed: %s" jobs e
  in
  match Audit.equal_documents (doc_of 1) (doc_of 4) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "documents differ across lane counts: %s" e

let () =
  Alcotest.run "audit"
    [
      ( "codec",
        [
          Alcotest.test_case "netlist round trip" `Quick test_netlist_codec;
          Alcotest.test_case "netlist rejects" `Quick test_netlist_codec_rejects;
          Alcotest.test_case "rational" `Quick test_rat_codec;
        ] );
      ( "verify",
        [
          Alcotest.test_case "bbara worklist" `Slow test_verify_worklist;
          Alcotest.test_case "bbara sweep" `Slow test_verify_sweep;
          Alcotest.test_case "dk16" `Slow test_verify_second_circuit;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "certificate" `Slow test_reject_mutated_certificate;
          Alcotest.test_case "label" `Slow test_reject_mutated_label;
          Alcotest.test_case "witness" `Slow test_reject_mutated_witness;
        ] );
      ( "diff",
        [
          Alcotest.test_case "gating" `Quick test_diff_gating;
          Alcotest.test_case "v1 baseline vs v2 document" `Quick
            test_diff_v1_baseline;
          Alcotest.test_case "histogram counts" `Quick
            test_diff_histogram_gating;
        ] );
      ("timeline", [ Alcotest.test_case "shape" `Quick test_timeline_shape ]);
      ( "invariance",
        [
          Alcotest.test_case "equal_documents diagnosis" `Quick
            test_equal_documents;
          Alcotest.test_case "audit document across lane counts" `Slow
            test_jobs_invariant_document;
        ] );
    ]
