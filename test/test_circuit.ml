(* Tests for the circuit library: netlist model, builders, BLIF I/O. *)

open Logic
open Circuit

(* A tiny sequential circuit: x -> g1 -> g2 -> y with a feedback loop
   g2 -> g1 carrying one FF. *)
let feedback_pair () =
  let nl = Netlist.create ~name:"pair" () in
  let x = Netlist.add_pi ~name:"x" nl in
  let g1 = Netlist.reserve_gate ~name:"g1" nl in
  let g2 = Build.xor2 ~name:"g2" nl g1 x in
  Netlist.define_gate nl g1 (Truthtable.and_all 2) [| (x, 0); (g2, 1) |];
  let y = Netlist.add_po ~name:"y" nl ~driver:g2 ~weight:0 in
  (nl, x, g1, g2, y)

let test_build_basic () =
  let nl, x, g1, g2, y = feedback_pair () in
  Alcotest.(check int) "node count" 4 (Netlist.n nl);
  Alcotest.(check bool) "x is pi" true (Netlist.kind nl x = Netlist.Pi);
  Alcotest.(check bool) "g1 is gate" true (Netlist.is_gate nl g1);
  Alcotest.(check bool) "y is po" true (Netlist.kind nl y = Netlist.Po);
  Alcotest.(check int) "delay gate" 1 (Netlist.delay nl g2);
  Alcotest.(check int) "delay pi" 0 (Netlist.delay nl x);
  Alcotest.(check (list int)) "pis" [ x ] (Netlist.pis nl);
  Alcotest.(check (list int)) "pos" [ y ] (Netlist.pos nl);
  Alcotest.(check (list int)) "gates" [ g1; g2 ] (Netlist.gates nl);
  Alcotest.(check (list string)) "no errors" []
    (List.map (Format.asprintf "%a" Netlist.pp_error) (Netlist.validate ~k:5 nl))

let test_names () =
  let nl, x, g1, _, _ = feedback_pair () in
  Alcotest.(check string) "named" "x" (Netlist.node_name nl x);
  Alcotest.(check (option int)) "find" (Some g1) (Netlist.find_by_name nl "g1");
  Alcotest.(check (option int)) "missing" None (Netlist.find_by_name nl "zzz")

let test_fanouts () =
  let nl, x, g1, g2, y = feedback_pair () in
  let fo = Netlist.fanouts nl in
  Alcotest.(check bool) "x feeds both gates" true
    (List.mem g1 fo.(x) && List.mem g2 fo.(x));
  Alcotest.(check (list int)) "g2 feeds g1 and y" [ g1; y ]
    (List.sort compare fo.(g2))

let test_validate_errors () =
  let nl = Netlist.create () in
  let x = Netlist.add_pi nl in
  (* gate with arity mismatch via define on reserved node *)
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Netlist.define_gate: arity mismatch") (fun () ->
      let g = Netlist.reserve_gate nl in
      Netlist.define_gate nl g (Truthtable.and_all 2) [| (x, 0) |]);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Netlist: negative edge weight") (fun () ->
      ignore (Netlist.add_gate nl (Truthtable.var 1 0) [| (x, -1) |]));
  (* combinational loop *)
  let nl2 = Netlist.create () in
  let a = Netlist.reserve_gate nl2 in
  let b = Netlist.add_gate nl2 (Truthtable.var 1 0) [| (a, 0) |] in
  Netlist.define_gate nl2 a (Truthtable.var 1 0) [| (b, 0) |];
  Alcotest.(check bool) "comb loop detected" true
    (List.mem Netlist.Combinational_loop (Netlist.validate nl2));
  (* K-boundedness *)
  let nl3 = Netlist.create () in
  let ps = Array.init 4 (fun _ -> Netlist.add_pi nl3) in
  let g = Netlist.add_gate nl3 (Truthtable.and_all 4) (Array.map (fun p -> (p, 0)) ps) in
  Alcotest.(check bool) "fanin exceeds k=3" true
    (List.mem (Netlist.Fanin_exceeds (g, 3)) (Netlist.validate ~k:3 nl3));
  Alcotest.(check (list string)) "fine with k=4" []
    (List.map (Format.asprintf "%a" Netlist.pp_error) (Netlist.validate ~k:4 nl3))

let test_stats () =
  let nl, _, _, _, _ = feedback_pair () in
  let s = Netlist.stats nl in
  Alcotest.(check int) "gates" 2 s.Netlist.n_gates;
  Alcotest.(check int) "ff (shared max per driver)" 1 s.Netlist.n_ff;
  Alcotest.(check int) "edge weight total" 1 s.Netlist.total_edge_weight;
  Alcotest.(check int) "pi" 1 s.Netlist.n_pi;
  Alcotest.(check int) "po" 1 s.Netlist.n_po;
  Alcotest.(check int) "depth" 2 s.Netlist.comb_depth

let test_ff_sharing () =
  (* one driver consumed at weights 3 and 1: shared chain of 3 FFs *)
  let nl = Netlist.create () in
  let x = Netlist.add_pi nl in
  let g = Build.buf nl x in
  let a = Build.buf ~w:3 nl g in
  let b = Build.buf ~w:1 nl g in
  ignore (Netlist.add_po nl ~driver:a ~weight:0);
  ignore (Netlist.add_po nl ~driver:b ~weight:0);
  let s = Netlist.stats nl in
  Alcotest.(check int) "shared ffs" 3 s.Netlist.n_ff;
  Alcotest.(check int) "edge total" 4 s.Netlist.total_edge_weight

let test_mdr () =
  let nl, _, _, _, _ = feedback_pair () in
  (* loop g1 -> g2 -> g1 has 2 gates and 1 FF: ratio 2 *)
  (match Netlist.mdr_ratio nl with
  | Graphs.Cycle_ratio.Ratio r ->
      Alcotest.(check string) "mdr 2" "2" (Prelude.Rat.to_string r)
  | _ -> Alcotest.fail "expected ratio");
  (* removing the FF creates a combinational loop *)
  let nl2, _, g1, _, _ = feedback_pair () in
  Netlist.set_weight nl2 g1 1 0;
  Alcotest.(check bool) "infinite" true
    (Netlist.mdr_ratio nl2 = Graphs.Cycle_ratio.Infinite)

let test_comb_topo () =
  let nl, x, g1, g2, _ = feedback_pair () in
  let order = Netlist.comb_topo_order nl in
  let pos = Array.make (Netlist.n nl) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "x before g2" true (pos.(x) < pos.(g2));
  Alcotest.(check bool) "g1 before g2" true (pos.(g1) < pos.(g2))

let test_copy_independent () =
  let nl, _, g1, _, _ = feedback_pair () in
  let nl2 = Netlist.copy nl in
  Netlist.set_weight nl2 g1 1 5;
  let w_orig = snd (Netlist.fanins nl g1).(1) in
  let w_copy = snd (Netlist.fanins nl2 g1).(1) in
  Alcotest.(check int) "original untouched" 1 w_orig;
  Alcotest.(check int) "copy changed" 5 w_copy

let test_full_adder () =
  let nl = Netlist.create () in
  let a = Netlist.add_pi nl and b = Netlist.add_pi nl and c = Netlist.add_pi nl in
  let sum, carry = Build.full_adder nl ~a ~b ~cin:c in
  let fs = Netlist.gate_function nl sum and fc = Netlist.gate_function nl carry in
  for m = 0 to 7 do
    let av = m land 1 and bv = (m lsr 1) land 1 and cv = (m lsr 2) land 1 in
    let total = av + bv + cv in
    Alcotest.(check bool) "sum" (total land 1 = 1) (Truthtable.eval_bits fs m);
    Alcotest.(check bool) "carry" (total >= 2) (Truthtable.eval_bits fc m)
  done

(* --- BLIF --- *)

let sample_blif =
  {|# sample sequential circuit
.model sample
.inputs a b
.outputs out
.names a b t   # and gate
11 1
.latch t tq 0
.names tq b out
1- 1
-1 1
.end
|}

let test_blif_parse () =
  match Blif.parse_string sample_blif with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok nl ->
      Alcotest.(check string) "model name" "sample" (Netlist.name nl);
      let s = Netlist.stats nl in
      Alcotest.(check int) "pis" 2 s.Netlist.n_pi;
      Alcotest.(check int) "pos" 1 s.Netlist.n_po;
      Alcotest.(check int) "gates" 2 s.Netlist.n_gates;
      Alcotest.(check int) "ffs" 1 s.Netlist.n_ff;
      (* the latch became weight 1 on the edge t -> out *)
      let out_gate =
        match Netlist.find_by_name nl "out" with
        | Some g -> g
        | None -> Alcotest.fail "no out gate"
      in
      let weights =
        Array.to_list (Array.map snd (Netlist.fanins nl out_gate))
      in
      Alcotest.(check (list int)) "latch weight" [ 1; 0 ] weights

let test_blif_latch_chain () =
  let text =
    {|.model chain
.inputs x
.outputs y
.names x g
1 1
.latch g q1
.latch q1 q2
.latch q2 q3
.names q3 y
1 1
.end
|}
  in
  match Blif.parse_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok nl ->
      let y_gate = Option.get (Netlist.find_by_name nl "y") in
      Alcotest.(check int) "chain collapses to weight 3" 3
        (snd (Netlist.fanins nl y_gate).(0))

let test_blif_constants () =
  let text = {|.model k
.inputs x
.outputs c1 c0
.names c1
1
.names c0
.end
|} in
  match Blif.parse_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok nl ->
      let c1 = Option.get (Netlist.find_by_name nl "c1") in
      let c0 = Option.get (Netlist.find_by_name nl "c0") in
      Alcotest.(check (option bool)) "const 1" (Some true)
        (Truthtable.is_const (Netlist.gate_function nl c1));
      Alcotest.(check (option bool)) "const 0" (Some false)
        (Truthtable.is_const (Netlist.gate_function nl c0))

let test_blif_offset_cubes () =
  let text = {|.model off
.inputs a b
.outputs y
.names a b y
11 0
.end
|} in
  match Blif.parse_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok nl ->
      let y = Option.get (Netlist.find_by_name nl "y") in
      (* OFF-set cube 11 means y = NOT (a AND b) *)
      Alcotest.(check bool) "nand" true
        (Truthtable.equal
           (Netlist.gate_function nl y)
           (Truthtable.not_ (Truthtable.and_all 2)))

let test_blif_errors () =
  let check_err name text =
    match Blif.parse_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected parse error" name
  in
  check_err "undefined signal" ".model m\n.inputs a\n.outputs y\n.names b y\n1 1\n.end\n";
  check_err "double definition"
    ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n1 1\n.end\n";
  check_err "latch cycle"
    ".model m\n.inputs a\n.outputs y\n.latch q2 q1\n.latch q1 q2\n.names q1 y\n1 1\n.end\n";
  check_err "mixed cube polarity"
    ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n";
  check_err "unsupported construct" ".model m\n.exdc\n.end\n";
  ()

let test_blif_wide_gate () =
  (* an 8-input cover decomposes into a balanced cube tree; semantics are
     checked by simulation against the cube definition *)
  let text =
    ".model wide\n.inputs a b c d e f g h\n.outputs y\n\
     .names a b c d e f g h y\n\
     11------ 1\n\
     --11--0- 1\n\
     -----111 1\n\
     .end\n"
  in
  let reference m =
    (* the cover: ab | cd!g | fgh, with bit j of m = input j *)
    let bit j = m land (1 lsl j) <> 0 in
    (bit 0 && bit 1)
    || (bit 2 && bit 3 && not (bit 6))
    || (bit 5 && bit 6 && bit 7)
  in
  match Blif.parse_string text with
  | Error e -> Alcotest.failf "wide parse failed: %s" e
  | Ok nl ->
      Alcotest.(check (list string)) "k-bounded after decomposition" []
        (List.map (Format.asprintf "%a" Netlist.pp_error) (Netlist.validate ~k:4 nl));
      let sim = Sim.Simulator.create nl in
      for m = 0 to 255 do
        let inputs = Array.init 8 (fun j -> m land (1 lsl j) <> 0) in
        let out = Sim.Simulator.step sim inputs in
        Alcotest.(check bool) (Printf.sprintf "cover on %d" m) (reference m) out.(0)
      done

let test_blif_roundtrip () =
  let nl, _, _, _, _ = feedback_pair () in
  let text = Blif.to_string nl in
  match Blif.parse_string text with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok nl2 ->
      Alcotest.(check bool) "roundtrip equal" true (Blif.roundtrip_equal nl nl2);
      (* and a second trip is stable *)
      let text2 = Blif.to_string nl2 in
      (match Blif.parse_string text2 with
      | Error e -> Alcotest.failf "second reparse failed: %s" e
      | Ok nl3 ->
          Alcotest.(check bool) "second roundtrip" true
            (Blif.roundtrip_equal nl2 nl3))

let test_blif_roundtrip_random () =
  (* random small circuits with latches survive write/parse *)
  let rng = Prelude.Rng.create 2024 in
  for iter = 1 to 25 do
    let nl = Netlist.create ~name:(Printf.sprintf "r%d" iter) () in
    let nodes = ref [] in
    for _ = 1 to 3 do
      nodes := Netlist.add_pi nl :: !nodes
    done;
    for _ = 1 to 12 do
      let arr = Array.of_list !nodes in
      let k = 1 + Prelude.Rng.int rng (min 3 (Array.length arr)) in
      let fanins =
        Array.init k (fun _ -> (Prelude.Rng.pick rng arr, Prelude.Rng.int rng 3))
      in
      let f = Truthtable.random rng k in
      nodes := Netlist.add_gate nl f fanins :: !nodes
    done;
    let arr = Array.of_list !nodes in
    for _ = 1 to 2 do
      ignore
        (Netlist.add_po nl ~driver:(Prelude.Rng.pick rng arr)
           ~weight:(Prelude.Rng.int rng 2))
    done;
    match Blif.parse_string (Blif.to_string nl) with
    | Error e -> Alcotest.failf "roundtrip %d failed: %s" iter e
    | Ok nl2 ->
        Alcotest.(check bool)
          (Printf.sprintf "random roundtrip %d" iter)
          true (Blif.roundtrip_equal nl nl2)
  done

let test_blif_name_collision () =
  (* an explicit name equal to another node's auto-generated name must not
     produce a BLIF with two drivers for one signal *)
  let nl = Netlist.create ~name:"clash" () in
  let x = Netlist.add_pi ~name:"x" nl in
  let _anon = Build.not_ nl x in
  (* node id 2 gets auto name "n2"; now name another gate explicitly n1 *)
  let g = Build.not_ ~name:(Printf.sprintf "n%d" 1) nl x in
  ignore (Netlist.add_po ~name:"y" nl ~driver:g ~weight:0);
  match Blif.parse_string (Blif.to_string nl) with
  | Error e -> Alcotest.failf "collision roundtrip failed: %s" e
  | Ok _ -> ()

let test_blif_file_io () =
  let nl, _, _, _, _ = feedback_pair () in
  let path = Filename.temp_file "turbosyn" ".blif" in
  Blif.write_file nl path;
  (match Blif.parse_file path with
  | Error e -> Alcotest.failf "parse_file failed: %s" e
  | Ok nl2 -> Alcotest.(check bool) "file roundtrip" true (Blif.roundtrip_equal nl nl2));
  Sys.remove path;
  match Blif.parse_file "/nonexistent/x.blif" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for missing file"

let test_verilog_structure () =
  let nl, _, _, _, _ = feedback_pair () in
  let v = Verilog.to_string nl in
  Alcotest.(check bool) "module header" true
    (String.length v > 0
    && String.sub v 0 11 = "module pair");
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (let re = Str.regexp_string needle in
         try
           ignore (Str.search_forward re v 0);
           true
         with Not_found -> false))
    [ "input clk"; "input x"; "output y"; "always @(posedge clk)"; "endmodule" ]

let test_verilog_comb_no_clock () =
  let nl = Netlist.create ~name:"compos" () in
  let a = Netlist.add_pi ~name:"a" nl in
  let g = Build.not_ nl a in
  ignore (Netlist.add_po ~name:"z" nl ~driver:g ~weight:0);
  let v = Verilog.to_string nl in
  Alcotest.(check bool) "no clk port" true
    (try
       ignore (Str.search_forward (Str.regexp_string "clk") v 0);
       false
     with Not_found -> true)

let test_verilog_sanitize () =
  let nl = Netlist.create ~name:"weird-name" () in
  let a = Netlist.add_pi ~name:"in[0]" nl in
  let g = Build.not_ ~name:"g.1" nl a in
  ignore (Netlist.add_po ~name:"out!" nl ~driver:g ~weight:0);
  let v = Verilog.to_string nl in
  Alcotest.(check bool) "sanitized" true
    (try
       ignore (Str.search_forward (Str.regexp_string "in[0]") v 0);
       false
     with Not_found -> true)

(* ---------------------------------------------------------------- *)
(* Canonical digests (Canon): renaming/permutation invariance and    *)
(* structural separation                                             *)
(* ---------------------------------------------------------------- *)

(* A replayable build recipe for a random sequential circuit: node
   index 0..n_pi-1 are PIs, n_pi+j is gate j.  Feedback is allowed
   (gates may reference later gates) through reserve/define. *)
type canon_recipe = {
  rc_n_pi : int;
  rc_gates : (Truthtable.t * (int * int) array) array;
  rc_pos : (int * int) array;
}

let gen_canon_recipe rng =
  let n_pi = 2 + Prelude.Rng.int rng 3 in
  let n_gates = 4 + Prelude.Rng.int rng 8 in
  let n = n_pi + n_gates in
  let gates =
    Array.init n_gates (fun j ->
        let k = 1 + Prelude.Rng.int rng 3 in
        let fanins =
          Array.init k (fun _ ->
              let src = Prelude.Rng.int rng n in
              (* weight-0 back edges would make a combinational loop;
                 keep cycles registered by forcing feedback weights >= 1 *)
              let w =
                if src >= n_pi + j then 1 + Prelude.Rng.int rng 2
                else Prelude.Rng.int rng 3
              in
              (src, w))
        in
        (Truthtable.random rng k, fanins))
  in
  let pos =
    Array.init 2 (fun _ ->
        (Prelude.Rng.int rng n, Prelude.Rng.int rng 2))
  in
  { rc_n_pi = n_pi; rc_gates = gates; rc_pos = pos }

(* Replay a recipe declaring gates in [order] (a permutation of the
   recipe's gate indices), naming every wire through [wire_name]. *)
let build_canon_recipe rc ~order ~wire_name =
  let nl = Netlist.create ~name:"canon" () in
  let n_gates = Array.length rc.rc_gates in
  let pi_ids =
    Array.init rc.rc_n_pi (fun i -> Netlist.add_pi ~name:(wire_name i) nl)
  in
  let gate_ids = Array.make n_gates (-1) in
  Array.iter
    (fun j ->
      gate_ids.(j) <-
        Netlist.reserve_gate ~name:(wire_name (rc.rc_n_pi + j)) nl)
    order;
  let node i =
    if i < rc.rc_n_pi then pi_ids.(i) else gate_ids.(i - rc.rc_n_pi)
  in
  Array.iteri
    (fun j (f, fanins) ->
      Netlist.define_gate nl gate_ids.(j) f
        (Array.map (fun (i, w) -> (node i, w)) fanins))
    rc.rc_gates;
  Array.iter
    (fun (i, w) -> ignore (Netlist.add_po nl ~driver:(node i) ~weight:w))
    rc.rc_pos;
  nl

let shuffle rng arr =
  let arr = Array.copy arr in
  for i = Array.length arr - 1 downto 1 do
    let j = Prelude.Rng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  arr

let qcheck_canon =
  let open QCheck in
  let seed = make Gen.(int_bound 1_000_000) in
  [
    Test.make ~count:60
      ~name:"canon digest invariant under gate permutation and renaming"
      seed
      (fun s ->
        let rng = Prelude.Rng.create s in
        let rc = gen_canon_recipe rng in
        let ident = Array.init (Array.length rc.rc_gates) Fun.id in
        let a =
          build_canon_recipe rc ~order:ident
            ~wire_name:(Printf.sprintf "w%d")
        in
        let b =
          build_canon_recipe rc ~order:(shuffle rng ident)
            ~wire_name:(fun i -> Printf.sprintf "renamed_%d_x" ((i * 7) + 1))
        in
        Canon.digest a = Canon.digest b
        && Canon.digest64 a = Canon.digest64 b);
    Test.make ~count:60
      ~name:"canon digest separates a flipped gate function" seed
      (fun s ->
        let rng = Prelude.Rng.create (s + 7919) in
        let rc = gen_canon_recipe rng in
        let ident = Array.init (Array.length rc.rc_gates) Fun.id in
        let wire_name = Printf.sprintf "w%d" in
        let a = build_canon_recipe rc ~order:ident ~wire_name in
        let b = build_canon_recipe rc ~order:ident ~wire_name in
        (* flip one truth-table bit of one gate: a semantic change that
           keeps every name, id and wire identical *)
        let g = Prelude.Rng.pick rng (Array.of_list (Netlist.gates b)) in
        let f = Netlist.gate_function b g in
        let bit = Prelude.Rng.int rng (1 lsl Truthtable.arity f) in
        Netlist.set_gate_function b g
          (Truthtable.create (Truthtable.arity f)
             (Int64.logxor (Truthtable.bits f) (Int64.shift_left 1L bit)));
        Canon.digest a <> Canon.digest b);
  ]

let test_canon_format_and_determinism () =
  let nl, _, _, _, _ = feedback_pair () in
  let d = Canon.digest nl in
  Alcotest.(check int) "32 hex chars" 32 (String.length d);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    d;
  Alcotest.(check string) "deterministic" d (Canon.digest nl);
  (* the circuit's own name does not participate *)
  Netlist.set_name nl "something-else";
  Alcotest.(check string) "name-independent" d (Canon.digest nl)

let test_canon_suite_distinct () =
  (* every Table-1 circuit digests distinctly: the serve-layer result
     cache can never cross-serve another circuit's labels *)
  let digests =
    List.map
      (fun spec ->
        (spec.Workloads.Suite.name,
         Canon.digest (Workloads.Suite.build spec)))
      Workloads.Suite.table1
  in
  List.iteri
    (fun i (na, da) ->
      List.iteri
        (fun j (nb, db) ->
          if i < j && da = db then
            Alcotest.failf "suite circuits %s and %s collide (%s)" na nb da)
        digests)
    digests

let () =
  Alcotest.run "circuit"
    [
      ( "netlist",
        [
          Alcotest.test_case "build basic" `Quick test_build_basic;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "fanouts" `Quick test_fanouts;
          Alcotest.test_case "validate errors" `Quick test_validate_errors;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "ff sharing" `Quick test_ff_sharing;
          Alcotest.test_case "mdr" `Quick test_mdr;
          Alcotest.test_case "comb topo" `Quick test_comb_topo;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "full adder" `Quick test_full_adder;
        ] );
      ( "blif",
        [
          Alcotest.test_case "parse" `Quick test_blif_parse;
          Alcotest.test_case "latch chain" `Quick test_blif_latch_chain;
          Alcotest.test_case "constants" `Quick test_blif_constants;
          Alcotest.test_case "offset cubes" `Quick test_blif_offset_cubes;
          Alcotest.test_case "errors" `Quick test_blif_errors;
          Alcotest.test_case "wide gate" `Quick test_blif_wide_gate;
          Alcotest.test_case "name collision" `Quick test_blif_name_collision;
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "random roundtrips" `Quick test_blif_roundtrip_random;
          Alcotest.test_case "file io" `Quick test_blif_file_io;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "combinational" `Quick test_verilog_comb_no_clock;
          Alcotest.test_case "sanitize" `Quick test_verilog_sanitize;
        ] );
      ( "canon",
        Alcotest.test_case "format and determinism" `Quick
          test_canon_format_and_determinism
        :: Alcotest.test_case "table1 pairwise distinct" `Quick
             test_canon_suite_distinct
        :: List.map QCheck_alcotest.to_alcotest qcheck_canon );
    ]
