#!/bin/sh
# Documentation link checker: every cross-reference from README.md or a
# doc/*.md file to a repo path must point at something that exists.
#
# Checked reference shapes, extracted by grep:
#   - doc/NAME.md mentions (backticked or bare) in README.md and doc/*.md
#   - lib/..., bin/..., bench/..., test/..., scripts/..., examples/...
#     path mentions ending in a file extension
#
# Anchors and external URLs are out of scope.  Exit 1 listing every
# dangling reference.
set -eu

cd "$(dirname "$0")/.."

fail=0
sources="README.md $(find doc -name '*.md' | sort)"

for src in $sources; do
  # repo-relative path mentions: doc/X.md, lib/a/b.ml, test/x.ml, ...
  refs=$(grep -oE '(doc|lib|bin|bench|test|scripts|examples|workloads)/[A-Za-z0-9_./-]+\.[A-Za-z0-9]+' "$src" \
    | sort -u || true)
  for ref in $refs; do
    case "$ref" in
      *.exe)
        # dune executable target: its source must exist
        ml="${ref%.exe}.ml"
        if [ ! -e "$ml" ]; then
          echo "dangling executable reference in $src: $ref (no $ml)"
          fail=1
        fi
        ;;
      *)
        if [ ! -e "$ref" ]; then
          echo "dangling reference in $src: $ref"
          fail=1
        fi
        ;;
    esac
  done
done

# the concurrency architecture must stay linked from its entry points
for src in README.md doc/ALGORITHM.md doc/PERF.md; do
  if ! grep -q 'doc/CONCURRENCY.md\|CONCURRENCY\.md' "$src"; then
    echo "$src no longer links doc/CONCURRENCY.md"
    fail=1
  fi
done

# the profiling/SLO layer must stay linked from its entry points
for src in README.md doc/OBSERVABILITY.md doc/CONCURRENCY.md; do
  if ! grep -q 'doc/PROFILING.md\|PROFILING\.md' "$src"; then
    echo "$src no longer links doc/PROFILING.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check FAILED"
  exit 1
fi
echo "doc link check OK ($(echo "$sources" | wc -w) files)"
