#!/bin/sh
# Validate a turbosyn-log/1 JSON-lines file (doc/OBSERVABILITY.md
# §Logging): every line is one JSON object that starts with the
# reserved members in order — ts (number), level (one of four names),
# event (dotted lower-case) — optionally followed by request_id and
# the payload fields.  Pure-shell structural check; the full parse
# round-trip is locked by test/test_obs.ml (log group).
#
# Usage: scripts/check_log_schema.sh FILE...
set -eu

status=0
for file in "$@"; do
  if ! test -s "$file"; then
    echo "check_log_schema: $file is missing or empty" >&2
    status=1
    continue
  fi
  bad=$(grep -cvE '^\{"ts":[0-9]+(\.[0-9eE+-]+)?,"level":"(debug|info|warn|error)","event":"[a-z0-9_.-]+"(,"request_id":"[^"]+")?([,}]|$)' "$file" || true)
  if [ "$bad" != "0" ]; then
    echo "check_log_schema: $file has $bad line(s) violating turbosyn-log/1:" >&2
    grep -vE '^\{"ts":[0-9]+(\.[0-9eE+-]+)?,"level":"(debug|info|warn|error)","event":"[a-z0-9_.-]+"(,"request_id":"[^"]+")?([,}]|$)' "$file" | head -5 >&2
    status=1
    continue
  fi
  # every line must close its object
  if grep -qv '}$' "$file"; then
    echo "check_log_schema: $file has lines not ending in }" >&2
    status=1
    continue
  fi
  echo "check_log_schema: $file OK ($(wc -l < "$file") lines)"
done
exit $status
