(* Benchmark harness: regenerates every table of the paper's evaluation
   section plus the ablations DESIGN.md lists.

     dune exec bench/main.exe                -- tables 1-3 + ablations
     dune exec bench/main.exe -- table1      -- clock periods + CPU (Table 1)
     dune exec bench/main.exe -- table2      -- area (LUT counts)
     dune exec bench/main.exe -- table3      -- PLD speedup + scalability
     dune exec bench/main.exe -- ablation-k  -- K sweep
     dune exec bench/main.exe -- ablation-cmax
     dune exec bench/main.exe -- micro       -- bechamel micro-benchmarks
     dune exec bench/main.exe -- stats       -- per-run Obs counter/span dump
     dune exec bench/main.exe -- all         -- everything incl. micro

   Absolute numbers are machine-local; what must match the paper is the
   SHAPE: TurboSYN beating FlowSYN-s beating-or-tying TurboMap on clock
   period (the paper reports 1.72x / 1.96x mean period reductions for
   TurboSYN), TurboSYN paying area for its decompositions, and PLD cutting
   label-computation work by an order of magnitude on infeasible probes. *)

open Prelude

let algos =
  [ ("FlowSYN-s", `Flowsyn_s); ("TurboMap", `Turbomap); ("TurboSYN", `Turbosyn) ]

(* one run per (circuit, algo, k) across all tables *)
let run_cache : (string * string * int, Turbosyn.Synth.result) Hashtbl.t =
  Hashtbl.create 64

let algo_tag = function
  | `Turbosyn -> "ts"
  | `Turbomap -> "tm"
  | `Flowsyn_s -> "fs"

let run_algo ?(k = 5) algo nl =
  let key = (Circuit.Netlist.name nl, algo_tag algo, k) in
  match Hashtbl.find_opt run_cache key with
  | Some r -> r
  | None ->
      let options = Turbosyn.Synth.default_options ~k () in
      let r = Turbosyn.Synth.run ~options algo nl in
      Hashtbl.replace run_cache key r;
      r

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp
        (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
        /. float_of_int (List.length xs))

(* ------------------------------------------------------------------ *)
(* Table 1: minimum clock period (MDR ratio) and CPU time              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Format.printf
    "@.== Table 1: clock period (min MDR ratio phi) and CPU seconds, K=5 ==@.";
  let t =
    Table.create
      ([ ("circuit", Table.Left); ("GATE", Table.Right); ("FF", Table.Right) ]
      @ List.concat_map
          (fun (name, _) ->
            [
              (name ^ " phi", Table.Right);
              ("CPU", Table.Right);
              ("tests", Table.Right);
            ])
          algos)
  in
  let ratios_fs = ref [] and ratios_tm = ref [] in
  List.iter
    (fun spec ->
      let nl = Workloads.Suite.build spec in
      let s = Circuit.Netlist.stats nl in
      let results =
        List.map
          (fun (name, a) ->
            let r = run_algo a nl in
            Format.eprintf "[table1] %s %s: phi=%s %.1fs@."
              spec.Workloads.Suite.name name
              (Rat.to_string r.Turbosyn.Synth.phi)
              r.Turbosyn.Synth.cpu_seconds;
            r)
          algos
      in
      let cells =
        List.concat_map
          (fun r ->
            [
              Rat.to_string r.Turbosyn.Synth.phi;
              Printf.sprintf "%.2f" r.Turbosyn.Synth.cpu_seconds;
              (* per-run stats: K-feasible-cut tests of the label engine *)
              (match r.Turbosyn.Synth.label_stats with
              | Some s -> string_of_int s.Seqmap.Label_engine.flow_tests
              | None -> "-");
            ])
          results
      in
      (match results with
      | [ fs; tm; ts ] ->
          let f r = Rat.to_float r.Turbosyn.Synth.phi in
          if f ts > 0.0 then begin
            ratios_fs := (f fs /. f ts) :: !ratios_fs;
            ratios_tm := (f tm /. f ts) :: !ratios_tm
          end
      | _ -> ());
      Table.add_row t
        ([
           spec.Workloads.Suite.name;
           string_of_int s.Circuit.Netlist.n_gates;
           string_of_int s.Circuit.Netlist.n_ff;
         ]
        @ cells))
    Workloads.Suite.table1;
  Table.add_rule t;
  Table.add_row t
    [
      "geomean vs TS";
      "";
      "";
      Printf.sprintf "%.2fx" (geomean !ratios_fs);
      "";
      "";
      Printf.sprintf "%.2fx" (geomean !ratios_tm);
      "";
      "";
      "1.00x";
    ];
  Table.print t;
  Format.printf
    "period reduction of TurboSYN: %.2fx vs FlowSYN-s, %.2fx vs TurboMap \
     (paper: 1.72x, 1.96x)@."
    (geomean !ratios_fs) (geomean !ratios_tm)

(* ------------------------------------------------------------------ *)
(* Table 2: area (LUT counts)                                          *)
(* ------------------------------------------------------------------ *)

let table2 () =
  Format.printf "@.== Table 2: area (K-LUT counts after area recovery), K=5 ==@.";
  let t =
    Table.create
      ([ ("circuit", Table.Left) ]
      @ List.map (fun (name, _) -> (name, Table.Right)) algos
      @ [ ("TS/TM", Table.Right) ])
  in
  let area_ratio = ref [] in
  List.iter
    (fun spec ->
      let nl = Workloads.Suite.build spec in
      Format.eprintf "[table2] %s@." spec.Workloads.Suite.name;
      let results = List.map (fun (_, a) -> run_algo a nl) algos in
      let luts = List.map (fun r -> r.Turbosyn.Synth.luts) results in
      let ratio =
        match luts with
        | [ _; tm; ts ] when tm > 0 ->
            let r = float_of_int ts /. float_of_int tm in
            area_ratio := r :: !area_ratio;
            Printf.sprintf "%.2f" r
        | _ -> "-"
      in
      Table.add_row t
        ((spec.Workloads.Suite.name :: List.map string_of_int luts) @ [ ratio ]))
    Workloads.Suite.table1;
  Table.add_rule t;
  Table.add_row t
    [ "geomean"; ""; ""; ""; Printf.sprintf "%.2f" (geomean !area_ratio) ];
  Table.print t;
  Format.printf
    "(the paper reports TurboSYN losing area to TurboMap/FlowSYN-s due to \
     single-output decomposition)@."

(* ------------------------------------------------------------------ *)
(* Table 3: PLD speedup and scalability                                *)
(* ------------------------------------------------------------------ *)

let pld_subset = [ "bbara"; "bbsse"; "cse"; "keyb"; "s1" ]

let table3 () =
  Format.printf
    "@.== Table 3a: positive loop detection speedup (TurboMap label \
     computation, K=5) ==@.";
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("phi", Table.Right);
        ("PLD CPU", Table.Right);
        ("noPLD CPU", Table.Right);
        ("speedup", Table.Right);
        ("PLD iters", Table.Right);
        ("noPLD iters", Table.Right);
        ("PLD tests", Table.Right);
        ("noPLD tests", Table.Right);
      ]
  in
  let speedups = ref [] in
  List.iter
    (fun name ->
      let spec = Option.get (Workloads.Suite.find name) in
      let nl = Workloads.Suite.build spec in
      let run ~pld =
        let opts =
          { (Seqmap.Label_engine.default_options ~k:5) with Seqmap.Label_engine.pld }
        in
        let (phi, _, stats), dt =
          (* a coarser ratio grid keeps the no-PLD baseline searches
             tractable; the speedup ratio is what the table reports *)
          Timer.time_cpu (fun () ->
              Seqmap.Turbomap.minimum_ratio ~phi_max_den:8 opts nl)
        in
        ( phi,
          dt,
          stats.Seqmap.Label_engine.iterations,
          stats.Seqmap.Label_engine.flow_tests )
      in
      Format.eprintf "[table3] %s@." name;
      let phi_on, cpu_on, it_on, ft_on = run ~pld:true in
      let phi_off, cpu_off, it_off, ft_off = run ~pld:false in
      let agree = Rat.equal phi_on phi_off in
      let speedup = cpu_off /. Float.max 1e-6 cpu_on in
      speedups := speedup :: !speedups;
      Table.add_row t
        [
          name ^ (if agree then "" else "*");
          Rat.to_string phi_on;
          Printf.sprintf "%.2f" cpu_on;
          Printf.sprintf "%.2f" cpu_off;
          Printf.sprintf "%.1fx" speedup;
          string_of_int it_on;
          string_of_int it_off;
          string_of_int ft_on;
          string_of_int ft_off;
        ])
    pld_subset;
  Table.add_rule t;
  Table.add_row t
    [ "geomean"; ""; ""; ""; Printf.sprintf "%.1fx" (geomean !speedups) ];
  Table.print t;
  Format.printf "(paper: 10x-50x; * marks a phi disagreement, none expected)@.";
  Format.printf
    "@.== Table 3b: scalability with PLD (TurboMap, K=5; the paper's 10^4 \
     gates / 10^3 FFs claim) ==@.";
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("GATE", Table.Right);
        ("FF", Table.Right);
        ("phi", Table.Right);
        ("LUTs", Table.Right);
        ("CPU", Table.Right);
      ]
  in
  List.iter
    (fun spec ->
      let nl = Workloads.Suite.build spec in
      Format.eprintf "[table3b] %s@." spec.Workloads.Suite.name;
      let s = Circuit.Netlist.stats nl in
      let r = run_algo `Turbomap nl in
      Table.add_row t
        [
          spec.Workloads.Suite.name;
          string_of_int s.Circuit.Netlist.n_gates;
          string_of_int s.Circuit.Netlist.n_ff;
          Rat.to_string r.Turbosyn.Synth.phi;
          string_of_int r.Turbosyn.Synth.luts;
          Printf.sprintf "%.1f" r.Turbosyn.Synth.cpu_seconds;
        ])
    (List.filter
       (fun s -> s.Workloads.Suite.gates <= 2000)
       Workloads.Suite.scaling);
  Table.print t;
  Format.printf
    "(larger generated circuits — 4k/8k gates — are exercised by the      ablation-mdr mode; the full mapping flow on them is CPU-bound on this      single-core container)@."

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_subset = [ "bbara"; "cse" ]

let ablation_k () =
  Format.printf "@.== Ablation: LUT size K (TurboSYN phi/LUTs) ==@.";
  let ks = [ 3; 4; 5; 6 ] in
  let t =
    Table.create
      (("circuit", Table.Left)
      :: List.map (fun k -> (Printf.sprintf "K=%d" k, Table.Right)) ks)
  in
  List.iter
    (fun name ->
      let spec = Option.get (Workloads.Suite.find name) in
      let nl = Workloads.Suite.build spec in
      let cells =
        List.map
          (fun k ->
            let r = run_algo ~k `Turbosyn nl in
            Printf.sprintf "%s/%d"
              (Rat.to_string r.Turbosyn.Synth.phi)
              r.Turbosyn.Synth.luts)
          ks
      in
      Table.add_row t (name :: cells))
    ablation_subset;
  Table.print t

let ablation_cmax () =
  Format.printf "@.== Ablation: decomposition cut bound Cmax (TurboSYN, K=5) ==@.";
  let cmaxes = [ 8; 15; 25 ] in
  let t =
    Table.create
      (("circuit", Table.Left)
      :: List.concat_map
           (fun c ->
             [ (Printf.sprintf "Cmax=%d phi" c, Table.Right); ("CPU", Table.Right) ])
           cmaxes)
  in
  List.iter
    (fun name ->
      let spec = Option.get (Workloads.Suite.find name) in
      let nl = Workloads.Suite.build spec in
      let cells =
        List.concat_map
          (fun cmax ->
            let options =
              { (Turbosyn.Synth.default_options ~k:5 ()) with Turbosyn.Synth.cmax }
            in
            let r = Turbosyn.Synth.run ~options `Turbosyn nl in
            [
              Rat.to_string r.Turbosyn.Synth.phi;
              Printf.sprintf "%.2f" r.Turbosyn.Synth.cpu_seconds;
            ])
          cmaxes
      in
      Table.add_row t (name :: cells))
    ablation_subset;
  Table.print t

let ablation_seqmap2 () =
  Format.printf
    "@.== Ablation: partial flow networks (TurboMap) vs SeqMapII-style full      expansion — one label computation at phi* ==@.";
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("phi*", Table.Right);
        ("partial CPU", Table.Right);
        ("full CPU", Table.Right);
        ("speedup", Table.Right);
        ("partial flow", Table.Right);
        ("full flow", Table.Right);
      ]
  in
  List.iter
    (fun name ->
      Format.eprintf "[seqmap2] %s@." name;
      let spec = Option.get (Workloads.Suite.find name) in
      let nl = Workloads.Suite.build spec in
      let opts = Seqmap.Label_engine.default_options ~k:5 in
      let phi, _, _ = Seqmap.Turbomap.minimum_ratio ~phi_max_den:24 opts nl in
      let time_run o =
        let (_, st), dt =
          Timer.time_cpu (fun () -> Seqmap.Label_engine.run o nl ~phi)
        in
        (dt, st.Seqmap.Label_engine.flow_tests)
      in
      let t_part, f_part = time_run opts in
      let t_full, f_full =
        time_run
          { opts with Seqmap.Label_engine.full_expansion = true; max_expansion = 20000 }
      in
      Table.add_row t
        [
          name;
          Rat.to_string phi;
          Printf.sprintf "%.2f" t_part;
          Printf.sprintf "%.2f" t_full;
          Printf.sprintf "%.1fx" (t_full /. Float.max 1e-6 t_part);
          string_of_int f_part;
          string_of_int f_full;
        ])
    [ "bbara"; "cse"; "keyb"; "s298" ];
  Table.print t;
  Format.printf
    "(the TurboMap lineage's point: partial networks avoid expanding far      below the height threshold; SeqMapII expanded much more)@."

let ablation_mdr () =
  Format.printf
    "@.== Ablation: MDR computation — exact parametric search vs Howard's      policy iteration vs float bisection ==@.";
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("exact", Table.Right);
        ("t(ms)", Table.Right);
        ("howard", Table.Right);
        ("t(ms)", Table.Right);
        ("bisect 1e-6", Table.Right);
        ("t(ms)", Table.Right);
      ]
  in
  List.iter
    (fun spec ->
      let nl = Workloads.Suite.build spec in
      let n = Circuit.Netlist.n nl in
      let edges = Circuit.Netlist.retiming_edges nl in
      let exact, t_exact =
        Timer.time (fun () -> Graphs.Cycle_ratio.max_ratio ~n ~edges)
      in
      let hw_edges =
        Array.map
          (fun e ->
            {
              Graphs.Howard.src = e.Graphs.Cycle_ratio.src;
              dst = e.Graphs.Cycle_ratio.dst;
              delay = e.Graphs.Cycle_ratio.delay;
              weight = e.Graphs.Cycle_ratio.weight;
            })
          edges
      in
      let howard, t_howard =
        Timer.time (fun () -> Graphs.Howard.max_ratio ~n ~edges:hw_edges)
      in
      let bisect, t_bisect =
        Timer.time (fun () ->
            Graphs.Cycle_ratio.max_ratio_float ~n ~edges ~epsilon:1e-6)
      in
      let show_exact = function
        | Graphs.Cycle_ratio.Ratio r -> Rat.to_string r
        | Graphs.Cycle_ratio.No_cycle -> "-"
        | Graphs.Cycle_ratio.Infinite -> "inf"
      in
      let show_float = function
        | Graphs.Cycle_ratio.Ratio r -> Printf.sprintf "%.4f" (Rat.to_float r)
        | Graphs.Cycle_ratio.No_cycle -> "-"
        | Graphs.Cycle_ratio.Infinite -> "inf"
      in
      Table.add_row t
        [
          spec.Workloads.Suite.name;
          show_exact exact;
          Printf.sprintf "%.1f" (t_exact *. 1e3);
          (match howard with
          | Some l -> Printf.sprintf "%.4f" l
          | None -> "-");
          Printf.sprintf "%.1f" (t_howard *. 1e3);
          show_float bisect;
          Printf.sprintf "%.1f" (t_bisect *. 1e3);
        ])
    (Workloads.Suite.table1 @ Workloads.Suite.scaling);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Stats mode: per-run counter/span dump through the Obs layer         *)
(* ------------------------------------------------------------------ *)

let stats_subset = [ "bbara"; "cse"; "s298" ]

let stats_mode () =
  Format.printf
    "@.== Per-run observability stats (TurboSYN, K=5; see \
     doc/OBSERVABILITY.md) ==@.";
  Obs.set_enabled true;
  List.iter
    (fun name ->
      Obs.reset ();
      let spec = Option.get (Workloads.Suite.find name) in
      let nl = Workloads.Suite.build spec in
      Format.eprintf "[stats] %s@." name;
      let r =
        Turbosyn.Synth.run
          ~options:(Turbosyn.Synth.default_options ~k:5 ())
          `Turbosyn nl
      in
      Format.printf "@.-- %s: phi=%s, %d LUTs, %.1fs CPU --@." name
        (Rat.to_string r.Turbosyn.Synth.phi)
        r.Turbosyn.Synth.luts r.Turbosyn.Synth.cpu_seconds;
      let t = Table.create [ ("counter", Table.Left); ("value", Table.Right) ] in
      List.iter
        (fun (n, v) -> if v > 0 then Table.add_row t [ n; string_of_int v ])
        (Obs.Counter.all ());
      Table.print t;
      let t =
        Table.create
          [
            ("span", Table.Left);
            ("seconds", Table.Right);
            ("entries", Table.Right);
          ]
      in
      List.iter
        (fun (n, s, c) ->
          if c > 0 then
            Table.add_row t [ n; Printf.sprintf "%.3f" s; string_of_int c ])
        (Obs.Span.all ());
      Table.print t)
    stats_subset;
  Obs.set_enabled false

(* stats --json FILE [--circuit NAME] [--algo NAME]: one deterministic
   run, emitted as a turbosyn-stats/1 document.  Counters and span entry
   counts are exact functions of the circuit and the options (K=5,
   worklist engine, sequential search), so the output is comparable
   across machines — the committed BENCH_stats_baseline.json is produced
   this way and CI gates on it with stats --diff.  --algo turbomap runs
   the mapping-only (non-deep) pipeline, where the priority-cut
   enumeration layer is live (deep turbosyn skips it — a failing cut
   test must run the flow anyway for the canonical min cut, so only the
   memo and flow layers engage there; see doc/PERF.md). *)
let stats_json ~circuit ~algo ~out () =
  match Workloads.Suite.find circuit with
  | None ->
      Format.eprintf "unknown circuit %s@." circuit;
      exit 2
  | Some spec ->
      let algo_tag, algo_name =
        match algo with
        | "turbosyn" -> (`Turbosyn, "turbosyn")
        | "turbomap" -> (`Turbomap, "turbomap")
        | other ->
            Format.eprintf "unknown algo %s (expected turbosyn|turbomap)@."
              other;
            exit 2
      in
      let nl = Workloads.Suite.build spec in
      Obs.set_enabled true;
      Obs.reset ();
      let r =
        Turbosyn.Synth.run
          ~options:(Turbosyn.Synth.default_options ~k:5 ())
          algo_tag nl
      in
      let extra =
        [
          ( "run",
            Obs.Json.Obj
              [
                ("circuit", Obs.Json.Str circuit);
                ("algo", Obs.Json.Str algo_name);
                ("k", Obs.Json.Int 5);
                ("phi", Obs.Json.Str (Rat.to_string r.Turbosyn.Synth.phi));
                ("luts", Obs.Json.Int r.Turbosyn.Synth.luts);
              ] );
        ]
      in
      (match Obs.Report.write_stats ~extra out with
      | () -> if out <> "-" then Format.printf "wrote %s@." out
      | exception Sys_error e ->
          Format.eprintf "error: %s@." e;
          exit 2);
      Obs.set_enabled false

(* stats --diff BASE.json CURRENT.json: regression gate over two stats
   documents (see Audit.Diff); exit 3 on regression, 2 on bad input. *)
let stats_diff base_file cur_file =
  let read f =
    match In_channel.with_open_bin f In_channel.input_all with
    | s -> (
        match Obs.Json.of_string s with
        | Ok j -> j
        | Error e ->
            Format.eprintf "error: %s: %s@." f e;
            exit 2)
    | exception Sys_error e ->
        Format.eprintf "error: %s@." e;
        exit 2
  in
  let base = read base_file in
  let cur = read cur_file in
  match Audit.Diff.diff ~base ~cur () with
  | Error e ->
      Format.eprintf "error: %s@." e;
      exit 2
  | Ok t ->
      print_string (Audit.Diff.render t);
      if not t.Audit.Diff.ok then exit 3

(* ------------------------------------------------------------------ *)
(* serve-load: scenario-driven load probe of the concurrent server.    *)
(* Boots `turbosyn serve` in-process on an ephemeral port and drives   *)
(* four scenarios with concurrent client domains over fresh            *)
(* connections:                                                        *)
(*   baseline — one worker, cache disabled, one serial client: the     *)
(*              single-threaded reference throughput;                  *)
(*   hot      — N workers, cache on, one repeated request: after the   *)
(*              first miss the LRU serves, X-Cache proves it;          *)
(*   mix      — N workers, cache on, 50% hot key + cold keys spread    *)
(*              over circuits x k: the measured-hit-rate scenario;     *)
(*   mix-prof — the same mix with the Obs.Prof sampler attached and an *)
(*              SLO configured: its p99 against plain mix gates the    *)
(*              profiler's overhead budget, and its live /debug/slo +  *)
(*              /metrics answers gate burn-rate reproducibility;       *)
(*   overload — one worker, queue depth 1, cache off, many clients:    *)
(*              admission control must shed with 429 + Retry-After     *)
(*              (never 5xx) while /healthz stays answerable.           *)
(* Emits a turbosyn-serve-perf/2 document (--out, default              *)
(* BENCH_serve_perf.json) and exits nonzero when a gate fails: any     *)
(* 5xx (exit 3); no cache hits in hot/mix, no sheds or a missing       *)
(* Retry-After in overload, an invalid /metrics scrape, a profiled-mix *)
(* p99 over 1.03x plain mix + 50ms, a dead /debug/prof, an SLO burn    *)
(* rate that fails to recompute from the scrape, or — on multicore     *)
(* hosts — hot throughput below 3x baseline (exit 2).                  *)
(* ------------------------------------------------------------------ *)

let http_request ~port ~meth ~path ?(headers = []) ~body () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let extra =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
      in
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Type: \
           application/json\r\nContent-Length: %d\r\n%sConnection: \
           close\r\n\r\n%s"
          meth path (String.length body) extra body
      in
      let b = Bytes.of_string req in
      let rec send off =
        if off < Bytes.length b then
          send (off + Unix.write fd b off (Bytes.length b - off))
      in
      send 0;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
        end
      in
      recv ();
      Buffer.contents buf)

let http_post ~port ~path ?headers ~body () =
  http_request ~port ~meth:"POST" ~path ?headers ~body ()

let http_get ~port ~path =
  http_request ~port ~meth:"GET" ~path ~body:"" ()

(* raw-response accessors: status code, one (lower-cased) header, body *)
let resp_status resp =
  match String.split_on_char ' ' resp with
  | _ :: code :: _ -> Option.value ~default:0 (int_of_string_opt code)
  | _ -> 0

let resp_header name resp =
  let name = String.lowercase_ascii name in
  String.split_on_char '\n' resp
  |> List.find_map (fun line ->
         match String.index_opt line ':' with
         | Some i when String.lowercase_ascii (String.sub line 0 i) = name ->
             Some
               (String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> None)

let resp_body resp =
  let rec find i =
    if i + 3 >= String.length resp then None
    else if
      resp.[i] = '\r' && resp.[i + 1] = '\n' && resp.[i + 2] = '\r'
      && resp.[i + 3] = '\n'
    then Some (i + 4)
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.sub resp i (String.length resp - i)
  | None -> ""

(* server-side seconds per request id, joined from /debug/requests *)
let server_side_seconds ~port =
  let resp = http_get ~port ~path:"/debug/requests" in
  match Obs.Json.of_string (resp_body resp) with
  | Error _ -> None
  | Ok doc -> (
      match Obs.Json.member "requests" doc with
      | Some (Obs.Json.List rs) ->
          let tbl = Hashtbl.create 64 in
          List.iter
            (fun r ->
              match
                (Obs.Json.member "id" r, Obs.Json.member "seconds" r)
              with
              | Some (Obs.Json.Str id), Some (Obs.Json.Float s) ->
                  Hashtbl.replace tbl id s
              | Some (Obs.Json.Str id), Some (Obs.Json.Int s) ->
                  Hashtbl.replace tbl id (float_of_int s)
              | _ -> ())
            rs;
          Some tbl
      | _ -> None)

(* one client-side request observation *)
type req_obs = {
  ro_status : int;
  ro_cache : string option; (* X-Cache marker *)
  ro_retry_after : bool;
  ro_id_echoed : bool;
  ro_seconds : float;
}

type scenario_report = {
  sr_name : string;
  sr_workers : int;
  sr_queue_depth : int;
  sr_cache_entries : int;
  sr_client_jobs : int;
  sr_requests : int;
  sr_ok : int;
  sr_shed : int; (* 429s *)
  sr_client_errors : int; (* other 4xx, or a dropped id echo *)
  sr_server_errors : int; (* 5xx *)
  sr_hits : int;
  sr_misses : int;
  sr_retry_after_missing : int; (* 429s without a Retry-After header *)
  sr_seconds : float;
  sr_throughput : float; (* requests (all statuses) per second *)
  sr_p50 : float; (* client-side latency of 200s, seconds *)
  sr_p99 : float;
  sr_max : float;
  sr_queue_wait_mean : float option; (* client minus server, joined *)
  sr_healthz_ok : bool; (* /healthz answered 200 mid-load *)
  sr_scrape_ok : bool; (* post-load /metrics passed promlint *)
}

let run_scenario ?(slos = []) ?(profile = false)
    ?(after = fun ~port:(_ : int) -> ()) ~name ~workers ~queue_depth
    ~cache_entries ~client_jobs ~total ~body_of () =
  Obs.reset ();
  let server =
    Serve.Server.create ~port:0 ~workers ~queue_depth ~cache_entries ~slos
      ~profile ()
  in
  let port = Serve.Server.port server in
  let srv = Domain.spawn (fun () -> Serve.Server.run server) in
  let per = (total + client_jobs - 1) / client_jobs in
  let total = per * client_jobs in
  Format.printf
    "-- %-8s  %d requests, %d client domain(s), %d worker(s), queue %d, \
     cache %d@."
    name total client_jobs
    (Serve.Server.workers server)
    queue_depth cache_entries;
  let t0 = Prelude.Timer.wall () in
  (* each request carries a unique client-chosen correlation id; the
     echo proves propagation and keys the server-side latency join *)
  let clients =
    List.init client_jobs (fun w ->
        Domain.spawn (fun () ->
            Array.init per (fun i ->
                let g = (w * per) + i in
                let id = Printf.sprintf "bench-%s-%d-%d" name w i in
                let t = Prelude.Timer.wall () in
                let resp =
                  http_post ~port ~path:"/map"
                    ~headers:[ ("X-Request-Id", id) ]
                    ~body:(body_of g) ()
                in
                ( id,
                  {
                    ro_status = resp_status resp;
                    ro_cache = resp_header "x-cache" resp;
                    ro_retry_after = resp_header "retry-after" resp <> None;
                    ro_id_echoed = resp_header "x-request-id" resp = Some id;
                    ro_seconds = Prelude.Timer.wall () -. t;
                  } ))))
  in
  (* liveness probe while the load is in flight: the accept lane must
     keep answering /healthz even when every worker is busy *)
  let healthz_ok = resp_status (http_get ~port ~path:"/healthz") = 200 in
  let results =
    List.concat_map (fun d -> Array.to_list (Domain.join d)) clients
  in
  let elapsed = Prelude.Timer.wall () -. t0 in
  let joined =
    match server_side_seconds ~port with
    | None -> []
    | Some tbl ->
        List.filter_map
          (fun (id, ro) ->
            if ro.ro_status <> 200 then None
            else
              Option.map
                (fun srv -> Float.max 0. (ro.ro_seconds -. srv))
                (Hashtbl.find_opt tbl id))
          results
  in
  let scrape_ok =
    match
      Obs.Prometheus.validate (resp_body (http_get ~port ~path:"/metrics"))
    with
    | Ok () -> true
    | Error _ -> false
  in
  (* scenario-specific probes against the still-running server (e.g.
     the SLO burn-rate reproduction, which needs a live /debug/slo) *)
  after ~port;
  Serve.Server.stop server;
  Domain.join srv;
  let obs = List.map snd results in
  let count p = List.length (List.filter p obs) in
  let ok = count (fun o -> o.ro_status = 200) in
  let lats =
    List.filter_map
      (fun o -> if o.ro_status = 200 then Some o.ro_seconds else None)
      obs
    |> List.sort Float.compare |> Array.of_list
  in
  let pct p =
    let n = Array.length lats in
    if n = 0 then 0.
    else lats.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let report =
    {
      sr_name = name;
      sr_workers = Serve.Server.workers server;
      sr_queue_depth = queue_depth;
      sr_cache_entries = cache_entries;
      sr_client_jobs = client_jobs;
      sr_requests = total;
      sr_ok = ok;
      sr_shed = count (fun o -> o.ro_status = 429);
      sr_client_errors =
        count (fun o ->
            (o.ro_status >= 400 && o.ro_status < 500 && o.ro_status <> 429)
            || (o.ro_status = 200 && not o.ro_id_echoed));
      sr_server_errors = count (fun o -> o.ro_status >= 500);
      sr_hits = count (fun o -> o.ro_cache = Some "hit");
      sr_misses = count (fun o -> o.ro_cache = Some "miss");
      sr_retry_after_missing =
        count (fun o -> o.ro_status = 429 && not o.ro_retry_after);
      sr_seconds = elapsed;
      sr_throughput = float_of_int total /. elapsed;
      sr_p50 = pct 0.50;
      sr_p99 = pct 0.99;
      sr_max = (if Array.length lats = 0 then 0. else lats.(Array.length lats - 1));
      sr_queue_wait_mean =
        (match joined with
        | [] -> None
        | ws ->
            Some
              (List.fold_left ( +. ) 0. ws /. float_of_int (List.length ws)));
      sr_healthz_ok = healthz_ok;
      sr_scrape_ok = scrape_ok;
    }
  in
  Format.printf
    "   %d ok, %d shed, %d client err, %d server err; %d hit / %d miss; \
     %.1f req/s over %.2fs; p50 %.1fms p99 %.1fms max %.1fms@."
    report.sr_ok report.sr_shed report.sr_client_errors
    report.sr_server_errors report.sr_hits report.sr_misses
    report.sr_throughput report.sr_seconds (report.sr_p50 *. 1e3)
    (report.sr_p99 *. 1e3) (report.sr_max *. 1e3);
  report

let scenario_json sr =
  let open Obs.Json in
  Obj
    [
      ("name", Str sr.sr_name);
      ("workers", Int sr.sr_workers);
      ("queue_depth", Int sr.sr_queue_depth);
      ("cache_entries", Int sr.sr_cache_entries);
      ("client_jobs", Int sr.sr_client_jobs);
      ("requests", Int sr.sr_requests);
      ("ok", Int sr.sr_ok);
      ("shed", Int sr.sr_shed);
      ("client_errors", Int sr.sr_client_errors);
      ("server_errors", Int sr.sr_server_errors);
      ("cache_hits", Int sr.sr_hits);
      ("cache_misses", Int sr.sr_misses);
      ( "cache_hit_rate",
        if sr.sr_hits + sr.sr_misses = 0 then Null
        else
          Float
            (float_of_int sr.sr_hits
            /. float_of_int (sr.sr_hits + sr.sr_misses)) );
      ( "shed_rate",
        if sr.sr_requests = 0 then Null
        else Float (float_of_int sr.sr_shed /. float_of_int sr.sr_requests) );
      ("retry_after_missing", Int sr.sr_retry_after_missing);
      ("seconds", Float sr.sr_seconds);
      ("throughput_rps", Float sr.sr_throughput);
      ("client_p50_seconds", Float sr.sr_p50);
      ("client_p99_seconds", Float sr.sr_p99);
      ("client_max_seconds", Float sr.sr_max);
      ( "queue_wait_mean_seconds",
        match sr.sr_queue_wait_mean with None -> Null | Some w -> Float w );
      ("healthz_ok", Bool sr.sr_healthz_ok);
      ("scrape_ok", Bool sr.sr_scrape_ok);
    ]

(* One /debug/slo latency verdict recomputed from a /metrics scrape.
   Fetch order matters: /debug/slo first, then /metrics, with no /map
   request in between — GETs only touch their own route histograms, so
   the map latency distribution is frozen across the two fetches.  The
   verdict publishes good_upper_seconds (the exact bucket boundary it
   evaluated at); [good] must equal the cumulative _bucket count at the
   largest rendered le <= that boundary, [count] the _count line, and
   the burn rate must recompute to the digit (doc/PROFILING.md §SLOs). *)
type slo_repro = {
  sl_burn : float; (* as reported by /debug/slo *)
  sl_burn_re : float; (* recomputed from the scrape *)
  sl_good : int;
  sl_good_re : int;
  sl_count : int;
  sl_count_re : int;
}

let slo_repro_ok r =
  Float.abs (r.sl_burn -. r.sl_burn_re) <= 1e-9
  && r.sl_good = r.sl_good_re
  && r.sl_count = r.sl_count_re

let slo_reproduction ~port =
  let slo_body = resp_body (http_get ~port ~path:"/debug/slo") in
  let metrics = resp_body (http_get ~port ~path:"/metrics") in
  let ( let* ) = Option.bind in
  let* doc = Result.to_option (Obs.Json.of_string slo_body) in
  let* objectives = Obs.Json.member "objectives" doc in
  let* obj =
    match objectives with Obs.Json.List (o :: _) -> Some o | _ -> None
  in
  let* lat = Obs.Json.member "latency" obj in
  let num k =
    match Obs.Json.member k lat with
    | Some (Obs.Json.Float v) -> Some v
    | Some (Obs.Json.Int v) -> Some (float_of_int v)
    | _ -> None
  in
  let* hist =
    match Obs.Json.member "histogram" obj with
    | Some (Obs.Json.Str h) -> Some h
    | _ -> None
  in
  let* q = num "quantile" in
  let* upper = num "good_upper_seconds" in
  let* good = num "good" in
  let* count = num "count" in
  let* burn = num "burn_rate" in
  (* the metric as the renderer spells it: turbosyn_ prefix, dots
     sanitized to underscores *)
  let metric =
    "turbosyn_" ^ String.map (fun c -> if c = '.' then '_' else c) hist
  in
  let bucket_prefix = metric ^ "_bucket{le=\"" in
  let count_prefix = metric ^ "_count " in
  let good_re = ref 0 and best_le = ref neg_infinity in
  let count_re = ref (-1) in
  List.iter
    (fun line ->
      if String.starts_with ~prefix:bucket_prefix line then begin
        let rest =
          String.sub line
            (String.length bucket_prefix)
            (String.length line - String.length bucket_prefix)
        in
        match String.index_opt rest '"' with
        | Some qi -> (
            let le = float_of_string_opt (String.sub rest 0 qi) in
            let v =
              String.sub rest (qi + 2) (String.length rest - qi - 2)
              |> String.trim |> float_of_string_opt
            in
            match (le, v) with
            | Some le, Some v
              when le <= (upper *. (1. +. 1e-9)) +. 1e-12 && le > !best_le ->
                (* cumulative series: the largest boundary at or below
                   good_upper carries exactly the "good" count *)
                best_le := le;
                good_re := int_of_float v
            | _ -> ())
        | None -> ()
      end
      else if String.starts_with ~prefix:count_prefix line then
        match
          float_of_string_opt
            (String.trim
               (String.sub line
                  (String.length count_prefix)
                  (String.length line - String.length count_prefix)))
        with
        | Some v -> count_re := int_of_float v
        | None -> ())
    (String.split_on_char '\n' metrics);
  let burn_re =
    if !count_re <= 0 then 0.
    else
      float_of_int (!count_re - !good_re)
      /. float_of_int !count_re /. (1. -. q)
  in
  Some
    {
      sl_burn = burn;
      sl_burn_re = burn_re;
      sl_good = int_of_float good;
      sl_good_re = !good_re;
      sl_count = int_of_float count;
      sl_count_re = !count_re;
    }

let serve_load ~jobs ~quick ~out () =
  Obs.set_enabled true;
  (* per-request access logs would drown the report; keep the threshold
     at warn so only slow/failed requests surface *)
  Obs.Log.set_level Obs.Log.Warn;
  let host_domains = Domain.recommended_domain_count () in
  let multicore = host_domains > 1 in
  let auto_workers = max 1 (min 4 (host_domains - 1)) in
  let client_jobs = max 4 (max 1 jobs) in
  (* turbomap: the full ratio search without decomposition, fast enough
     to sustain a meaningful request rate on one core *)
  let hot_body = {|{"circuit":"bbara","k":5,"algo":"turbomap"}|} in
  let cold_keys =
    [|
      ("bbara", 4); ("bbara", 6); ("s298", 4); ("s298", 5); ("s298", 6);
    |]
  in
  let cold_body g =
    let c, k = cold_keys.(g mod Array.length cold_keys) in
    Printf.sprintf {|{"circuit":%S,"k":%d,"algo":"turbomap"}|} c k
  in
  Format.printf "@.== serve-load: %d host domain(s), %d client domain(s) ==@."
    host_domains client_jobs;
  let baseline =
    run_scenario ~name:"baseline" ~workers:1 ~queue_depth:64 ~cache_entries:0
      ~client_jobs:1
      ~total:(if quick then 6 else 12)
      ~body_of:(fun _ -> hot_body)
      ()
  in
  let hot =
    run_scenario ~name:"hot" ~workers:auto_workers ~queue_depth:64
      ~cache_entries:256 ~client_jobs
      ~total:(if quick then 48 else 160)
      ~body_of:(fun _ -> hot_body)
      ()
  in
  let mix =
    run_scenario ~name:"mix" ~workers:auto_workers ~queue_depth:64
      ~cache_entries:256 ~client_jobs
      ~total:(if quick then 24 else 64)
      ~body_of:(fun g -> if g mod 2 = 0 then hot_body else cold_body (g / 2))
      ()
  in
  (* mix again, this time with the sampling profiler attached and SLOs
     configured: same request mix, fresh server and cache, so its p99
     against plain mix measures the profiler's end-to-end overhead
     (doc/PROFILING.md §Overhead budget), and its live /debug endpoints
     feed the burn-rate reproduction and profiler-liveness gates *)
  let slos =
    match Obs.Slo.parse_all [ "route=/map,p99=250ms,err=0.1%" ] with
    | Ok o -> o
    | Error e -> failwith e
  in
  let slo_check = ref None in
  let prof_endpoint_ok = ref false in
  let mix_prof =
    (* the scenario name seeds client request ids, which must stay
       within the X-Request-Id alphabet ([A-Za-z0-9_-]) to round-trip *)
    run_scenario ~name:"mix-prof" ~workers:auto_workers ~queue_depth:64
      ~cache_entries:256 ~client_jobs ~slos ~profile:true
      ~total:(if quick then 24 else 64)
      ~body_of:(fun g -> if g mod 2 = 0 then hot_body else cold_body (g / 2))
      ~after:(fun ~port ->
        let prof = http_get ~port ~path:"/debug/prof" in
        prof_endpoint_ok :=
          resp_status prof = 200
          && (match Obs.Json.of_string (resp_body prof) with
             | Ok doc ->
                 Obs.Json.member "attached" doc = Some (Obs.Json.Bool true)
             | Error _ -> false)
          && resp_status (http_get ~port ~path:"/debug/prof?format=folded")
             = 200;
        slo_check := slo_reproduction ~port)
      ()
  in
  let overload =
    run_scenario ~name:"overload" ~workers:1 ~queue_depth:1 ~cache_entries:0
      ~client_jobs:(max client_jobs 8)
      ~total:(if quick then 24 else 48)
      ~body_of:(fun _ -> hot_body)
      ()
  in
  let scenarios = [ baseline; hot; mix; mix_prof; overload ] in
  let speedup = hot.sr_throughput /. Float.max 1e-9 baseline.sr_throughput in
  (* profiler overhead: p99 of the profiled mix vs the plain mix.  The
     3% floor is the budget; the 50ms absolute slack absorbs scheduler
     noise on the small per-scenario sample counts *)
  let overhead_pct =
    ((mix_prof.sr_p99 /. Float.max 1e-9 mix.sr_p99) -. 1.) *. 100.
  in
  let overhead_ok = mix_prof.sr_p99 <= (mix.sr_p99 *. 1.03) +. 0.050 in
  let gates =
    [
      ( "no_5xx",
        List.for_all (fun s -> s.sr_server_errors = 0) scenarios );
      ("no_client_errors",
        List.for_all (fun s -> s.sr_client_errors = 0) scenarios );
      ("hot_hits_nonzero", hot.sr_hits > 0);
      ("mix_hits_nonzero", mix.sr_hits > 0);
      ("overload_sheds", overload.sr_shed > 0);
      ( "retry_after_on_429",
        List.for_all (fun s -> s.sr_retry_after_missing = 0) scenarios );
      ("healthz_under_overload", overload.sr_healthz_ok);
      ("scrapes_valid", List.for_all (fun s -> s.sr_scrape_ok) scenarios);
      ("hot_speedup_3x", (not multicore) || speedup >= 3.0);
      ("profiler_overhead_3pct", overhead_ok);
      ("prof_endpoint_ok", !prof_endpoint_ok);
      ( "slo_burn_reproduced",
        match !slo_check with Some r -> slo_repro_ok r | None -> false );
    ]
  in
  let doc =
    let open Obs.Json in
    Obj
      [
        ("schema", Str "turbosyn-serve-perf/2");
        ("quick", Bool quick);
        ("host", Obj [ ("recommended_domains", Int host_domains) ]);
        ("baseline_throughput_rps", Float baseline.sr_throughput);
        ("hot_speedup_vs_baseline", Float speedup);
        ("hot_speedup_floor", Float 3.0);
        ("hot_speedup_gated", Bool multicore);
        ( "profiler",
          Obj
            [
              ("p99_off_seconds", Float mix.sr_p99);
              ("p99_on_seconds", Float mix_prof.sr_p99);
              ("overhead_p99_pct", Float overhead_pct);
              ("overhead_floor_pct", Float 3.0);
            ] );
        ( "slo",
          match !slo_check with
          | None -> Null
          | Some r ->
              Obj
                [
                  ("burn_rate_reported", Float r.sl_burn);
                  ("burn_rate_recomputed", Float r.sl_burn_re);
                  ("good_reported", Int r.sl_good);
                  ("good_recomputed", Int r.sl_good_re);
                  ("count_reported", Int r.sl_count);
                  ("count_recomputed", Int r.sl_count_re);
                  ("reproduced", Bool (slo_repro_ok r));
                ] );
        ("scenarios", List (List.map scenario_json scenarios));
        ( "gates",
          Obj
            (List.map (fun (n, ok) -> (n, Bool ok)) gates
            @ [ ("ok", Bool (List.for_all snd gates)) ]) );
      ]
  in
  let oc = open_out out in
  output_string oc (Obs.Json.to_pretty_string doc);
  output_string oc "\n";
  close_out oc;
  Format.printf "hot speedup vs baseline: %.1fx (floor 3.0x, %s)@." speedup
    (if multicore then "gated" else "not gated: single-core host");
  Format.printf
    "profiler p99 overhead on mix: %+.1f%% (%.1fms off, %.1fms on; floor \
     3%% + 50ms slack)@."
    overhead_pct (mix.sr_p99 *. 1e3) (mix_prof.sr_p99 *. 1e3);
  (match !slo_check with
  | Some r ->
      Format.printf
        "slo burn rate: reported %.6f, recomputed from scrape %.6f \
         (good %d/%d vs %d/%d) — %s@."
        r.sl_burn r.sl_burn_re r.sl_good r.sl_count r.sl_good_re r.sl_count_re
        (if slo_repro_ok r then "reproduced" else "MISMATCH")
  | None -> Format.printf "slo burn rate: /debug/slo answer unusable@.");
  Format.printf "wrote %s@." out;
  List.iter
    (fun (n, ok) -> if not ok then Format.printf "GATE FAILED: %s@." n)
    gates;
  Obs.set_enabled false;
  if List.exists (fun s -> s.sr_server_errors > 0) scenarios then exit 3;
  if not (List.for_all snd gates) then exit 2

(* ------------------------------------------------------------------ *)
(* Perf mode: (a) the worklist+arena label engine vs the seed sweep    *)
(* engine on the default TurboSYN flow, and (b) the intra-phi parallel *)
(* scheduler (--jobs N lanes) vs the sequential engine at phi*.  Emits *)
(* BENCH_perf.json (schema turbosyn-perf/4, see doc/PERF.md) and exits *)
(* nonzero when the worklist engine falls below the 2x speedup floor,  *)
(* when any engine/lane configuration disagrees on phi, labels,        *)
(* provenance or audit documents (the hard jobs-invariance gate of     *)
(* doc/CONCURRENCY.md), or — on multicore hosts running with           *)
(* --jobs > 1 — when the intra-phi geomean speedup falls below 1.5x.   *)
(* Schema v3 additions: per-engine cut-engine attribution counters     *)
(* (enumeration / memo / flow layers, doc/PERF.md) and the host's      *)
(* recommended_domains, since the intra_phi columns are wall-clock     *)
(* measurements that depend on the host's core count.                  *)
(* Schema v4 additions: profile_identical — byte-identity of the audit *)
(* document with the Obs.Prof sampler attached, for jobs 1/2/4 on the  *)
(* quick subset (doc/PROFILING.md §Byte identity); a disagreement is   *)
(* exit 1 like every other identity gate.                              *)
(* ------------------------------------------------------------------ *)

let perf_quick_set = [ "bbara"; "s298" ]

(* cut-engine layer attribution read after each timed run; every name is
   documented in doc/OBSERVABILITY.md *)
let perf_counters =
  [
    "cut.enum_hits";
    "cut.enum_misses";
    "cut.memo_hits";
    "cut.memo_misses";
    "cut.memo_stores";
    "maxflow.networks";
    "maxflow.blocking_phases";
  ]

let perf_set =
  [ "bbara"; "bbsse"; "cse"; "donfile"; "keyb"; "s1"; "s298"; "s526" ]

let perf ~quick ~jobs ~out () =
  (* lanes for the intra-phi comparison: the requested --jobs, but at
     least 2 so the parallel scheduler (and its identity gate) is always
     exercised, even on default runs *)
  let lanes = max 2 jobs in
  let multicore = Domain.recommended_domain_count () > 1 in
  Format.printf
    "@.== Perf: worklist+arena engine vs seed sweep engine, and intra-phi \
     lanes (TurboSYN, K=5, jobs=%d, lanes=%d, %s) ==@."
    jobs lanes
    (if multicore then "multicore" else "single core");
  let names = if quick then perf_quick_set else perf_set in
  let base = Turbosyn.Synth.default_options ~k:5 () in
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("phi", Table.Right);
        ("sweep s", Table.Right);
        ("worklist s", Table.Right);
        ("speedup", Table.Right);
        ("sweep tests", Table.Right);
        ("worklist tests", Table.Right);
        ("labels", Table.Right);
        ("phi-run j1", Table.Right);
        (Printf.sprintf "j%d" lanes, Table.Right);
        ("intra x", Table.Right);
        ("ident", Table.Right);
      ]
  in
  let speedups = ref [] in
  let intra_speedups = ref [] in
  let all_ok = ref true in
  let counters_json ks =
    Obs.Json.Obj (List.map (fun (cn, v) -> (cn, Obs.Json.Int v)) ks)
  in
  let rows =
    List.map
      (fun name ->
        let spec = Option.get (Workloads.Suite.find name) in
        let nl = Workloads.Suite.build spec in
        let run engine jobs =
          (* counters on for BOTH timed engines (identical overhead, so
             the speedup ratio is undistorted) to attribute the work to
             the cut-engine layers: enumeration / memo / max-flow *)
          Obs.set_enabled true;
          Obs.reset ();
          let options =
            { base with Turbosyn.Synth.engine; jobs = max 1 jobs }
          in
          let r, dt =
            Timer.time (fun () -> Turbosyn.Synth.run ~options `Turbosyn nl)
          in
          let counters =
            List.map
              (fun cn ->
                (cn, Option.value ~default:0 (Obs.Counter.find cn)))
              perf_counters
          in
          Obs.set_enabled false;
          let cuts =
            match r.Turbosyn.Synth.label_stats with
            | Some s -> s.Seqmap.Label_engine.flow_tests
            | None -> 0
          in
          (r, dt, cuts, counters)
        in
        Format.eprintf "[perf] %s sweep@." name;
        let r_old, t_old, c_old, k_old = run Seqmap.Label_engine.Sweep 1 in
        Format.eprintf "[perf] %s worklist@." name;
        let r_new, t_new, c_new, k_new = run Seqmap.Label_engine.Worklist 1 in
        let phi = r_new.Turbosyn.Synth.phi in
        let phi_equal = Rat.equal r_old.Turbosyn.Synth.phi phi in
        (* label-for-label equivalence at phi*: one extra label run per
           engine (Rat.t is a plain record, structural equality applies) *)
        let labels_of engine =
          let opts =
            {
              (Turbosyn.Synth.engine_options base ~resynthesize:true) with
              Seqmap.Label_engine.engine;
            }
          in
          match Seqmap.Label_engine.run opts nl ~phi with
          | Seqmap.Label_engine.Feasible { labels; _ }, _ -> Some labels
          | Seqmap.Label_engine.Infeasible, _ -> None
        in
        let labels_equal =
          match
            (labels_of Seqmap.Label_engine.Sweep,
             labels_of Seqmap.Label_engine.Worklist)
          with
          | Some a, Some b -> a = b
          | None, None -> true
          | _ -> false
        in
        (* intra-phi lanes: one label run at phi* per lane count; the
           outcome (labels and provenance) must be identical — the hard
           jobs-invariance gate (doc/CONCURRENCY.md) *)
        Format.eprintf "[perf] %s intra-phi (1 vs %d lanes)@." name lanes;
        let label_run jobs' =
          let opts =
            {
              (Turbosyn.Synth.engine_options base ~resynthesize:true) with
              Seqmap.Label_engine.jobs = jobs';
            }
          in
          Timer.time (fun () -> Seqmap.Label_engine.run opts nl ~phi)
        in
        let (o1, _), t_j1 = label_run 1 in
        let (on, _), t_jn = label_run lanes in
        let intra_equal =
          match (o1, on) with
          | ( Seqmap.Label_engine.Feasible { labels = la; prov = pa; _ },
              Seqmap.Label_engine.Feasible { labels = lb; prov = pb; _ } ) ->
              la = lb && pa = pb
          | Seqmap.Label_engine.Infeasible, Seqmap.Label_engine.Infeasible ->
              true
          | _ -> false
        in
        let intra_speedup = t_j1 /. Float.max 1e-9 t_jn in
        intra_speedups := intra_speedup :: !intra_speedups;
        (* full-flow jobs-invariance on the quick subset: whole TurboSYN
           runs under 1 and N lanes must yield byte-equal audit documents;
           and the same runs with the sampling profiler attached must
           yield the SAME documents (doc/PROFILING.md §Byte identity —
           the sampler only reads live span state, this gates any
           accidental write-back) for jobs 1, 2 and 4 *)
        let audit_equal, profile_equal =
          if not (List.mem name perf_quick_set) then (None, None)
          else begin
            Format.eprintf "[perf] %s audit jobs-invariance@." name;
            let doc_of jobs' =
              let options = { base with Turbosyn.Synth.jobs = jobs' } in
              let r = Turbosyn.Synth.run ~options `Turbosyn nl in
              Audit.build ~source:nl ~options r
            in
            let profiled_doc_of jobs' =
              Obs.set_enabled true;
              Obs.reset ();
              Obs.Prof.reset ();
              (* a tick well under the run time, so samples really land *)
              Obs.Prof.attach ~interval:0.002 ();
              let finish () =
                Obs.Prof.detach ();
                Obs.set_enabled false
              in
              match doc_of jobs' with
              | doc ->
                  finish ();
                  doc
              | exception e ->
                  finish ();
                  raise e
            in
            match (doc_of 1, doc_of lanes) with
            | Ok a, Ok b ->
                let jobs_ok =
                  match Audit.equal_documents a b with
                  | Ok () -> true
                  | Error e ->
                      Format.eprintf "[perf] %s audit docs differ: %s@." name
                        e;
                      false
                in
                (* each profiled document is compared against the
                   unprofiled jobs=1 document: jobs-invariance is gated
                   just above, so it stands in for every lane count *)
                let check j =
                  Format.eprintf "[perf] %s profile-identity jobs=%d@." name j;
                  match profiled_doc_of j with
                  | Ok p -> (
                      match Audit.equal_documents a p with
                      | Ok () -> true
                      | Error e ->
                          Format.eprintf
                            "[perf] %s profiled audit differs (jobs=%d): %s@."
                            name j e;
                          false)
                  | Error e ->
                      Format.eprintf
                        "[perf] %s profiled audit build failed (jobs=%d): \
                         %s@."
                        name j e;
                      false
                in
                (Some jobs_ok, Some (List.for_all check [ 1; 2; 4 ]))
            | Error e, _ | _, Error e ->
                Format.eprintf "[perf] %s audit build failed: %s@." name e;
                (Some false, Some false)
          end
        in
        let identical =
          phi_equal && labels_equal && intra_equal
          && audit_equal <> Some false
          && profile_equal <> Some false
        in
        if not identical then all_ok := false;
        let speedup = t_old /. Float.max 1e-9 t_new in
        speedups := speedup :: !speedups;
        Table.add_row t
          [
            name;
            Rat.to_string phi;
            Printf.sprintf "%.2f" t_old;
            Printf.sprintf "%.2f" t_new;
            Printf.sprintf "%.2fx" speedup;
            string_of_int c_old;
            string_of_int c_new;
            (if phi_equal && labels_equal then "same" else "DIFFER");
            Printf.sprintf "%.2f" t_j1;
            Printf.sprintf "%.2f" t_jn;
            Printf.sprintf "%.2fx" intra_speedup;
            (if identical then "same" else "DIFFER");
          ];
        Obs.Json.Obj
          ([
             ("circuit", Obs.Json.Str name);
             ("phi", Obs.Json.Str (Rat.to_string phi));
             ("phi_equal", Obs.Json.Bool phi_equal);
             ("labels_equal", Obs.Json.Bool labels_equal);
             ( "sweep",
               Obs.Json.Obj
                 [
                   ("seconds", Obs.Json.Float t_old);
                   ("cut_tests", Obs.Json.Int c_old);
                   ("counters", counters_json k_old);
                 ] );
             ( "worklist",
               Obs.Json.Obj
                 [
                   ("seconds", Obs.Json.Float t_new);
                   ("cut_tests", Obs.Json.Int c_new);
                   ("counters", counters_json k_new);
                 ] );
             ("speedup", Obs.Json.Float speedup);
             ( "intra_phi",
               Obs.Json.Obj
                 [
                   ("lanes", Obs.Json.Int lanes);
                   ("seconds_seq", Obs.Json.Float t_j1);
                   ("seconds_par", Obs.Json.Float t_jn);
                   ("speedup", Obs.Json.Float intra_speedup);
                   ("identical", Obs.Json.Bool intra_equal);
                   ( "note",
                     Obs.Json.Str
                       "wall-clock columns; speedup depends on the host's \
                        core count (see recommended_domains)" );
                 ] );
           ]
          @ (match audit_equal with
            | None -> []
            | Some b -> [ ("audit_identical", Obs.Json.Bool b) ])
          @
          match profile_equal with
          | None -> []
          | Some b -> [ ("profile_identical", Obs.Json.Bool b) ]))
      names
  in
  let g = geomean !speedups in
  let gi = geomean !intra_speedups in
  Table.add_rule t;
  Table.add_row t
    [
      "geomean"; ""; ""; ""; Printf.sprintf "%.2fx" g; ""; ""; ""; ""; "";
      Printf.sprintf "%.2fx" gi;
    ];
  Table.print t;
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "turbosyn-perf/4");
        ("k", Obs.Json.Int 5);
        ("jobs", Obs.Json.Int jobs);
        ("intra_phi_lanes", Obs.Json.Int lanes);
        ("multicore", Obs.Json.Bool multicore);
        ( "recommended_domains",
          Obs.Json.Int (Domain.recommended_domain_count ()) );
        ("quick", Obs.Json.Bool quick);
        ("geomean_speedup", Obs.Json.Float g);
        ("intra_phi_geomean_speedup", Obs.Json.Float gi);
        ("circuits", Obs.Json.List rows);
      ]
  in
  let oc = open_out out in
  output_string oc (Obs.Json.to_pretty_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf
    "wrote %s (geomean speedup %.2fx; intra-phi %.2fx over %d lanes)@." out g
    gi lanes;
  if not !all_ok then begin
    Format.eprintf
      "perf: result disagreement between engines or lane counts@.";
    exit 1
  end;
  (* floor raised with the three-layer cut engine (enumeration pre-filter,
     cross-phi memo, Dinic): the worklist engine must now beat the seed
     sweep engine outright, not merely avoid regressing *)
  if g < 2.0 then begin
    Format.eprintf "perf: worklist speedup %.2fx below the 2.0x floor@." g;
    exit 1
  end;
  (* the speedup gate is meaningful only when lanes can actually run in
     parallel: on a single-core host the identity gate above is the
     binding check and the lanes merely add scheduling overhead *)
  if jobs > 1 && multicore && gi < 1.5 then begin
    Format.eprintf
      "perf: intra-phi speedup %.2fx below the 1.5x floor on a multicore \
       host@."
      gi;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table + core kernels   *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  Format.printf "@.== Micro-benchmarks (bechamel, ns/run) ==@.";
  let bbara = Workloads.Suite.build (Option.get (Workloads.Suite.find "bbara")) in
  let small =
    Workloads.Generate.mixer (Rng.create 5) ~pis:3 ~pos:2 ~gates:24
      ~ff_density:0.25
  in
  let tests =
    [
      (* one Test.make per reproduced table, on reduced inputs *)
      Test.make ~name:"table1-row: tm+ts+fs on a 24-gate mixer"
        (Staged.stage (fun () ->
             List.iter (fun (_, a) -> ignore (run_algo ~k:4 a small)) algos));
      Test.make ~name:"table2-area: reduce bbara"
        (Staged.stage (fun () -> ignore (Turbosyn.Area.reduce bbara ~k:5)));
      Test.make ~name:"table3-pld: one infeasible probe"
        (Staged.stage (fun () ->
             let opts = Seqmap.Label_engine.default_options ~k:4 in
             ignore (Seqmap.Label_engine.run opts small ~phi:(Rat.make 1 3))));
      (* core kernels *)
      Test.make ~name:"kernel: exact MDR of bbara"
        (Staged.stage (fun () -> ignore (Circuit.Netlist.mdr_ratio bbara)));
      Test.make ~name:"kernel: pipelined retiming of bbara"
        (Staged.stage (fun () -> ignore (Retime.Pipeline.min_period bbara)));
      Test.make ~name:"kernel: simulate bbara for 64 cycles"
        (Staged.stage (fun () ->
             let sim = Sim.Simulator.create bbara in
             let width = List.length (Circuit.Netlist.pis bbara) in
             for i = 0 to 63 do
               ignore (Sim.Simulator.step sim (Array.make width (i land 1 = 0)))
             done));
      Test.make ~name:"kernel: decompose xor8 into 4-LUTs"
        (Staged.stage (fun () ->
             let man = Bdd.new_man () in
             let f = ref (Bdd.bdd_false man) in
             for i = 0 to 7 do
               f := Bdd.xor man !f (Bdd.var man i)
             done;
             ignore
               (Decomp.Decompose.decompose man ~f:!f
                  ~vars:(Array.init 8 Fun.id)
                  ~arrivals:(Array.make 8 Rat.zero) ~k:4)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let a = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some (est :: _) -> Format.printf "%-45s %14.0f ns/run@." name est
          | _ -> Format.printf "%-45s (no estimate)@." name)
        a)
    tests

(* ------------------------------------------------------------------ *)

let () =
  (* flags: --quick, --jobs N, --out FILE (perf and serve-load modes);
     --json FILE, --circuit NAME, --algo NAME, --diff A B (stats mode).
     --out defaults per mode: BENCH_perf.json (perf),
     BENCH_serve_perf.json (serve-load). *)
  let quick = ref false and jobs = ref 1 and out = ref "" in
  let json = ref None and circuit = ref "bbara" and diff = ref None in
  let algo = ref "turbosyn" and write_baseline = ref false in
  let rec strip = function
    | [] -> []
    | "--quick" :: rest ->
        quick := true;
        strip rest
    | "--write-baseline" :: rest ->
        write_baseline := true;
        strip rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with Some j -> jobs := j | None -> ());
        strip rest
    | "--out" :: f :: rest ->
        out := f;
        strip rest
    | "--json" :: f :: rest ->
        json := Some f;
        strip rest
    | "--circuit" :: c :: rest ->
        circuit := c;
        strip rest
    | "--algo" :: a :: rest ->
        algo := a;
        strip rest
    | "--diff" :: a :: b :: rest ->
        diff := Some (a, b);
        strip rest
    | a :: rest -> a :: strip rest
  in
  let modes =
    match strip (List.tl (Array.to_list Sys.argv)) with
    | [] ->
        [ "table1"; "table2"; "table3"; "ablation-k"; "ablation-cmax";
          "ablation-mdr"; "ablation-seqmap2"; "micro" ]
    | args ->
        if List.mem "all" args then
          [ "table1"; "table2"; "table3"; "ablation-k"; "ablation-cmax";
            "ablation-mdr"; "ablation-seqmap2"; "micro" ]
        else args
  in
  List.iter
    (function
      | "table1" -> table1 ()
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "ablation-k" -> ablation_k ()
      | "ablation-cmax" -> ablation_cmax ()
      | "ablation-mdr" -> ablation_mdr ()
      | "ablation-seqmap2" -> ablation_seqmap2 ()
      | "stats" -> (
          if !write_baseline then
            (* regenerate the committed regression baseline in place (see
               doc/OBSERVABILITY.md §Regression gating) *)
            stats_json ~circuit:"bbara" ~algo:"turbosyn"
              ~out:"BENCH_stats_baseline.json" ()
          else
            match (!diff, !json) with
            | Some (a, b), _ -> stats_diff a b
            | None, Some f -> stats_json ~circuit:!circuit ~algo:!algo ~out:f ()
            | None, None -> stats_mode ())
      | "serve-load" ->
          serve_load ~jobs:!jobs ~quick:!quick
            ~out:(if !out = "" then "BENCH_serve_perf.json" else !out)
            ()
      | "perf" ->
          perf ~quick:!quick ~jobs:!jobs
            ~out:(if !out = "" then "BENCH_perf.json" else !out)
            ()
      | "micro" -> micro ()
      | other -> Format.eprintf "unknown mode %s@." other)
    modes
