(* Canonical structural digests via Weisfeiler-Lehman refinement.

   Names and declaration order must not influence the digest, so no
   node id, wire name or circuit name ever enters a hash.  What does:

     - per node, a local signature: kind tag, and for gates the
       truth-table arity and bits;
     - per refinement round, the position-ordered (j, weight, fanin
       signature) triples of every fanin edge — fanin position is
       semantic (truth-table input j is fanin j), so the fold is
       ordered, which also makes the hash stronger than a sorted-WL;
     - at the end, the *sorted* multiset of final node signatures (and
       the PI/PO/gate counts), which is where permutation invariance
       comes from.

   Sequential circuits are cyclic (FF edges close loops), so a
   structural hash cannot recurse over the DAG; refinement iterates a
   local absorb step instead and stops when the partition induced by
   the signatures stops refining (one extra round absorbs the final
   neighborhood, and rounds are capped at the node count, the WL
   stabilization bound). *)

(* splitmix64 finalizer: the 64-bit mixer everything below builds on *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let combine (h : int64) (v : int64) : int64 =
  mix64 (Int64.add (Int64.mul h 0x100000001B3L) v)

let tag_pi = 0x5049L (* "PI" *)
let tag_po = 0x504FL
let tag_gate = 0x4754L

let local_signature kinds i =
  match kinds.(i) with
  | Netlist.Pi -> mix64 tag_pi
  | Netlist.Po -> mix64 tag_po
  | Netlist.Gate f ->
      let h = combine tag_gate (Int64.of_int (Logic.Truthtable.arity f)) in
      combine h (Logic.Truthtable.bits f)

(* distinct-signature count: the partition proxy that drives the
   stopping rule.  Hash-set over a sorted copy would allocate; a sort +
   linear scan is O(n log n) per round and n is circuit-sized. *)
let distinct_count (a : int64 array) =
  let b = Array.copy a in
  Array.sort Int64.unsigned_compare b;
  let d = ref (if Array.length b = 0 then 0 else 1) in
  for i = 1 to Array.length b - 1 do
    if not (Int64.equal b.(i) b.(i - 1)) then incr d
  done;
  !d

let refine nl =
  let n = Netlist.n nl in
  let kinds = Array.init n (Netlist.kind nl) in
  let fanins = Array.init n (Netlist.fanins nl) in
  let h = Array.init n (local_signature kinds) in
  let h' = Array.make n 0L in
  let absorb () =
    for v = 0 to n - 1 do
      let acc = ref h.(v) in
      Array.iteri
        (fun j (drv, w) ->
          let e = combine (Int64.of_int j) (Int64.of_int w) in
          acc := combine !acc (combine e h.(drv)))
        fanins.(v);
      h'.(v) <- mix64 !acc
    done;
    Array.blit h' 0 h 0 n
  in
  let rec go rounds classes =
    absorb ();
    let classes' = distinct_count h in
    (* refinement is monotone: once the class count stops growing the
       partition is stable; one more absorb has already folded the
       stable neighborhood in, so stop here *)
    if classes' > classes && rounds < n then go (rounds + 1) classes'
  in
  if n > 0 then go 1 (distinct_count h);
  h

let digest_pair nl =
  let h = refine nl in
  Array.sort Int64.unsigned_compare h;
  let stats =
    let s = Netlist.stats nl in
    combine
      (combine (Int64.of_int s.Netlist.n_pi) (Int64.of_int s.Netlist.n_po))
      (Int64.of_int s.Netlist.n_gates)
  in
  (* two independent folds over the same sorted signatures: different
     seeds and a per-step decorrelating constant give 128 bits that do
     not degrade to 64 under simple relations *)
  let fold seed salt =
    Array.fold_left (fun acc v -> combine acc (Int64.logxor v salt)) seed h
  in
  let a = combine (fold 0x74757262_6F73796EL 0L) stats in
  let b = combine (fold 0x63616E6F_6E696361L 0xA5A5A5A5_A5A5A5A5L) stats in
  (mix64 a, mix64 b)

let digest nl =
  let a, b = digest_pair nl in
  Printf.sprintf "%016Lx%016Lx" a b

let digest64 nl = fst (digest_pair nl)
