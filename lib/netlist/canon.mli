(** Canonical circuit digests.

    {!digest} hashes a circuit's {e structure}: the digest is invariant
    under gate/wire renaming, node-declaration order (any permutation of
    gate ids) and the circuit's name, while any structural change — a
    flipped truth-table bit, a moved flip-flop, a rewired fanin — yields
    a different digest with overwhelming probability.  Two circuits that
    are isomorphic as retiming graphs (same gates, same functions, same
    weighted wiring, up to renaming) digest identically.

    This is the key of the serve-layer result cache
    ([doc/CONCURRENCY.md] §Serving): identical submissions — however
    they name their wires or order their declarations — dedupe to one
    computation.

    The digest is a Weisfeiler–Lehman-style refinement hash: every node
    starts from a local signature (node kind; truth-table bits and arity
    for gates) and repeatedly absorbs the position-ordered signatures of
    its fanins together with the edge weights, until the induced
    partition of nodes stops refining; the circuit digest folds the
    sorted multiset of final node signatures through two independent
    64-bit mixers.  Refinement hashing is not a complete isomorphism
    test, but a collision between distinct circuits requires either a
    64-bit×2 hash collision or two structures WL-refinement cannot
    separate — neither occurs on non-adversarial workloads (the test
    suite asserts all suite circuits digest pairwise distinctly). *)

val digest : Netlist.t -> string
(** 32 lower-case hex characters (128 bits). *)

val digest64 : Netlist.t -> int64
(** The first half of {!digest}, as a raw value (for tests and cheap
    in-process keying). *)
