(** The serve layer's result cache: an LRU over rendered response
    bodies, keyed by canonical circuit digest, with single-flight
    deduplication.

    Single flight: when several requests for one key arrive while none
    has completed, exactly one caller computes; the rest block until
    the computation lands and then reuse its bytes ([Join]).  A failed
    computation is never cached — waiters retry (at most one becomes
    the next leader), and errors propagate only to the caller that
    computed them.

    Thread-safety: every operation may be called from any domain.  The
    compute callback runs {e outside} the cache lock, so long
    computations never block unrelated keys. *)

type t

type outcome =
  | Hit  (** served from the cache, no computation *)
  | Miss  (** this caller computed (and, on success, populated) *)
  | Join  (** waited on a concurrent in-flight computation *)
  | Bypass  (** capacity 0: caching disabled, computed directly *)

val outcome_label : outcome -> string
(** The [X-Cache] marker: [Hit]/[Join] are ["hit"], [Miss] is ["miss"],
    [Bypass] is ["bypass"] — a join served bytes it did not compute. *)

val create : capacity:int -> t
(** LRU over at most [capacity] completed entries ([>= 0]; [0]
    disables caching — every lookup is a [Bypass]).
    @raise Invalid_argument on a negative capacity. *)

val find_or_compute :
  t -> key:string -> (unit -> (string, string) result) -> (string, string) result * outcome
(** Return the cached bytes for [key], or run the callback to produce
    them.  [Ok] results are cached (evicting the least-recently-used
    entry beyond capacity); [Error]s and exceptions are not, and
    exceptions re-raise in the computing caller only. *)

val length : t -> int
(** Completed entries currently cached (in-flight entries excluded). *)

val capacity : t -> int
