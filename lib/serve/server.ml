(* A dependency-free HTTP/1.1 serving stack over [Unix] exposing the
   mapping pipeline as a service: POST /map runs a synthesis request,
   /metrics is a Prometheus scrape of the Obs registries, /healthz a
   liveness probe with pool/cache gauges, and /debug/requests +
   /debug/trace/<id> introspect the recent-request ring.

   Serve v2 architecture (doc/CONCURRENCY.md §Serving):

     accept lane ──> bounded Bqueue ──> N worker domains
          │                                  │
          │ inline: /healthz /metrics        │ /map: parse, canonical
          │         /debug/*  (cheap)        │ digest, cache lookup,
          │ full queue: shed 429             │ Synth.run on miss
          └──────────── one Prelude.Pool ────┘

   The accept lane owns the listen socket and the request *read*: it
   parses the HTTP envelope, answers the cheap routes inline, and hands
   /map jobs (fd + parsed request) to the queue.  Worker domains own
   the /map compute and the response write.  Admission control is the
   queue bound: a full queue sheds with 429 + Retry-After instead of
   queueing unboundedly, and the monitoring routes stay answerable
   from the accept lane even under full overload.

   Result cache: /map responses are cached under a canonical circuit
   digest (Circuit.Canon — invariant under wire renaming and
   declaration order) plus (algo, k).  Lookups are single-flight
   (Cache): concurrent identical submissions compute once, and every
   /map response carries an [X-Cache: hit|miss|bypass] marker.

   Observability under concurrency: each /map request runs inside an
   Obs.Scope on its worker domain, so every counter/span/histogram
   write lands in the request's shard.  The process-global registries
   are only ever touched under [registry_mutex]: scope closes (the
   shard merge), the accept lane's inline-route counters, and the
   /metrics render all serialize there — scrape counters stay monotone
   and torn reads cannot happen.  Gauges are point-in-time: they are
   written at scrape time from the server's atomics, never from
   workers.

   Correlation ids: the client may supply one (X-Request-Id, or the
   trace-id field of a W3C traceparent header); otherwise the server
   generates one.  Every response echoes it as X-Request-Id, and every
   access-log line, ring entry and per-request trace carries it. *)

module J = Obs.Json

let s_request = Obs.Span.make "serve.request"
let h_request = Obs.Histogram.make "serve.request_seconds"
let h_queue_wait = Obs.Histogram.make "serve.queue_wait_seconds"
let g_inflight = Obs.Gauge.make "serve.inflight"
let g_queue_depth = Obs.Gauge.make "serve.queue_depth"
let g_workers = Obs.Gauge.make "serve.workers"
let g_workers_busy = Obs.Gauge.make "serve.workers_busy"
let g_cache_size = Obs.Gauge.make "serve.cache_size"
let g_cache_capacity = Obs.Gauge.make "serve.cache_capacity"
let c_cache_hits = Obs.Counter.make "serve.cache_hits"
let c_cache_misses = Obs.Counter.make "serve.cache_misses"
let c_cache_joins = Obs.Counter.make "serve.cache_joins"
let c_shed = Obs.Counter.make "serve.shed"

(* Profiler accounting, mirrored from Obs.Prof's private state at
   scrape time only (the tick thread must never touch the
   unsynchronized registries; doc/PROFILING.md §Overhead budget).
   Gauges, not counters: a detach/re-attach cycle may reset them. *)
let g_prof_samples = Obs.Gauge.make "prof.samples"
let g_prof_dropped = Obs.Gauge.make "prof.dropped"
let g_prof_overhead = Obs.Gauge.make "prof.overhead_seconds"

(* Everything process-global in Obs (counters, spans, histograms,
   timeline) is unsynchronized; with worker domains closing scopes
   concurrently, every direct registry touch — merge, render, inline
   counter bump — must hold this mutex.  Shard-local writes inside a
   scope need no lock (doc/CONCURRENCY.md §Serving ownership rules). *)
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ------------------------------------------------------------------ *)
(* Request counters: sharded Obs counters, one per (route, status)     *)
(* ------------------------------------------------------------------ *)

(* [serve.requests.<route>.<status>] counters; incremented from inside
   a request scope they land in the request's shard (merged under
   [registry_mutex] at close), from the accept lane they are bumped
   under the lock — either way worker domains never race the registry.
   The scrape re-renders them as one labeled family
   ([turbosyn_serve_requests_total{route=...,status=...}]) and
   suppresses the flat per-counter families via [exclude_prefixes]. *)
let requests_prefix = "serve.requests."

let count_request ~route ~status =
  Obs.Counter.incr
    (Obs.Counter.make (Printf.sprintf "%s%s.%d" requests_prefix route status))

let count_request_unscoped ~route ~status =
  with_registry (fun () -> count_request ~route ~status)

let request_family () =
  let plen = String.length requests_prefix in
  let samples =
    List.filter_map
      (fun (name, v) ->
        if
          String.length name > plen
          && String.sub name 0 plen = requests_prefix
        then
          let rest = String.sub name plen (String.length name - plen) in
          match String.rindex_opt rest '.' with
          | Some i ->
              Some
                {
                  Obs.Prometheus.labels =
                    [
                      ("route", String.sub rest 0 i);
                      ( "status",
                        String.sub rest (i + 1) (String.length rest - i - 1)
                      );
                    ];
                  value = float_of_int v;
                }
          | None -> None
        else None)
      (Obs.Counter.all ())
    |> List.sort compare
  in
  {
    Obs.Prometheus.fname = "serve.requests";
    fhelp = "HTTP requests handled, by route and status.";
    ftype = `Counter;
    samples;
  }

(* [serve.response_bytes.<route>] counters, same sharding/locking story
   as the request counters, re-rendered as
   [turbosyn_serve_response_bytes_total{route=...}]. *)
let response_bytes_prefix = "serve.response_bytes."

let count_response_bytes ~route bytes =
  if bytes > 0 then
    Obs.Counter.add (Obs.Counter.make (response_bytes_prefix ^ route)) bytes

let response_bytes_family () =
  let plen = String.length response_bytes_prefix in
  let samples =
    List.filter_map
      (fun (name, v) ->
        if
          String.length name > plen
          && String.sub name 0 plen = response_bytes_prefix
        then
          Some
            {
              Obs.Prometheus.labels =
                [ ("route", String.sub name plen (String.length name - plen)) ];
              value = float_of_int v;
            }
        else None)
      (Obs.Counter.all ())
    |> List.sort compare
  in
  {
    (* extra families get no automatic _total suffix; spell it out *)
    Obs.Prometheus.fname = "serve.response_bytes_total";
    fhelp = "HTTP response body bytes written, by route.";
    ftype = `Counter;
    samples;
  }

(* Per-route end-to-end latency (accept to response written), the
   histograms the SLO engine evaluates.  Flat families
   ([turbosyn_serve_route_seconds_<route>_bucket]) — each route keeps
   its own exact bucket counts, which is what makes /debug/slo burn
   rates reproducible from a scrape. *)
let route_seconds_prefix = "serve.route_seconds."
let route_hist route = Obs.Histogram.make (route_seconds_prefix ^ route)

(* ------------------------------------------------------------------ *)
(* Correlation ids                                                     *)
(* ------------------------------------------------------------------ *)

let sane_id_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true
  | _ -> false

(* oversized ids are rejected, not truncated: a truncated echo would no
   longer match what the client logged, defeating the join *)
let sanitize_id s =
  if s <> "" && String.length s <= 64 && String.for_all sane_id_char s then
    Some s
  else None

let is_hex s = String.for_all (function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false) s

(* W3C traceparent: "00-<32 hex trace-id>-<16 hex parent-id>-<flags>";
   the trace-id becomes our correlation id *)
let id_of_traceparent v =
  match String.split_on_char '-' (String.trim v) with
  | [ _version; trace_id; _parent; _flags ]
    when String.length trace_id = 32 && is_hex trace_id ->
      Some (String.lowercase_ascii trace_id)
  | _ -> None

let request_id_of_headers headers =
  match
    Option.bind (List.assoc_opt "x-request-id" headers) sanitize_id
  with
  | Some id -> id
  | None -> (
      match
        Option.bind (List.assoc_opt "traceparent" headers) id_of_traceparent
      with
      | Some id -> id
      | None -> Obs.Scope.fresh_id ())

(* ------------------------------------------------------------------ *)
(* Recent-request ring (/debug/requests, /debug/trace/<id>)            *)
(* ------------------------------------------------------------------ *)

type req_record = {
  rr_id : string;
  rr_route : string;
  rr_status : int;
  rr_outcome : string;
  rr_cache : string option; (* X-Cache marker, /map only *)
  rr_started : float;
  rr_seconds : float;
  rr_summary : Obs.Scope.summary option; (* scoped routes (/map) only *)
}

let debug_ring_default_capacity = 256
let debug_ring_capacity = ref debug_ring_default_capacity
let debug_ring : req_record Queue.t = Queue.create ()

(* accept lane and worker domains both record; reads serve /debug *)
let ring_mutex = Mutex.create ()

let with_ring f =
  Mutex.lock ring_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock ring_mutex) f

let remember rr =
  with_ring (fun () ->
      if !debug_ring_capacity > 0 then begin
        if Queue.length debug_ring >= !debug_ring_capacity then
          ignore (Queue.pop debug_ring);
        Queue.add rr debug_ring
      end)

let find_request id =
  with_ring (fun () ->
      Queue.fold
        (fun acc rr -> if String.equal rr.rr_id id then Some rr else acc)
        None debug_ring)

(* Slowest-N exemplars per route: request ids a /debug/slo reader can
   follow straight into /debug/trace/<id>.  Tiny sorted lists under
   their own mutex, updated on every completion. *)
let exemplar_capacity = 5

let exemplars : (string, (string * float * int) list) Hashtbl.t =
  Hashtbl.create 8

let exemplar_mutex = Mutex.create ()

let remember_exemplar ~route ~id ~seconds ~status =
  if id <> "" then begin
    Mutex.lock exemplar_mutex;
    let l = Option.value ~default:[] (Hashtbl.find_opt exemplars route) in
    let l =
      (id, seconds, status) :: l
      |> List.sort (fun (_, a, _) (_, b, _) -> Float.compare b a)
      |> List.filteri (fun i _ -> i < exemplar_capacity)
    in
    Hashtbl.replace exemplars route l;
    Mutex.unlock exemplar_mutex
  end

let exemplars_for route =
  Mutex.lock exemplar_mutex;
  let l = Option.value ~default:[] (Hashtbl.find_opt exemplars route) in
  Mutex.unlock exemplar_mutex;
  l

(* outcome vocabulary (doc/OBSERVABILITY.md §Request scopes): "served"
   for success, "cached" for success straight from the result cache,
   "rejected" for client errors, "shed" for admission-control 429s,
   "failed" for server errors. *)
let outcome_of_status status =
  if status < 400 then "served"
  else if status = 429 then "shed"
  else if status < 500 then "rejected"
  else "failed"

let phases_json (summary : Obs.Scope.summary) =
  J.Obj
    (List.map
       (fun (name, seconds, _entries) -> (name, J.Float seconds))
       summary.Obs.Scope.sc_spans)

let resources_json (r : Obs.Scope.resources) =
  J.Obj
    [
      ("cpu_seconds", J.Float r.Obs.Scope.r_cpu_seconds);
      ("minor_words", J.Float r.Obs.Scope.r_minor_words);
      ("promoted_words", J.Float r.Obs.Scope.r_promoted_words);
      ("major_words", J.Float r.Obs.Scope.r_major_words);
      ("queue_wait_seconds", J.Float r.Obs.Scope.r_queue_wait);
    ]

let request_json rr =
  J.Obj
    ([
       ("id", J.Str rr.rr_id);
       ("route", J.Str rr.rr_route);
       ("status", J.Int rr.rr_status);
       ("outcome", J.Str rr.rr_outcome);
     ]
    @ (match rr.rr_cache with
      | None -> []
      | Some m -> [ ("cache", J.Str m) ])
    @ [
        ("started", J.Float rr.rr_started);
        ("seconds", J.Float rr.rr_seconds);
      ]
    @
    match rr.rr_summary with
    | None -> []
    | Some s ->
        [
          ("phases", phases_json s);
          ("resources", resources_json s.Obs.Scope.sc_resources);
        ])

let debug_requests_json () =
  let capacity, count, newest_first =
    with_ring (fun () ->
        ( !debug_ring_capacity,
          Queue.length debug_ring,
          Queue.fold (fun acc rr -> request_json rr :: acc) [] debug_ring ))
  in
  J.Obj
    [
      ("schema", J.Str "turbosyn-debug-requests/1");
      ("capacity", J.Int capacity);
      ("count", J.Int count);
      ("requests", J.List newest_first);
    ]

(* ------------------------------------------------------------------ *)
(* Mapping requests                                                    *)
(* ------------------------------------------------------------------ *)

let algo_of_string = function
  | "turbosyn" -> Some `Turbosyn
  | "turbomap" -> Some `Turbomap
  | "flowsyn-s" -> Some `Flowsyn_s
  | _ -> None

(* The response document is a deterministic function of (circuit, algo,
   k): no timings, no machine state.  The same renderer backs the serve
   path (cache miss), the cached bytes (stored rendered), and the
   test's direct [Synth.run] comparison, so byte equality holds for
   every worker count, hit or miss. *)
let result_json ~circuit ~k (r : Turbosyn.Synth.result) =
  J.Obj
    [
      ("schema", J.Str "turbosyn-serve/1");
      ("circuit", J.Str circuit);
      ("algo", J.Str (Turbosyn.Synth.algo_name r.Turbosyn.Synth.algo));
      ("k", J.Int k);
      ("phi", J.Str (Prelude.Rat.to_string r.Turbosyn.Synth.phi));
      ("clock_period", J.Int r.Turbosyn.Synth.clock_period);
      ("latency", J.Int r.Turbosyn.Synth.latency);
      ("luts", J.Int r.Turbosyn.Synth.luts);
      ("probes", J.Int r.Turbosyn.Synth.probes);
      ( "labels",
        match r.Turbosyn.Synth.labels with
        | None -> J.Null
        | Some labels ->
            J.List
              (Array.to_list
                 (Array.map
                    (fun l -> J.Str (Prelude.Rat.to_string l))
                    labels)) );
    ]

let map_response ~circuit ~k ~algo =
  match Workloads.Suite.find circuit with
  | None -> Error (Printf.sprintf "unknown circuit %S" circuit)
  | Some spec ->
      if k < 2 || k > 16 then Error (Printf.sprintf "k out of range: %d" k)
      else
        let nl = Workloads.Suite.build spec in
        let options = Turbosyn.Synth.default_options ~k () in
        let r = Turbosyn.Synth.run ~options algo nl in
        Ok (result_json ~circuit ~k r)

(* the result-cache key: canonical structural digest — renames and
   declaration order do not fragment the cache — plus the request
   parameters the result depends on *)
let cache_key nl ~k ~algo =
  Printf.sprintf "%s/%s/k%d" (Circuit.Canon.digest nl)
    (Turbosyn.Synth.algo_name algo)
    k

(* the cached /map body: rendered bytes, exactly what [respond_json]
   would write, so hits and misses answer identical payloads *)
let map_body_cached cache ~circuit ~k ~algo =
  match Workloads.Suite.find circuit with
  | None -> (Error (Printf.sprintf "unknown circuit %S" circuit), Cache.Bypass)
  | Some spec ->
      if k < 2 || k > 16 then
        (Error (Printf.sprintf "k out of range: %d" k), Cache.Bypass)
      else
        let nl = Workloads.Suite.build spec in
        Cache.find_or_compute cache ~key:(cache_key nl ~k ~algo) (fun () ->
            let options = Turbosyn.Synth.default_options ~k () in
            let r = Turbosyn.Synth.run ~options algo nl in
            Ok (J.to_string (result_json ~circuit ~k r) ^ "\n"))

(* body may be a JSON object {"circuit": ..., "k": ..., "algo": ...};
   query parameters (circuit, k, algo) override nothing — they are the
   GET-form of the same request and looked up when the body is absent *)
let parse_map_request ~query ~body =
  let from_query key = List.assoc_opt key query in
  let doc =
    match body with
    | "" -> Ok None
    | s -> Result.map Option.some (J.of_string s)
  in
  match doc with
  | Error e -> Error ("invalid JSON body: " ^ e)
  | Ok doc -> (
      let str key =
        match Option.bind doc (J.member key) with
        | Some (J.Str s) -> Some s
        | Some _ -> None
        | None -> from_query key
      in
      let int key =
        match Option.bind doc (J.member key) with
        | Some (J.Int i) -> Some (Some i)
        | Some _ -> Some None (* present but not an int: reject *)
        | None -> (
            match from_query key with
            | Some s -> Some (int_of_string_opt s)
            | None -> None)
      in
      match str "circuit" with
      | None -> Error "missing \"circuit\""
      | Some circuit -> (
          let k =
            match int "k" with
            | None -> Ok 5
            | Some (Some i) -> Ok i
            | Some None -> Error "\"k\" is not an integer"
          in
          let algo =
            match str "algo" with
            | None -> Ok `Turbosyn
            | Some name -> (
                match algo_of_string name with
                | Some a -> Ok a
                | None -> Error (Printf.sprintf "unknown algo %S" name))
          in
          match (k, algo) with
          | Ok k, Ok algo -> Ok (circuit, k, algo)
          | Error e, _ | _, Error e -> Error e))

(* ------------------------------------------------------------------ *)
(* HTTP plumbing                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;  (** worker domains draining the /map queue, >= 1 *)
  queue_depth : int;  (** /map jobs admitted beyond the in-flight ones *)
  cache_entries : int;  (** LRU capacity of the result cache; 0 = off *)
  slow_seconds : float;
  slos : Obs.Slo.objective list;
  profile : bool;  (** attach the Obs.Prof sampler for the run's life *)
  profile_interval : float;
}

type job = {
  jb_fd : Unix.file_descr;
  jb_id : string;
  jb_meth : string;
  jb_query : (string * string) list;
  jb_body : string;
  jb_accepted : float; (* wall clock at enqueue, for queue-wait *)
}

type t = {
  listen : Unix.file_descr;
  port : int;
  config : config;
  stopped : bool Atomic.t;
  queue : job Prelude.Bqueue.t;
  cache : Cache.t;
  busy : int Atomic.t; (* workers currently inside a /map job *)
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

(* returns the body byte count (= the Content-Length written), so every
   completion path can feed the serve.response_bytes counters *)
let respond fd ?(headers = []) ~status ~content_type body =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%s\
       Connection: close\r\n\r\n"
      status (status_text status) content_type (String.length body) extra
  in
  write_all fd (head ^ body);
  String.length body

let respond_json fd ?headers ~status json =
  respond fd ?headers ~status ~content_type:"application/json"
    (J.to_string json ^ "\n")

let respond_error fd ?headers ~status msg =
  respond_json fd ?headers ~status (J.Obj [ ("error", J.Str msg) ])

(* read until the header terminator, then Content-Length body bytes *)
let read_request fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let header_end () =
    let s = Buffer.contents buf in
    let rec find i =
      if i + 3 >= String.length s then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
              && s.[i + 3] = '\n'
      then Some (i + 4)
      else find (i + 1)
    in
    find 0
  in
  let rec read_headers () =
    match header_end () with
    | Some e -> Some e
    | None ->
        if Buffer.length buf > 1 lsl 20 then None (* oversized header *)
        else
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n = 0 then None
          else begin
            Buffer.add_subbytes buf chunk 0 n;
            read_headers ()
          end
  in
  match read_headers () with
  | None -> None
  | Some body_start ->
      let raw = Buffer.contents buf in
      let head = String.sub raw 0 body_start in
      let lines = String.split_on_char '\n' head in
      let request_line =
        match lines with l :: _ -> String.trim l | [] -> ""
      in
      let headers =
        List.filter_map
          (fun l ->
            match String.index_opt l ':' with
            | Some i ->
                Some
                  ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
                    String.trim
                      (String.sub l (i + 1) (String.length l - i - 1)) )
            | None -> None)
          (List.tl lines)
      in
      let content_length =
        match List.assoc_opt "content-length" headers with
        | Some v -> Option.value ~default:0 (int_of_string_opt v)
        | None -> 0
      in
      let content_length = min content_length (1 lsl 24) in
      let body = Buffer.create content_length in
      Buffer.add_string body
        (String.sub raw body_start (String.length raw - body_start));
      let rec fill () =
        if Buffer.length body < content_length then begin
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes body chunk 0 n;
            fill ()
          end
        end
      in
      fill ();
      (match String.split_on_char ' ' request_line with
      | meth :: target :: _ -> Some (meth, target, headers, Buffer.contents body)
      | _ -> None)

let parse_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let qs = String.sub target (i + 1) (String.length target - i - 1) in
      let query =
        List.filter_map
          (fun kv ->
            match String.index_opt kv '=' with
            | Some j ->
                Some
                  ( String.sub kv 0 j,
                    String.sub kv (j + 1) (String.length kv - j - 1) )
            | None -> None)
          (String.split_on_char '&' qs)
      in
      (path, query)

(* ------------------------------------------------------------------ *)
(* Access logging + ring, shared by every completion path              *)
(* ------------------------------------------------------------------ *)

let log_access t ~route ~meth ~path ~status ~outcome ~cache ~started ~summary =
  let seconds = Prelude.Timer.wall () -. started in
  let id = Obs.Log.current_request_id () |> Option.value ~default:"" in
  (* the SLO engine's per-route latency distribution: end-to-end
     seconds, accept to response written, every completion path *)
  with_registry (fun () -> Obs.Histogram.observe (route_hist route) seconds);
  remember_exemplar ~route ~id ~seconds ~status;
  remember
    {
      rr_id = id;
      rr_route = route;
      rr_status = status;
      rr_outcome = outcome;
      rr_cache = cache;
      rr_started = started;
      rr_seconds = seconds;
      rr_summary = summary;
    };
  let phase_fields =
    match summary with
    | None -> []
    | Some s ->
        [
          ("phases", phases_json s);
          ("resources", resources_json s.Obs.Scope.sc_resources);
        ]
  in
  let cache_fields =
    match cache with None -> [] | Some m -> [ ("cache", J.Str m) ]
  in
  Obs.Log.info "serve.access"
    ([
       ("route", J.Str route);
       ("method", J.Str meth);
       ("path", J.Str path);
       ("status", J.Int status);
       ("outcome", J.Str outcome);
       ("seconds", J.Float seconds);
     ]
    @ cache_fields @ phase_fields);
  if seconds > t.config.slow_seconds then
    Obs.Log.warn "serve.slow"
      ([
         ("route", J.Str route);
         ("status", J.Int status);
         ("seconds", J.Float seconds);
         ("threshold_seconds", J.Float t.config.slow_seconds);
       ]
      @ phase_fields)

(* ------------------------------------------------------------------ *)
(* Worker domains: /map jobs                                           *)
(* ------------------------------------------------------------------ *)

(* the /map handler proper, run inside the request scope on a worker
   domain: every Obs hook here writes the scope's shard, so no lock is
   needed until the scope closes.  Returns (status, cache marker). *)
let handle_map_in_scope t fd ~echo ~query ~body ~queued_seconds =
  Obs.Histogram.observe h_queue_wait queued_seconds;
  let written bytes = count_response_bytes ~route:"map" bytes in
  match parse_map_request ~query ~body with
  | Error e ->
      written (respond_error fd ~headers:echo ~status:400 e);
      (400, None)
  | Ok (circuit, k, algo) -> (
      match map_body_cached t.cache ~circuit ~k ~algo with
      | Error e, _ ->
          written (respond_error fd ~headers:echo ~status:400 e);
          (400, None)
      | Ok payload, outcome ->
          (match outcome with
          | Cache.Hit -> Obs.Counter.incr c_cache_hits
          | Cache.Join -> Obs.Counter.incr c_cache_joins
          | Cache.Miss -> Obs.Counter.incr c_cache_misses
          | Cache.Bypass -> ());
          let marker = Cache.outcome_label outcome in
          written
            (respond fd
               ~headers:(echo @ [ ("X-Cache", marker) ])
               ~status:200 ~content_type:"application/json" payload);
          (200, Some marker))

let serve_job t job =
  let fd = job.jb_fd in
  let echo = [ ("X-Request-Id", job.jb_id) ] in
  let queued_seconds =
    Float.max 0. (Prelude.Timer.wall () -. job.jb_accepted)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Obs.Log.with_request_id job.jb_id @@ fun () ->
      (* tag this domain's profiler samples with the route while the
         request runs (a no-op for the sampler unless it is attached) *)
      Obs.Prof.with_route "map" @@ fun () ->
      let scope = Obs.Scope.create ~id:job.jb_id () in
      let status = ref 500 in
      let cache_marker = ref None in
      let run_scoped () =
        Obs.Scope.run scope (fun () ->
            let t0 = Prelude.Timer.wall () in
            Fun.protect
              ~finally:(fun () ->
                Obs.Histogram.observe h_request (Prelude.Timer.wall () -. t0))
              (fun () ->
                let s, m =
                  Obs.Span.time s_request (fun () ->
                      try
                        handle_map_in_scope t fd ~echo ~query:job.jb_query
                          ~body:job.jb_body ~queued_seconds
                      with e ->
                        (try
                           ignore
                             (respond_error fd ~headers:echo ~status:500
                                (Printexc.to_string e))
                         with _ -> ());
                        (500, None))
                in
                status := s;
                cache_marker := m;
                count_request ~route:"map" ~status:s))
      in
      let summary =
        match run_scoped () with
        | () ->
            with_registry (fun () ->
                Obs.Scope.close ~queue_wait:queued_seconds scope)
        | exception e ->
            (* scope-level failure (e.g. the response write raised) —
               still close under the lock, so the shard never leaks and
               partial observations merge *)
            ignore
              (with_registry (fun () ->
                   Obs.Scope.close ~queue_wait:queued_seconds scope));
            raise e
      in
      let outcome =
        match !cache_marker with
        | Some "hit" -> "cached"
        | _ -> outcome_of_status !status
      in
      log_access t ~route:"map" ~meth:job.jb_meth ~path:"/map" ~status:!status
        ~outcome ~cache:!cache_marker ~started:job.jb_accepted
        ~summary:(Some summary))

let worker_loop t =
  let rec go () =
    match Prelude.Bqueue.pop t.queue with
    | None -> () (* queue closed and drained: clean shutdown *)
    | Some job ->
        Atomic.incr t.busy;
        (try serve_job t job
         with e ->
           Obs.Log.error "serve.worker_crash"
             [ ("exn", J.Str (Printexc.to_string e)) ]);
        Atomic.decr t.busy;
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Accept lane: envelope parsing, inline routes, admission control     *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* SLO evaluation (scrape-time) and profiler introspection             *)
(* ------------------------------------------------------------------ *)

(* objectives are spelled with the client-visible path ("/map"); the
   internal route vocabulary drops the slash ("map") *)
let internal_route r =
  if String.length r > 0 && r.[0] = '/' then
    String.sub r 1 (String.length r - 1)
  else r

let empty_snapshot =
  {
    Obs.Histogram.s_buckets = [];
    s_count = 0;
    s_sum = 0.;
    s_min = infinity;
    s_max = neg_infinity;
  }

(* (total, 5xx) for one route, from the serve.requests.<route>.<status>
   counters; call under [registry_mutex] together with the histogram
   snapshot so one /debug/slo answer is a consistent cut *)
let route_totals route =
  let prefix = Printf.sprintf "%s%s." requests_prefix route in
  let plen = String.length prefix in
  List.fold_left
    (fun (total, errors) (name, v) ->
      if String.length name > plen && String.sub name 0 plen = prefix then
        match
          int_of_string_opt (String.sub name plen (String.length name - plen))
        with
        | Some s -> (total + v, if s >= 500 then errors + v else errors)
        | None -> (total, errors)
      else (total, errors))
    (0, 0) (Obs.Counter.all ())

(* call under [registry_mutex] *)
let eval_slos t =
  List.map
    (fun (o : Obs.Slo.objective) ->
      let r = internal_route o.Obs.Slo.o_route in
      let snap =
        Option.value ~default:empty_snapshot
          (Obs.Histogram.find (route_seconds_prefix ^ r))
      in
      let total, errors = route_totals r in
      (r, Obs.Slo.evaluate o ~latency:snap ~total ~errors))
    t.config.slos

let debug_slo_json t =
  let verdicts = with_registry (fun () -> eval_slos t) in
  J.Obj
    [
      ("schema", J.Str "turbosyn-slo/1");
      ( "objectives",
        J.List
          (List.map
             (fun (r, v) ->
               let extras =
                 [
                   (* the flat histogram family the burn rate was
                      computed from — scrape it and reproduce *)
                   ("histogram", J.Str (route_seconds_prefix ^ r));
                   ( "slowest",
                     J.List
                       (List.map
                          (fun (id, seconds, status) ->
                            J.Obj
                              [
                                ("id", J.Str id);
                                ("seconds", J.Float seconds);
                                ("status", J.Int status);
                                ("trace", J.Str ("/debug/trace/" ^ id));
                              ])
                          (exemplars_for r)) );
                 ]
               in
               match Obs.Slo.verdict_json v with
               | J.Obj fields -> J.Obj (fields @ extras)
               | j -> j)
             verdicts) );
    ]

let debug_prof_json ?route () =
  let top = Obs.Prof.top_self ?route () |> List.filteri (fun i _ -> i < 20) in
  J.Obj
    [
      ("schema", J.Str "turbosyn-prof/1");
      ("attached", J.Bool (Obs.Prof.attached ()));
      ("interval_seconds", J.Float (Obs.Prof.interval ()));
      ("samples", J.Int (Obs.Prof.samples ()));
      ("dropped", J.Int (Obs.Prof.dropped ()));
      ("overhead_seconds", J.Float (Obs.Prof.overhead_seconds ()));
      ("routes", J.List (List.map (fun r -> J.Str r) (Obs.Prof.routes ())));
      ( "top_self",
        J.List
          (List.map
             (fun (frame, secs) ->
               J.Obj
                 [ ("frame", J.Str frame); ("self_seconds", J.Float secs) ])
             top) );
    ]

let healthz_json t =
  J.Obj
    [
      ("status", J.Str "ok");
      ("workers", J.Int t.config.workers);
      ("workers_busy", J.Int (Atomic.get t.busy));
      ("queue_depth", J.Int (Prelude.Bqueue.length t.queue));
      ("queue_capacity", J.Int t.config.queue_depth);
      ("cache_entries", J.Int (Cache.length t.cache));
      ("cache_capacity", J.Int t.config.cache_entries);
      ("shed_total", J.Int (Obs.Counter.value c_shed));
    ]

(* scrape-time gauge refresh: gauges are never written from workers
   (they have no shard), only here, under the registry lock, from the
   server's atomics — single writer, no torn floats *)
let refresh_gauges t =
  let busy = Atomic.get t.busy in
  let queued = Prelude.Bqueue.length t.queue in
  Obs.Gauge.set_int g_inflight (busy + queued);
  Obs.Gauge.set_int g_queue_depth queued;
  Obs.Gauge.set_int g_workers t.config.workers;
  Obs.Gauge.set_int g_workers_busy busy;
  Obs.Gauge.set_int g_cache_size (Cache.length t.cache);
  Obs.Gauge.set_int g_cache_capacity t.config.cache_entries;
  (* profiler accounting, read from Prof's own synchronized state (lock
     order: registry_mutex, then Prof's — Prof never takes ours) *)
  Obs.Gauge.set_int g_prof_samples (Obs.Prof.samples ());
  Obs.Gauge.set_int g_prof_dropped (Obs.Prof.dropped ());
  Obs.Gauge.set g_prof_overhead (Obs.Prof.overhead_seconds ())

let handle_debug_trace fd ~req_id ~path ~query =
  let id = String.sub path 13 (String.length path - 13) in
  match find_request id with
  | Some { rr_summary = Some summary; _ } -> (
      match List.assoc_opt "format" query with
      | Some "folded" ->
          ( 200,
            respond fd
              ~headers:[ ("X-Request-Id", req_id) ]
              ~status:200 ~content_type:"text/plain"
              (Obs.Flame.of_slices summary.Obs.Scope.sc_slices) )
      | Some "chrome" ->
          ( 200,
            respond_json fd
              ~headers:[ ("X-Request-Id", req_id) ]
              ~status:200
              (Obs.Report.timeline_json
                 ~slices:summary.Obs.Scope.sc_slices ~events:[] ()) )
      | None | Some _ ->
          ( 200,
            respond_json fd
              ~headers:[ ("X-Request-Id", req_id) ]
              ~status:200
              (J.Obj
                 [
                   ("schema", J.Str "turbosyn-debug-trace/1");
                   ("request", Obs.Scope.summary_json summary);
                 ]) ))
  | Some { rr_summary = None; _ } | None ->
      ( 404,
        respond_error fd
          ~headers:[ ("X-Request-Id", req_id) ]
          ~status:404
          (Printf.sprintf "no traced request %S in the ring" id) )

(* a full (or zero-depth) queue sheds: never block the accept lane,
   never queue unboundedly.  Retry-After is a coarse hint — one
   in-flight compute is the unit of drain time. *)
let shed t fd ~echo ~meth ~path ~started =
  let bytes =
    respond_error fd
      ~headers:(echo @ [ ("Retry-After", "1") ])
      ~status:429 "server overloaded: queue full, retry later"
  in
  with_registry (fun () ->
      Obs.Counter.incr c_shed;
      count_request ~route:"map" ~status:429;
      count_response_bytes ~route:"map" bytes);
  log_access t ~route:"map" ~meth ~path ~status:429 ~outcome:"shed"
    ~cache:None ~started ~summary:None

(* true when fd ownership moved to the worker queue *)
let dispatch t fd =
  match read_request fd with
  | None ->
      count_request_unscoped ~route:"malformed" ~status:400;
      false
  | Some (meth, target, headers, body) -> (
      let path, query = parse_target target in
      let req_id = request_id_of_headers headers in
      let started = Prelude.Timer.wall () in
      Obs.Log.with_request_id req_id @@ fun () ->
      let echo = [ ("X-Request-Id", req_id) ] in
      let inline ?(bytes = 0) route status summary =
        with_registry (fun () ->
            count_request ~route ~status;
            count_response_bytes ~route bytes);
        log_access t ~route ~meth ~path ~status
          ~outcome:(outcome_of_status status) ~cache:None ~started ~summary;
        false
      in
      match (meth, path) with
      | ("POST" | "GET"), "/map" ->
          let job =
            {
              jb_fd = fd;
              jb_id = req_id;
              jb_meth = meth;
              jb_query = query;
              jb_body = body;
              jb_accepted = started;
            }
          in
          if Prelude.Bqueue.try_push t.queue job then true
          else begin
            shed t fd ~echo ~meth ~path ~started;
            false
          end
      | "GET", "/healthz" ->
          let bytes =
            respond_json fd ~headers:echo ~status:200 (healthz_json t)
          in
          inline ~bytes "healthz" 200 None
      | "GET", "/metrics" ->
          let scrape =
            with_registry (fun () ->
                refresh_gauges t;
                Obs.Prometheus.render
                  ~exclude_prefixes:[ requests_prefix; response_bytes_prefix ]
                  ~extra:
                    (request_family () :: response_bytes_family ()
                    :: Obs.Slo.families (List.map snd (eval_slos t)))
                  ())
          in
          let bytes =
            respond fd ~headers:echo ~status:200
              ~content_type:"text/plain; version=0.0.4" scrape
          in
          inline ~bytes "metrics" 200 None
      | "GET", "/debug/requests" ->
          let bytes =
            respond_json fd ~headers:echo ~status:200 (debug_requests_json ())
          in
          inline ~bytes "debug" 200 None
      | "GET", "/debug/slo" ->
          let bytes =
            respond_json fd ~headers:echo ~status:200 (debug_slo_json t)
          in
          inline ~bytes "debug" 200 None
      | "GET", "/debug/prof" ->
          let route = List.assoc_opt "route" query in
          let bytes =
            match List.assoc_opt "format" query with
            | Some "folded" ->
                respond fd ~headers:echo ~status:200
                  ~content_type:"text/plain"
                  (Obs.Prof.folded_text ?route ())
            | Some "chrome" ->
                respond_json fd ~headers:echo ~status:200
                  (Obs.Report.timeline_json
                     ~slices:(Obs.Prof.slices ?route ())
                     ~events:[] ())
            | None | Some _ ->
                respond_json fd ~headers:echo ~status:200
                  (debug_prof_json ?route ())
          in
          inline ~bytes "debug" 200 None
      | "GET", _
        when String.length path > 13
             && String.sub path 0 13 = "/debug/trace/" ->
          let status, bytes = handle_debug_trace fd ~req_id ~path ~query in
          inline ~bytes "debug" status None
      | ( _,
          ( "/healthz" | "/metrics" | "/map" | "/debug/requests"
          | "/debug/slo" | "/debug/prof" ) ) ->
          let bytes =
            respond_error fd ~headers:echo ~status:405 "method not allowed"
          in
          inline ~bytes "method" 405 None
      | _ ->
          let bytes = respond_error fd ~headers:echo ~status:404 "not found" in
          inline ~bytes "other" 404 None)

let accept_loop t =
  let continue = ref true in
  while !continue && not (Atomic.get t.stopped) do
    match Unix.accept t.listen with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* the listen socket was shut down under us: stop *)
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
        let handed_off =
          try dispatch t fd
          with Unix.Unix_error (_, _, _) -> false (* client went away *)
        in
        if not handed_off then
          try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let default_workers () =
  max 1 (min 4 (Domain.recommended_domain_count () - 1))

let create ?(port = 0) ?(slow_seconds = 1.0) ?workers ?(queue_depth = 64)
    ?(cache_entries = 256) ?(slos = []) ?(profile = false)
    ?(profile_interval = 0.010) () =
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  if queue_depth < 0 then invalid_arg "Server.create: negative queue depth";
  if cache_entries < 0 then
    invalid_arg "Server.create: negative cache capacity";
  if profile_interval <= 0. then
    invalid_arg "Server.create: profile interval must be > 0";
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  {
    listen = fd;
    port;
    config =
      {
        workers;
        queue_depth;
        cache_entries;
        slow_seconds;
        slos;
        profile;
        profile_interval;
      };
    stopped = Atomic.make false;
    queue = Prelude.Bqueue.create ~capacity:queue_depth;
    cache = Cache.create ~capacity:cache_entries;
    busy = Atomic.make 0;
  }

let port t = t.port
let workers t = t.config.workers

let run t =
  (* a client that disconnects mid-response must not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* one Prelude.Pool hosts every lane: task 0 is the accept lane, the
     rest are queue workers.  All tasks run until shutdown, so each
     lane takes exactly one; the accept lane closes the queue on exit,
     which drains and releases the workers — then the pool barrier
     returns.  Assignment of lanes to tasks is irrelevant (the tasks
     are self-contained loops), matching the pool's no-promises
     contract. *)
  let lanes = t.config.workers + 1 in
  (* the sampler lives exactly as long as the serving pool: attached
     here (so Obs.reset still works between create and run) and
     detached — joining the tick thread — on the way out, even when the
     pool raises *)
  if t.config.profile then
    Obs.Prof.attach ~interval:t.config.profile_interval ();
  Fun.protect
    ~finally:(fun () -> if t.config.profile then Obs.Prof.detach ())
    (fun () ->
      Prelude.Pool.with_pool ~domains:lanes (fun pool ->
          Prelude.Pool.run pool ~n:lanes (fun _worker task ->
              if task = 0 then
                Fun.protect
                  ~finally:(fun () -> Prelude.Bqueue.close t.queue)
                  (fun () -> accept_loop t)
              else worker_loop t)))

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* [shutdown] wakes a blocked [accept] (EINVAL) even from another
       domain; a plain [close] would not — the in-flight accept holds a
       reference to the socket and blocks forever *)
    (try Unix.shutdown t.listen Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    try Unix.close t.listen with Unix.Unix_error (_, _, _) -> ()
  end
