(* A dependency-free HTTP/1.1 listener over [Unix] exposing the mapping
   pipeline as a service: POST /map runs a synthesis request, /metrics
   is a Prometheus scrape of the Obs registries, /healthz a liveness
   probe, and /debug/requests + /debug/trace/<id> introspect the
   recent-request ring.

   The accept loop is deliberately single-threaded: the Obs registries
   and the synthesis pipeline are process-global and not thread-safe, so
   requests are serialized at the accept point and concurrent clients
   queue in the listen backlog.  "Per-request isolation" therefore means
   exception containment (a failing request answers 4xx/5xx and never
   tears down the loop or leaves a span open) plus telemetry scoping:
   each /map request runs inside an Obs.Scope keyed by its correlation
   id, whose close folds the request's counters/spans/slices into the
   global registries — so scrape counters stay monotone over the process
   lifetime while every request keeps its own attributable slice.

   Correlation ids: the client may supply one (X-Request-Id, or the
   trace-id field of a W3C traceparent header); otherwise the server
   generates one.  Every response echoes it as X-Request-Id, and every
   access-log line, ring entry and per-request trace carries it. *)

module J = Obs.Json

let s_request = Obs.Span.make "serve.request"
let h_request = Obs.Histogram.make "serve.request_seconds"
let g_inflight = Obs.Gauge.make "serve.inflight"

(* requests by (route, status), rendered as an extra Prometheus family;
   a plain assoc-count table, only touched from the accept loop *)
let request_counts : (string * int, int) Hashtbl.t = Hashtbl.create 16

let count_request ~route ~status =
  let key = (route, status) in
  Hashtbl.replace request_counts key
    (1 + Option.value ~default:0 (Hashtbl.find_opt request_counts key))

let request_family () =
  let samples =
    Hashtbl.fold
      (fun (route, status) n acc ->
        {
          Obs.Prometheus.labels =
            [ ("route", route); ("status", string_of_int status) ];
          value = float_of_int n;
        }
        :: acc)
      request_counts []
    |> List.sort compare
  in
  {
    Obs.Prometheus.fname = "serve.requests";
    fhelp = "HTTP requests handled, by route and status.";
    ftype = `Counter;
    samples;
  }

(* ------------------------------------------------------------------ *)
(* Correlation ids                                                     *)
(* ------------------------------------------------------------------ *)

let sane_id_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true
  | _ -> false

(* oversized ids are rejected, not truncated: a truncated echo would no
   longer match what the client logged, defeating the join *)
let sanitize_id s =
  if s <> "" && String.length s <= 64 && String.for_all sane_id_char s then
    Some s
  else None

let is_hex s = String.for_all (function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false) s

(* W3C traceparent: "00-<32 hex trace-id>-<16 hex parent-id>-<flags>";
   the trace-id becomes our correlation id *)
let id_of_traceparent v =
  match String.split_on_char '-' (String.trim v) with
  | [ _version; trace_id; _parent; _flags ]
    when String.length trace_id = 32 && is_hex trace_id ->
      Some (String.lowercase_ascii trace_id)
  | _ -> None

let request_id_of_headers headers =
  match
    Option.bind (List.assoc_opt "x-request-id" headers) sanitize_id
  with
  | Some id -> id
  | None -> (
      match
        Option.bind (List.assoc_opt "traceparent" headers) id_of_traceparent
      with
      | Some id -> id
      | None -> Obs.Scope.fresh_id ())

(* ------------------------------------------------------------------ *)
(* Recent-request ring (/debug/requests, /debug/trace/<id>)            *)
(* ------------------------------------------------------------------ *)

type req_record = {
  rr_id : string;
  rr_route : string;
  rr_status : int;
  rr_outcome : string;
  rr_started : float;
  rr_seconds : float;
  rr_summary : Obs.Scope.summary option; (* scoped routes (/map) only *)
}

let debug_ring_default_capacity = 256
let debug_ring_capacity = ref debug_ring_default_capacity
let debug_ring : req_record Queue.t = Queue.create ()

let remember rr =
  if !debug_ring_capacity > 0 then begin
    if Queue.length debug_ring >= !debug_ring_capacity then
      ignore (Queue.pop debug_ring);
    Queue.add rr debug_ring
  end

let find_request id =
  Queue.fold
    (fun acc rr -> if String.equal rr.rr_id id then Some rr else acc)
    None debug_ring

(* outcome vocabulary (doc/OBSERVABILITY.md §Request scopes): "served"
   for success; "rejected" for client errors; "failed" for server
   errors.  Serve v2 adds "cached" and "shed" when the result cache and
   admission control land. *)
let outcome_of_status status =
  if status < 400 then "served"
  else if status < 500 then "rejected"
  else "failed"

let phases_json (summary : Obs.Scope.summary) =
  J.Obj
    (List.map
       (fun (name, seconds, _entries) -> (name, J.Float seconds))
       summary.Obs.Scope.sc_spans)

let request_json rr =
  J.Obj
    ([
       ("id", J.Str rr.rr_id);
       ("route", J.Str rr.rr_route);
       ("status", J.Int rr.rr_status);
       ("outcome", J.Str rr.rr_outcome);
       ("started", J.Float rr.rr_started);
       ("seconds", J.Float rr.rr_seconds);
     ]
    @
    match rr.rr_summary with
    | None -> []
    | Some s -> [ ("phases", phases_json s) ])

let debug_requests_json () =
  let newest_first =
    Queue.fold (fun acc rr -> request_json rr :: acc) [] debug_ring
  in
  J.Obj
    [
      ("schema", J.Str "turbosyn-debug-requests/1");
      ("capacity", J.Int !debug_ring_capacity);
      ("count", J.Int (Queue.length debug_ring));
      ("requests", J.List newest_first);
    ]

(* ------------------------------------------------------------------ *)
(* Mapping requests                                                    *)
(* ------------------------------------------------------------------ *)

let algo_of_string = function
  | "turbosyn" -> Some `Turbosyn
  | "turbomap" -> Some `Turbomap
  | "flowsyn-s" -> Some `Flowsyn_s
  | _ -> None

(* The response document is a deterministic function of (circuit, algo,
   k): no timings, no machine state.  The same renderer backs the serve
   path and the test's direct [Synth.run] comparison, so byte equality
   of the two is meaningful. *)
let result_json ~circuit ~k (r : Turbosyn.Synth.result) =
  J.Obj
    [
      ("schema", J.Str "turbosyn-serve/1");
      ("circuit", J.Str circuit);
      ("algo", J.Str (Turbosyn.Synth.algo_name r.Turbosyn.Synth.algo));
      ("k", J.Int k);
      ("phi", J.Str (Prelude.Rat.to_string r.Turbosyn.Synth.phi));
      ("clock_period", J.Int r.Turbosyn.Synth.clock_period);
      ("latency", J.Int r.Turbosyn.Synth.latency);
      ("luts", J.Int r.Turbosyn.Synth.luts);
      ("probes", J.Int r.Turbosyn.Synth.probes);
      ( "labels",
        match r.Turbosyn.Synth.labels with
        | None -> J.Null
        | Some labels ->
            J.List
              (Array.to_list
                 (Array.map
                    (fun l -> J.Str (Prelude.Rat.to_string l))
                    labels)) );
    ]

let map_response ~circuit ~k ~algo =
  match Workloads.Suite.find circuit with
  | None -> Error (Printf.sprintf "unknown circuit %S" circuit)
  | Some spec ->
      if k < 2 || k > 16 then Error (Printf.sprintf "k out of range: %d" k)
      else
        let nl = Workloads.Suite.build spec in
        let options = Turbosyn.Synth.default_options ~k () in
        let r = Turbosyn.Synth.run ~options algo nl in
        Ok (result_json ~circuit ~k r)

(* body may be a JSON object {"circuit": ..., "k": ..., "algo": ...};
   query parameters (circuit, k, algo) override nothing — they are the
   GET-form of the same request and looked up when the body is absent *)
let parse_map_request ~query ~body =
  let from_query key = List.assoc_opt key query in
  let doc =
    match body with
    | "" -> Ok None
    | s -> Result.map Option.some (J.of_string s)
  in
  match doc with
  | Error e -> Error ("invalid JSON body: " ^ e)
  | Ok doc -> (
      let str key =
        match Option.bind doc (J.member key) with
        | Some (J.Str s) -> Some s
        | Some _ -> None
        | None -> from_query key
      in
      let int key =
        match Option.bind doc (J.member key) with
        | Some (J.Int i) -> Some (Some i)
        | Some _ -> Some None (* present but not an int: reject *)
        | None -> (
            match from_query key with
            | Some s -> Some (int_of_string_opt s)
            | None -> None)
      in
      match str "circuit" with
      | None -> Error "missing \"circuit\""
      | Some circuit -> (
          let k =
            match int "k" with
            | None -> Ok 5
            | Some (Some i) -> Ok i
            | Some None -> Error "\"k\" is not an integer"
          in
          let algo =
            match str "algo" with
            | None -> Ok `Turbosyn
            | Some name -> (
                match algo_of_string name with
                | Some a -> Ok a
                | None -> Error (Printf.sprintf "unknown algo %S" name))
          in
          match (k, algo) with
          | Ok k, Ok algo -> Ok (circuit, k, algo)
          | Error e, _ | _, Error e -> Error e))

(* ------------------------------------------------------------------ *)
(* HTTP plumbing                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  listen : Unix.file_descr;
  port : int;
  slow_seconds : float;
  mutable stopped : bool;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let respond fd ?(headers = []) ~status ~content_type body =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%s\
       Connection: close\r\n\r\n"
      status (status_text status) content_type (String.length body) extra
  in
  write_all fd (head ^ body)

let respond_json fd ?headers ~status json =
  respond fd ?headers ~status ~content_type:"application/json"
    (J.to_string json ^ "\n")

let respond_error fd ?headers ~status msg =
  respond_json fd ?headers ~status (J.Obj [ ("error", J.Str msg) ])

(* read until the header terminator, then Content-Length body bytes *)
let read_request fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let header_end () =
    let s = Buffer.contents buf in
    let rec find i =
      if i + 3 >= String.length s then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
              && s.[i + 3] = '\n'
      then Some (i + 4)
      else find (i + 1)
    in
    find 0
  in
  let rec read_headers () =
    match header_end () with
    | Some e -> Some e
    | None ->
        if Buffer.length buf > 1 lsl 20 then None (* oversized header *)
        else
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n = 0 then None
          else begin
            Buffer.add_subbytes buf chunk 0 n;
            read_headers ()
          end
  in
  match read_headers () with
  | None -> None
  | Some body_start ->
      let raw = Buffer.contents buf in
      let head = String.sub raw 0 body_start in
      let lines = String.split_on_char '\n' head in
      let request_line =
        match lines with l :: _ -> String.trim l | [] -> ""
      in
      let headers =
        List.filter_map
          (fun l ->
            match String.index_opt l ':' with
            | Some i ->
                Some
                  ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
                    String.trim
                      (String.sub l (i + 1) (String.length l - i - 1)) )
            | None -> None)
          (List.tl lines)
      in
      let content_length =
        match List.assoc_opt "content-length" headers with
        | Some v -> Option.value ~default:0 (int_of_string_opt v)
        | None -> 0
      in
      let content_length = min content_length (1 lsl 24) in
      let body = Buffer.create content_length in
      Buffer.add_string body
        (String.sub raw body_start (String.length raw - body_start));
      let rec fill () =
        if Buffer.length body < content_length then begin
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes body chunk 0 n;
            fill ()
          end
        end
      in
      fill ();
      (match String.split_on_char ' ' request_line with
      | meth :: target :: _ -> Some (meth, target, headers, Buffer.contents body)
      | _ -> None)

let parse_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let qs = String.sub target (i + 1) (String.length target - i - 1) in
      let query =
        List.filter_map
          (fun kv ->
            match String.index_opt kv '=' with
            | Some j ->
                Some
                  ( String.sub kv 0 j,
                    String.sub kv (j + 1) (String.length kv - j - 1) )
            | None -> None)
          (String.split_on_char '&' qs)
      in
      (path, query)

let handle_map fd ~headers ~query ~body =
  match parse_map_request ~query ~body with
  | Error e ->
      respond_error fd ~headers ~status:400 e;
      400
  | Ok (circuit, k, algo) -> (
      match map_response ~circuit ~k ~algo with
      | Ok json ->
          respond_json fd ~headers ~status:200 json;
          200
      | Error e ->
          respond_error fd ~headers ~status:400 e;
          400)

(* /map inside a request scope: the scope's shard captures the
   request's counters, spans, histograms and timeline slices; closing
   folds them into the globals (keeping scrape counters monotone) and
   yields the summary the ring, access log and /debug/trace serve. *)
let handle_map_scoped fd ~req_id ~headers ~query ~body =
  let scope = Obs.Scope.create ~id:req_id () in
  let status = ref 500 in
  let summary =
    match
      Obs.Scope.run scope (fun () ->
          Obs.Gauge.incr g_inflight;
          let t0 = Prelude.Timer.wall () in
          Fun.protect
            ~finally:(fun () ->
              Obs.Gauge.decr g_inflight;
              Obs.Histogram.observe h_request (Prelude.Timer.wall () -. t0))
            (fun () ->
              Obs.Span.time s_request (fun () ->
                  try handle_map fd ~headers ~query ~body
                  with e ->
                    (try
                       respond_error fd ~headers ~status:500
                         (Printexc.to_string e)
                     with _ -> ());
                    500)))
    with
    | s ->
        status := s;
        Obs.Scope.close scope
    | exception e ->
        (* handle_map contains its exceptions; this is a scope-level
           failure (e.g. the response write raised) — still close, so
           the shard never leaks *)
        ignore (Obs.Scope.close scope);
        raise e
  in
  (!status, summary)

let handle_debug_trace fd ~req_id ~path ~query =
  let id = String.sub path 13 (String.length path - 13) in
  match find_request id with
  | Some { rr_summary = Some summary; _ } -> (
      match List.assoc_opt "format" query with
      | Some "folded" ->
          respond fd
            ~headers:[ ("X-Request-Id", req_id) ]
            ~status:200 ~content_type:"text/plain"
            (Obs.Flame.of_slices summary.Obs.Scope.sc_slices);
          200
      | Some "chrome" ->
          respond_json fd
            ~headers:[ ("X-Request-Id", req_id) ]
            ~status:200
            (Obs.Report.timeline_json
               ~slices:summary.Obs.Scope.sc_slices ~events:[] ());
          200
      | None | Some _ ->
          respond_json fd
            ~headers:[ ("X-Request-Id", req_id) ]
            ~status:200
            (J.Obj
               [
                 ("schema", J.Str "turbosyn-debug-trace/1");
                 ("request", Obs.Scope.summary_json summary);
               ]);
          200)
  | Some { rr_summary = None; _ } | None ->
      respond_error fd
        ~headers:[ ("X-Request-Id", req_id) ]
        ~status:404
        (Printf.sprintf "no traced request %S in the ring" id);
      404

let handle_connection t fd =
  match read_request fd with
  | None -> count_request ~route:"malformed" ~status:400
  | Some (meth, target, headers, body) ->
      let path, query = parse_target target in
      let req_id = request_id_of_headers headers in
      let started = Prelude.Timer.wall () in
      Obs.Log.with_request_id req_id @@ fun () ->
      let echo = [ ("X-Request-Id", req_id) ] in
      let route, status, summary =
        match (meth, path) with
        | "GET", "/healthz" ->
            respond fd ~headers:echo ~status:200 ~content_type:"text/plain"
              "ok\n";
            ("healthz", 200, None)
        | "GET", "/metrics" ->
            let scrape =
              Obs.Prometheus.render ~extra:[ request_family () ] ()
            in
            respond fd ~headers:echo ~status:200
              ~content_type:"text/plain; version=0.0.4" scrape;
            ("metrics", 200, None)
        | ("POST" | "GET"), "/map" ->
            let status, summary =
              handle_map_scoped fd ~req_id ~headers:echo ~query ~body
            in
            ("map", status, Some summary)
        | "GET", "/debug/requests" ->
            respond_json fd ~headers:echo ~status:200
              (debug_requests_json ());
            ("debug", 200, None)
        | "GET", _
          when String.length path > 13
               && String.sub path 0 13 = "/debug/trace/" ->
            let status = handle_debug_trace fd ~req_id ~path ~query in
            ("debug", status, None)
        | _, ("/healthz" | "/metrics" | "/map" | "/debug/requests") ->
            respond_error fd ~headers:echo ~status:405 "method not allowed";
            ("method", 405, None)
        | _ ->
            respond_error fd ~headers:echo ~status:404 "not found";
            ("other", 404, None)
      in
      count_request ~route ~status;
      let seconds = Prelude.Timer.wall () -. started in
      let outcome = outcome_of_status status in
      remember
        {
          rr_id = req_id;
          rr_route = route;
          rr_status = status;
          rr_outcome = outcome;
          rr_started = started;
          rr_seconds = seconds;
          rr_summary = summary;
        };
      let phase_fields =
        match summary with
        | None -> []
        | Some s -> [ ("phases", phases_json s) ]
      in
      Obs.Log.info "serve.access"
        ([
           ("route", J.Str route);
           ("method", J.Str meth);
           ("path", J.Str path);
           ("status", J.Int status);
           ("outcome", J.Str outcome);
           ("seconds", J.Float seconds);
         ]
        @ phase_fields);
      if seconds > t.slow_seconds then
        Obs.Log.warn "serve.slow"
          ([
             ("route", J.Str route);
             ("status", J.Int status);
             ("seconds", J.Float seconds);
             ("threshold_seconds", J.Float t.slow_seconds);
           ]
          @ phase_fields)

let create ?(port = 0) ?(slow_seconds = 1.0) () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { listen = fd; port; slow_seconds; stopped = false }

let port t = t.port

let run t =
  (* a client that disconnects mid-response must not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec loop () =
    match Unix.accept t.listen with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> if not t.stopped then loop ()
    | fd, _ ->
        (try handle_connection t fd
         with Unix.Unix_error (_, _, _) -> () (* client went away *));
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        if not t.stopped then loop ()
  in
  loop ()

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* [shutdown] wakes a blocked [accept] (EINVAL) even from another
       domain; a plain [close] would not — the in-flight accept holds a
       reference to the socket and blocks forever *)
    (try Unix.shutdown t.listen Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    try Unix.close t.listen with Unix.Unix_error (_, _, _) -> ()
  end
