(* A dependency-free HTTP/1.1 listener over [Unix] exposing the mapping
   pipeline as a service: POST /map runs a synthesis request, /metrics
   is a Prometheus scrape of the Obs registries, /healthz a liveness
   probe.

   The accept loop is deliberately single-threaded: the Obs registries
   and the synthesis pipeline are process-global and not thread-safe, so
   requests are serialized at the accept point and concurrent clients
   queue in the listen backlog.  "Per-request isolation" therefore means
   exception containment (a failing request answers 4xx/5xx and never
   tears down the loop or leaves a span open) rather than state
   partitioning; metric state intentionally persists across requests so
   scrape counters are monotone over the process lifetime. *)

module J = Obs.Json

let s_request = Obs.Span.make "serve.request"
let h_request = Obs.Histogram.make "serve.request_seconds"
let g_inflight = Obs.Gauge.make "serve.inflight"

(* requests by (route, status), rendered as an extra Prometheus family;
   a plain assoc-count table, only touched from the accept loop *)
let request_counts : (string * int, int) Hashtbl.t = Hashtbl.create 16

let count_request ~route ~status =
  let key = (route, status) in
  Hashtbl.replace request_counts key
    (1 + Option.value ~default:0 (Hashtbl.find_opt request_counts key))

let request_family () =
  let samples =
    Hashtbl.fold
      (fun (route, status) n acc ->
        {
          Obs.Prometheus.labels =
            [ ("route", route); ("status", string_of_int status) ];
          value = float_of_int n;
        }
        :: acc)
      request_counts []
    |> List.sort compare
  in
  {
    Obs.Prometheus.fname = "serve.requests";
    fhelp = "HTTP requests handled, by route and status.";
    ftype = `Counter;
    samples;
  }

(* ------------------------------------------------------------------ *)
(* Mapping requests                                                    *)
(* ------------------------------------------------------------------ *)

let algo_of_string = function
  | "turbosyn" -> Some `Turbosyn
  | "turbomap" -> Some `Turbomap
  | "flowsyn-s" -> Some `Flowsyn_s
  | _ -> None

(* The response document is a deterministic function of (circuit, algo,
   k): no timings, no machine state.  The same renderer backs the serve
   path and the test's direct [Synth.run] comparison, so byte equality
   of the two is meaningful. *)
let result_json ~circuit ~k (r : Turbosyn.Synth.result) =
  J.Obj
    [
      ("schema", J.Str "turbosyn-serve/1");
      ("circuit", J.Str circuit);
      ("algo", J.Str (Turbosyn.Synth.algo_name r.Turbosyn.Synth.algo));
      ("k", J.Int k);
      ("phi", J.Str (Prelude.Rat.to_string r.Turbosyn.Synth.phi));
      ("clock_period", J.Int r.Turbosyn.Synth.clock_period);
      ("latency", J.Int r.Turbosyn.Synth.latency);
      ("luts", J.Int r.Turbosyn.Synth.luts);
      ("probes", J.Int r.Turbosyn.Synth.probes);
      ( "labels",
        match r.Turbosyn.Synth.labels with
        | None -> J.Null
        | Some labels ->
            J.List
              (Array.to_list
                 (Array.map
                    (fun l -> J.Str (Prelude.Rat.to_string l))
                    labels)) );
    ]

let map_response ~circuit ~k ~algo =
  match Workloads.Suite.find circuit with
  | None -> Error (Printf.sprintf "unknown circuit %S" circuit)
  | Some spec ->
      if k < 2 || k > 16 then Error (Printf.sprintf "k out of range: %d" k)
      else
        let nl = Workloads.Suite.build spec in
        let options = Turbosyn.Synth.default_options ~k () in
        let r = Turbosyn.Synth.run ~options algo nl in
        Ok (result_json ~circuit ~k r)

(* body may be a JSON object {"circuit": ..., "k": ..., "algo": ...};
   query parameters (circuit, k, algo) override nothing — they are the
   GET-form of the same request and looked up when the body is absent *)
let parse_map_request ~query ~body =
  let from_query key = List.assoc_opt key query in
  let doc =
    match body with
    | "" -> Ok None
    | s -> Result.map Option.some (J.of_string s)
  in
  match doc with
  | Error e -> Error ("invalid JSON body: " ^ e)
  | Ok doc -> (
      let str key =
        match Option.bind doc (J.member key) with
        | Some (J.Str s) -> Some s
        | Some _ -> None
        | None -> from_query key
      in
      let int key =
        match Option.bind doc (J.member key) with
        | Some (J.Int i) -> Some (Some i)
        | Some _ -> Some None (* present but not an int: reject *)
        | None -> (
            match from_query key with
            | Some s -> Some (int_of_string_opt s)
            | None -> None)
      in
      match str "circuit" with
      | None -> Error "missing \"circuit\""
      | Some circuit -> (
          let k =
            match int "k" with
            | None -> Ok 5
            | Some (Some i) -> Ok i
            | Some None -> Error "\"k\" is not an integer"
          in
          let algo =
            match str "algo" with
            | None -> Ok `Turbosyn
            | Some name -> (
                match algo_of_string name with
                | Some a -> Ok a
                | None -> Error (Printf.sprintf "unknown algo %S" name))
          in
          match (k, algo) with
          | Ok k, Ok algo -> Ok (circuit, k, algo)
          | Error e, _ | _, Error e -> Error e))

(* ------------------------------------------------------------------ *)
(* HTTP plumbing                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  listen : Unix.file_descr;
  port : int;
  mutable stopped : bool;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      status (status_text status) content_type (String.length body)
  in
  write_all fd (head ^ body)

let respond_json fd ~status json =
  respond fd ~status ~content_type:"application/json"
    (J.to_string json ^ "\n")

let respond_error fd ~status msg =
  respond_json fd ~status (J.Obj [ ("error", J.Str msg) ])

(* read until the header terminator, then Content-Length body bytes *)
let read_request fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let header_end () =
    let s = Buffer.contents buf in
    let rec find i =
      if i + 3 >= String.length s then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
              && s.[i + 3] = '\n'
      then Some (i + 4)
      else find (i + 1)
    in
    find 0
  in
  let rec read_headers () =
    match header_end () with
    | Some e -> Some e
    | None ->
        if Buffer.length buf > 1 lsl 20 then None (* oversized header *)
        else
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n = 0 then None
          else begin
            Buffer.add_subbytes buf chunk 0 n;
            read_headers ()
          end
  in
  match read_headers () with
  | None -> None
  | Some body_start ->
      let raw = Buffer.contents buf in
      let head = String.sub raw 0 body_start in
      let lines = String.split_on_char '\n' head in
      let request_line =
        match lines with l :: _ -> String.trim l | [] -> ""
      in
      let headers =
        List.filter_map
          (fun l ->
            match String.index_opt l ':' with
            | Some i ->
                Some
                  ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
                    String.trim
                      (String.sub l (i + 1) (String.length l - i - 1)) )
            | None -> None)
          (List.tl lines)
      in
      let content_length =
        match List.assoc_opt "content-length" headers with
        | Some v -> Option.value ~default:0 (int_of_string_opt v)
        | None -> 0
      in
      let content_length = min content_length (1 lsl 24) in
      let body = Buffer.create content_length in
      Buffer.add_string body
        (String.sub raw body_start (String.length raw - body_start));
      let rec fill () =
        if Buffer.length body < content_length then begin
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes body chunk 0 n;
            fill ()
          end
        end
      in
      fill ();
      (match String.split_on_char ' ' request_line with
      | meth :: target :: _ -> Some (meth, target, Buffer.contents body)
      | _ -> None)

let parse_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let qs = String.sub target (i + 1) (String.length target - i - 1) in
      let query =
        List.filter_map
          (fun kv ->
            match String.index_opt kv '=' with
            | Some j ->
                Some
                  ( String.sub kv 0 j,
                    String.sub kv (j + 1) (String.length kv - j - 1) )
            | None -> None)
          (String.split_on_char '&' qs)
      in
      (path, query)

let handle_map fd ~query ~body =
  match parse_map_request ~query ~body with
  | Error e ->
      respond_error fd ~status:400 e;
      400
  | Ok (circuit, k, algo) -> (
      match map_response ~circuit ~k ~algo with
      | Ok json ->
          respond_json fd ~status:200 json;
          200
      | Error e ->
          respond_error fd ~status:400 e;
          400)

let handle_connection fd =
  match read_request fd with
  | None -> ignore (count_request ~route:"malformed" ~status:400)
  | Some (meth, target, body) ->
      let path, query = parse_target target in
      let route, status =
        match (meth, path) with
        | "GET", "/healthz" ->
            respond fd ~status:200 ~content_type:"text/plain" "ok\n";
            ("healthz", 200)
        | "GET", "/metrics" ->
            let scrape =
              Obs.Prometheus.render ~extra:[ request_family () ] ()
            in
            respond fd ~status:200
              ~content_type:"text/plain; version=0.0.4" scrape;
            ("metrics", 200)
        | ("POST" | "GET"), "/map" ->
            Obs.Gauge.incr g_inflight;
            let t0 = Prelude.Timer.wall () in
            let status =
              Fun.protect
                ~finally:(fun () ->
                  Obs.Gauge.decr g_inflight;
                  Obs.Histogram.observe h_request (Prelude.Timer.wall () -. t0))
                (fun () ->
                  Obs.Span.time s_request (fun () ->
                      try handle_map fd ~query ~body
                      with e ->
                        (try
                           respond_error fd ~status:500 (Printexc.to_string e)
                         with _ -> ());
                        500))
            in
            ("map", status)
        | _, ("/healthz" | "/metrics" | "/map") ->
            respond_error fd ~status:405 "method not allowed";
            ("method", 405)
        | _ ->
            respond_error fd ~status:404 "not found";
            ("other", 404)
      in
      count_request ~route ~status

let create ?(port = 0) () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { listen = fd; port; stopped = false }

let port t = t.port

let run t =
  (* a client that disconnects mid-response must not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec loop () =
    match Unix.accept t.listen with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> if not t.stopped then loop ()
    | fd, _ ->
        (try handle_connection fd
         with Unix.Unix_error (_, _, _) -> () (* client went away *));
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        if not t.stopped then loop ()
  in
  loop ()

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* [shutdown] wakes a blocked [accept] (EINVAL) even from another
       domain; a plain [close] would not — the in-flight accept holds a
       reference to the socket and blocks forever *)
    (try Unix.shutdown t.listen Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    try Unix.close t.listen with Unix.Unix_error (_, _, _) -> ()
  end
