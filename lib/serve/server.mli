(** The mapping pipeline as a concurrent HTTP service.

    A dependency-free HTTP/1.1 serving stack over [Unix]:

    - [POST /map] (or [GET /map?circuit=...&k=...&algo=...]) runs a
      mapping request — JSON body
      [{"circuit": "bbara", "k": 5, "algo": "turbosyn"}] — and answers
      a deterministic [turbosyn-serve/1] document (phi, clock period,
      latency, LUTs, probes, and the per-signal labels; no timings).
    - [GET /metrics] answers a Prometheus text-exposition scrape of the
      {!Obs} registries plus the server's own request counters and
      pool/cache gauges.
    - [GET /healthz] answers a JSON liveness document:
      [{"status": "ok", "workers": ..., "workers_busy": ...,
      "queue_depth": ..., "queue_capacity": ..., "cache_entries": ...,
      "cache_capacity": ..., "shed_total": ...}].
    - [GET /debug/requests] answers the recent-request ring
      ([turbosyn-debug-requests/1]): id, route, status, outcome, cache
      marker, wall-clock timings and per-phase span seconds, newest
      first.
    - [GET /debug/trace/<id>] answers the retained per-request telemetry
      of one ring entry ([turbosyn-debug-trace/1] with the full
      {!Obs.Scope.summary_json}); [?format=chrome] renders the request's
      timeline slices as a Chrome-trace document, [?format=folded] as
      flamegraph.pl folded stacks.  [404] when the id has been evicted
      from the ring (or never existed).
    - [GET /debug/prof] answers the {!Obs.Prof} sampling-profiler state
      ([turbosyn-prof/1]: attached, interval, samples/dropped/overhead
      accounting, routes seen, top-20 self-time frames);
      [?format=folded] answers flamegraph.pl folded stacks,
      [?format=chrome] a Chrome-trace rendering of the raw-sample ring;
      [?route=map] filters any format to one route's samples.
    - [GET /debug/slo] answers the burn-rate evaluation of the
      configured objectives ([turbosyn-slo/1]): per objective, the
      latency/error verdicts of {!Obs.Slo.verdict_json}, the flat
      histogram family the numbers were computed from (so they
      reproduce from a [/metrics] scrape), and the slowest-N request
      ids as exemplars linking into [/debug/trace/<id>].  The same
      verdicts are exposed on the scrape as [turbosyn_slo_*] gauge
      families.

    {b Concurrency.}  One {!Prelude.Pool} hosts an accept lane plus
    [workers] worker domains.  The accept lane owns the listen socket,
    parses request envelopes, answers the cheap routes inline, and
    feeds [/map] jobs to a bounded {!Prelude.Bqueue}; worker domains
    drain the queue, run the pipeline, and write the responses.  The
    [/map] documents are byte-identical to a direct
    {!Turbosyn.Synth.run} for every worker count
    ([doc/CONCURRENCY.md] §Serving).

    {b Admission control.}  When the queue is full (or [queue_depth] is
    [0]), [/map] requests are shed with [429 Too Many Requests] and a
    [Retry-After] header instead of queueing unboundedly; [/healthz]
    and [/metrics] stay answerable from the accept lane under full
    overload.

    {b Result cache.}  [/map] responses are cached in an LRU of
    [cache_entries] rendered bodies, keyed by the canonical circuit
    digest ({!Circuit.Canon.digest} — invariant under wire renaming and
    declaration order) plus [(algo, k)], with single-flight
    deduplication: concurrent identical submissions compute once.
    Every [/map] response carries an [X-Cache: hit|miss|bypass] header
    ([bypass] when the cache is disabled).

    {b Correlation ids.}  Every request carries a correlation id: the
    client's [X-Request-Id] header when present (up to 64 chars of
    [[A-Za-z0-9_-]]), else the trace-id field of a W3C [traceparent]
    header, else a server-generated {!Obs.Scope.fresh_id}.  Every
    response echoes it back as [X-Request-Id], every access-log line
    ([serve.access], plus [serve.slow] over the threshold) carries it as
    [request_id], and [/debug/trace/<id>] retrieves by it.

    Each [/map] request runs inside an {!Obs.Scope} keyed by its id on
    its worker domain; scope closes (and every other direct registry
    touch) serialize behind one mutex, so scrape counters stay monotone
    and φ/labels/stats documents are byte-identical to unscoped runs. *)

type t

val create :
  ?port:int ->
  ?slow_seconds:float ->
  ?workers:int ->
  ?queue_depth:int ->
  ?cache_entries:int ->
  ?slos:Obs.Slo.objective list ->
  ?profile:bool ->
  ?profile_interval:float ->
  unit ->
  t
(** Bind and listen on [127.0.0.1:port].  [port] defaults to [0]: the
    kernel picks an ephemeral port, readable via {!port}.
    [slow_seconds] (default [1.0]) is the threshold above which a
    request additionally logs a [serve.slow] warning.  [workers]
    (default: host-derived, between 1 and 4) is the number of /map
    worker domains, clamped to at least 1.  [queue_depth] (default
    [64]) bounds the jobs admitted beyond the in-flight ones; [0]
    sheds every /map request — useful for tests.  [cache_entries]
    (default [256]) is the LRU capacity of the result cache; [0]
    disables caching.  [slos] (default none) are the objectives
    evaluated by [/debug/slo] and the [turbosyn_slo_*] scrape families.
    [profile] (default [false]) attaches the {!Obs.Prof} sampler, at
    [profile_interval] seconds per tick (default [0.01]), for exactly
    the lifetime of {!run} — served documents are byte-identical either
    way ([doc/PROFILING.md]).  Raises [Unix.Unix_error] when binding
    fails (e.g. port in use), [Invalid_argument] on negative
    [queue_depth]/[cache_entries] or a non-positive
    [profile_interval]. *)

val port : t -> int

val workers : t -> int
(** The resolved worker-domain count. *)

val run : t -> unit
(** Serve until {!stop}.  Blocks the calling thread (it becomes the
    pool's lane 0); run it in a [Domain] (as [bench serve-load] and the
    tests do) to drive requests from the same process. *)

val stop : t -> unit
(** Close the listen socket, waking the blocked accept.  Queued and
    in-flight /map jobs complete before {!run} returns (graceful
    drain). *)

(** {1 Request plumbing, exposed for tests} *)

val algo_of_string : string -> Turbosyn.Synth.algo option

val result_json :
  circuit:string -> k:int -> Turbosyn.Synth.result -> Obs.Json.t
(** The deterministic response renderer shared by the serve path, the
    cached bytes, and the byte-identity test: rendering a direct
    {!Turbosyn.Synth.run} result through it must equal the served body,
    for every worker count, cache hit or miss. *)

val map_response :
  circuit:string ->
  k:int ->
  algo:Turbosyn.Synth.algo ->
  (Obs.Json.t, string) result
(** Resolve the circuit, run the mapping (uncached), render the
    response; [Error] on unknown circuits or out-of-range [k]. *)

val cache_key : Circuit.Netlist.t -> k:int -> algo:Turbosyn.Synth.algo -> string
(** The result-cache key: {!Circuit.Canon.digest} plus algo and [k]. *)

val request_id_of_headers : (string * string) list -> string
(** The correlation id for a request with the given (lower-cased)
    header assoc: sanitized [x-request-id], else [traceparent] trace-id,
    else a fresh id. *)

val outcome_of_status : int -> string
(** ["served"] below 400, ["shed"] for 429, ["rejected"] for other 4xx,
    ["failed"] for 5xx.  (The serve paths additionally report
    ["cached"] for cache-served successes.) *)
