(** The mapping pipeline as an HTTP service.

    A dependency-free HTTP/1.1 listener over [Unix] with three routes:

    - [POST /map] (or [GET /map?circuit=...&k=...&algo=...]) runs a
      mapping request — JSON body
      [{"circuit": "bbara", "k": 5, "algo": "turbosyn"}] — and answers
      a deterministic [turbosyn-serve/1] document (phi, clock period,
      latency, LUTs, probes, and the per-signal labels; no timings).
    - [GET /metrics] answers a Prometheus text-exposition scrape of the
      {!Obs} registries plus the server's own request counters.
    - [GET /healthz] answers [ok].

    The accept loop is single-threaded (the Obs registries and the
    pipeline are process-global); concurrent clients queue in the listen
    backlog and are served in order.  A failing request answers
    4xx/5xx without tearing down the loop, and metric state persists
    across requests so scrape counters are monotone. *)

type t

val create : ?port:int -> unit -> t
(** Bind and listen on [127.0.0.1:port].  [port] defaults to [0]: the
    kernel picks an ephemeral port, readable via {!port}.  Raises
    [Unix.Unix_error] when binding fails (e.g. port in use). *)

val port : t -> int

val run : t -> unit
(** Serve until {!stop}.  Blocks the calling thread; run it in a
    [Domain] (as [bench serve-load] and the tests do) to drive requests
    from the same process. *)

val stop : t -> unit
(** Close the listen socket, waking the blocked accept.  In-flight
    request handling completes first (the loop is single-threaded). *)

(** {1 Request plumbing, exposed for tests} *)

val algo_of_string : string -> Turbosyn.Synth.algo option

val result_json :
  circuit:string -> k:int -> Turbosyn.Synth.result -> Obs.Json.t
(** The deterministic response renderer shared by the serve path and the
    byte-identity test: rendering a direct {!Turbosyn.Synth.run} result
    through it must equal the served body. *)

val map_response :
  circuit:string ->
  k:int ->
  algo:Turbosyn.Synth.algo ->
  (Obs.Json.t, string) result
(** Resolve the circuit, run the mapping, render the response; [Error]
    on unknown circuits or out-of-range [k]. *)
