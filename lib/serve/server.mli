(** The mapping pipeline as an HTTP service.

    A dependency-free HTTP/1.1 listener over [Unix]:

    - [POST /map] (or [GET /map?circuit=...&k=...&algo=...]) runs a
      mapping request — JSON body
      [{"circuit": "bbara", "k": 5, "algo": "turbosyn"}] — and answers
      a deterministic [turbosyn-serve/1] document (phi, clock period,
      latency, LUTs, probes, and the per-signal labels; no timings).
    - [GET /metrics] answers a Prometheus text-exposition scrape of the
      {!Obs} registries plus the server's own request counters.
    - [GET /healthz] answers [ok].
    - [GET /debug/requests] answers the recent-request ring
      ([turbosyn-debug-requests/1]): id, route, status, outcome,
      wall-clock timings and per-phase span seconds, newest first.
    - [GET /debug/trace/<id>] answers the retained per-request telemetry
      of one ring entry ([turbosyn-debug-trace/1] with the full
      {!Obs.Scope.summary_json}); [?format=chrome] renders the request's
      timeline slices as a Chrome-trace document, [?format=folded] as
      flamegraph.pl folded stacks.  [404] when the id has been evicted
      from the ring (or never existed).

    {b Correlation ids.}  Every request carries a correlation id: the
    client's [X-Request-Id] header when present (up to 64 chars of
    [[A-Za-z0-9_-]]), else the trace-id field of a W3C [traceparent]
    header, else a server-generated {!Obs.Scope.fresh_id}.  Every
    response echoes it back as [X-Request-Id], every access-log line
    ([serve.access], plus [serve.slow] over the threshold) carries it as
    [request_id], and [/debug/trace/<id>] retrieves by it — so one id
    follows a request through client, server log and trace.

    Each [/map] request runs inside an {!Obs.Scope} keyed by its id:
    the scope's close folds the request's telemetry into the global
    registries (scrape counters stay monotone, and φ/labels/stats
    documents are byte-identical to unscoped runs) and its summary
    feeds the ring, the access log's phase timings and the per-request
    flamegraph.

    The accept loop is single-threaded (the Obs registries and the
    pipeline are process-global); concurrent clients queue in the listen
    backlog and are served in order.  A failing request answers
    4xx/5xx without tearing down the loop, and metric state persists
    across requests so scrape counters are monotone. *)

type t

val create : ?port:int -> ?slow_seconds:float -> unit -> t
(** Bind and listen on [127.0.0.1:port].  [port] defaults to [0]: the
    kernel picks an ephemeral port, readable via {!port}.
    [slow_seconds] (default [1.0]) is the threshold above which a
    request additionally logs a [serve.slow] warning.  Raises
    [Unix.Unix_error] when binding fails (e.g. port in use). *)

val port : t -> int

val run : t -> unit
(** Serve until {!stop}.  Blocks the calling thread; run it in a
    [Domain] (as [bench serve-load] and the tests do) to drive requests
    from the same process. *)

val stop : t -> unit
(** Close the listen socket, waking the blocked accept.  In-flight
    request handling completes first (the loop is single-threaded). *)

(** {1 Request plumbing, exposed for tests} *)

val algo_of_string : string -> Turbosyn.Synth.algo option

val result_json :
  circuit:string -> k:int -> Turbosyn.Synth.result -> Obs.Json.t
(** The deterministic response renderer shared by the serve path and the
    byte-identity test: rendering a direct {!Turbosyn.Synth.run} result
    through it must equal the served body. *)

val map_response :
  circuit:string ->
  k:int ->
  algo:Turbosyn.Synth.algo ->
  (Obs.Json.t, string) result
(** Resolve the circuit, run the mapping, render the response; [Error]
    on unknown circuits or out-of-range [k]. *)

val request_id_of_headers : (string * string) list -> string
(** The correlation id for a request with the given (lower-cased)
    header assoc: sanitized [x-request-id], else [traceparent] trace-id,
    else a fresh id. *)

val outcome_of_status : int -> string
(** ["served"] below 400, ["rejected"] for 4xx, ["failed"] for 5xx. *)
