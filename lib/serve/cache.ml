(* LRU + single-flight result cache.

   One mutex guards the table, the LRU list and the in-flight markers;
   one condition variable wakes joiners when a flight lands (or
   crashes).  The compute callback runs outside the lock: a key's
   flight blocks only requests for that same key, never the cache.

   The LRU list is an intrusive circular doubly-linked list through a
   sentinel: most-recently-used behind [sent.next], eviction victim at
   [sent.prev].  Only completed entries live in the list — an in-flight
   key is just a [Pending] table slot, so eviction can never race a
   computation. *)

type node = {
  key : string;
  body : string;
  mutable prev : node;
  mutable next : node;
}

type slot = Ready of node | Pending

type outcome = Hit | Miss | Join | Bypass

let outcome_label = function
  | Hit | Join -> "hit"
  | Miss -> "miss"
  | Bypass -> "bypass"

type t = {
  mutex : Mutex.t;
  landed : Condition.t; (* a flight completed (or failed) *)
  tbl : (string, slot) Hashtbl.t;
  sent : node; (* LRU sentinel: next = MRU, prev = LRU *)
  cap : int;
  mutable size : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  let rec sent = { key = ""; body = ""; prev = sent; next = sent } in
  {
    mutex = Mutex.create ();
    landed = Condition.create ();
    tbl = Hashtbl.create 64;
    sent;
    cap = capacity;
    size = 0;
  }

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sent.next;
  n.prev <- t.sent;
  t.sent.next.prev <- n;
  t.sent.next <- n

let touch t n =
  unlink n;
  push_front t n

let evict_over_capacity t =
  while t.size > t.cap do
    let victim = t.sent.prev in
    unlink victim;
    Hashtbl.remove t.tbl victim.key;
    t.size <- t.size - 1
  done

let find_or_compute t ~key compute =
  if t.cap = 0 then (compute (), Bypass)
  else begin
    Mutex.lock t.mutex;
    (* resolve the key to either cached bytes or flight leadership;
       waiting on an in-flight entry loops, because the flight may fail
       — in which case the first waiter to wake leads the retry *)
    let waited = ref false in
    let rec resolve () =
      match Hashtbl.find_opt t.tbl key with
      | Some (Ready n) ->
          touch t n;
          `Ready n.body
      | Some Pending ->
          waited := true;
          Condition.wait t.landed t.mutex;
          resolve ()
      | None ->
          Hashtbl.replace t.tbl key Pending;
          `Lead
    in
    match resolve () with
    | `Ready body ->
        Mutex.unlock t.mutex;
        (Ok body, if !waited then Join else Hit)
    | `Lead -> (
        Mutex.unlock t.mutex;
        let outcome =
          try Ok (compute ()) with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.mutex;
        (match outcome with
        | Ok (Ok body) ->
            let n = { key; body; prev = t.sent; next = t.sent } in
            push_front t n;
            Hashtbl.replace t.tbl key (Ready n);
            t.size <- t.size + 1;
            evict_over_capacity t
        | Ok (Error _) | Error _ -> Hashtbl.remove t.tbl key);
        Condition.broadcast t.landed;
        Mutex.unlock t.mutex;
        match outcome with
        | Ok r -> (r, Miss)
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
  end

let length t =
  Mutex.lock t.mutex;
  let n = t.size in
  Mutex.unlock t.mutex;
  n

let capacity t = t.cap
