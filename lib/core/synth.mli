(** TurboSYN: FPGA synthesis with retiming and pipelining for clock-period
    minimization of sequential circuits (Cong & Wu, DAC 1997).

    The flow mirrors the paper's Figure 4:

    + run TurboMap-style label computation to obtain the upper bound UB
      (here: the exact-rational Stern–Brocot search starts from the MDR of
      the trivial mapping, which bounds UB);
    + binary-search the minimum MDR ratio φ*, each probe being a label
      computation with sequential functional decomposition and positive
      loop detection;
    + generate the LUT mapping from the converged labels;
    + recover area (cut sharing, packing);
    + retime + pipeline the result to clock period [ceil φ*].

    Use [`Turbosyn] for the paper's algorithm, [`Turbomap] for the
    no-resynthesis baseline, and [`Flowsyn_s] for the cut-at-FFs baseline
    (FlowSYN applied per combinational block). *)

open Prelude

type algo = [ `Turbosyn | `Turbomap | `Flowsyn_s ]

val algo_name : algo -> string
(** ["turbosyn"], ["turbomap"], ["flowsyn-s"]. *)

type options = {
  k : int;
  cmax : int;
  pld : bool;
  exhaustive : bool;
  area_recovery : bool;
  extra_depth : int;
  max_expansion : int;
  resyn_depth : int;
  phi_max_den : int option;
      (** cap on the denominators explored by the exact ratio search
          ([None] = fully exact up to the register count) *)
  multi_output : bool;
      (** two-wire bound-set extraction in the decomposition engine (the
          paper's future-work extension; off by default, like the paper) *)
  engine : Seqmap.Label_engine.engine;
      (** label-iteration scheduling; [Worklist] (default) and [Sweep]
          produce identical labels and mappings *)
  jobs : int;
      (** intra-φ lanes: domains labeling independent SCCs of one
          condensation level concurrently inside {e each} label run
          ([doc/CONCURRENCY.md]; 1 = sequential; results are
          byte-identical for every value) *)
  probe_jobs : int;
      (** domains for speculative ratio-search probes — whole probes in
          parallel, the orthogonal axis to [jobs] (1 = sequential).  The
          minimum ratio, clock period and every label are identical for
          every value, and each value is individually deterministic; the
          concrete cuts harvested for the mapping may differ between
          values, because only driver-domain probes feed the cross-φ cut
          memo ([Seqmap.Label_engine.cut_memo]).  With [probe_jobs > 1]
          and [jobs > 1] the axes compose multiplicatively in domain
          count: each probe spins up its own [jobs] lanes. *)
}

val default_options : ?k:int -> unit -> options
(** Paper defaults: K = 5, Cmax = 15, PLD on, area recovery on,
    [phi_max_den = Some 24].  [exhaustive] is on — the decomposition tries
    bound sets beyond the earliest-arrival prefix, which measurably closes
    quality gaps at modest cost.  [engine = Worklist], [jobs = 1],
    [probe_jobs = 1]. *)

type result = {
  algo : algo;
  mapped : Circuit.Netlist.t;  (** after area recovery *)
  realized : Circuit.Netlist.t option;
      (** retimed + pipelined to [clock_period]; [None] only if
          realization failed (never for valid inputs) *)
  phi : Rat.t;  (** minimum (or achieved, for [`Flowsyn_s]) MDR ratio *)
  clock_period : int;  (** [max 1 (ceil phi_mapped)] *)
  latency : int;  (** pipeline stages added at realization *)
  luts : int;  (** after area recovery *)
  luts_before_area : int;
  resyn_nodes : int;  (** decompositions accepted during labeling *)
  probes : int;
  label_stats : Seqmap.Label_engine.stats option;  (** None for [`Flowsyn_s] *)
  cpu_seconds : float;
  labels : Prelude.Rat.t array option;
      (** converged labels of the final label run at [phi], indexed by
          node of the {e source} netlist; [None] for [`Flowsyn_s] *)
  prov : Seqmap.Label_engine.prov option array option;
      (** per-gate implementation provenance of the final label run
          (audit evidence, [doc/AUDIT.md]); [None] for [`Flowsyn_s] *)
  lags : int array option;
      (** the retiming lag vector achieving [clock_period], indexed by
          node of [mapped]; [None] when realization failed *)
}

val run : ?options:options -> algo -> Circuit.Netlist.t -> result
(** @raise Invalid_argument on invalid or non-K-bounded input. *)

val engine_options : options -> resynthesize:bool -> Seqmap.Label_engine.options
(** The label-engine options this [options] record induces. *)
