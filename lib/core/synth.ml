open Prelude
open Circuit

(* observability (doc/OBSERVABILITY.md): top-level phase durations and the
   per-run result trace event *)
let s_total = Obs.Span.make "synth.total"
let s_area = Obs.Span.make "synth.area"
let s_relax = Obs.Span.make "synth.relax"
let s_realize = Obs.Span.make "synth.realize"
let h_e2e = Obs.Histogram.make "synth.e2e_seconds"

type algo = [ `Turbosyn | `Turbomap | `Flowsyn_s ]

let algo_name = function
  | `Turbosyn -> "turbosyn"
  | `Turbomap -> "turbomap"
  | `Flowsyn_s -> "flowsyn-s"

type options = {
  k : int;
  cmax : int;
  pld : bool;
  exhaustive : bool;
  area_recovery : bool;
  extra_depth : int;
  max_expansion : int;
  resyn_depth : int;
  phi_max_den : int option;
  multi_output : bool;
  engine : Seqmap.Label_engine.engine;
  jobs : int;
  (* intra-phi lanes (SCC-level parallel labeling, doc/CONCURRENCY.md);
     byte-identical results for every value *)
  probe_jobs : int;
  (* speculative ratio-search probes evaluated concurrently
     (doc/PERF.md); also jobs-invariant, but a different axis: whole
     probes, not one probe's SCCs *)
}

let default_options ?(k = 5) () =
  {
    k;
    cmax = 15;
    pld = true;
    exhaustive = true;
    area_recovery = true;
    extra_depth = 3;
    max_expansion = 4000;
    resyn_depth = 2;
    phi_max_den = Some 24;
    multi_output = false;
    engine = Seqmap.Label_engine.Worklist;
    jobs = 1;
    probe_jobs = 1;
  }

type result = {
  algo : algo;
  mapped : Netlist.t;
  realized : Netlist.t option;
  phi : Rat.t;
  clock_period : int;
  latency : int;
  luts : int;
  luts_before_area : int;
  resyn_nodes : int;
  probes : int;
  label_stats : Seqmap.Label_engine.stats option;
  cpu_seconds : float;
  (* audit evidence (doc/AUDIT.md); [None] for algorithms that do not run
     the label engine (FlowSYN-s) or when realization fails *)
  labels : Rat.t array option;
  prov : Seqmap.Label_engine.prov option array option;
  lags : int array option;
}

let engine_options o ~resynthesize =
  {
    Seqmap.Label_engine.k = o.k;
    resynthesize;
    cmax = o.cmax;
    exhaustive = o.exhaustive;
    pld = o.pld;
    extra_depth = o.extra_depth;
    max_expansion = o.max_expansion;
    resyn_depth = o.resyn_depth;
    multi_output = o.multi_output;
    full_expansion = false;
    engine = o.engine;
    jobs = o.jobs;
  }

let finish ?labels ?prov algo o ~mapped ~phi ~resyn_nodes ~probes ~label_stats
    ~cpu_seconds =
  let luts_before_area = List.length (Netlist.gates mapped) in
  let mapped =
    if o.area_recovery then
      Obs.Span.time s_area (fun () -> Area.reduce mapped ~k:o.k)
    else mapped
  in
  let realized, clock_period, latency, lags =
    Obs.Span.time s_realize (fun () ->
        match Seqmap.Turbomap.realize_full mapped with
        | Some (r, p, l, lag) -> (Some r, p, l, Some lag)
        | None -> (None, -1, 0, None))
  in
  {
    algo;
    mapped;
    realized;
    phi;
    clock_period;
    latency;
    luts = List.length (Netlist.gates mapped);
    luts_before_area;
    resyn_nodes;
    probes;
    label_stats;
    cpu_seconds;
    labels;
    prov;
    lags;
  }

let run_seq algo o nl ~resynthesize =
  let t0 = Sys.time () in
  let opts = engine_options o ~resynthesize in
  let mapped, report, impls =
    Seqmap.Turbomap.map_full ~options:opts ?phi_max_den:o.phi_max_den
      ~jobs:o.probe_jobs nl ~k:o.k
  in
  (* the paper's label relaxation: drop decomposition trees whose label
     increase does not create a positive loop (area recovery step 1) *)
  let mapped =
    if resynthesize && o.area_recovery then
      Obs.Span.time s_relax (fun () ->
          fst (Relax.relax nl ~impls ~phi:report.Seqmap.Turbomap.phi))
    else mapped
  in
  let cpu = Sys.time () -. t0 in
  finish algo o ~mapped ~phi:report.Seqmap.Turbomap.phi
    ~labels:report.Seqmap.Turbomap.labels ~prov:report.Seqmap.Turbomap.prov
    ~resyn_nodes:report.Seqmap.Turbomap.stats.Seqmap.Label_engine.decompositions
    ~probes:report.Seqmap.Turbomap.probes
    ~label_stats:(Some report.Seqmap.Turbomap.stats)
    ~cpu_seconds:cpu

let run_flowsyn_s o nl =
  let t0 = Sys.time () in
  let mapped, report =
    Flowmap.Flowsyn.map_sequential ~resynthesize:true ~cmax:o.cmax
      ~exhaustive:o.exhaustive ~jobs:o.jobs nl ~k:o.k
  in
  let cpu = Sys.time () -. t0 in
  let phi =
    match report.Flowmap.Flowsyn.mdr with
    | Graphs.Cycle_ratio.Ratio r -> r
    | Graphs.Cycle_ratio.No_cycle -> Rat.zero
    | Graphs.Cycle_ratio.Infinite -> Rat.of_int (-1)
  in
  finish `Flowsyn_s o ~mapped ~phi
    ~resyn_nodes:report.Flowmap.Flowsyn.resyn_nodes ~probes:0 ~label_stats:None
    ~cpu_seconds:cpu

let run ?options algo nl =
  let o = match options with Some o -> o | None -> default_options () in
  Netlist.validate_exn ~k:o.k nl;
  let t_start = if Obs.enabled () then Timer.wall () else 0. in
  let r =
    Obs.Span.time s_total (fun () ->
        match algo with
        | `Turbosyn -> run_seq `Turbosyn o nl ~resynthesize:true
        | `Turbomap -> run_seq `Turbomap o nl ~resynthesize:false
        | `Flowsyn_s -> run_flowsyn_s o nl)
  in
  if Obs.enabled () then
    Obs.Histogram.observe h_e2e (Timer.wall () -. t_start);
  if Obs.enabled () then
    Obs.Trace.emit "synth.result"
      [
        ("algo", Obs.Json.Str (algo_name r.algo));
        ("circuit", Obs.Json.Str (Netlist.name nl));
        ("phi", Obs.Json.Str (Rat.to_string r.phi));
        ("clock_period", Obs.Json.Int r.clock_period);
        ("latency", Obs.Json.Int r.latency);
        ("luts", Obs.Json.Int r.luts);
        ("probes", Obs.Json.Int r.probes);
        ("cpu_seconds", Obs.Json.Float r.cpu_seconds);
      ];
  r
