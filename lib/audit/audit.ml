module Circuit_json = Circuit_json
module Diff = Diff
open Prelude
open Circuit
module J = Obs.Json
module LE = Seqmap.Label_engine

(* observability (doc/OBSERVABILITY.md): evidence production and checking *)
let c_certificates = Obs.Counter.make "audit.certificates"
let c_checks = Obs.Counter.make "audit.checks"
let c_check_failures = Obs.Counter.make "audit.check_failures"
let s_build = Obs.Span.make "audit.build"
let s_verify = Obs.Span.make "audit.verify"

let schema_version = "turbosyn-audit/1"

let algo_string = function
  | `Turbosyn -> "turbosyn"
  | `Turbomap -> "turbomap"
  | `Flowsyn_s -> "flowsyn-s"

let engine_string = function LE.Sweep -> "sweep" | LE.Worklist -> "worklist"

(* ------------------------------------------------------------------ *)
(* Document production                                                 *)
(* ------------------------------------------------------------------ *)

let pairs_json cut =
  J.List
    (Array.to_list
       (Array.map (fun (u, w) -> J.List [ J.Int u; J.Int w ]) cut))

let prov_json (p : LE.prov) =
  J.Obj
    [
      ( "source",
        match p.LE.p_source with
        | LE.From_cut_test -> J.Str "cut_test"
        | LE.From_snapshot -> J.Str "snapshot"
        | LE.From_recorded -> J.Str "recorded"
        | LE.From_resyn h -> J.Obj [ ("resyn", J.Int h) ] );
      ("engine", J.Str (engine_string p.LE.p_engine));
      ("cut", pairs_json p.LE.p_cut);
      ("height", Circuit_json.rat_to_json p.LE.p_height);
      ("label", Circuit_json.rat_to_json p.LE.p_label);
      ("iteration", J.Int p.LE.p_iteration);
    ]

let certificate_json mapped =
  let edges = Netlist.retiming_edges mapped in
  match Graphs.Cycle_ratio.critical_cycle ~n:(Netlist.n mapped) ~edges with
  | `No_cycle -> Ok J.Null
  | `Infinite -> Error "mapped netlist has a combinational loop"
  | `Cycle c ->
      Ok
        (J.Obj
           [
             ("ratio", Circuit_json.rat_to_json c.Graphs.Cycle_ratio.c_ratio);
             ("delay", J.Int c.Graphs.Cycle_ratio.c_delay);
             ("weight", J.Int c.Graphs.Cycle_ratio.c_weight);
             ( "nodes",
               J.List
                 (List.map (fun v -> J.Int v) c.Graphs.Cycle_ratio.c_nodes) );
             ( "edges",
               J.List
                 (List.map
                    (fun (e : Graphs.Cycle_ratio.edge) ->
                      J.Obj
                        [
                          ("src", J.Int e.Graphs.Cycle_ratio.src);
                          ("dst", J.Int e.Graphs.Cycle_ratio.dst);
                          ("delay", J.Int e.Graphs.Cycle_ratio.delay);
                          ("weight", J.Int e.Graphs.Cycle_ratio.weight);
                        ])
                    c.Graphs.Cycle_ratio.c_edges) );
           ])

let build ~source ~(options : Turbosyn.Synth.options)
    (r : Turbosyn.Synth.result) =
  Obs.Span.time s_build @@ fun () ->
  match (r.Turbosyn.Synth.lags, r.Turbosyn.Synth.realized) with
  | None, _ | _, None ->
      Error "result has no realization (combinational loop in the mapping?)"
  | Some lags, Some _ -> (
      match certificate_json r.Turbosyn.Synth.mapped with
      | Error e -> Error e
      | Ok cert ->
          Obs.Counter.incr c_certificates;
          let labels_json =
            match r.Turbosyn.Synth.labels with
            | None -> J.Null
            | Some ls ->
                J.List
                  (Array.to_list (Array.map Circuit_json.rat_to_json ls))
          in
          let provenance_json =
            match r.Turbosyn.Synth.prov with
            | None -> J.Null
            | Some ps ->
                J.List
                  (Array.to_list
                     (Array.map
                        (function None -> J.Null | Some p -> prov_json p)
                        ps))
          in
          Ok
            (J.Obj
               [
                 ("schema", J.Str schema_version);
                 ("circuit", J.Str (Netlist.name source));
                 ("algo", J.Str (algo_string r.Turbosyn.Synth.algo));
                 ("k", J.Int options.Turbosyn.Synth.k);
                 ("cmax", J.Int options.Turbosyn.Synth.cmax);
                 ("engine", J.Str (engine_string options.Turbosyn.Synth.engine));
                 ("phi", Circuit_json.rat_to_json r.Turbosyn.Synth.phi);
                 ("clock_period", J.Int r.Turbosyn.Synth.clock_period);
                 ("latency", J.Int r.Turbosyn.Synth.latency);
                 ("luts", J.Int r.Turbosyn.Synth.luts);
                 ("source", Circuit_json.to_json source);
                 ("mapped", Circuit_json.to_json r.Turbosyn.Synth.mapped);
                 ("certificate", cert);
                 ( "witness",
                   J.Obj
                     [
                       ("period", J.Int r.Turbosyn.Synth.clock_period);
                       ("latency", J.Int r.Turbosyn.Synth.latency);
                       ( "lags",
                         J.List
                           (Array.to_list
                              (Array.map (fun l -> J.Int l) lags)) );
                     ] );
                 ("labels", labels_json);
                 ("provenance", provenance_json);
               ]))

(* ------------------------------------------------------------------ *)
(* Independent verification.                                           *)
(*                                                                     *)
(* Nothing here calls into the label engine: the certificate is        *)
(* re-checked edge by edge against the mapped netlist plus the         *)
(* [exceeds] oracle, the witness by replaying the retiming, the        *)
(* equivalence by simulation, and the provenance against the label     *)
(* fixpoint invariant and per-cut arithmetic recomputed from the       *)
(* document alone.                                                     *)
(* ------------------------------------------------------------------ *)

type check = { c_name : string; c_ok : bool; c_detail : string }
type verdict = { v_ok : bool; v_checks : check list }

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let member name j =
  match J.member name j with
  | Some v -> v
  | None -> failf "missing member %S" name

let jstr name j =
  match member name j with
  | J.Str s -> s
  | _ -> failf "member %S: expected a string" name

let jint name j =
  match member name j with
  | J.Int i -> i
  | _ -> failf "member %S: expected an integer" name

let jrat name j =
  match Circuit_json.rat_of_json (member name j) with
  | Ok r -> r
  | Error e -> failf "member %S: %s" name e

let jints name j =
  match member name j with
  | J.List l ->
      Array.of_list
        (List.map
           (function J.Int i -> i | _ -> failf "member %S: expected ints" name)
           l)
  | _ -> failf "member %S: expected a list" name

let jpairs name j =
  match member name j with
  | J.List l ->
      Array.of_list
        (List.map
           (function
             | J.List [ J.Int u; J.Int w ] -> (u, w)
             | _ -> failf "member %S: expected [int, int] pairs" name)
           l)
  | _ -> failf "member %S: expected a list" name

(* A check either passes, or fails with the first offending detail. *)
let check name f =
  match f () with
  | () -> { c_name = name; c_ok = true; c_detail = "" }
  | exception Bad d -> { c_name = name; c_ok = false; c_detail = d }
  | exception Invalid_argument d -> { c_name = name; c_ok = false; c_detail = d }

let check_certificate doc mapped phi period =
  let n = Netlist.n mapped in
  let edges = Netlist.retiming_edges mapped in
  match member "certificate" doc with
  | J.Null -> (
      (* acyclic claim: the mapped graph must really have no cycle *)
      match Netlist.mdr_ratio mapped with
      | Graphs.Cycle_ratio.No_cycle ->
          if period <> 1 then
            failf "acyclic mapping must realize period 1, document says %d"
              period
      | _ -> failf "certificate is null but the mapped netlist has cycles")
  | cert ->
      let ratio = jrat "ratio" cert in
      let delay = jint "delay" cert in
      let weight = jint "weight" cert in
      let nodes = jints "nodes" cert in
      let ce =
        match member "edges" cert with
        | J.List l ->
            List.map
              (fun e ->
                {
                  Graphs.Cycle_ratio.src = jint "src" e;
                  dst = jint "dst" e;
                  delay = jint "delay" e;
                  weight = jint "weight" e;
                })
              l
        | _ -> failf "certificate edges: expected a list"
      in
      if ce = [] then failf "certificate has no edges";
      (* every claimed edge must exist in the mapped netlist *)
      List.iter
        (fun (e : Graphs.Cycle_ratio.edge) ->
          if e.dst < 0 || e.dst >= n || e.src < 0 || e.src >= n then
            failf "certificate edge %d->%d: node out of range" e.src e.dst;
          if Netlist.delay mapped e.dst <> e.delay then
            failf "certificate edge %d->%d: delay %d does not match the node"
              e.src e.dst e.delay;
          let fanins = Netlist.fanins mapped e.dst in
          if
            not
              (Array.exists (fun (u, w) -> u = e.src && w = e.weight) fanins)
          then
            failf "certificate edge %d->%d (weight %d) is not in the netlist"
              e.src e.dst e.weight)
        ce;
      (* the edges must close into a cycle, in order *)
      let arr = Array.of_list ce in
      let m = Array.length arr in
      Array.iteri
        (fun i (e : Graphs.Cycle_ratio.edge) ->
          let next = arr.((i + 1) mod m) in
          if e.dst <> next.Graphs.Cycle_ratio.src then
            failf "certificate edges do not close at position %d" i)
        arr;
      if Array.length nodes <> m then failf "certificate node list length";
      Array.iteri
        (fun i v ->
          if arr.(i).Graphs.Cycle_ratio.src <> v then
            failf "certificate node list disagrees with edge %d" i)
        nodes;
      (* totals, positivity, the exact ratio *)
      let d = List.fold_left (fun a (e : Graphs.Cycle_ratio.edge) -> a + e.delay) 0 ce in
      let w = List.fold_left (fun a (e : Graphs.Cycle_ratio.edge) -> a + e.weight) 0 ce in
      if d <> delay then failf "certificate delay %d, edges sum to %d" delay d;
      if w <> weight then
        failf "certificate weight %d, edges sum to %d" weight w;
      if w <= 0 then failf "certificate cycle carries no registers";
      if not (Rat.equal ratio (Rat.make d w)) then
        failf "certificate ratio %s is not delay/weight = %d/%d"
          (Rat.to_string ratio) d w;
      (* maximality: no cycle of the mapped graph is strictly worse *)
      if Graphs.Cycle_ratio.exceeds ~n ~edges ratio then
        failf "a mapped cycle exceeds the certificate ratio %s"
          (Rat.to_string ratio);
      (* consistency with the claimed period and the searched ratio *)
      if period <> max 1 (Rat.ceil ratio) then
        failf "period %d does not match ceil of certificate ratio %s" period
          (Rat.to_string ratio);
      if Rat.( > ) ratio (Rat.max phi Rat.one) then
        failf "certificate ratio %s exceeds the searched phi %s"
          (Rat.to_string ratio) (Rat.to_string phi)

let check_witness doc mapped period latency =
  let wit = member "witness" doc in
  let lags = jints "lags" wit in
  let wperiod = jint "period" wit in
  let wlatency = jint "latency" wit in
  if wperiod <> period then
    failf "witness period %d disagrees with document period %d" wperiod period;
  if wlatency <> latency then
    failf "witness latency %d disagrees with document latency %d" wlatency
      latency;
  if Array.length lags <> Netlist.n mapped then
    failf "lag vector length %d, netlist has %d nodes" (Array.length lags)
      (Netlist.n mapped);
  List.iter
    (fun pi ->
      if lags.(pi) <> 0 then failf "PI %d has nonzero lag %d" pi lags.(pi))
    (Netlist.pis mapped);
  let po_lag =
    List.fold_left
      (fun acc po ->
        if lags.(po) < 0 then failf "PO %d has negative lag %d" po lags.(po);
        max acc lags.(po))
      0 (Netlist.pos mapped)
  in
  if po_lag <> latency then
    failf "maximum PO lag %d is not the claimed latency %d" po_lag latency;
  if not (Retime.Retiming.legal mapped ~r:lags) then
    failf "lag vector is not a legal retiming (negative retimed weight)";
  let realized = Retime.Retiming.apply mapped ~r:lags in
  let achieved = Retime.Retiming.clock_period realized in
  if achieved > period then
    failf "retimed circuit has clock period %d, witness claims %d" achieved
      period

let check_equivalence source mapped ~seed =
  let rng = Rng.create seed in
  if not (Sim.Equiv.mapped_equal rng source mapped) then
    failf "mapped netlist is not simulation-equivalent to the source"

let check_labels source labels phi =
  if Array.length labels <> Netlist.n source then
    failf "labels length %d, source has %d nodes" (Array.length labels)
      (Netlist.n source);
  List.iter
    (fun pi ->
      if not (Rat.equal labels.(pi) Rat.zero) then
        failf "PI %d has label %s, expected 0" pi (Rat.to_string labels.(pi)))
    (Netlist.pis source);
  (* converged-fixpoint invariant: L(v) <= l(v) <= max(1, L(v) + 1) with
     L(v) = max over fanins (l(u) - phi*w) *)
  List.iter
    (fun v ->
      let fanins = Netlist.fanins source v in
      if Array.length fanins > 0 then begin
        let big_l =
          Array.fold_left
            (fun acc (u, w) ->
              Rat.max acc (Rat.sub labels.(u) (Rat.mul_int phi w)))
            (let u, w = fanins.(0) in
             Rat.sub labels.(u) (Rat.mul_int phi w))
            fanins
        in
        let l = labels.(v) in
        if Rat.( < ) l big_l then
          failf "gate %d: label %s below its lower bound L = %s" v
            (Rat.to_string l) (Rat.to_string big_l);
        if Rat.( > ) l (Rat.max Rat.one (Rat.add big_l Rat.one)) then
          failf "gate %d: label %s above max(1, L + 1) with L = %s" v
            (Rat.to_string l) (Rat.to_string big_l)
      end)
    (Netlist.gates source)

let check_provenance doc source labels phi ~k ~cmax =
  let engine = jstr "engine" doc in
  let provs =
    match member "provenance" doc with
    | J.List l -> Array.of_list l
    | _ -> failf "provenance: expected a list"
  in
  if Array.length provs <> Netlist.n source then
    failf "provenance length %d, source has %d nodes" (Array.length provs)
      (Netlist.n source);
  let arrival (u, w) = Rat.sub labels.(u) (Rat.mul_int phi w) in
  Array.iteri
    (fun v pj ->
      match (Netlist.is_gate source v, pj) with
      | false, J.Null -> ()
      | false, _ -> failf "node %d: provenance on a non-gate" v
      | true, J.Null -> failf "gate %d has no provenance" v
      | true, pj ->
          let label = jrat "label" pj in
          let height = jrat "height" pj in
          let cut = jpairs "cut" pj in
          if jstr "engine" pj <> engine then
            failf "gate %d: provenance engine differs from the document" v;
          if jint "iteration" pj < 0 then
            failf "gate %d: negative iteration" v;
          if not (Rat.equal label labels.(v)) then
            failf "gate %d: provenance label %s, labels array says %s" v
              (Rat.to_string label)
              (Rat.to_string labels.(v));
          Array.iter
            (fun (u, w) ->
              if u < 0 || u >= Netlist.n source then
                failf "gate %d: cut input %d out of range" v u;
              if w < 0 then failf "gate %d: negative cut weight" v;
              if Rat.( > ) (Rat.add (arrival (u, w)) Rat.one) label then
                failf
                  "gate %d: cut input (%d, %d) violates validity: l(u) - \
                   phi*w + 1 > l(v)"
                  v u w)
            cut;
          if Rat.( > ) height label then
            failf "gate %d: height %s exceeds label %s" v
              (Rat.to_string height) (Rat.to_string label);
          let resyn_h =
            match member "source" pj with
            | J.Str ("cut_test" | "snapshot" | "recorded") -> None
            | J.Obj [ ("resyn", J.Int h) ] -> Some h
            | _ -> failf "gate %d: unknown provenance source" v
          in
          (match resyn_h with
          | None ->
              (* a plain sequential cut: recompute its height exactly and
                 re-derive the cone function (raises when the cut does not
                 cover all paths from the root) *)
              if Array.length cut > k then
                failf "gate %d: cut width %d exceeds K = %d" v
                  (Array.length cut) k;
              let h =
                if Array.length cut = 0 then Rat.one
                else
                  Rat.add Rat.one
                    (Array.fold_left
                       (fun acc p -> Rat.max acc (arrival p))
                       (arrival cut.(0)) cut)
              in
              if not (Rat.equal h height) then
                failf "gate %d: recomputed cut height %s, claimed %s" v
                  (Rat.to_string h) (Rat.to_string height);
              ignore (Seqmap.Mapgen.cut_function source ~root:v ~cut)
          | Some h ->
              if h < 0 then failf "gate %d: negative rescue depth" v;
              if Array.length cut > cmax then
                failf "gate %d: rescue cut width %d exceeds Cmax = %d" v
                  (Array.length cut) cmax;
              if Array.length cut = 0 then
                failf "gate %d: rescue with an empty cut" v;
              (* candidate cuts at rescue depth h are frontier/min cuts of
                 the expansion at threshold l(v) - h, whose nodes are all
                 non-internal there: arrival + 1 <= l(v) - h.  (The cut
                 may include inputs the decomposed cone does not depend
                 on, so the tree height bounds only the used inputs.) *)
              let slack = Rat.sub label (Rat.of_int h) in
              Array.iter
                (fun p ->
                  if Rat.( > ) (Rat.add (arrival p) Rat.one) slack then
                    failf
                      "gate %d: rescue input arrival + 1 exceeds l(v) - h \
                       at depth %d"
                      v h)
                cut))
    provs

let verify ?(seed = 7) doc =
  Obs.Span.time s_verify @@ fun () ->
  Obs.Counter.incr c_checks;
  let result =
    try
      let schema = jstr "schema" doc in
      if schema <> schema_version then
        failf "unsupported schema %S (expected %S)" schema schema_version;
      let source =
        match Circuit_json.of_json (member "source" doc) with
        | Ok nl -> nl
        | Error e -> failf "source netlist: %s" e
      in
      let mapped =
        match Circuit_json.of_json (member "mapped" doc) with
        | Ok nl -> nl
        | Error e -> failf "mapped netlist: %s" e
      in
      let k = jint "k" doc in
      let phi = jrat "phi" doc in
      let period = jint "clock_period" doc in
      let latency = jint "latency" doc in
      let checks = ref [] in
      let add c = checks := c :: !checks in
      add
        (check "netlists-valid" (fun () ->
             (match Netlist.validate ~k source with
             | [] -> ()
             | e :: _ ->
                 failf "source: %s" (Format.asprintf "%a" Netlist.pp_error e));
             match Netlist.validate ~k mapped with
             | [] -> ()
             | e :: _ ->
                 failf "mapped: %s" (Format.asprintf "%a" Netlist.pp_error e)));
      add
        (check "lut-count" (fun () ->
             let luts = jint "luts" doc in
             let real = List.length (Netlist.gates mapped) in
             if luts <> real then
               failf "document says %d LUTs, mapped netlist has %d" luts real));
      add
        (check "certificate" (fun () ->
             check_certificate doc mapped phi period));
      add (check "witness" (fun () -> check_witness doc mapped period latency));
      add
        (check "equivalence" (fun () -> check_equivalence source mapped ~seed));
      (match member "labels" doc with
      | J.Null -> ()
      | lj ->
          let labels =
            match lj with
            | J.List l ->
                Array.of_list
                  (List.map
                     (fun r ->
                       match Circuit_json.rat_of_json r with
                       | Ok r -> r
                       | Error e -> failf "labels: %s" e)
                     l)
            | _ -> failf "labels: expected a list"
          in
          add
            (check "labels-fixpoint" (fun () ->
                 check_labels source labels phi));
          add
            (check "provenance" (fun () ->
                 let cmax = jint "cmax" doc in
                 check_provenance doc source labels phi ~k ~cmax)));
      let v_checks = List.rev !checks in
      Ok { v_ok = List.for_all (fun c -> c.c_ok) v_checks; v_checks }
    with Bad e -> Error e
  in
  (match result with
  | Ok { v_ok = true; _ } -> ()
  | Ok _ | Error _ -> Obs.Counter.incr c_check_failures);
  result

let render_verdict v =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (if c.c_ok then Printf.sprintf "PASS %s\n" c.c_name
         else Printf.sprintf "FAIL %s: %s\n" c.c_name c.c_detail))
    v.v_checks;
  Buffer.add_string buf
    (if v.v_ok then "audit: ACCEPTED\n" else "audit: REJECTED\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Structural document comparison with first-differing-path reporting  *)
(* (the jobs-invariance oracle: bench and tests assert that audit      *)
(* documents built under different lane counts are equal — see         *)
(* doc/CONCURRENCY.md).                                                *)
(* ------------------------------------------------------------------ *)

let json_kind = function
  | J.Null -> "null"
  | J.Bool _ -> "bool"
  | J.Int _ -> "int"
  | J.Float _ -> "float"
  | J.Str _ -> "string"
  | J.List _ -> "list"
  | J.Obj _ -> "object"

let json_atom = function
  | J.Null -> "null"
  | J.Bool b -> string_of_bool b
  | J.Int i -> string_of_int i
  | J.Float f -> Printf.sprintf "%.17g" f
  | J.Str s -> if String.length s > 40 then String.sub s 0 40 ^ "..." else s
  | J.List _ | J.Obj _ -> assert false

let equal_documents a b =
  let diff = ref None in
  let record path msg =
    if !diff = None then diff := Some (path, msg)
  in
  let path_str rev_path = String.concat "" (List.rev rev_path) in
  let rec go rev_path a b =
    if !diff = None then
      match (a, b) with
      | J.Obj fa, J.Obj fb ->
          let ka = List.map fst fa and kb = List.map fst fb in
          if ka <> kb then
            record (path_str rev_path)
              (Printf.sprintf "field sets differ ({%s} vs {%s})"
                 (String.concat "," ka) (String.concat "," kb))
          else
            List.iter2
              (fun (k, va) (_, vb) -> go (("." ^ k) :: rev_path) va vb)
              fa fb
      | J.List la, J.List lb ->
          let na = List.length la and nb = List.length lb in
          if na <> nb then
            record (path_str rev_path)
              (Printf.sprintf "list lengths differ (%d vs %d)" na nb)
          else
            List.iteri
              (fun i (va, vb) ->
                go (Printf.sprintf "[%d]" i :: rev_path) va vb)
              (List.combine la lb)
      | (J.Obj _ | J.List _), _ | _, (J.Obj _ | J.List _) ->
          record (path_str rev_path)
            (Printf.sprintf "kinds differ (%s vs %s)" (json_kind a)
               (json_kind b))
      | _ ->
          if not (J.equal a b) then
            record (path_str rev_path)
              (Printf.sprintf "%s <> %s" (json_atom a) (json_atom b))
  in
  go [ "$" ] a b;
  match !diff with
  | None -> Ok ()
  | Some (path, msg) -> Error (Printf.sprintf "%s: %s" path msg)
