(** JSON codec for netlists and exact rationals, used by the audit
    document ([doc/AUDIT.md]).

    Nodes are serialized in id order (node ids are creation order), so
    decoding replays the creation sequence exactly: ids, kinds, names,
    truth tables and fanin weights round-trip bit for bit.  Generated
    names ([n<id>]) become explicit on decode, which is invisible to
    every consumer (names are only used for display and signal
    matching). *)

val to_json : Circuit.Netlist.t -> Obs.Json.t
val of_json : Obs.Json.t -> (Circuit.Netlist.t, string) result
(** Structural errors (missing members, bad kinds, dangling drivers,
    arity mismatches) are returned as [Error]; decoded circuits satisfy
    the [Netlist] construction invariants by construction. *)

val rat_to_json : Prelude.Rat.t -> Obs.Json.t
(** ["p/q"], or ["p"] when the denominator is 1 — exact, never a float. *)

val rat_of_json : Obs.Json.t -> (Prelude.Rat.t, string) result
