(** Evidence-producing audit layer ([doc/AUDIT.md]).

    {!build} turns one synthesis result into a versioned, self-contained
    JSON document ([turbosyn-audit/1]) carrying three kinds of evidence:

    - a {e lower-bound certificate}: a concrete critical loop of the
      mapped netlist (node list, edges, total delay, total registers,
      exact rational ratio) — no retiming of that netlist can clock
      faster than [ceil] of its ratio;
    - an {e upper-bound witness}: the mapped netlist plus the retiming /
      pipelining lag vector that actually achieves the claimed clock
      period;
    - {e label provenance}: for every gate, which mechanism (cut test,
      snapshot reuse, recorded cut, or decomposition rescue) justified
      its final label, with the cut and its exact height.

    {!verify} re-checks a document {e independently}: it never calls the
    label engine.  The certificate is re-validated edge by edge against
    the serialized netlist plus the [Cycle_ratio.exceeds] oracle, the
    witness by replaying the retiming and measuring the resulting clock
    period, functional correctness by simulation, and the provenance
    against the converged-fixpoint invariant
    [L(v) <= l(v) <= max(1, L(v) + 1)] and per-cut arithmetic recomputed
    from the document alone. *)

module Circuit_json = Circuit_json
module Diff = Diff

val schema_version : string
(** ["turbosyn-audit/1"]. *)

val build :
  source:Circuit.Netlist.t ->
  options:Turbosyn.Synth.options ->
  Turbosyn.Synth.result ->
  (Obs.Json.t, string) result
(** Assemble the audit document for a synthesis result on [source].
    [Error] when the result carries no realization (no lag vector), or
    the mapped netlist has a combinational loop. *)

type check = {
  c_name : string;
  c_ok : bool;
  c_detail : string;  (** first offending fact when [not c_ok] *)
}

type verdict = { v_ok : bool; v_checks : check list }

val verify : ?seed:int -> Obs.Json.t -> (verdict, string) result
(** Independently re-check a [turbosyn-audit/1] document.  [Error] on a
    structurally malformed document (missing members, undecodable
    netlists); [Ok] with per-check verdicts otherwise.  [seed] drives
    the simulation-based equivalence check (default 7, matching the
    CLI's [--verify]). *)

val render_verdict : verdict -> string
(** One PASS/FAIL line per check plus a final ACCEPTED/REJECTED line. *)

val equal_documents : Obs.Json.t -> Obs.Json.t -> (unit, string) result
(** Structural equality of two JSON documents with diagnosis: [Ok ()]
    when equal, [Error "<path>: <difference>"] naming the first
    differing path (e.g. ["$.labels[3]: 2 <> 5/2"]) otherwise.  The
    jobs-invariance oracle (doc/CONCURRENCY.md): audit documents built
    from runs that differ only in lane count must compare [Ok]. *)
