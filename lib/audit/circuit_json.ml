open Circuit
module J = Obs.Json

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let member name j =
  match J.member name j with
  | Some v -> v
  | None -> fail "missing member %S" name

let str name j =
  match member name j with
  | J.Str s -> s
  | _ -> fail "member %S: expected a string" name

let int name j =
  match member name j with
  | J.Int i -> i
  | _ -> fail "member %S: expected an integer" name

let rat_to_json r = J.Str (Prelude.Rat.to_string r)

let rat_of_json = function
  | J.Str s -> (
      match String.index_opt s '/' with
      | None -> (
          match int_of_string_opt s with
          | Some n -> Ok (Prelude.Rat.of_int n)
          | None -> Error (Printf.sprintf "not a rational: %S" s))
      | Some i -> (
          let num = String.sub s 0 i in
          let den = String.sub s (i + 1) (String.length s - i - 1) in
          match (int_of_string_opt num, int_of_string_opt den) with
          | Some n, Some d when d <> 0 -> Ok (Prelude.Rat.make n d)
          | _ -> Error (Printf.sprintf "not a rational: %S" s)))
  | _ -> Error "rational: expected a string"

(* ------------------------------------------------------------------ *)
(* Netlist codec.  Nodes are serialized in id order (ids are creation  *)
(* order), so decoding replays the creation sequence; PO drivers and   *)
(* gate fanins may point forward only to gates, which a first pass     *)
(* reserves before a second pass defines their functions.             *)
(* ------------------------------------------------------------------ *)

let node_json nl v =
  let name = Netlist.node_name nl v in
  match Netlist.kind nl v with
  | Netlist.Pi -> J.Obj [ ("kind", J.Str "pi"); ("name", J.Str name) ]
  | Netlist.Po ->
      let d, w = (Netlist.fanins nl v).(0) in
      J.Obj
        [
          ("kind", J.Str "po");
          ("name", J.Str name);
          ("driver", J.Int d);
          ("weight", J.Int w);
        ]
  | Netlist.Gate f ->
      J.Obj
        [
          ("kind", J.Str "gate");
          ("name", J.Str name);
          ("arity", J.Int (Logic.Truthtable.arity f));
          ("bits", J.Str (Printf.sprintf "0x%Lx" (Logic.Truthtable.bits f)));
          ( "fanins",
            J.List
              (Array.to_list
                 (Array.map
                    (fun (u, w) -> J.List [ J.Int u; J.Int w ])
                    (Netlist.fanins nl v))) );
        ]

let to_json nl =
  J.Obj
    [
      ("name", J.Str (Netlist.name nl));
      ("nodes", J.List (List.init (Netlist.n nl) (node_json nl)));
    ]

let pair_of_json i = function
  | J.List [ J.Int u; J.Int w ] -> (u, w)
  | _ -> fail "node %d: fanins must be [driver, weight] pairs" i

let of_json j =
  try
    let name = str "name" j in
    let nodes =
      match member "nodes" j with
      | J.List l -> l
      | _ -> fail "member \"nodes\": expected a list"
    in
    let nl = Netlist.create ~name () in
    let gate_defs = ref [] in
    List.iteri
      (fun i nj ->
        let nm = str "name" nj in
        let id =
          match str "kind" nj with
          | "pi" -> Netlist.add_pi ~name:nm nl
          | "po" ->
              Netlist.add_po ~name:nm nl ~driver:(int "driver" nj)
                ~weight:(int "weight" nj)
          | "gate" ->
              let g = Netlist.reserve_gate ~name:nm nl in
              gate_defs := (i, g, nj) :: !gate_defs;
              g
          | k -> fail "node %d: unknown kind %S" i k
        in
        if id <> i then fail "node %d: id mismatch" i)
      nodes;
    List.iter
      (fun (i, g, nj) ->
        let arity = int "arity" nj in
        let bits =
          match Int64.of_string_opt (str "bits" nj) with
          | Some b -> b
          | None -> fail "node %d: bad truth-table bits" i
        in
        let fanins =
          match member "fanins" nj with
          | J.List l -> Array.of_list (List.map (pair_of_json i) l)
          | _ -> fail "node %d: expected a fanin list" i
        in
        Netlist.define_gate nl g (Logic.Truthtable.create arity bits) fanins)
      (List.rev !gate_defs);
    Ok nl
  with
  | Bad m -> Error m
  | Invalid_argument m -> Error m
