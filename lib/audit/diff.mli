(** Regression gating over two [turbosyn-stats/1] documents.

    Counters and span {e entry counts} are deterministic functions of the
    input and the algorithm, so they gate: the current value fails when it
    exceeds [base * ratio + slack].  Span {e seconds} are machine-dependent
    wall-clock and never gate (they are simply not compared).  A counter
    present in the baseline but absent from the current document also
    fails — renames must update the committed baseline deliberately. *)

type thresholds = { ratio : float; slack : int }

val default_thresholds : thresholds
(** [ratio = 1.25], [slack = 16]: a quarter more work plus a small
    absolute allowance for tiny baselines. *)

type item = {
  name : string;
  base : int;
  cur : int;
  limit : int;  (** [base * ratio + slack] under the item's thresholds *)
  regressed : bool;  (** [cur > limit] *)
}

type t = {
  counters : item list;  (** one per baseline counter *)
  entries : item list;  (** one per baseline span, comparing entry counts *)
  missing : string list;  (** in the baseline, absent from current *)
  added : string list;  (** in current, absent from the baseline (no gate) *)
  ok : bool;
}

val diff :
  ?thresholds:thresholds ->
  ?overrides:(string * thresholds) list ->
  base:Obs.Json.t ->
  cur:Obs.Json.t ->
  unit ->
  (t, string) result
(** [overrides] maps counter/span names to their own thresholds (e.g. a
    noisy counter can be given more headroom).  [Error] on documents that
    are not both [turbosyn-stats/1]-shaped. *)

val render : t -> string
(** Human-readable summary: one line per changed or regressed item,
    terminated by an OK/REGRESSED verdict line. *)
