(** Regression gating over two stats documents ([turbosyn-stats/1] or
    [turbosyn-stats/2]).

    Counters, span {e entry counts}, and histogram {e observation counts}
    are deterministic functions of the input and the algorithm, so they
    gate: the current value fails when it exceeds [base * ratio + slack].
    Span {e seconds}, histogram sums and quantiles, and GC totals are
    machine-dependent and never gate (they are simply not compared).  A
    counter present in the baseline but absent from the current document
    also fails — renames must update the committed baseline deliberately.

    Version skew: a baseline may be {e older} than the current document
    (a v1 baseline gates a v2 run; the absent histograms section simply
    contributes no items) but never newer. *)

type thresholds = { ratio : float; slack : int }

val default_thresholds : thresholds
(** [ratio = 1.25], [slack = 16]: a quarter more work plus a small
    absolute allowance for tiny baselines. *)

type item = {
  name : string;
  base : int;
  cur : int;
  limit : int;  (** [base * ratio + slack] under the item's thresholds *)
  regressed : bool;  (** [cur > limit] *)
}

type t = {
  counters : item list;  (** one per baseline counter *)
  entries : item list;  (** one per baseline span, comparing entry counts *)
  histograms : item list;
      (** one per baseline histogram, comparing observation counts *)
  missing : string list;  (** in the baseline, absent from current *)
  added : string list;  (** in current, absent from the baseline (no gate) *)
  ok : bool;
}

val diff :
  ?thresholds:thresholds ->
  ?overrides:(string * thresholds) list ->
  base:Obs.Json.t ->
  cur:Obs.Json.t ->
  unit ->
  (t, string) result
(** [overrides] maps counter/span/histogram names to their own thresholds
    (e.g. a noisy counter can be given more headroom).  [Error] on
    documents without a known schema, or when the baseline's schema is
    newer than the current document's. *)

val render : t -> string
(** Human-readable summary: one line per changed or regressed item,
    terminated by an OK/REGRESSED verdict line. *)
