module J = Obs.Json

type thresholds = { ratio : float; slack : int }

let default_thresholds = { ratio = 1.25; slack = 16 }

type item = {
  name : string;
  base : int;
  cur : int;
  limit : int;
  regressed : bool;
}

type t = {
  counters : item list;
  entries : item list;
  histograms : item list;
  missing : string list;
  added : string list;
  ok : bool;
}

let schema_of doc =
  match J.member "schema" doc with Some (J.Str s) -> Some s | _ -> None

let known_schemas = [ "turbosyn-stats/1"; "turbosyn-stats/2" ]

let counters_of doc =
  match J.member "counters" doc with
  | Some (J.Obj l) ->
      Ok
        (List.filter_map
           (fun (k, v) -> match v with J.Int i -> Some (k, i) | _ -> None)
           l)
  | _ -> Error "document has no \"counters\" object"

let entries_of doc =
  match J.member "spans" doc with
  | Some (J.Obj l) ->
      Ok
        (List.filter_map
           (fun (k, v) ->
             match J.member "entries" v with
             | Some (J.Int i) -> Some (k, i)
             | _ -> None)
           l)
  | _ -> Error "document has no \"spans\" object"

(* Histogram observation counts are deterministic like counters; sums and
   quantiles are value distributions (sizes are deterministic but latencies
   are not), so only [count] gates.  v1 documents have no histograms
   section, which reads as the empty map — nothing to gate against. *)
let histogram_counts_of doc =
  match J.member "histograms" doc with
  | Some (J.Obj l) ->
      List.filter_map
        (fun (k, v) ->
          match J.member "count" v with
          | Some (J.Int i) -> Some (k, i)
          | _ -> None)
        l
  | _ -> []

let limit_of th base = int_of_float (float_of_int base *. th.ratio) + th.slack

let compare_maps overrides th base cur =
  let items =
    List.map
      (fun (name, b) ->
        let c = Option.value ~default:0 (List.assoc_opt name cur) in
        let th = Option.value ~default:th (List.assoc_opt name overrides) in
        let limit = limit_of th b in
        { name; base = b; cur = c; limit; regressed = c > limit })
      base
  in
  let missing =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name cur then None else Some name)
      base
  in
  let added =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name base then None else Some name)
      cur
  in
  (items, missing, added)

let ( let* ) = Result.bind

(* Schema acceptance: both documents must carry a known version, and the
   baseline may be older than the current document (a committed v1
   baseline keeps gating v2 runs) but never newer — a v2 baseline gates
   sections a v1 document cannot contain. *)
let version_of s =
  let rec index i = function
    | [] -> None
    | v :: _ when v = s -> Some i
    | _ :: rest -> index (i + 1) rest
  in
  index 0 known_schemas

let diff ?(thresholds = default_thresholds) ?(overrides = []) ~base ~cur () =
  let* () =
    match (schema_of base, schema_of cur) with
    | Some a, Some b -> (
        match (version_of a, version_of b) with
        | Some va, Some vb when va <= vb -> Ok ()
        | Some _, Some _ ->
            Error
              (Printf.sprintf
                 "baseline schema %S is newer than current document %S" a b)
        | None, _ -> Error (Printf.sprintf "unknown baseline schema %S" a)
        | _, None -> Error (Printf.sprintf "unknown current schema %S" b))
    | _ -> Error "missing \"schema\" member"
  in
  let* bc = counters_of base in
  let* cc = counters_of cur in
  let* be = entries_of base in
  let* ce = entries_of cur in
  let bh = histogram_counts_of base in
  let ch = histogram_counts_of cur in
  let counters, cm, ca = compare_maps overrides thresholds bc cc in
  let entries, em, ea = compare_maps overrides thresholds be ce in
  let histograms, hm, ha = compare_maps overrides thresholds bh ch in
  let missing =
    cm
    @ List.map (fun n -> n ^ ".entries") em
    @ List.map (fun n -> n ^ ".count") hm
  in
  let added =
    ca
    @ List.map (fun n -> n ^ ".entries") ea
    @ List.map (fun n -> n ^ ".count") ha
  in
  let no_regression l = not (List.exists (fun i -> i.regressed) l) in
  Ok
    {
      counters;
      entries;
      histograms;
      missing;
      added;
      ok =
        no_regression counters && no_regression entries
        && no_regression histograms && missing = [];
    }

let render t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let dump kind items =
    List.iter
      (fun i ->
        if i.regressed then
          line "REGRESSION %s %s: %d -> %d (limit %d)" kind i.name i.base i.cur
            i.limit
        else if i.cur <> i.base then
          line "ok         %s %s: %d -> %d (limit %d)" kind i.name i.base i.cur
            i.limit)
      items
  in
  dump "counter" t.counters;
  dump "entries" t.entries;
  dump "histogram" t.histograms;
  List.iter (fun n -> line "MISSING    %s (present in baseline)" n) t.missing;
  List.iter (fun n -> line "new        %s (absent from baseline)" n) t.added;
  line "%s" (if t.ok then "stats-diff: OK" else "stats-diff: REGRESSED");
  Buffer.contents buf
