type t = int

(* Node ids 0 and 1 are the terminals.  Internal nodes are stored in growable
   arrays indexed by id; [level] is the variable index (terminals get
   [max_int] so the top-variable computation is uniform). *)

type man = {
  mutable level : int array;
  mutable low : int array;
  mutable high : int array;
  mutable next_id : int;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  mutable nvars : int;
}

let initial = 1024

let new_man ?(cache_size = 1 lsl 14) () =
  let m =
    {
      level = Array.make initial max_int;
      low = Array.make initial 0;
      high = Array.make initial 0;
      next_id = 2;
      unique = Hashtbl.create cache_size;
      ite_cache = Hashtbl.create cache_size;
      nvars = 0;
    }
  in
  (* ids 0 (false) and 1 (true) are pre-allocated terminals *)
  m

let bdd_false _ = 0
let bdd_true _ = 1
let of_bool _ b = if b then 1 else 0
let is_false _ f = f = 0
let is_true _ f = f = 1
let is_const _ f = if f = 0 then Some false else if f = 1 then Some true else None
let equal (a : t) (b : t) = a = b
let nvars m = m.nvars
let num_nodes m = m.next_id

let grow m =
  let n = Array.length m.level in
  let n' = 2 * n in
  let copy a fill =
    let b = Array.make n' fill in
    Array.blit a 0 b 0 n;
    b
  in
  m.level <- copy m.level max_int;
  m.low <- copy m.low 0;
  m.high <- copy m.high 0

let mk m lvl lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (lvl, lo, hi) with
    | Some id -> id
    | None ->
        if m.next_id >= Array.length m.level then grow m;
        let id = m.next_id in
        m.next_id <- id + 1;
        m.level.(id) <- lvl;
        m.low.(id) <- lo;
        m.high.(id) <- hi;
        Hashtbl.replace m.unique (lvl, lo, hi) id;
        id

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative index";
  if i >= m.nvars then m.nvars <- i + 1;
  mk m i 0 1

let level m f = if f < 2 then max_int else m.level.(f)

(* Shannon cofactors of f with respect to level lvl. *)
let cof m f lvl =
  if f < 2 || m.level.(f) > lvl then (f, f) else (m.low.(f), m.high.(f))

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let lvl = min (level m f) (min (level m g) (level m h)) in
        let f0, f1 = cof m f lvl in
        let g0, g1 = cof m g lvl in
        let h0, h1 = cof m h lvl in
        let lo = ite m f0 g0 h0 in
        let hi = ite m f1 g1 h1 in
        let r = mk m lvl lo hi in
        Hashtbl.replace m.ite_cache key r;
        r

let neg m f = ite m f 0 1
let and_ m f g = ite m f g 0
let or_ m f g = ite m f 1 g
let xor m f g = ite m f (ite m g 0 1) g
let xnor m f g = ite m f g (ite m g 0 1)
let imp m f g = ite m f g 1

let restrict m f i b =
  (* Substitute a constant for variable i: ite over var i would not work
     directly, so walk the graph.  Memoized per call. *)
  let memo = Hashtbl.create 64 in
  let rec go f =
    if f < 2 || m.level.(f) > i then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
          let r =
            if m.level.(f) = i then if b then m.high.(f) else m.low.(f)
            else mk m m.level.(f) (go m.low.(f)) (go m.high.(f))
          in
          Hashtbl.replace memo f r;
          r
  in
  go f

let restrict_many m f assigns =
  (* Sort by variable to allow early termination along each path. *)
  let assigns = List.sort (fun (a, _) (b, _) -> Int.compare a b) assigns in
  List.fold_left (fun acc (i, b) -> restrict m acc i b) f assigns

let iter_cofactors m f bound k =
  (* All 2^b cofactors of [f] over [bound], bit j of the visited mask
     giving the value assigned to [bound.(j)] — the restriction tree
     shares every partial restriction between the masks that extend it
     (2^(b+1) - 2 single-variable restricts instead of b * 2^b, each on
     an already-shrunk graph) and one memo serves the whole call.
     Restriction order is ascending variable level, so each step only
     walks the shallow part of the graph; substitutions of distinct
     variables commute, so each visited cofactor equals the
     [restrict_many] of its assignment.  [k] may raise to abort the
     enumeration early (the multiplicity pre-check does). *)
  let b = Array.length bound in
  let order = Array.init b Fun.id in
  Array.sort (fun i j -> Int.compare bound.(i) bound.(j)) order;
  let memo = Hashtbl.create 256 in
  let restrict1 g i bit =
    let rec go g =
      if g < 2 || m.level.(g) > i then g
      else
        let key = (g, i, bit) in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
            let r =
              if m.level.(g) = i then (if bit then m.high.(g) else m.low.(g))
              else mk m m.level.(g) (go m.low.(g)) (go m.high.(g))
            in
            Hashtbl.replace memo key r;
            r
    in
    go g
  in
  let rec fill d g mask =
    if d = b then k mask g
    else begin
      let p = order.(d) in
      let i = bound.(p) in
      fill (d + 1) (restrict1 g i false) mask;
      fill (d + 1) (restrict1 g i true) (mask lor (1 lsl p))
    end
  in
  fill 0 f 0

let cofactors m f bound =
  let out = Array.make (1 lsl Array.length bound) 0 in
  iter_cofactors m f bound (fun mask g -> out.(mask) <- g);
  out

let compose m f i g =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if f < 2 || m.level.(f) > i then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
          let r =
            if m.level.(f) = i then ite m g m.high.(f) m.low.(f)
            else
              (* Levels above i may collide with g's levels after
                 substitution, so rebuild with ite on the level variable. *)
              let v = mk m m.level.(f) 0 1 in
              ite m v (go m.high.(f)) (go m.low.(f))
          in
          Hashtbl.replace memo f r;
          r
  in
  go f

let support m f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      Hashtbl.replace vars m.level.(f) ();
      go m.low.(f);
      go m.high.(f)
    end
  in
  go f;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let eval m f env =
  let rec go f =
    if f = 0 then false
    else if f = 1 then true
    else if env m.level.(f) then go m.high.(f)
    else go m.low.(f)
  in
  go f

let sat_count m f n =
  let memo = Hashtbl.create 64 in
  (* count over variables [lvl, n) *)
  let rec go f lvl =
    if lvl >= n then (if f = 1 then 1 else if f = 0 then 0 else invalid_arg "Bdd.sat_count: support exceeds n")
    else
      let key = (f, lvl) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          let r =
            if f < 2 || m.level.(f) > lvl then 2 * go f (lvl + 1)
            else go m.low.(f) (lvl + 1) + go m.high.(f) (lvl + 1)
          in
          Hashtbl.replace memo key r;
          r
  in
  go f 0

let of_truthtable m tt vars =
  let k = Logic.Truthtable.arity tt in
  if Array.length vars <> k then invalid_arg "Bdd.of_truthtable: vars length";
  (* Shannon expansion over truth-table inputs, highest BDD level first for
     compactness is unnecessary; recurse on tt inputs directly. *)
  let rec go tt j =
    match Logic.Truthtable.is_const tt with
    | Some b -> of_bool m b
    | None ->
        (* j is the next truth-table input to branch on *)
        let lo = go (Logic.Truthtable.cofactor tt j false) (j + 1) in
        let hi = go (Logic.Truthtable.cofactor tt j true) (j + 1) in
        ite m (var m vars.(j)) hi lo
  in
  go tt 0

let apply_truthtable m tt args =
  let k = Logic.Truthtable.arity tt in
  if Array.length args <> k then invalid_arg "Bdd.apply_truthtable: args length";
  let rec go tt j =
    match Logic.Truthtable.is_const tt with
    | Some b -> of_bool m b
    | None ->
        let lo = go (Logic.Truthtable.cofactor tt j false) (j + 1) in
        let hi = go (Logic.Truthtable.cofactor tt j true) (j + 1) in
        ite m args.(j) hi lo
  in
  go tt 0

let to_truthtable m f vars =
  let k = Array.length vars in
  if k > Logic.Truthtable.max_arity then invalid_arg "Bdd.to_truthtable: arity";
  let sup = support m f in
  let in_vars v = Array.exists (fun x -> x = v) vars in
  if not (List.for_all in_vars sup) then
    invalid_arg "Bdd.to_truthtable: support not covered";
  let b = ref 0L in
  for i = 0 to (1 lsl k) - 1 do
    let env v =
      (* find position of v in vars; v is guaranteed present for support *)
      let pos = ref (-1) in
      Array.iteri (fun j x -> if x = v then pos := j) vars;
      !pos >= 0 && i land (1 lsl !pos) <> 0
    in
    if eval m f env then b := Int64.logor !b (Int64.shift_left 1L i)
  done;
  Logic.Truthtable.create k !b

let size m f =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      incr count;
      if f >= 2 then begin
        go m.low.(f);
        go m.high.(f)
      end
    end
  in
  go f;
  !count
