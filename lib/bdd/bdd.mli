(** Reduced ordered binary decision diagrams (ROBDDs) with hash-consing.

    The variable order is the variable index (variable 0 at the top).  All
    nodes live in an explicit manager, so distinct circuits can use
    independent managers; within one manager, structural equality of node
    ids is functional equivalence, which is what the functional-
    decomposition engine relies on to count cofactor classes (column
    multiplicity).

    No dynamic reordering is implemented: the decomposition engine
    enumerates bound-set assignments explicitly (bound sets have at most
    K <= 6 variables), so it never needs the bound set moved to the top of
    the order. *)

type man
(** A BDD manager: unique table + operation caches. *)

type t
(** A BDD node handle, valid only with the manager that created it. *)

val new_man : ?cache_size:int -> unit -> man

val bdd_false : man -> t
val bdd_true : man -> t
val of_bool : man -> bool -> t

val var : man -> int -> t
(** [var m i] is the projection on variable [i] (>= 0); the manager grows
    its variable count as needed. *)

val nvars : man -> int
(** One more than the largest variable index seen so far. *)

val num_nodes : man -> int
(** Number of live nodes in the unique table (diagnostics). *)

val neg : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor : man -> t -> t -> t
val xnor : man -> t -> t -> t
val imp : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

val equal : t -> t -> bool
(** Functional equivalence (hash-consing makes it constant-time). *)

val is_true : man -> t -> bool
val is_false : man -> t -> bool
val is_const : man -> t -> bool option

val restrict : man -> t -> int -> bool -> t
(** [restrict m f i b] is the cofactor of [f] with variable [i] fixed
    to [b]. *)

val restrict_many : man -> t -> (int * bool) list -> t

val iter_cofactors : man -> t -> int array -> (int -> t -> unit) -> unit
(** [iter_cofactors m f bound k] calls [k mask cof] for every one of
    the [2^b] cofactors of [f] over the [b] variables of [bound]; bit
    [j] of [mask] gives the value assigned to [bound.(j)].  Each
    cofactor equals the [restrict_many] of its assignment, but the
    family is computed as a restriction tree that shares partial
    restrictions and a single memo — the cofactor-class enumeration's
    inner loop.  Visit order is the tree's depth-first order, not
    ascending masks; [k] may raise to abort the enumeration early. *)

val cofactors : man -> t -> int array -> t array
(** [cofactors m f bound] collects [iter_cofactors] into an array
    indexed by assignment mask. *)

val compose : man -> t -> int -> t -> t
(** [compose m f i g] substitutes [g] for variable [i] in [f]. *)

val support : man -> t -> int list
(** Variables [f] depends on, increasing. *)

val eval : man -> t -> (int -> bool) -> bool
(** [eval m f env] evaluates under the assignment [env]. *)

val sat_count : man -> t -> int -> int
(** [sat_count m f n] counts satisfying assignments over variables
    [0 .. n-1]; [f] must not depend on variables [>= n]. *)

val of_truthtable : man -> Logic.Truthtable.t -> int array -> t
(** [of_truthtable m tt vars] builds the BDD of [tt] with input [j] of the
    truth table mapped to BDD variable [vars.(j)]. *)

val apply_truthtable : man -> Logic.Truthtable.t -> t array -> t
(** [apply_truthtable m tt args] composes: the BDD of [tt] applied to the
    argument BDDs (Shannon expansion over the truth table inputs). *)

val to_truthtable : man -> t -> int array -> Logic.Truthtable.t
(** [to_truthtable m f vars] evaluates [f] on all assignments of [vars]
    (at most 6), yielding a truth table whose input [j] is variable
    [vars.(j)].  [f] must not depend on variables outside [vars].
    @raise Invalid_argument if [Array.length vars > 6] or the support
    condition fails. *)

val size : man -> t -> int
(** Number of distinct nodes reachable from [f] (including terminals). *)
