(** Strongly connected components (Tarjan's algorithm, iterative).

    TurboSYN processes SCCs of the retiming graph in topological order during
    label computation, and the positive-loop-detection theorem (Theorem 2 of
    the paper) is stated per SCC. *)

type t = {
  comp : int array;  (** component id of each node, in [\[0, count)] *)
  count : int;  (** number of components *)
  members : int array array;  (** nodes of each component *)
}

val compute : n:int -> succ:(int -> int list) -> t
(** Component ids are a reverse topological order of the condensation:
    if there is an edge from component [a] to component [b <> a] then
    [a > b].  Hence iterating components [0, 1, …] visits them in
    topological order of the condensation reversed… concretely: every edge
    leaving component [c] enters a component with a smaller id, so
    processing ids in increasing order sees all predecessors of a node's
    component before the component itself when edges are followed
    backwards.  Use [topo_order] for the forward order. *)

val topo_order : t -> int array
(** Component ids sorted so that every inter-component edge goes from an
    earlier to a later position (forward topological order of the
    condensation). *)

val levels : t -> succ:(int -> int list) -> int array
(** Longest-path depth of each component in the condensation DAG:
    sources are level 0, and every inter-component edge goes from a
    strictly smaller to a strictly larger level.  Components of one
    level are pairwise unreachable from each other, so they can be
    processed concurrently between two topological barriers — the
    schedule of the intra-φ parallel label engine
    ([doc/CONCURRENCY.md]). *)

val is_trivial : t -> succ:(int -> int list) -> int -> bool
(** [is_trivial scc ~succ c] is true when component [c] is a single node
    without a self-loop (no cycle through it). *)
