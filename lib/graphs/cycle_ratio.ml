open Prelude

type edge = { src : int; dst : int; delay : int; weight : int }
type result = No_cycle | Infinite | Ratio of Rat.t

let validate edges =
  Array.iter
    (fun e ->
      if e.delay < 0 || e.weight < 0 then
        invalid_arg "Cycle_ratio: negative delay or weight")
    edges

(* Successor lists for SCC computation. *)
let succ_of_edges n edges =
  let succ = Array.make n [] in
  Array.iter (fun e -> succ.(e.src) <- e.dst :: succ.(e.src)) edges;
  fun v -> succ.(v)

(* Does the sub-SCC contain a zero-weight cycle with positive delay?
   Within the zero-weight subgraph of the SCC, any edge of positive delay
   whose endpoints are in the same zero-weight SCC closes such a cycle. *)
let has_combinational_loop n edges =
  let zero_edges = Array.of_list (List.filter (fun e -> e.weight = 0) (Array.to_list edges)) in
  let succ = succ_of_edges n zero_edges in
  let scc = Scc.compute ~n ~succ in
  Array.exists
    (fun e ->
      e.weight = 0 && e.delay > 0 && scc.Scc.comp.(e.src) = scc.Scc.comp.(e.dst))
    zero_edges

(* Positive-cycle probe for ratio phi = p/q over one edge set. *)
let probe_exceeds n edges phi =
  let p = Rat.num phi and q = Rat.den phi in
  let bf_edges =
    Array.map
      (fun e ->
        { Bellman_ford.src = e.src; dst = e.dst; len = (q * e.delay) - (p * e.weight) })
      edges
  in
  Bellman_ford.has_positive_cycle ~n ~edges:bf_edges

let exceeds ~n ~edges phi =
  validate edges;
  has_combinational_loop n edges || probe_exceeds n edges phi

(* Restrict the problem to one non-trivial SCC, with nodes renumbered. *)
let scc_subproblems n edges =
  let succ = succ_of_edges n edges in
  let scc = Scc.compute ~n ~succ in
  let nontrivial = Array.make scc.Scc.count false in
  (* an SCC is non-trivial for cycle purposes if it has an internal edge *)
  Array.iter
    (fun e ->
      if scc.Scc.comp.(e.src) = scc.Scc.comp.(e.dst) then
        nontrivial.(scc.Scc.comp.(e.src)) <- true)
    edges;
  let subs = ref [] in
  for c = 0 to scc.Scc.count - 1 do
    if nontrivial.(c) then begin
      let members = scc.Scc.members.(c) in
      let renum = Hashtbl.create (Array.length members) in
      Array.iteri (fun i v -> Hashtbl.replace renum v i) members;
      let sub_edges =
        Array.of_list
          (List.filter_map
             (fun e ->
               if
                 scc.Scc.comp.(e.src) = c && scc.Scc.comp.(e.dst) = c
               then
                 Some
                   {
                     e with
                     src = Hashtbl.find renum e.src;
                     dst = Hashtbl.find renum e.dst;
                   }
               else None)
             (Array.to_list edges))
      in
      subs := (Array.length members, sub_edges) :: !subs
    end
  done;
  !subs

(* Best rational approximation of a float with bounded denominator, by a
   Stern-Brocot descent on float comparisons (no graph probes). *)
let approx_rat x max_den =
  if x <= 0.0 then Rat.zero
  else begin
    let a = ref 0 and b = ref 1 and c = ref 1 and d = ref 0 in
    let best = ref (Rat.of_int 0) in
    let best_err = ref infinity in
    let steps = ref 0 in
    while !b + !d <= max_den && !steps < 4096 do
      incr steps;
      let num = !a + !c and den = !b + !d in
      let v = float_of_int num /. float_of_int den in
      let err = Float.abs (v -. x) in
      if err < !best_err then begin
        best := Rat.make num den;
        best_err := err
      end;
      if v < x then begin
        a := num;
        b := den
      end
      else begin
        c := num;
        d := den
      end
    done;
    !best
  end

let max_ratio_scc n edges =
  (* n, edges describe a single strongly-connected subgraph with >= 1 cycle *)
  let total_delay = Array.fold_left (fun acc e -> acc + e.delay) 0 edges in
  let total_weight = Array.fold_left (fun acc e -> acc + e.weight) 0 edges in
  if has_combinational_loop n edges then Infinite
  else begin
    let feasible phi = not (probe_exceeds n edges phi) in
    let hi = Rat.of_int (max 1 total_delay) in
    let max_den = max 1 total_weight in
    (* Howard's policy iteration gives the answer up to float precision in
       a fraction of the time; reconstruct the rational and verify it with
       two exact probes.  The verification makes the fast path sound: on
       any disagreement we fall back to the full parametric search. *)
    let fast =
      let hw_edges =
        Array.map
          (fun e -> { Howard.src = e.src; dst = e.dst; delay = e.delay; weight = e.weight })
          edges
      in
      match Howard.max_ratio ~n ~edges:hw_edges with
      | Some lam when Float.is_finite lam && lam >= 0.0 ->
          let cand = approx_rat lam max_den in
          if
            Rat.( > ) cand Rat.zero
            && feasible cand
            && not (feasible (Rat.sub cand (Rat.make 1 (max_den * Rat.den cand))))
          then Some cand
          else if Rat.equal cand Rat.zero && feasible Rat.zero then Some Rat.zero
          else None
      | _ -> None
    in
    match fast with
    | Some r -> Ratio r
    | None -> (
        match Rat.stern_brocot_min ~lo:Rat.zero ~hi ~max_den ~feasible with
        | Some r -> Ratio r
        | None ->
            (* cannot happen: hi is always feasible without combinational
               loops *)
            assert false)
  end

let max_ratio ~n ~edges =
  validate edges;
  let subs = scc_subproblems n edges in
  if subs = [] then No_cycle
  else
    List.fold_left
      (fun acc (sn, se) ->
        match (acc, max_ratio_scc sn se) with
        | Infinite, _ | _, Infinite -> Infinite
        | No_cycle, r -> r
        | r, No_cycle -> r
        | Ratio a, Ratio b -> Ratio (Rat.max a b))
      No_cycle subs

(* ---------------------------------------------------------------- *)
(* Critical-cycle extraction (the audit layer's lower-bound witness) *)
(* ---------------------------------------------------------------- *)

type cycle = {
  c_nodes : int list;
  c_edges : edge list;
  c_delay : int;
  c_weight : int;
  c_ratio : Rat.t;
}

(* Longest-path potentials under lengths [q*delay - p*weight] from an
   all-zero start.  Converges because no cycle is positive at the maximum
   ratio; at the fixpoint every edge satisfies x(src) + len <= x(dst). *)
let potentials n edges ~p ~q =
  let len e = (q * e.delay) - (p * e.weight) in
  let dist = Array.make n 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun e ->
        if dist.(e.src) + len e > dist.(e.dst) then begin
          dist.(e.dst) <- dist.(e.src) + len e;
          changed := true
        end)
      edges
  done;
  dist

let critical_cycle ~n ~edges =
  match max_ratio ~n ~edges with
  | No_cycle -> `No_cycle
  | Infinite -> `Infinite
  | Ratio r ->
      let p = Rat.num r and q = Rat.den r in
      let dist = potentials n edges ~p ~q in
      (* Tight edges: x(src) + len = x(dst).  Any cycle of the tight
         subgraph has total length 0, i.e. q*D = p*W, so its ratio is
         exactly [r] whenever W > 0; the maximizing cycle is all-tight
         (summing the fixpoint inequality around it gives equality
         edge-wise), so such a cycle exists. *)
      let tight =
        Array.of_list
          (List.filter
             (fun e -> dist.(e.src) + (q * e.delay) - (p * e.weight) = dist.(e.dst))
             (Array.to_list edges))
      in
      let succ = Array.make n [] in
      Array.iter (fun e -> succ.(e.src) <- e :: succ.(e.src)) tight;
      let scc = Scc.compute ~n ~succ:(fun v -> List.map (fun e -> e.dst) succ.(v)) in
      let same_comp e = scc.Scc.comp.(e.src) = scc.Scc.comp.(e.dst) in
      (* Prefer closing a cycle through a registered edge so the witness
         has positive weight (always possible when r is finite: a
         zero-weight tight cycle would be a combinational loop). *)
      let seed =
        match Array.to_list tight |> List.filter (fun e -> same_comp e && e.weight > 0) with
        | e :: _ -> Some e
        | [] -> (
            match Array.to_list tight |> List.filter same_comp with
            | e :: _ -> Some e
            | [] -> None)
      in
      (match seed with
      | None -> `No_cycle (* unreachable: r came from a real cycle *)
      | Some e0 ->
          (* BFS from e0.dst back to e0.src over tight edges of the same
             SCC; the path plus e0 closes the critical cycle *)
          let prev = Array.make n None in
          let seen = Array.make n false in
          let queue = Queue.create () in
          seen.(e0.dst) <- true;
          Queue.add e0.dst queue;
          while not (Queue.is_empty queue) do
            let v = Queue.pop queue in
            List.iter
              (fun e ->
                if same_comp e && not seen.(e.dst) then begin
                  seen.(e.dst) <- true;
                  prev.(e.dst) <- Some e;
                  Queue.add e.dst queue
                end)
              succ.(v)
          done;
          let rec walk v acc =
            if v = e0.dst then acc
            else
              match prev.(v) with
              | Some e -> walk e.src (e :: acc)
              | None -> assert false (* SCC: e0.src reachable from e0.dst *)
          in
          let path = if e0.src = e0.dst then [] else walk e0.src [] in
          let cyc = e0 :: path in
          let d = List.fold_left (fun a e -> a + e.delay) 0 cyc in
          let w = List.fold_left (fun a e -> a + e.weight) 0 cyc in
          `Cycle
            {
              c_nodes = List.map (fun e -> e.src) cyc;
              c_edges = cyc;
              c_delay = d;
              c_weight = w;
              c_ratio = (if w > 0 then Rat.make d w else r);
            })

let max_ratio_float ~n ~edges ~epsilon =
  validate edges;
  let subs = scc_subproblems n edges in
  if subs = [] then No_cycle
  else if List.exists (fun (sn, se) -> has_combinational_loop sn se) subs then
    Infinite
  else begin
    (* probe with float lengths via scaled integers: approximate by scaling
       phi to a rational with denominator 1/epsilon *)
    let den = int_of_float (ceil (1.0 /. epsilon)) in
    let result = ref 0.0 in
    List.iter
      (fun (sn, se) ->
        let total_delay = Array.fold_left (fun acc e -> acc + e.delay) 0 se in
        let lo = ref 0.0 and hi = ref (float_of_int (max 1 total_delay)) in
        while !hi -. !lo > epsilon do
          let mid = (!lo +. !hi) /. 2.0 in
          let phi = Rat.make (int_of_float (mid *. float_of_int den)) den in
          if probe_exceeds sn se phi then lo := mid else hi := mid
        done;
        if !hi > !result then result := !hi)
      subs;
    Ratio (Rat.make (int_of_float (!result *. float_of_int den)) den)
  end
