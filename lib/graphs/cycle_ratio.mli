(** Maximum delay-to-register ratio (MDR) of a directed graph.

    Edges carry a non-negative integer [delay] and a non-negative integer
    [weight] (register count).  The MDR ratio is
    [max over cycles C of (delay(C) / weight(C))]; it is the paper's lower
    bound on the clock period achievable by retiming + pipelining (critical
    I/O paths can be pipelined away, loops cannot).

    The computation is exact: a Stern–Brocot descent over candidate
    rationals, each probed with integer Bellman–Ford positive-cycle
    detection, run independently on every non-trivial SCC. *)

type edge = { src : int; dst : int; delay : int; weight : int }

(** A degenerate cycle of zero total delay and zero total weight counts as a
    ratio-0 cycle (such cycles never arise in mapped circuits, where every
    LUT has delay 1). *)

type result =
  | No_cycle  (** the graph is acyclic: pipelining alone bounds the period *)
  | Infinite
      (** some cycle has zero total weight and positive delay — no retiming
          can fix it (a combinational loop) *)
  | Ratio of Prelude.Rat.t

val max_ratio : n:int -> edges:edge array -> result
(** @raise Invalid_argument if an edge has negative delay or weight. *)

val exceeds : n:int -> edges:edge array -> Prelude.Rat.t -> bool
(** [exceeds ~n ~edges phi] is true when some cycle has ratio strictly
    greater than [phi] (including zero-weight positive-delay cycles). *)

type cycle = {
  c_nodes : int list;  (** edge sources, in cycle order *)
  c_edges : edge list;  (** consecutive ([dst] meets the next [src]) *)
  c_delay : int;  (** total delay around the cycle *)
  c_weight : int;  (** total register count around the cycle *)
  c_ratio : Prelude.Rat.t;  (** [c_delay / c_weight], normalized *)
}

val critical_cycle :
  n:int -> edges:edge array -> [ `No_cycle | `Infinite | `Cycle of cycle ]
(** A concrete cycle achieving the maximum delay-to-register ratio — the
    machine-checkable witness that no retiming of the graph can beat
    [c_ratio] (the audit layer's lower-bound certificate).  Extraction is
    independent of the search: longest-path potentials at the maximum
    ratio expose the tight subgraph, and any registered cycle inside it is
    critical.
    @raise Invalid_argument if an edge has negative delay or weight. *)

val max_ratio_float : n:int -> edges:edge array -> epsilon:float -> result
(** Plain float binary search to precision [epsilon] — the baseline the
    benchmarks compare the exact search against.  Returns [Ratio] of a
    float-rounded rational. *)
