type t = { comp : int array; count : int; members : int array array }

(* Iterative Tarjan.  When a component is completed (popped from the stack)
   every edge leaving it targets an already-completed component, so
   component ids increase against the direction of inter-component edges:
   edge comp a -> comp b (a <> b) implies a > b. *)
let compute ~n ~succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Explicit DFS stack: (node, remaining successors). *)
  let frame : (int * int list ref) Stack.t = Stack.create () in
  let push_node v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true;
    Stack.push (v, ref (succ v)) frame
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      push_node root;
      while not (Stack.is_empty frame) do
        let v, rest = Stack.top frame in
        match !rest with
        | w :: tl ->
            rest := tl;
            if index.(w) < 0 then push_node w
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
            ignore (Stack.pop frame);
            if not (Stack.is_empty frame) then begin
              let parent, _ = Stack.top frame in
              lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
            end;
            if lowlink.(v) = index.(v) then begin
              let c = !next_comp in
              incr next_comp;
              let continue = ref true in
              while !continue do
                let w = Stack.pop stack in
                on_stack.(w) <- false;
                comp.(w) <- c;
                if w = v then continue := false
              done
            end
      done
    end
  done;
  let count = !next_comp in
  let sizes = Array.make count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
  let members = Array.map (fun s -> Array.make s (-1)) sizes in
  let fill = Array.make count 0 in
  Array.iteri
    (fun v c ->
      members.(c).(fill.(c)) <- v;
      fill.(c) <- fill.(c) + 1)
    comp;
  { comp; count; members }

let topo_order t = Array.init t.count (fun i -> t.count - 1 - i)

(* Longest-path depth of each component in the condensation DAG.  Edge
   u -> v with comp u <> comp v implies comp u > comp v, so iterating
   component ids downwards visits every component after all of its
   predecessors: each component's level is final when its out-edges are
   relaxed.  Components of one level share no path, so the intra-phi
   scheduler (doc/CONCURRENCY.md) may label them concurrently. *)
let levels t ~succ =
  let lev = Array.make t.count 0 in
  for c = t.count - 1 downto 0 do
    Array.iter
      (fun v ->
        List.iter
          (fun w ->
            let d = t.comp.(w) in
            if d <> c && lev.(d) < lev.(c) + 1 then lev.(d) <- lev.(c) + 1)
          (succ v))
      t.members.(c)
  done;
  lev

let is_trivial t ~succ c =
  Array.length t.members.(c) = 1
  &&
  let v = t.members.(c).(0) in
  not (List.mem v (succ v))
