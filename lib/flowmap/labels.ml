open Prelude

type impl =
  | Cut of int array
  | Resyn of Decomp.Decompose.tree * int array

type result = {
  labels : int array;
  impls : impl option array;
  resyn_nodes : int;
}

let dedup arr =
  let seen = Hashtbl.create 8 in
  Array.of_list
    (List.filter
       (fun u ->
         if Hashtbl.mem seen u then false
         else begin
           Hashtbl.replace seen u ();
           true
         end)
       (Array.to_list arr))

(* Build the K-cut spec for the cone of [v]: cut nodes must have label
   <= target - 1, i.e. nodes with label >= target go to the sink side. *)
let cone_spec t labels v ~target =
  let cone = Comb.cone t v in
  let cone_arr = Array.of_list cone in
  let local = Hashtbl.create (Array.length cone_arr) in
  Array.iteri (fun i u -> Hashtbl.replace local u i) cone_arr;
  let nn = Array.length cone_arr in
  let edges = ref [] in
  Array.iteri
    (fun i u ->
      Array.iter
        (fun w ->
          match Hashtbl.find_opt local w with
          | Some j -> edges := (j, i) :: !edges
          | None -> assert false)
        t.Comb.fanins.(u))
    cone_arr;
  let sink_side =
    Array.map (fun u -> labels.(u) >= target || u = v) cone_arr
  in
  let sources =
    List.filteri
      (fun i _ -> t.Comb.kind.(cone_arr.(i)) = Comb.In)
      (Array.to_list (Array.init nn Fun.id))
  in
  ( { Flow.Kcut.n = nn; edges = Array.of_list !edges; sink_side; sources },
    cone_arr )

(* Same registry slots as the sequential engine's: both flows report
   pre-filter effectiveness under one name (doc/OBSERVABILITY.md). *)
let c_enum_hits = Obs.Counter.make "cut.enum_hits"
let c_enum_misses = Obs.Counter.make "cut.enum_misses"

let compute ?(resynthesize = false) ?(cmax = 15) ?(exhaustive = false) ?pool t
    ~k =
  if k < 2 || k > Logic.Truthtable.max_arity then invalid_arg "Labels: k";
  Comb.validate t;
  Array.iteri
    (fun v fi ->
      match t.Comb.kind.(v) with
      | Comb.Gate _ ->
          if Array.length (dedup fi) > k then
            invalid_arg "Labels: circuit is not K-bounded"
      | Comb.In -> ())
    t.Comb.fanins;
  let n = Comb.n t in
  let labels = Array.make n 0 in
  let impls = Array.make n None in
  let order = Comb.topo_order t in
  (* One node's labeling step: reads only labels of its cone (strict
     ancestors) and writes only its own [labels]/[impls] slots, so nodes
     of equal topological depth are independent — the level-parallel
     schedule below (doc/CONCURRENCY.md) fans them across lanes without
     changing any result. *)
  let node v =
    match t.Comb.kind.(v) with
    | Comb.In -> labels.(v) <- 0
    | Comb.Gate _ ->
        let fanins = dedup t.Comb.fanins.(v) in
        let p = Array.fold_left (fun acc u -> max acc labels.(u)) 0 fanins in
        if p = 0 then begin
          labels.(v) <- 1;
          impls.(v) <- Some (Cut fanins)
        end
        else begin
          let spec, cone_arr = cone_spec t labels v ~target:p in
          (* Cut-engine layer 1: priority-cut enumeration gives small
             cones a conclusive answer — an explicit cut or a proof that
             none of width <= k exists — without building a flow
             network; [Unknown] (budget exhausted) falls through to
             max-flow.  An enumerated [Exceeds] is exact, so the resyn
             branch below can still call [min_cut] directly. *)
          let verdict =
            match Flow.Pricut.decide spec ~k with
            | Flow.Pricut.Cut c ->
                Obs.Counter.incr c_enum_hits;
                Flow.Kcut.Cut c
            | Flow.Pricut.Exceeds ->
                Obs.Counter.incr c_enum_hits;
                Flow.Kcut.Exceeds
            | Flow.Pricut.Unknown ->
                Obs.Counter.incr c_enum_misses;
                Flow.Kcut.find spec ~k
          in
          match verdict with
          | Flow.Kcut.Cut c ->
              labels.(v) <- p;
              impls.(v) <-
                Some (Cut (Array.of_list (List.map (fun i -> cone_arr.(i)) c)))
          | Flow.Kcut.Exceeds ->
              let resyn =
                if not resynthesize then None
                else
                  match Flow.Kcut.min_cut spec with
                  | Some c when List.length c <= cmax && List.length c > k -> (
                      let inputs =
                        Array.of_list (List.map (fun i -> cone_arr.(i)) c)
                      in
                      let man = Bdd.new_man () in
                      let vars = Array.init (Array.length inputs) Fun.id in
                      let f = Comb.cone_bdd man t ~root:v ~inputs ~vars in
                      let arrivals =
                        Array.map (fun u -> Rat.of_int labels.(u)) inputs
                      in
                      match
                        Decomp.Decompose.decompose ~exhaustive man ~f ~vars
                          ~arrivals ~k
                      with
                      | Some r when Rat.(r.Decomp.Decompose.level <= of_int p)
                        ->
                          Some (Resyn (r.Decomp.Decompose.tree, inputs))
                      | _ -> None)
                  | _ -> None
              in
              (match resyn with
              | Some impl ->
                  labels.(v) <- p;
                  impls.(v) <- Some impl
              | None ->
                  labels.(v) <- p + 1;
                  impls.(v) <- Some (Cut fanins))
        end
  in
  (match pool with
  | Some pool when Pool.size pool > 1 ->
      (* group nodes by topological depth; nodes of one depth share no
         ancestry, so each depth is a pool batch with a barrier after it.
         Worker-side Obs hooks (max-flow node counts, BDD peaks) write
         into per-lane shards merged at the end. *)
      let depth = Array.make n 0 in
      let ndepths = ref 0 in
      Array.iter
        (fun v ->
          (match t.Comb.kind.(v) with
          | Comb.In -> depth.(v) <- 0
          | Comb.Gate _ ->
              depth.(v) <-
                Array.fold_left
                  (fun acc u -> max acc (depth.(u) + 1))
                  0 t.Comb.fanins.(v));
          if depth.(v) >= !ndepths then ndepths := depth.(v) + 1)
        order;
      let buckets = Array.make (max !ndepths 1) [] in
      (* reversed topo order consing keeps each bucket in topo order *)
      for i = n - 1 downto 0 do
        let v = order.(i) in
        buckets.(depth.(v)) <- v :: buckets.(depth.(v))
      done;
      let lanes = Pool.size pool in
      let shards =
        if Obs.enabled () then
          Some (Array.init lanes (fun _ -> Obs.Shard.create ()))
        else None
      in
      Fun.protect
        ~finally:(fun () ->
          match shards with
          | None -> ()
          | Some s ->
              Array.iter
                (fun sh ->
                  Obs.Shard.merge sh;
                  Obs.Shard.release sh)
                s)
      @@ fun () ->
      for d = 0 to !ndepths - 1 do
        let level = Array.of_list buckets.(d) in
        Pool.run pool ~n:(Array.length level) (fun worker i ->
            match shards with
            | None -> node level.(i)
            | Some s -> Obs.Shard.wrap s.(worker) (fun () -> node level.(i)))
      done
  | _ -> Array.iter node order);
  let resyn_nodes =
    Array.fold_left
      (fun acc -> function Some (Resyn _) -> acc + 1 | _ -> acc)
      0 impls
  in
  { labels; impls; resyn_nodes }

let mapping_depth t result =
  List.fold_left (fun acc r -> max acc result.labels.(r)) 0 t.Comb.roots
