(** FlowMap / FlowSYN label computation for combinational circuits.

    FlowMap (Cong–Ding): the label of a gate [v] is the minimum LUT depth
    of any K-LUT mapping of its cone.  With [p] the maximum fanin label,
    [l(v) = p] iff the cone has a K-feasible cut whose cut nodes all have
    labels [<= p-1] (decided by max-flow with nodes of label [p] collapsed
    into the sink), else [l(v) = p+1].

    FlowSYN ([resynthesize = true]) goes beyond the combinational limit:
    when the K-cut test fails, it takes a minimum cut with cut labels
    [<= p-1] (of size up to [cmax], the paper uses 15) and tries OBDD-based
    functional decomposition of the cone function; if the decomposed LUT
    tree still reaches depth [p], the label stays [p]. *)

type impl =
  | Cut of int array
      (** LUT = cone function over these cut nodes (at most K, distinct) *)
  | Resyn of Decomp.Decompose.tree * int array
      (** decomposed implementation; tree [Input i] refers to the i-th
          entry of the array *)

type result = {
  labels : int array;  (** 0 for [In] nodes *)
  impls : impl option array;  (** [Some] exactly on gates *)
  resyn_nodes : int;  (** gates whose label was saved by resynthesis *)
}

val compute :
  ?resynthesize:bool ->
  ?cmax:int ->
  ?exhaustive:bool ->
  ?pool:Prelude.Pool.t ->
  Comb.t ->
  k:int ->
  result
(** Defaults: [resynthesize = false] (plain FlowMap), [cmax = 15],
    [exhaustive = false] (prefix bound sets only).

    [pool], when given with more than one lane, labels the nodes of each
    topological depth concurrently (nodes of equal depth share no
    ancestry, so the level-synchronous schedule reads only finalized
    labels — doc/CONCURRENCY.md); the result is identical to the
    sequential computation for every lane count.
    @raise Invalid_argument if the input is not K-bounded or [k] is outside
    [\[2, 6\]]. *)

val mapping_depth : Comb.t -> result -> int
(** Maximum label over the roots: the depth of the mapping the labels
    induce. *)
