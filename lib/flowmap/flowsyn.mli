(** Sequential mapping by cutting at flip-flops — the FlowSYN-s baseline of
    the paper (and plain FlowMap-s when resynthesis is off).

    The circuit is split into its combinational part by treating every
    registered signal [(driver, w)] as a pseudo input; the combinational
    network is mapped with FlowMap or FlowSYN; the mapped LUTs are then
    reassembled with the original register positions.  Register positions
    never move during mapping, which is exactly why this baseline loses to
    TurboMap/TurboSYN on sequential circuits: the final clock period (after
    optimal retiming + pipelining, i.e. the MDR ratio of the result) is
    inherited from the fixed FF placement. *)

type report = {
  luts : int;
  depth : int;  (** combinational LUT depth of the mapped blocks *)
  resyn_nodes : int;
  mdr : Graphs.Cycle_ratio.result;
      (** the mapped circuit's clock-period bound under retiming +
          pipelining *)
}

val map_sequential :
  ?resynthesize:bool ->
  ?cmax:int ->
  ?exhaustive:bool ->
  ?jobs:int ->
  Circuit.Netlist.t ->
  k:int ->
  Circuit.Netlist.t * report
(** [resynthesize = true] gives FlowSYN-s; default [false] is FlowMap-s.
    The result is a K-LUT circuit I/O-equivalent to the input (registers
    and their positions unchanged).  [jobs > 1] labels each topological
    depth level on that many domains ({!Labels.compute} with a pool —
    doc/CONCURRENCY.md); the result is identical for every value.
    @raise Invalid_argument if the input is not K-bounded or has
    combinational loops. *)

val to_comb : Circuit.Netlist.t -> Comb.t * (int * int) array
(** The combinational view: the returned array maps each pseudo-[In] comb
    node to its [(driver, weight)] origin; PIs appear as [(pi, 0)].
    Exposed for tests. *)
