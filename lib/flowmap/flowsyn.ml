open Circuit

type report = {
  luts : int;
  depth : int;
  resyn_nodes : int;
  mdr : Graphs.Cycle_ratio.result;
}

let to_comb nl =
  let n = Netlist.n nl in
  (* comb ids: gates and PIs get one each; registered signals (driver, w)
     get a pseudo-input on demand *)
  let comb_of = Array.make n (-1) in
  let kinds = ref [] and fans = ref [] and origin = ref [] in
  let count = ref 0 in
  let fresh kind origin_pair =
    let id = !count in
    incr count;
    kinds := kind :: !kinds;
    fans := [||] :: !fans;
    origin := origin_pair :: !origin;
    id
  in
  let pseudo = Hashtbl.create 32 in
  let pseudo_in u w =
    match Hashtbl.find_opt pseudo (u, w) with
    | Some id -> id
    | None ->
        let id = fresh Comb.In (u, w) in
        Hashtbl.replace pseudo (u, w) id;
        id
  in
  (* allocate PIs and gates *)
  for v = 0 to n - 1 do
    match Netlist.kind nl v with
    | Netlist.Pi -> comb_of.(v) <- fresh Comb.In (v, 0)
    | Netlist.Gate f -> comb_of.(v) <- fresh (Comb.Gate f) (v, 0)
    | Netlist.Po -> ()
  done;
  (* wire gates; collect root drivers *)
  let kinds_arr = Array.make !count Comb.In in
  List.iteri (fun i k -> kinds_arr.(!count - 1 - i) <- k) !kinds;
  let fans_arr = Array.make !count [||] in
  let is_root = Array.make n false in
  for v = 0 to n - 1 do
    match Netlist.kind nl v with
    | Netlist.Gate _ ->
        let fi =
          Array.map
            (fun (u, w) -> if w = 0 then comb_of.(u) else pseudo_in u w)
            (Netlist.fanins nl v)
        in
        fans_arr.(comb_of.(v)) <- fi;
        Array.iter
          (fun (u, w) -> if w >= 1 && Netlist.is_gate nl u then is_root.(u) <- true)
          (Netlist.fanins nl v)
    | Netlist.Po ->
        let u, _w = (Netlist.fanins nl v).(0) in
        if Netlist.is_gate nl u then is_root.(u) <- true
    | Netlist.Pi -> ()
  done;
  (* pseudo inputs may have been created after gates; rebuild arrays *)
  let total = !count in
  let kind = Array.make total Comb.In in
  List.iteri (fun i k -> kind.(total - 1 - i) <- k) !kinds;
  let fanins = Array.make total [||] in
  Array.iteri (fun i f -> if i < Array.length fans_arr then fanins.(i) <- f) fans_arr;
  (* fans_arr was sized before pseudo inputs; copy what exists *)
  let origin_arr = Array.make total (0, 0) in
  List.iteri (fun i o -> origin_arr.(total - 1 - i) <- o) !origin;
  let roots =
    List.filter_map
      (fun v -> if is_root.(v) then Some comb_of.(v) else None)
      (List.init n Fun.id)
  in
  let comb = { Comb.kind; fanins; roots } in
  Comb.validate comb;
  (comb, origin_arr)

let map_sequential ?(resynthesize = false) ?(cmax = 15) ?(exhaustive = false)
    ?(jobs = 1) nl ~k =
  Netlist.validate_exn ~k nl;
  let comb, origin = to_comb nl in
  let res =
    if jobs > 1 then
      Prelude.Pool.with_pool ~domains:jobs (fun pool ->
          Labels.compute ~resynthesize ~cmax ~exhaustive ~pool comb ~k)
    else Labels.compute ~resynthesize ~cmax ~exhaustive comb ~k
  in
  let mapped = Mapper.generate comb res in
  (* reassemble a sequential netlist *)
  let out = Netlist.create ~name:(Netlist.name nl ^ "_mapped") () in
  let n = Netlist.n nl in
  let new_pi = Array.make n (-1) in
  List.iter
    (fun p -> new_pi.(p) <- Netlist.add_pi ~name:(Netlist.node_name nl p) out)
    (Netlist.pis nl);
  (* reserve one gate per mapped LUT node, named after the original signal
     it computes (needed for name-based equivalence checking and BLIF
     output); decomposition-tree intermediates get a '_syn' name *)
  let mn = Comb.n mapped.Mapper.comb in
  let lut_name = Array.make mn None in
  Array.iteri
    (fun orig_comb m ->
      if m >= 0 && comb.Comb.kind.(orig_comb) <> Comb.In then
        let u, _ = origin.(orig_comb) in
        if lut_name.(m) = None then lut_name.(m) <- Some (Netlist.node_name nl u))
    mapped.Mapper.node_of;
  let new_node = Array.make mn (-1) in
  for m = 0 to mn - 1 do
    match mapped.Mapper.comb.Comb.kind.(m) with
    | Comb.Gate _ ->
        let name =
          match lut_name.(m) with
          | Some n -> n
          | None -> Printf.sprintf "_syn%d" m
        in
        new_node.(m) <- Netlist.reserve_gate ~name out
    | Comb.In -> ()
  done;
  (* a mapped In node corresponds to an original (driver, weight) pair;
     find the original comb node of each mapped node to read its origin *)
  let origin_of_mapped = Array.make mn (0, 0) in
  Array.iteri
    (fun orig_comb m ->
      (* only input nodes define mapped-In origins: a gate may share its
         mapped node with an input when its cone collapsed to a projection *)
      if m >= 0 && comb.Comb.kind.(orig_comb) = Comb.In then
        origin_of_mapped.(m) <- origin.(orig_comb))
    mapped.Mapper.node_of;
  (* comb id of each original gate, to locate its mapped LUT *)
  let comb_of_gate = Hashtbl.create 64 in
  Array.iteri
    (fun comb_id (u, w) ->
      if w = 0 then Hashtbl.replace comb_of_gate u comb_id)
    origin;
  let rec resolve_driver ?(fuel = Netlist.n nl + 8) u w =
    (* netlist-level driver for signal (u, w) in the mapped circuit *)
    if fuel = 0 then invalid_arg "Flowsyn: projection cycle";
    match Netlist.kind nl u with
    | Netlist.Pi -> (new_pi.(u), w)
    | Netlist.Gate _ -> (
        let cid = Hashtbl.find comb_of_gate u in
        let m = mapped.Mapper.node_of.(cid) in
        if m < 0 then invalid_arg "Flowsyn: registered driver was not mapped";
        if new_node.(m) >= 0 then (new_node.(m), w)
        else
          (* the gate's mapping collapsed to a projection of one of its
             inputs (a resynthesized cone whose tree root is an Input):
             chase the origin, accumulating delays *)
          let u', w' = origin_of_mapped.(m) in
          resolve_driver ~fuel:(fuel - 1) u' (w' + w))
    | Netlist.Po -> assert false
  in
  let resolve_fanin m =
    match mapped.Mapper.comb.Comb.kind.(m) with
    | Comb.Gate _ -> (new_node.(m), 0)
    | Comb.In ->
        let u, w = origin_of_mapped.(m) in
        resolve_driver u w
  in
  for m = 0 to mn - 1 do
    match mapped.Mapper.comb.Comb.kind.(m) with
    | Comb.Gate f ->
        let fi = Array.map resolve_fanin mapped.Mapper.comb.Comb.fanins.(m) in
        Netlist.define_gate out new_node.(m) f fi
    | Comb.In -> ()
  done;
  List.iter
    (fun po ->
      let u, w = (Netlist.fanins nl po).(0) in
      let d, w' = resolve_driver u w in
      ignore (Netlist.add_po ~name:(Netlist.node_name nl po) out ~driver:d ~weight:w'))
    (Netlist.pos nl);
  Netlist.validate_exn ~k out;
  let report =
    {
      luts = mapped.Mapper.luts;
      depth = mapped.Mapper.depth;
      resyn_nodes = res.Labels.resyn_nodes;
      mdr = Netlist.mdr_ratio out;
    }
  in
  (out, report)
