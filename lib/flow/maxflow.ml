(* observability (doc/OBSERVABILITY.md): flow-network construction volume
   and augmentation work *)
let c_networks = Obs.Counter.make "maxflow.networks"
let c_nodes = Obs.Counter.make "maxflow.nodes"
let c_edges = Obs.Counter.make "maxflow.edges"
let c_aug = Obs.Counter.make "maxflow.augmenting_paths"
let c_phases = Obs.Counter.make "maxflow.blocking_phases"
let c_arena = Obs.Counter.make "maxflow.arena_reuses"
let h_aug = Obs.Histogram.make "maxflow.augmenting_paths_per_flow"
let h_phases = Obs.Histogram.make "maxflow.blocking_phases_per_flow"
let h_net_nodes = Obs.Histogram.make "maxflow.network_nodes"

type t = {
  mutable n : int;
  (* arcs stored flat; arc i and its reverse i lxor 1 are adjacent *)
  mutable head : int array; (* arc -> destination node *)
  mutable cap : int array; (* arc -> remaining capacity *)
  mutable narcs : int;
  mutable orig_cap : int array;
  (* adjacency as an intrusive list over arcs: node -> first arc, arc ->
     next arc from the same source (most-recent-first, like the list
     version this replaced) *)
  mutable first_arc : int array; (* node -> first outgoing arc or -1 *)
  mutable next_arc : int array; (* arc -> next arc of the same node or -1 *)
  (* search scratch, reused across searches and cleared by generation
     stamps instead of re-allocation (the blocking-flow hot loop) *)
  mutable level : int array; (* BFS level, valid iff visit.(v) = gen *)
  mutable cur : int array; (* current-arc iterator, valid iff stamped *)
  mutable visit : int array; (* visit.(v) = gen means stamped this round *)
  mutable gen : int;
  mutable queue : int array; (* ring-free: BFS pushes at most n nodes *)
}

let infinity = max_int / 4

let alloc_nodes t n =
  if n > Array.length t.first_arc then begin
    let cap = max n (2 * Array.length t.first_arc) in
    t.first_arc <- Array.make cap (-1);
    t.level <- Array.make cap 0;
    t.cur <- Array.make cap (-1);
    t.visit <- Array.make cap 0;
    t.queue <- Array.make cap 0;
    t.gen <- 0
  end
  else Array.fill t.first_arc 0 n (-1)

let create n =
  Obs.Counter.incr c_networks;
  Obs.Counter.add c_nodes (max n 0);
  Obs.Histogram.observe_int h_net_nodes (max n 0);
  let m = max n 1 in
  {
    n;
    head = Array.make 16 0;
    cap = Array.make 16 0;
    narcs = 0;
    orig_cap = Array.make 16 0;
    first_arc = Array.make m (-1);
    next_arc = Array.make 16 (-1);
    level = Array.make m 0;
    cur = Array.make m (-1);
    visit = Array.make m 0;
    gen = 0;
    queue = Array.make m 0;
  }

let clear t n =
  if n < 0 then invalid_arg "Maxflow.clear: negative node count";
  Obs.Counter.incr c_networks;
  Obs.Counter.add c_nodes n;
  Obs.Histogram.observe_int h_net_nodes n;
  Obs.Counter.incr c_arena;
  t.n <- n;
  t.narcs <- 0;
  alloc_nodes t n;
  t

let grow_arcs t =
  let len = Array.length t.head in
  let extend init a =
    let b = Array.make (2 * len) init in
    Array.blit a 0 b 0 len;
    b
  in
  t.head <- extend 0 t.head;
  t.cap <- extend 0 t.cap;
  t.orig_cap <- extend 0 t.orig_cap;
  t.next_arc <- extend (-1) t.next_arc

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: node out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  Obs.Counter.incr c_edges;
  while t.narcs + 2 > Array.length t.head do
    grow_arcs t
  done;
  let a = t.narcs in
  t.narcs <- a + 2;
  t.head.(a) <- dst;
  t.cap.(a) <- cap;
  t.orig_cap.(a) <- cap;
  t.head.(a + 1) <- src;
  t.cap.(a + 1) <- 0;
  t.orig_cap.(a + 1) <- 0;
  t.next_arc.(a) <- t.first_arc.(src);
  t.first_arc.(src) <- a;
  t.next_arc.(a + 1) <- t.first_arc.(dst);
  t.first_arc.(dst) <- a + 1

let reset t = Array.blit t.orig_cap 0 t.cap 0 t.narcs

(* Level-graph BFS over the scratch buffers (one Dinic phase); true iff
   [tnode] is reachable.  Stamps every reached node with the new
   generation, records its BFS level, and rewinds its current-arc
   iterator.  Stops as soon as [tnode] is labeled: nodes labeled later
   would sit at a level >= level(t) and cannot lie on a shortest s-t
   path, so the blocking-flow DFS never consults them. *)
let bfs_levels t ~s ~t:tnode =
  t.gen <- t.gen + 1;
  let gen = t.gen in
  t.visit.(s) <- gen;
  t.level.(s) <- 0;
  t.cur.(s) <- t.first_arc.(s);
  let q = t.queue in
  q.(0) <- s;
  let qlen = ref 1 and qhead = ref 0 in
  let found = ref false in
  while (not !found) && !qhead < !qlen do
    let v = q.(!qhead) in
    incr qhead;
    let a = ref t.first_arc.(v) in
    while (not !found) && !a >= 0 do
      let arc = !a in
      let w = t.head.(arc) in
      if t.visit.(w) <> gen && t.cap.(arc) > 0 then begin
        t.visit.(w) <- gen;
        t.level.(w) <- t.level.(v) + 1;
        t.cur.(w) <- t.first_arc.(w);
        if w = tnode then found := true
        else begin
          q.(!qlen) <- w;
          incr qlen
        end
      end;
      a := t.next_arc.(arc)
    done
  done;
  !found

(* One blocking-flow probe: push up to [pushed] units from [v] to [tnode]
   along strictly level-increasing residual arcs, advancing the per-node
   current-arc iterators past exhausted arcs so each arc is retired at
   most once per phase. *)
let rec dfs_push t ~tnode gen v pushed =
  if v = tnode then pushed
  else begin
    let sent = ref 0 in
    let a = ref t.cur.(v) in
    while !sent = 0 && !a >= 0 do
      let arc = !a in
      let w = t.head.(arc) in
      if t.cap.(arc) > 0 && t.visit.(w) = gen && t.level.(w) = t.level.(v) + 1
      then begin
        let d = dfs_push t ~tnode gen w (min pushed t.cap.(arc)) in
        if d > 0 then begin
          t.cap.(arc) <- t.cap.(arc) - d;
          t.cap.(arc lxor 1) <- t.cap.(arc lxor 1) + d;
          sent := d
        end
        else begin
          (* dead end below this arc for the rest of the phase *)
          a := t.next_arc.(arc);
          t.cur.(v) <- !a
        end
      end
      else begin
        a := t.next_arc.(arc);
        t.cur.(v) <- !a
      end
    done;
    !sent
  end

let max_flow t ~s ~t:tnode ~limit =
  if s = tnode then invalid_arg "Maxflow.max_flow: s = t";
  let flow = ref 0 in
  let augmentations = ref 0 in
  let phases = ref 0 in
  let continue = ref true in
  while !continue && !flow <= limit do
    if not (bfs_levels t ~s ~t:tnode) then continue := false
    else begin
      Obs.Counter.incr c_phases;
      incr phases;
      let gen = t.gen in
      let d = ref (dfs_push t ~tnode gen s infinity) in
      while !d > 0 do
        Obs.Counter.incr c_aug;
        incr augmentations;
        flow := !flow + !d;
        d := (if !flow <= limit then dfs_push t ~tnode gen s infinity else 0)
      done
    end
  done;
  Obs.Histogram.observe_int h_aug !augmentations;
  Obs.Histogram.observe_int h_phases !phases;
  !flow

let residual_reachable t ~s =
  t.gen <- t.gen + 1;
  let gen = t.gen in
  t.visit.(s) <- gen;
  let q = t.queue in
  q.(0) <- s;
  let qlen = ref 1 and qhead = ref 0 in
  while !qhead < !qlen do
    let v = q.(!qhead) in
    incr qhead;
    let a = ref t.first_arc.(v) in
    while !a >= 0 do
      let arc = !a in
      let w = t.head.(arc) in
      if t.visit.(w) <> gen && t.cap.(arc) > 0 then begin
        t.visit.(w) <- gen;
        q.(!qlen) <- w;
        incr qlen
      end;
      a := t.next_arc.(arc)
    done
  done;
  fun v -> t.visit.(v) = gen
