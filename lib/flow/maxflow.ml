(* observability (doc/OBSERVABILITY.md): flow-network construction volume
   and augmentation work *)
let c_networks = Obs.Counter.make "maxflow.networks"
let c_nodes = Obs.Counter.make "maxflow.nodes"
let c_edges = Obs.Counter.make "maxflow.edges"
let c_aug = Obs.Counter.make "maxflow.augmenting_paths"

type t = {
  n : int;
  (* arcs stored flat; arc i and its reverse i lxor 1 are adjacent *)
  mutable head : int array; (* arc -> destination node *)
  mutable cap : int array; (* arc -> remaining capacity *)
  mutable adj : int list array; (* node -> arcs out of it *)
  mutable narcs : int;
  mutable orig_cap : int array;
}

let infinity = max_int / 4

let create n =
  Obs.Counter.incr c_networks;
  Obs.Counter.add c_nodes (max n 0);
  {
    n;
    head = Array.make 16 0;
    cap = Array.make 16 0;
    adj = Array.make (max n 1) [];
    narcs = 0;
    orig_cap = Array.make 16 0;
  }

let grow_arcs t =
  let len = Array.length t.head in
  let extend a = let b = Array.make (2 * len) 0 in Array.blit a 0 b 0 len; b in
  t.head <- extend t.head;
  t.cap <- extend t.cap;
  t.orig_cap <- extend t.orig_cap

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: node out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  Obs.Counter.incr c_edges;
  while t.narcs + 2 > Array.length t.head do
    grow_arcs t
  done;
  let a = t.narcs in
  t.narcs <- a + 2;
  t.head.(a) <- dst;
  t.cap.(a) <- cap;
  t.orig_cap.(a) <- cap;
  t.head.(a + 1) <- src;
  t.cap.(a + 1) <- 0;
  t.orig_cap.(a + 1) <- 0;
  t.adj.(src) <- a :: t.adj.(src);
  t.adj.(dst) <- (a + 1) :: t.adj.(dst)

let reset t = Array.blit t.orig_cap 0 t.cap 0 t.narcs

(* BFS for an augmenting path; returns parent arc per node or [||] if t
   unreachable. *)
let bfs t ~s ~t:tnode =
  let parent_arc = Array.make t.n (-1) in
  let visited = Array.make t.n false in
  visited.(s) <- true;
  let q = Queue.create () in
  Queue.add s q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun a ->
        let w = t.head.(a) in
        if (not visited.(w)) && t.cap.(a) > 0 then begin
          visited.(w) <- true;
          parent_arc.(w) <- a;
          if w = tnode then found := true else Queue.add w q
        end)
      t.adj.(v)
  done;
  if !found then Some parent_arc else None

let max_flow t ~s ~t:tnode ~limit =
  if s = tnode then invalid_arg "Maxflow.max_flow: s = t";
  let flow = ref 0 in
  let continue = ref true in
  while !continue && !flow <= limit do
    match bfs t ~s ~t:tnode with
    | None -> continue := false
    | Some parent ->
        Obs.Counter.incr c_aug;
        (* the source of arc a is the head of its reverse arc (a lxor 1) *)
        let arc_src a = t.head.(a lxor 1) in
        let rec bottleneck v acc =
          if v = s then acc
          else
            let a = parent.(v) in
            bottleneck (arc_src a) (min acc t.cap.(a))
        in
        let b = bottleneck tnode max_int in
        let rec push v =
          if v <> s then begin
            let a = parent.(v) in
            t.cap.(a) <- t.cap.(a) - b;
            t.cap.(a lxor 1) <- t.cap.(a lxor 1) + b;
            push (arc_src a)
          end
        in
        push tnode;
        flow := !flow + b
  done;
  !flow

let residual_reachable t ~s =
  let visited = Array.make t.n false in
  visited.(s) <- true;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun a ->
        let w = t.head.(a) in
        if (not visited.(w)) && t.cap.(a) > 0 then begin
          visited.(w) <- true;
          Queue.add w q
        end)
      t.adj.(v)
  done;
  visited
