type spec = {
  n : int;
  edges : (int * int) array;
  sink_side : bool array;
  sources : int list;
}

type result = Cut of int list | Exceeds

(* A reusable flow network: cleared and re-filled per cut test instead of
   allocated, so the max-flow decisions of one label engine share one set
   of arrays.  [busy] is an ownership tripwire: an arena belongs to one
   solve at a time (one pool lane under the parallel label engine); a
   second solve observing it raises instead of corrupting the network. *)
type arena = { mutable net : Maxflow.t option; mutable busy : bool }

let new_arena () = { net = None; busy = false }

let arena_net arena n =
  match arena with
  | None -> Maxflow.create n
  | Some a -> (
      if a.busy then
        invalid_arg
          "Kcut: arena is owned by an in-flight solve — two lanes are \
           sharing one arena (doc/CONCURRENCY.md: one arena per pool lane)";
      a.busy <- true;
      match a.net with
      | Some net -> Maxflow.clear net n
      | None ->
          let net = Maxflow.create n in
          a.net <- Some net;
          net)

let arena_release = function
  | None -> ()
  | Some a -> a.busy <- false

let validate spec =
  if Array.length spec.sink_side <> spec.n then
    invalid_arg "Kcut: sink_side length mismatch";
  if not (Array.exists Fun.id spec.sink_side) then
    invalid_arg "Kcut: empty sink side";
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= spec.n || v < 0 || v >= spec.n then
        invalid_arg "Kcut: edge endpoint out of range")
    spec.edges;
  List.iter
    (fun s ->
      if s < 0 || s >= spec.n then invalid_arg "Kcut: source out of range")
    spec.sources

let solve ?arena spec ~k =
  validate spec;
  if List.exists (fun s -> spec.sink_side.(s)) spec.sources then Exceeds
  else begin
    Fun.protect ~finally:(fun () -> arena_release arena) @@ fun () ->
    (* v_in = 2v, v_out = 2v+1, super-source = 2n, sink = 2n+1 *)
    let net = arena_net arena ((2 * spec.n) + 2) in
    let s' = 2 * spec.n and t' = (2 * spec.n) + 1 in
    for v = 0 to spec.n - 1 do
      if not spec.sink_side.(v) then
        Maxflow.add_edge net ~src:(2 * v) ~dst:((2 * v) + 1) ~cap:1
    done;
    Array.iter
      (fun (u, v) ->
        if not spec.sink_side.(u) then
          if spec.sink_side.(v) then
            Maxflow.add_edge net ~src:((2 * u) + 1) ~dst:t' ~cap:Maxflow.infinity
          else
            Maxflow.add_edge net ~src:((2 * u) + 1) ~dst:(2 * v)
              ~cap:Maxflow.infinity)
      spec.edges;
    List.iter
      (fun v -> Maxflow.add_edge net ~src:s' ~dst:(2 * v) ~cap:Maxflow.infinity)
      spec.sources;
    let flow = Maxflow.max_flow net ~s:s' ~t:t' ~limit:k in
    if flow > k then Exceeds
    else begin
      let reach = Maxflow.residual_reachable net ~s:s' in
      let cut = ref [] in
      for v = spec.n - 1 downto 0 do
        if (not spec.sink_side.(v)) && reach (2 * v) && not (reach ((2 * v) + 1))
        then cut := v :: !cut
      done;
      Cut !cut
    end
  end

let find ?arena spec ~k = solve ?arena spec ~k

let min_cut ?arena spec =
  match solve ?arena spec ~k:(2 * spec.n) with
  | Cut c -> Some c
  | Exceeds -> None
