(* Priority K-cut enumeration over Kcut.spec cone networks: a cheap,
   exact-when-conclusive pre-filter consulted before any flow network is
   built (doc/PERF.md, "three-layer cut engine").

   Per node, a bounded set of minimal node cuts is built bottom-up:

     cuts(source v)      = { {v} }          (the zero-length path <v> must be cut)
     cuts(unreachable v) = { {} }
     cuts(gate v)        = prune ({v} when v may be cut
                                  + { a ∪ b | a ∈ cuts(f₁), b ∈ cuts(f₂), … })

   where prune drops unions wider than k, dominated (superset) cuts, and
   everything past the per-node budget.  The verdict for the whole cone
   merges the cut sets of the maximal sink-side nodes.

   Exactness: any valid ≤k cut C is, at every node it guards, a valid
   cut, and partial unions of its per-fanin sub-cuts are subsets of C —
   never wider than k — so an *untruncated* enumeration always retains a
   subset of C.  Hence a non-empty merge is a genuine witness (Cut), and
   an empty *complete* merge proves no ≤k cut exists (Exceeds).  Any
   budget truncation clears the completeness flag and an empty merge
   degrades to Unknown — the caller falls back to max-flow. *)

type verdict = Cut of int list | Exceeds | Unknown

(* Reusable per-lane scratch (the CSR edge indexes and per-node tables
   are sized to the largest cone seen); mirrors the Kcut arena ownership
   protocol: one enumerator per pool lane. *)
type arena = {
  mutable fanin_off : int array; (* CSR: node -> fanin segment start *)
  mutable fanin : int array; (* CSR payload: fanin node ids *)
  mutable fanout_off : int array;
  mutable fanout : int array;
  mutable pending : int array; (* Kahn: unprocessed fanins per node *)
  mutable cuts : int array array array; (* node -> minimal cuts, priority order *)
  mutable complete : bool array;
  mutable maximal : bool array; (* sink-side with no sink-side consumer *)
  mutable queue : int array; (* Kahn topological queue *)
  mutable busy : bool;
}

let new_arena () =
  {
    fanin_off = [||];
    fanin = [||];
    fanout_off = [||];
    fanout = [||];
    pending = [||];
    cuts = [||];
    complete = [||];
    maximal = [||];
    queue = [||];
    busy = false;
  }

let ensure a n m =
  if Array.length a.pending < n then begin
    let c = max n (2 * Array.length a.pending) in
    a.fanin_off <- Array.make (c + 1) 0;
    a.fanout_off <- Array.make (c + 1) 0;
    a.pending <- Array.make c 0;
    a.cuts <- Array.make c [||];
    a.complete <- Array.make c true;
    a.maximal <- Array.make c false;
    a.queue <- Array.make c 0
  end;
  if Array.length a.fanin < m then begin
    let c = max m (2 * Array.length a.fanin) in
    a.fanin <- Array.make c 0;
    a.fanout <- Array.make c 0
  end

(* sorted-array set helpers (cuts are strictly increasing int arrays) *)

let union_bounded xs ys ~k =
  let nx = Array.length xs and ny = Array.length ys in
  let buf = Array.make (min (nx + ny) (k + 1)) 0 in
  let i = ref 0 and j = ref 0 and o = ref 0 in
  let over = ref false in
  while (not !over) && (!i < nx || !j < ny) do
    let x = (if !i < nx then xs.(!i) else max_int)
    and y = if !j < ny then ys.(!j) else max_int in
    let v =
      if x < y then (incr i; x)
      else if y < x then (incr j; y)
      else (incr i; incr j; x)
    in
    if !o > k - 1 then over := true
    else begin
      buf.(!o) <- v;
      incr o
    end
  done;
  if !over then None
  else if !o = Array.length buf then Some buf
  else Some (Array.sub buf 0 !o)

let subset xs ys =
  (* xs ⊆ ys, both strictly increasing *)
  let nx = Array.length xs and ny = Array.length ys in
  nx <= ny
  &&
  let i = ref 0 and j = ref 0 in
  while !i < nx && !j < ny do
    if xs.(!i) = ys.(!j) then (incr i; incr j)
    else if xs.(!i) > ys.(!j) then incr j
    else j := ny (* xs element missing from ys *)
  done;
  !i = nx

(* Priority order: fewer inputs first, then lexicographic — OCaml's
   structural compare on int arrays (size, then fields) is exactly that,
   and is deterministic across lanes and hosts. *)
let prioritize cands = List.sort_uniq Stdlib.compare cands

(* Keep only the minimal (non-dominated) cuts of a priority-sorted list.
   A strict subset sorts strictly earlier (it is shorter), so one forward
   pass checking each cut against the kept prefix suffices. *)
let minimal_only cands =
  let kept = ref [] in
  List.iter
    (fun c ->
      if not (List.exists (fun m -> subset m c) !kept) then kept := c :: !kept)
    cands;
  List.rev !kept

(* Merge the cut sets of [parts] (cross-product of unions), respecting
   the width bound and the candidate budget.  Returns the pruned
   priority-ordered list and whether any candidate was discarded for
   budget reasons (width-k filtering never affects completeness). *)
let cross_merge ~k ~cand_cap parts =
  let truncated = ref false in
  let merge_two acc cuts =
    let cands = ref [] and count = ref 0 in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if !count >= cand_cap then truncated := true
            else
              match union_bounded a b ~k with
              | None -> ()
              | Some u ->
                  cands := u :: !cands;
                  incr count)
          cuts)
      acc;
    minimal_only (prioritize !cands)
  in
  match parts with
  | [] -> ([ [||] ], false)
  | first :: rest ->
      let acc = List.fold_left merge_two first rest in
      (acc, !truncated)

let rec take_bounded i = function
  | [] -> ([], false)
  | _ :: _ when i = 0 -> ([], true)
  | c :: tl ->
      let l, dropped = take_bounded (i - 1) tl in
      (c :: l, dropped)

let default_max_nodes = 160
let default_max_cuts = 8
let default_cand_cap = 40

let decide ?arena ?(max_nodes = default_max_nodes)
    ?(max_cuts = default_max_cuts) ?(cand_cap = default_cand_cap)
    (spec : Kcut.spec) ~k =
  if List.exists (fun s -> spec.Kcut.sink_side.(s)) spec.Kcut.sources then
    Exceeds
  else if spec.Kcut.n > max_nodes || k <= 0 then Unknown
  else begin
    let n = spec.Kcut.n in
    let m = Array.length spec.Kcut.edges in
    let a = match arena with Some a -> a | None -> new_arena () in
    if a.busy then
      invalid_arg
        "Pricut: arena is owned by an in-flight decide — two lanes are \
         sharing one arena (doc/CONCURRENCY.md: one arena per pool lane)";
    a.busy <- true;
    Fun.protect ~finally:(fun () -> a.busy <- false) @@ fun () ->
    ensure a n m;
    let sink = spec.Kcut.sink_side in
    let pending = a.pending in
    Array.fill pending 0 n 0;
    for v = 0 to n - 1 do
      a.maximal.(v) <- sink.(v)
    done;
    Array.iter
      (fun (u, v) ->
        pending.(v) <- pending.(v) + 1;
        if sink.(v) then a.maximal.(u) <- false)
      spec.Kcut.edges;
    (* CSR fanin and fanout indexes; the offset cursors walk back to the
       segment starts while scattering the edge list *)
    let fin_off = a.fanin_off and fout_off = a.fanout_off in
    let racc = ref 0 and wacc = ref 0 in
    for v = 0 to n - 1 do
      racc := !racc + pending.(v);
      fin_off.(v) <- !racc
    done;
    fin_off.(n) <- !racc;
    Array.fill fout_off 0 (n + 1) 0;
    Array.iter
      (fun (u, _) -> fout_off.(u) <- fout_off.(u) + 1)
      spec.Kcut.edges;
    for v = 0 to n - 1 do
      let d = fout_off.(v) in
      fout_off.(v) <- !wacc + d;
      wacc := !wacc + d
    done;
    fout_off.(n) <- !wacc;
    Array.iter
      (fun (u, v) ->
        fin_off.(v) <- fin_off.(v) - 1;
        a.fanin.(fin_off.(v)) <- u;
        fout_off.(u) <- fout_off.(u) - 1;
        a.fanout.(fout_off.(u)) <- v)
      spec.Kcut.edges;
    let is_source = Array.make n false in
    List.iter (fun s -> is_source.(s) <- true) spec.Kcut.sources;
    (* bottom-up over a Kahn topological order *)
    let q = a.queue in
    let qlen = ref 0 in
    for v = 0 to n - 1 do
      if pending.(v) = 0 then begin
        q.(!qlen) <- v;
        incr qlen
      end
    done;
    let qhead = ref 0 in
    while !qhead < !qlen do
      let v = q.(!qhead) in
      incr qhead;
      (if is_source.(v) then begin
         (* the zero-length path <v> itself must be cut: {v} is the only
            minimal cut, even if v also has recorded fanins *)
         a.cuts.(v) <- [| [| v |] |];
         a.complete.(v) <- true
       end
       else if fin_off.(v + 1) = fin_off.(v) then begin
         (* unreachable from the sources: nothing to cut *)
         a.cuts.(v) <- [| [||] |];
         a.complete.(v) <- true
       end
       else begin
         let parts = ref [] and compl = ref true in
         for i = fin_off.(v) to fin_off.(v + 1) - 1 do
           let f = a.fanin.(i) in
           parts := Array.to_list a.cuts.(f) :: !parts;
           compl := !compl && a.complete.(f)
         done;
         let merged, trunc = cross_merge ~k ~cand_cap !parts in
         let merged =
           if sink.(v) then merged
           else
             (* {v} is never dominated by a fanin combo (v is not its own
                ancestor) and dominates any combo containing it *)
             minimal_only (prioritize ([| v |] :: merged))
         in
         let kept, dropped = take_bounded max_cuts merged in
         a.cuts.(v) <- Array.of_list kept;
         a.complete.(v) <- !compl && (not trunc) && not dropped
       end);
      for i = fout_off.(v) to fout_off.(v + 1) - 1 do
        let w = a.fanout.(i) in
        pending.(w) <- pending.(w) - 1;
        if pending.(w) = 0 then begin
          q.(!qlen) <- w;
          incr qlen
        end
      done
    done;
    if !qlen < n then Unknown (* cyclic spec: not a cone network *)
    else begin
      let parts = ref [] and compl = ref true and have_root = ref false in
      for v = 0 to n - 1 do
        if a.maximal.(v) then begin
          have_root := true;
          parts := Array.to_list a.cuts.(v) :: !parts;
          compl := !compl && a.complete.(v)
        end
      done;
      if not !have_root then Unknown
      else begin
        let merged, trunc = cross_merge ~k ~cand_cap !parts in
        match merged with
        | best :: _ -> Cut (Array.to_list best)
        | [] -> if !compl && not trunc then Exceeds else Unknown
      end
    end
  end
