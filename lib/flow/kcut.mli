(** K-feasible node cuts on cone networks.

    Given a DAG whose edges point from inputs toward a root, a set of
    [sink_side] nodes that must stay on the root side of the cut (in
    FlowMap terms: the nodes collapsed into the sink because their label or
    height is too large) and a set of frontier [sources] (fed by the
    super-source), decide whether the sources can be separated from the
    root by removing at most [k] nodes, and return such a node cut-set.

    This is the decision at the heart of FlowMap's label computation and of
    TurboMap/TurboSYN's sequential label computation on expanded circuits:
    node capacities are 1, so by max-flow/min-cut a flow value [<= k]
    certifies a K-feasible cut and the residual graph yields it. *)

type spec = {
  n : int;
  edges : (int * int) array;  (** [(u, v)]: u feeds v (v is closer to the root) *)
  sink_side : bool array;  (** length [n]; must include the root *)
  sources : int list;  (** frontier nodes; a valid cut never crosses them upstream *)
}

type result =
  | Cut of int list  (** a node cut-set of size [<= k], ascending ids *)
  | Exceeds  (** every cut separating the sources from the root is larger than [k] *)

type arena
(** A reusable flow network.  Passing the same arena to successive calls
    re-fills one [Maxflow.t] (cleared between decisions) instead of
    allocating a network per cut test.  An arena must not be shared
    between concurrent callers (one per pool lane — see
    [doc/CONCURRENCY.md]); a solve that finds its arena already owned by
    an in-flight solve raises [Invalid_argument] rather than corrupting
    the network. *)

val new_arena : unit -> arena

val find : ?arena:arena -> spec -> k:int -> result
(** @raise Invalid_argument on malformed specs (bad ids, empty sink side). *)

val min_cut : ?arena:arena -> spec -> int list option
(** The minimum node cut with no size bound ([None] when no finite cut
    exists, i.e. a source is on the sink side). *)
