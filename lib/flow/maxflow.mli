(** Integer max-flow (Dinic: level-graph BFS + blocking-flow DFS with
    current-arc iterators).

    The flow networks in this project are small (one per K-feasible-cut
    decision, with node-splitting) and the flow value is capped at K+1,
    but cut tests dominate the label-engine hot path, so the solver
    matters: Dinic retires each arc at most once per phase instead of
    rescanning the network per augmenting path, and the unit node
    capacities bound the phase count by O(sqrt E).  All search state
    lives in generation-stamped scratch arrays owned by the network, so
    the arena-reuse protocol ([clear]) allocates nothing per decision.

    The min cut read back by {!residual_reachable} is the canonical
    source-side minimum cut (the residual-reachable set is the same for
    every maximum flow), so switching augmentation strategies cannot
    change which cut a caller observes. *)

type t

val create : int -> t
(** [create n] makes an empty network on nodes [0 .. n-1]. *)

val clear : t -> int -> t
(** [clear t n] re-initializes [t] as an empty network on nodes
    [0 .. n-1], reusing its arc and scratch allocations (the per-cut-test
    arena: one network per label engine is [clear]ed and re-filled instead
    of [create]d per decision).  Returns [t] for convenience. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Adds a directed edge (and its residual reverse edge of capacity 0). *)

val infinity : int
(** A capacity safely treated as unbounded. *)

val max_flow : t -> s:int -> t:int -> limit:int -> int
(** [max_flow net ~s ~t ~limit] augments until no path remains or the flow
    value exceeds [limit]; returns the flow found (at most [limit + 1]
    when all s-t paths have unit bottlenecks, as in the split-node cut
    networks).  Mutates the network; call [reset] to reuse it. *)

val reset : t -> unit
(** Zero all flows. *)

val residual_reachable : t -> s:int -> int -> bool
(** [residual_reachable net ~s] marks the nodes reachable from [s] in
    the residual graph of the current flow — the source side of the
    canonical minimum cut once [max_flow] has run to completion — and
    returns the membership predicate.  The marks live in the network's
    generation-stamped scratch (nothing is allocated); the predicate is
    valid until the next [max_flow], [residual_reachable] or [clear] on
    the same network. *)
