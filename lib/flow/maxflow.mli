(** Integer max-flow (Edmonds–Karp: BFS augmenting paths).

    The flow networks in this project are tiny (one per K-feasible-cut
    decision, with node-splitting) and the flow value is capped at K+1, so
    BFS augmentation is the right tool: at most K+1 augmentations of O(E)
    each. *)

type t

val create : int -> t
(** [create n] makes an empty network on nodes [0 .. n-1]. *)

val clear : t -> int -> t
(** [clear t n] re-initializes [t] as an empty network on nodes
    [0 .. n-1], reusing its arc and scratch allocations (the per-cut-test
    arena: one network per label engine is [clear]ed and re-filled instead
    of [create]d per decision).  Returns [t] for convenience. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Adds a directed edge (and its residual reverse edge of capacity 0). *)

val infinity : int
(** A capacity safely treated as unbounded. *)

val max_flow : t -> s:int -> t:int -> limit:int -> int
(** [max_flow net ~s ~t ~limit] augments until no path remains or the flow
    value exceeds [limit]; returns the flow found (at most [limit + 1]).
    Mutates the network; call [reset] to reuse it. *)

val reset : t -> unit
(** Zero all flows. *)

val residual_reachable : t -> s:int -> bool array
(** Nodes reachable from [s] in the residual graph of the current flow —
    the source side of a minimum cut once [max_flow] has run to
    completion. *)
