(** Priority K-cut enumeration: the pre-filter layer of the three-layer
    cut engine (doc/PERF.md).

    Enumerates a bounded set of minimal node cuts per node of a
    {!Kcut.spec} cone network, bottom-up, and merges the sets of the
    maximal sink-side nodes into a verdict for the whole cone.  The
    enumeration is exact whenever it is conclusive: a returned cut is a
    genuine separating cut of width [<= k], and [Exceeds] is only
    reported when the enumeration ran without hitting any budget, so it
    has proved that no such cut exists.  Whenever a per-node budget
    truncates the search the verdict degrades to [Unknown] and the caller
    falls back to the max-flow solver ({!Kcut.find}).

    The enumerated witness is the highest-priority cut (fewest inputs,
    then lexicographic) and is deterministic — independent of lane
    scheduling, hosts, and arena reuse — so callers that substitute it
    for a flow-derived cut stay reproducible. *)

type verdict =
  | Cut of int list  (** a separating node cut of size [<= k], ascending ids *)
  | Exceeds  (** proven: every cut separating the sources is wider than [k] *)
  | Unknown  (** inconclusive (budget hit, oversized or cyclic spec) *)

type arena
(** Reusable enumeration scratch, sized to the largest cone seen.  One
    arena per pool lane, like {!Kcut.arena}; concurrent use of one arena
    raises [Invalid_argument]. *)

val new_arena : unit -> arena

val decide :
  ?arena:arena ->
  ?max_nodes:int ->
  ?max_cuts:int ->
  ?cand_cap:int ->
  Kcut.spec ->
  k:int ->
  verdict
(** [decide spec ~k] enumerates and merges priority cuts.  [max_nodes]
    (default 160) skips cones too large to enumerate profitably —
    returning [Unknown] immediately; [max_cuts] (default 8) bounds the
    cuts kept per node; [cand_cap] (default 40) bounds the candidates
    generated per merge step.  Exceeding [max_cuts]/[cand_cap] clears
    the completeness flag, so the budgets trade conclusiveness, never
    soundness. *)
