open Prelude
open Logic

(* observability (doc/OBSERVABILITY.md): bound-set search effort and BDD
   pressure of the functional-decomposition engine *)
let c_calls = Obs.Counter.make "decomp.calls"
let c_successes = Obs.Counter.make "decomp.successes"
let c_trials = Obs.Counter.make "decomp.bound_set_trials"
let c_two_wire = Obs.Counter.make "decomp.two_wire_extractions"
let c_bdd_peak = Obs.Counter.make "decomp.bdd_peak_nodes"
let h_bound_set = Obs.Histogram.make "decomp.bound_set_size"

type tree = Input of int | Lut of Truthtable.t * tree array

type result = { tree : tree; level : Rat.t; luts : int }

let rec tree_level ~arrivals = function
  | Input i -> arrivals.(i)
  | Lut (_, [||]) -> Rat.zero
  | Lut (_, fanins) ->
      let m =
        Array.fold_left
          (fun acc t -> Rat.max acc (tree_level ~arrivals t))
          (tree_level ~arrivals fanins.(0))
          fanins
      in
      Rat.add m Rat.one

let rec tree_luts = function
  | Input _ -> 0
  | Lut (_, fanins) -> 1 + Array.fold_left (fun acc t -> acc + tree_luts t) 0 fanins

let rec eval_tree t env =
  match t with
  | Input i -> env i
  | Lut (tt, fanins) ->
      Truthtable.eval tt (Array.map (fun f -> eval_tree f env) fanins)

let tree_inputs t =
  let acc = Hashtbl.create 8 in
  let rec go = function
    | Input i -> Hashtbl.replace acc i ()
    | Lut (_, fanins) -> Array.iter go fanins
  in
  go t;
  List.sort Int.compare (Hashtbl.fold (fun i () l -> i :: l) acc [])

(* live inputs during the loop *)
type live = { var : int; arrival : Rat.t; t : tree }

(* All size-[s] subsets of the first [limit] elements of [arr]. *)
let subsets_of_size arr limit s =
  let limit = min limit (Array.length arr) in
  let rec go start chosen acc =
    if List.length chosen = s then List.rev chosen :: acc
    else if start >= limit then acc
    else
      let acc = go (start + 1) (arr.(start) :: chosen) acc in
      go (start + 1) chosen acc
  in
  List.rev (go 0 [] [])

let decompose ?(exhaustive = false) ?(multi = false) man ~f ~vars ~arrivals ~k =
  if k < 2 || k > Truthtable.max_arity then invalid_arg "Decompose: k";
  if Array.length vars <> Array.length arrivals then
    invalid_arg "Decompose: length mismatch";
  (* fresh BDD variables for extracted sub-functions *)
  let next_var = ref (max (Bdd.nvars man) (Array.fold_left max 0 vars + 1)) in
  let fresh () =
    let v = !next_var in
    incr next_var;
    v
  in
  let initial =
    Array.to_list
      (Array.mapi (fun i v -> { var = v; arrival = arrivals.(i); t = Input i }) vars)
  in
  let finish fn live =
    (* at most k live inputs: emit the root LUT *)
    let live = Array.of_list live in
    let lvars = Array.map (fun l -> l.var) live in
    let tt = Bdd.to_truthtable man fn lvars in
    let tt, support_vars = Truthtable.shrink_support tt in
    let fanins =
      Array.of_list (List.map (fun j -> live.(j).t) support_vars)
    in
    match (Truthtable.arity tt, fanins) with
    | 1, [| t |] when Truthtable.equal tt (Truthtable.var 1 0) ->
        t (* pure projection: no LUT needed *)
    | _ -> Lut (tt, fanins)
  in
  let rec loop fn live =
    (* keep only inputs in the support of fn *)
    let sup = Bdd.support man fn in
    let live = List.filter (fun l -> List.mem l.var sup) live in
    let m = List.length live in
    if m <= k then Some (finish fn live)
    else begin
      let sorted =
        Array.of_list
          (List.stable_sort (fun a b -> Rat.compare a.arrival b.arrival) live)
      in
      (* candidate bound sets: earliest-prefixes of size k down to 2, then
         optionally subsets of the earliest k+3 inputs *)
      let prefix_candidates =
        List.concat_map
          (fun s ->
            if s <= m - 1 then [ Array.to_list (Array.sub sorted 0 s) ] else [])
          (List.init (k - 1) (fun i -> k - i))
      in
      let extra_candidates =
        if not exhaustive then []
        else
          (* bounded widening: subsets of the k+3 earliest inputs, largest
             extractions first (sizes k and k-1 only), capped — unbounded
             subset enumeration dominates runtime on stuck cones *)
          let subsets =
            List.concat_map
              (fun s -> if s >= 2 && s <= m - 1 then subsets_of_size sorted (k + 3) s else [])
              [ k; k - 1 ]
          in
          List.filteri (fun i _ -> i < 64) subsets
      in
      let try_bound ~max_mu bset =
        Obs.Counter.incr c_trials;
        Obs.Histogram.observe_int h_bound_set (List.length bset);
        let bound = Array.of_list (List.map (fun l -> l.var) bset) in
        (* Almost every trial fails the µ test; decide it with the
           early-exit enumeration and only materialize the class table
           for the (rare) winner.  multiplicity <= max_mu iff
           representatives <= max_mu, so the decisions are identical. *)
        if Classes.multiplicity_at_most man fn ~bound ~mu:max_mu then
          Some (bset, Classes.compute man fn ~bound)
        else None
      in
      let rec first ~max_mu = function
        | [] -> None
        | b :: rest -> (
            match try_bound ~max_mu b with
            | Some r -> Some r
            | None -> first ~max_mu rest)
      in
      let candidates = prefix_candidates @ extra_candidates in
      let chosen =
        match first ~max_mu:2 candidates with
        | Some r -> Some r
        | None when multi ->
            (* two-wire extraction (the paper's future-work direction):
               a bound set of >= 3 inputs with at most 4 cofactor classes
               is replaced by two encoding wires *)
            first ~max_mu:4
              (List.filter (fun b -> List.length b >= 3) candidates)
        | None -> None
      in
      match chosen with
      | None -> None
      | Some (bset, cls) ->
          let bound = Array.of_list (List.map (fun l -> l.var) bset) in
          let nb = Array.length bound in
          let nclasses = Array.length cls.Classes.representatives in
          if nclasses = 1 then
            (* fn does not depend on the bound set after all (filtered by
               support above, so this cannot happen; defensive) *)
            loop cls.Classes.representatives.(0)
              (List.filter (fun l -> not (List.memq l bset)) live)
          else begin
            let g_arrival =
              match bset with
              | [] -> assert false
              | first_l :: rest ->
                  Rat.add
                    (List.fold_left
                       (fun acc l -> Rat.max acc l.arrival)
                       first_l.arrival rest)
                    Rat.one
            in
            (* one encoding wire per class-index bit *)
            let nwires = if nclasses <= 2 then 1 else 2 in
            if nwires = 2 then Obs.Counter.incr c_two_wire;
            let wire bit =
              let bits = ref 0L in
              Array.iteri
                (fun mth c ->
                  if c land (1 lsl bit) <> 0 then
                    bits := Int64.logor !bits (Int64.shift_left 1L mth))
                cls.Classes.class_of;
              let g_tt = Truthtable.create nb !bits in
              let g_tt, g_sup = Truthtable.shrink_support g_tt in
              let g_fanins =
                Array.of_list (List.map (fun j -> (List.nth bset j).t) g_sup)
              in
              let y = fresh () in
              { var = y; arrival = g_arrival; t = Lut (g_tt, g_fanins) }
            in
            let wires = List.init nwires wire in
            (* fn' selects the class representative from the wire values *)
            let rep c =
              if c < nclasses then cls.Classes.representatives.(c)
              else cls.Classes.representatives.(0) (* unused encoding *)
            in
            let fn' =
              match wires with
              | [ w0 ] ->
                  Bdd.ite man (Bdd.var man w0.var) (rep 1) (rep 0)
              | [ w0; w1 ] ->
                  Bdd.ite man (Bdd.var man w1.var)
                    (Bdd.ite man (Bdd.var man w0.var) (rep 3) (rep 2))
                    (Bdd.ite man (Bdd.var man w0.var) (rep 1) (rep 0))
              | _ -> assert false
            in
            let live' =
              wires @ List.filter (fun l -> not (List.memq l bset)) live
            in
            loop fn' live'
          end
    end
  in
  Obs.Counter.incr c_calls;
  let result = loop f initial in
  Obs.Counter.record_max c_bdd_peak (Bdd.num_nodes man);
  match result with
  | None -> None
  | Some tree ->
      Obs.Counter.incr c_successes;
      Some { tree; level = tree_level ~arrivals tree; luts = tree_luts tree }
