(** Cofactor classes (column multiplicity) of a Boolean function with
    respect to a bound set.

    For a function [f] and a bound set [B] of variables, two assignments to
    [B] are equivalent when the induced cofactors of [f] are equal.  The
    number of classes is the column multiplicity µ of the decomposition
    chart; a disjoint single-output decomposition
    [f = f'(g(B), free)] exists iff µ <= 2 (Roth–Karp / Ashenhurst).

    Bound sets have at most 6 variables here (K-LUT extraction with
    K <= 6), so the 2^|B| cofactors are enumerated directly; hash-consing
    makes cofactor equality a pointer comparison. *)

type t = {
  class_of : int array;
      (** for each of the [2^|B|] bound assignments, its class index *)
  representatives : Bdd.t array;
      (** one cofactor per class, indexed by class *)
}

val compute : Bdd.man -> Bdd.t -> bound:int array -> t
(** [compute man f ~bound] where [bound] lists distinct BDD variables
    (at most 16 — caller should keep it small).
    Bound assignment [m] sets [bound.(j)] to bit [j] of [m]. *)

val multiplicity : Bdd.man -> Bdd.t -> bound:int array -> int
(** Number of cofactor classes. *)

val multiplicity_at_most : Bdd.man -> Bdd.t -> bound:int array -> mu:int -> bool
(** [multiplicity_at_most man f ~bound ~mu] decides [multiplicity <= mu]
    without materializing the full class table, aborting the cofactor
    enumeration at the [(mu+1)]-th distinct cofactor — the fast path of
    the bound-set search, where almost every trial fails the µ test. *)
