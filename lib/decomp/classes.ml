type t = { class_of : int array; representatives : Bdd.t array }

let compute man f ~bound =
  let b = Array.length bound in
  if b > 16 then invalid_arg "Classes.compute: bound set too large";
  let count = 1 lsl b in
  let class_of = Array.make count (-1) in
  let reps = ref [] in
  let nclasses = ref 0 in
  let seen = Hashtbl.create 16 in
  (* one shared restriction tree for the whole cofactor family; mask
     semantics (bit j assigns bound.(j)) and class numbering by first
     occurrence are unchanged *)
  let cofs = Bdd.cofactors man f bound in
  for m = 0 to count - 1 do
    let cof = cofs.(m) in
    match Hashtbl.find_opt seen cof with
    | Some c -> class_of.(m) <- c
    | None ->
        let c = !nclasses in
        incr nclasses;
        Hashtbl.replace seen cof c;
        class_of.(m) <- c;
        reps := cof :: !reps
  done;
  { class_of; representatives = Array.of_list (List.rev !reps) }

let multiplicity man f ~bound =
  Array.length (compute man f ~bound).representatives

exception Too_many

let multiplicity_at_most man f ~bound ~mu =
  (* Early exit: most bound-set trials fail the µ test, and a failure
     is established as soon as the (µ+1)-th distinct cofactor shows up —
     usually within the first few leaves of the restriction tree, long
     before all 2^|B| cofactors exist.  Hash-consing makes distinctness
     a node-id comparison. *)
  let seen = Hashtbl.create 16 in
  match
    Bdd.iter_cofactors man f bound (fun _ cof ->
        if not (Hashtbl.mem seen cof) then begin
          Hashtbl.replace seen cof ();
          if Hashtbl.length seen > mu then raise Too_many
        end)
  with
  | () -> true
  | exception Too_many -> false
