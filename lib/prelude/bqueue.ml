(* Bounded MPMC blocking queue: one mutex, one condition variable.
   Producers never wait (full = reject, the caller's admission-control
   decision); only consumers block, so the condition only signals
   "nonempty or closed". *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  cap : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Bqueue.create: negative capacity";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    cap = capacity;
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.items >= t.cap then false
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Condition.broadcast t.nonempty
      end)

let length t = with_lock t (fun () -> Queue.length t.items)
let capacity t = t.cap
let is_closed t = with_lock t (fun () -> t.closed)
