(* A small fixed crew of OCaml 5 domains with a level-synchronous batch
   API: [run] publishes a batch of independent tasks, every worker (and
   the calling domain, as worker 0) pulls task indices from a shared
   atomic cursor, and [run] returns only when every task of the batch has
   completed — a barrier.  The pool is the execution substrate of the
   intra-phi parallel label engine (doc/CONCURRENCY.md): one batch per
   SCC level, one lane of scratch state per worker.

   Determinism contract: tasks of one batch must write disjoint state (the
   caller's ownership discipline), so which worker runs which task never
   affects results — the pool makes no assignment promises.  Exceptions
   raised by tasks are caught, the one with the smallest task index is
   re-raised on the calling domain after the barrier (smallest-index
   selection keeps the surfaced error independent of scheduling). *)

type batch = {
  tasks : int;
  run : int -> int -> unit; (* worker -> task index *)
  cursor : int Atomic.t;
  mutable workers_done : int; (* spawned workers finished with this batch *)
  mutable failed : (int * exn) option; (* smallest-index task exception *)
}

type t = {
  size : int; (* lanes: spawned workers + the calling domain *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable batch : batch option;
  mutable generation : int; (* bumped per published batch *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

let record_failure t b i exn =
  Mutex.lock t.mutex;
  (match b.failed with
  | Some (j, _) when j <= i -> ()
  | _ -> b.failed <- Some (i, exn));
  Mutex.unlock t.mutex

(* Pull and run tasks until the batch cursor is exhausted. *)
let participate t b ~worker =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add b.cursor 1 in
    if i >= b.tasks then continue := false
    else
      try b.run worker i with exn -> record_failure t b i exn
  done

let worker_loop t ~worker () =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stopping) && t.generation = !last_gen do
      Condition.wait t.cond t.mutex
    done;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      last_gen := t.generation;
      let b = Option.get t.batch in
      Mutex.unlock t.mutex;
      participate t b ~worker;
      Mutex.lock t.mutex;
      b.workers_done <- b.workers_done + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end
  done

let create ~domains =
  let size = max 1 domains in
  let t =
    {
      size;
      mutex = Mutex.create ();
      cond = Condition.create ();
      batch = None;
      generation = 0;
      stopping = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (size - 1) (fun i ->
        Domain.spawn (worker_loop t ~worker:(i + 1)));
  t

let reraise_failure = function
  | Some (_, exn) -> raise exn
  | None -> ()

let run t ~n f =
  if n <= 0 then ()
  else if t.size = 1 || n = 1 then begin
    (* no spawned workers (or a single task): run inline, same
       exception contract *)
    let b =
      {
        tasks = n;
        run = f;
        cursor = Atomic.make 0;
        workers_done = 0;
        failed = None;
      }
    in
    participate t b ~worker:0;
    reraise_failure b.failed
  end
  else begin
    let b =
      {
        tasks = n;
        run = f;
        cursor = Atomic.make 0;
        workers_done = 0;
        failed = None;
      }
    in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    (match t.batch with
    | Some _ ->
        Mutex.unlock t.mutex;
        invalid_arg "Pool.run: concurrent batches on one pool"
    | None -> ());
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    participate t b ~worker:0;
    (* barrier: every spawned worker has left the batch (their in-flight
       task, if any, completed before workers_done was bumped) *)
    Mutex.lock t.mutex;
    while b.workers_done < t.size - 1 do
      Condition.wait t.cond t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    reraise_failure b.failed
  end

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.cond
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
