(** A fixed crew of OCaml 5 domains with a batch-barrier API — the
    execution substrate of the intra-φ parallel label engine
    ([doc/CONCURRENCY.md]).

    A pool of size [s] owns [s - 1] spawned domains; the domain calling
    {!run} participates as worker [0], so [s] tasks make progress at
    once.  {!run} publishes a batch of [n] independent tasks, every
    worker pulls task indices from a shared cursor, and {!run} returns
    only when all [n] tasks have completed (a barrier).

    Tasks of one batch must write disjoint state: the pool makes no
    assignment promises, so determinism is the caller's ownership
    discipline (each task owns the cells it writes; per-worker scratch is
    keyed by the worker id the task receives). *)

type t

val create : domains:int -> t
(** Spawn a pool of [max 1 domains] lanes ([domains - 1] spawned
    domains).  Idle workers block on a condition variable — an idle pool
    burns no CPU. *)

val size : t -> int
(** Number of lanes, including the calling domain. *)

val run : t -> n:int -> (int -> int -> unit) -> unit
(** [run t ~n f] executes [f worker i] for every [i < n] across the
    lanes and returns when all have completed.  [worker] is the lane id
    in [0 .. size t - 1]; worker [0] is the calling domain.  If tasks
    raise, the exception of the smallest task index is re-raised here
    after the barrier (the rest are dropped).  A pool runs one batch at
    a time; concurrent [run] calls on the same pool are a programming
    error ([Invalid_argument]). *)

val shutdown : t -> unit
(** Stop and join the spawned domains.  Idempotent.  [run] after
    [shutdown] raises [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run [f], always [shutdown]. *)
