(** A bounded multi-producer/multi-consumer blocking queue — the
    admission-controlled hand-off between the serve layer's accept lane
    and its worker domains ([doc/CONCURRENCY.md] §Serving).

    The queue never blocks producers: {!try_push} fails immediately
    when the queue is at capacity (the caller sheds the work — e.g.
    answers [429 Retry-After] — instead of queueing unboundedly).
    Consumers block in {!pop} until an item or {!close} arrives;
    items already queued at close time are still drained, so closing
    is a graceful stop, not an abort. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity >= 0].  A zero-capacity queue rejects every push — useful
    for forcing the shed path in tests.
    @raise Invalid_argument on a negative capacity. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue and return [true]; [false] when the queue is full or
    closed (the item is not retained in either case). *)

val pop : 'a t -> 'a option
(** Dequeue the oldest item, blocking while the queue is empty and
    open.  [None] once the queue is closed {e and} drained. *)

val close : 'a t -> unit
(** Reject subsequent pushes and wake every blocked {!pop}.  Idempotent.
    Queued items remain poppable. *)

val length : 'a t -> int
(** Items currently queued (a racy snapshot under concurrency, exact
    when quiescent). *)

val capacity : 'a t -> int

val is_closed : 'a t -> bool
