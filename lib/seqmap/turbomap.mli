(** The TurboMap flow (and, with resynthesis enabled in the options, the
    label-computation core of TurboSYN): binary search for the minimum MDR
    ratio, mapping generation, and clock-period realization by retiming +
    pipelining.

    The search is exact: the minimum MDR ratio of a mapping solution is a
    rational with denominator bounded by the circuit's total register
    count (mapping preserves cycle register counts), so a Stern–Brocot
    descent over label-computation feasibility probes returns the true
    minimum ratio; the paper's upper bound UB is the MDR ratio of the
    trivial mapping (one LUT per gate). *)

open Prelude

type report = {
  phi : Rat.t;  (** minimum MDR ratio over mapping solutions *)
  luts : int;
  mapped_mdr : Graphs.Cycle_ratio.result;  (** MDR of the generated netlist *)
  clock_period : int;  (** achieved by retiming + pipelining the result *)
  probes : int;  (** feasibility probes during the binary search *)
  stats : Label_engine.stats;  (** accumulated over all probes *)
  labels : Rat.t array;  (** converged labels of the final run at [phi] *)
  prov : Label_engine.prov option array;
      (** per-gate implementation provenance of the final run (defined
          exactly on gates of the {e source} netlist) *)
}

val minimum_ratio :
  ?cache:Label_engine.resyn_cache ->
  ?cutmemo:Label_engine.cut_memo ->
  ?phi_max_den:int ->
  ?jobs:int ->
  ?pool:Pool.t ->
  Label_engine.options -> Circuit.Netlist.t -> Rat.t * int * Label_engine.stats
(** [(phi, probes, stats)].  [phi = 0] for acyclic circuits (any clock
    period is reachable by pipelining alone).  As in the paper, targets are
    searched in [\[1, UB\]]: ratios below 1 cannot improve the realizable
    clock period (its floor is one LUT delay).  [phi_max_den] caps the
    denominators explored by the exact search (the default explores every
    denominator up to the circuit's total register count; achievable loop
    ratios have denominators equal to loop register counts, which are small
    in practice, and probes very close to the optimum are the slowest, so a
    modest cap — the top-level flow uses 24 — trades a sliver of exactness
    for a large speedup).

    [jobs > 1] evaluates feasibility probes speculatively on that many
    domains: the next probe the search certainly needs runs together with
    the pending probes of both possible verdicts (BFS over the search's
    decision tree), and the decisive verdicts replay the sequential
    descent — the returned [phi] is identical for every [jobs] value;
    only [probes] (and wall-clock time) change.  [jobs <= 1] is the exact
    sequential search.

    [pool], when given, supplies intra-φ lanes to the label engine of
    each {e non-speculative} probe ([Label_engine.run ?pool] — see
    [doc/CONCURRENCY.md]); speculative probes on worker domains never
    touch it, since pool batches have a single caller.  [jobs] (probe
    speculation) and [pool] (intra-probe SCC parallelism) are
    orthogonal axes; both preserve results exactly.

    [cutmemo], when given, carries passing cuts across probes
    ([doc/PERF.md], three-layer cut engine).  Like the pool it is handed
    only to driver-domain probes: the memo's contents must be a
    deterministic function of the decisive probe sequence, never of
    domain scheduling.  Memo hits are verdict-exact, so the returned
    [phi] — and the labels of any later run handed the same memo — are
    unaffected; which probes populate the memo (and hence which
    remembered cut a later harvest reuses) does depend on [jobs],
    deterministically for each value. *)

val map :
  ?options:Label_engine.options ->
  ?phi_max_den:int ->
  ?jobs:int ->
  Circuit.Netlist.t ->
  k:int ->
  Circuit.Netlist.t * report
(** Full flow; the result is a K-LUT netlist, I/O-equivalent to the input
    from reset (register positions may differ only through the LUT-input
    weights, which the simulator interprets identically).
    [options] defaults to [Label_engine.default_options ~k] — plain
    TurboMap.  @raise Invalid_argument on non-K-bounded input. *)

val map_full :
  ?options:Label_engine.options ->
  ?phi_max_den:int ->
  ?jobs:int ->
  Circuit.Netlist.t ->
  k:int ->
  Circuit.Netlist.t * report * Label_engine.impl option array
(** Like [map], also returning the per-gate implementations the mapping was
    generated from (for post passes such as label relaxation). *)

val realize :
  Circuit.Netlist.t -> (Circuit.Netlist.t * int * int) option
(** Retime + pipeline a mapped netlist to its loop-bound clock period:
    [(circuit, period, latency)]; [None] on a combinational loop. *)

val realize_full :
  Circuit.Netlist.t -> (Circuit.Netlist.t * int * int * int array) option
(** Like {!realize}, also returning the lag vector [r] (the legal
    retiming/pipelining register assignment, indexed by node of the
    {e mapped} netlist) that achieves the period — the audit layer's
    upper-bound witness. *)
