open Prelude
open Circuit

(* observability (doc/OBSERVABILITY.md): the label-computation inner loop —
   what each probe spends its time on and why labels move *)
let c_iterations = Obs.Counter.make "label.iterations"
let c_cut_tests = Obs.Counter.make "label.cut_tests"
let c_cut_pass = Obs.Counter.make "label.cut_test_passes"
let c_cut_fail = Obs.Counter.make "label.cut_test_fails"
let c_decomp_attempts = Obs.Counter.make "label.decomp_attempts"
let c_decomp_rescues = Obs.Counter.make "label.decomp_rescues"
let c_cache_hits = Obs.Counter.make "label.resyn_cache_hits"
let c_divergences = Obs.Counter.make "label.divergences"
let c_cap_exits = Obs.Counter.make "label.cap_exits"
let s_flow_test = Obs.Span.make "label.flow_test"
let s_decomp = Obs.Span.make "label.decomp"
let s_scc = Obs.Span.make "label.scc"

type impl =
  | Cut of (int * int) array
  | Resyn of Decomp.Decompose.tree * (int * int) array

type options = {
  k : int;
  resynthesize : bool;
  cmax : int;
  exhaustive : bool;
  pld : bool;
  extra_depth : int;
  max_expansion : int;
  resyn_depth : int;
  multi_output : bool;
  full_expansion : bool;
}

let default_options ~k =
  {
    k;
    resynthesize = false;
    cmax = 15;
    exhaustive = false;
    pld = true;
    extra_depth = 3;
    max_expansion = 4000;
    resyn_depth = 2;
    multi_output = false;
    full_expansion = false;
  }

type stats = {
  mutable iterations : int;
  mutable flow_tests : int;
  mutable decompositions : int;
  mutable pld_hits : int;
}

type outcome =
  | Feasible of { labels : Rat.t array; impls : impl option array }
  | Infeasible

exception Diverged

let big_l nl labels phi v =
  let fanins = Netlist.fanins nl v in
  if Array.length fanins = 0 then Rat.zero (* constant gate *)
  else
    Array.fold_left
      (fun acc (u, w) -> Rat.max acc (Rat.sub labels.(u) (Rat.mul_int phi w)))
      (let u, w = fanins.(0) in
       Rat.sub labels.(u) (Rat.mul_int phi w))
      fanins

(* SeqMapII-style full expansion keeps growing the candidate region to the
   node budget instead of stopping a few levels below the threshold — the
   pre-TurboMap network construction whose cost the paper's lineage
   improved on. *)
let effective_depth opts =
  if opts.full_expansion then max_int / 2 else opts.extra_depth

(* Decide whether a K-cut of height <= threshold exists; return it. *)
let kcut_test opts stats nl labels phi v ~threshold =
  stats.flow_tests <- stats.flow_tests + 1;
  Obs.Counter.incr c_cut_tests;
  let result =
    Obs.Span.time s_flow_test (fun () ->
        let ex =
          Expanded.build nl ~root:v ~labels ~phi ~threshold
            ~extra_depth:(effective_depth opts) ~max_nodes:opts.max_expansion
        in
        if ex.Expanded.overflow then None
        else
          match Flow.Kcut.find (Expanded.kcut_spec ex) ~k:opts.k with
          | Flow.Kcut.Cut c -> Some (ex, c)
          | Flow.Kcut.Exceeds -> None)
  in
  Obs.Counter.incr (match result with Some _ -> c_cut_pass | None -> c_cut_fail);
  result

(* The decomposition tree is fully determined by the cut (which fixes the
   cone function) and the ORDER of the input arrivals (the bound-set
   heuristic sorts by arrival): memoize the tree on (cut, arrival
   permutation) and re-evaluate its level against the current arrivals on
   every hit — labels drift a little each iteration but rarely change the
   order, so this caches across iterations and probes. *)
type resyn_cache =
  (int * (int * int) array * int array, Decomp.Decompose.tree option) Hashtbl.t

let argsort (arrivals : Rat.t array) =
  let idx = Array.init (Array.length arrivals) Fun.id in
  Array.stable_sort (fun a b -> Rat.compare arrivals.(a) arrivals.(b)) idx;
  idx

(* TurboSYN sequential functional decomposition at lowered thresholds. *)
let resyn_test ?(cache : resyn_cache option) opts stats nl labels phi v ~target =
  let rec attempt h =
    if h > opts.resyn_depth then None
    else
      let threshold = Rat.sub target (Rat.of_int h) in
      let ex =
        Expanded.build nl ~root:v ~labels ~phi ~threshold
          ~extra_depth:(effective_depth opts) ~max_nodes:opts.max_expansion
      in
      if ex.Expanded.overflow then attempt (h + 1)
      else
        (* candidate cuts, widest first: the frontier cut gives the
           decomposition the most room (it is what FlowSYN sees at a block
           boundary); the minimum cut keeps the function narrow *)
        let candidates =
          let frontier = Expanded.frontier_cut ex in
          let min_c =
            match Flow.Kcut.min_cut (Expanded.kcut_spec ex) with
            | Some c when c <> frontier -> [ c ]
            | _ -> []
          in
          List.filter
            (fun c -> c <> [] && List.length c <= opts.cmax)
            (frontier :: min_c)
        in
        match candidates with
        | [] -> attempt (h + 1)
        | _ ->
            let rec try_cuts = function
              | [] -> attempt (h + 1)
              | c :: rest -> (
                  match try_cut c with
                  | Some impl -> Some impl
                  | None -> try_cuts rest)
            and try_cut c =
              let cut_nodes = List.map (fun i -> ex.Expanded.nodes.(i)) c in
            let inputs =
              Array.of_list
                (List.map (fun n -> (n.Expanded.u, n.Expanded.w)) cut_nodes)
            in
            let arrivals =
              Array.map
                (fun (u, w) -> Rat.sub labels.(u) (Rat.mul_int phi w))
                inputs
            in
            (* the root is part of the key: the same cut pairs under a
               different root denote a different cone function *)
            let key = (v, inputs, argsort arrivals) in
            let tree =
              match
                match cache with
                | Some tbl -> Hashtbl.find_opt tbl key
                | None -> None
              with
              | Some cached ->
                  Obs.Counter.incr c_cache_hits;
                  cached
              | None ->
                  stats.decompositions <- stats.decompositions + 1;
                  let man = Bdd.new_man () in
                  let vars = Array.init (Array.length inputs) Fun.id in
                  let f = Expanded.cone_bdd man nl ex ~cut:c ~vars in
                  let computed =
                    Option.map
                      (fun r -> r.Decomp.Decompose.tree)
                      (Decomp.Decompose.decompose ~exhaustive:opts.exhaustive
                         ~multi:opts.multi_output man ~f ~vars ~arrivals
                         ~k:opts.k)
                  in
                  (match cache with
                  | Some tbl -> Hashtbl.replace tbl key computed
                  | None -> ());
                  computed
            in
              match tree with
              | Some t
                when Rat.( <= ) (Decomp.Decompose.tree_level ~arrivals t) target
                ->
                  Some (Resyn (t, inputs))
              | _ -> None
            in
            try_cuts candidates
  in
  Obs.Counter.incr c_decomp_attempts;
  let result = Obs.Span.time s_decomp (fun () -> attempt 0) in
  (match result with Some _ -> Obs.Counter.incr c_decomp_rescues | None -> ());
  result

(* One label update; returns true if the label changed. *)
let update ?cache opts stats nl labels phi bound v =
  let l_cur = labels.(v) in
  let lv = big_l nl labels phi v in
  if Rat.( <= ) (Rat.add lv Rat.one) l_cur then false
  else begin
    let decision =
      match kcut_test opts stats nl labels phi v ~threshold:lv with
      | Some _ -> lv
      | None ->
          let resyn =
            if opts.resynthesize then
              resyn_test ?cache opts stats nl labels phi v ~target:lv
            else None
          in
          (match resyn with Some _ -> lv | None -> Rat.add lv Rat.one)
    in
    let l_new = Rat.max l_cur decision in
    (match bound with
    | Some b when Rat.( > ) l_new b -> raise Diverged
    | _ -> ());
    if Rat.( > ) l_new l_cur then begin
      labels.(v) <- l_new;
      true
    end
    else false
  end

(* Post-convergence pass: record an implementation for every gate. *)
let harvest ?cache opts stats nl labels phi =
  let n = Netlist.n nl in
  let impls = Array.make n None in
  let ok = ref true in
  for v = 0 to n - 1 do
    if !ok && Netlist.is_gate nl v then begin
      let target = labels.(v) in
      match kcut_test opts stats nl labels phi v ~threshold:target with
      | Some (ex, c) ->
          let cut =
            Array.of_list
              (List.map
                 (fun i ->
                   let nd = ex.Expanded.nodes.(i) in
                   (nd.Expanded.u, nd.Expanded.w))
                 c)
          in
          impls.(v) <- Some (Cut cut)
      | None -> (
          match
            if opts.resynthesize then
              resyn_test ?cache opts stats nl labels phi v ~target
            else None
          with
          | Some impl -> impls.(v) <- Some impl
          | None -> ok := false)
    end
  done;
  if !ok then Some impls else None

let run ?cache opts nl ~phi =
  Netlist.validate_exn ~k:opts.k nl;
  let n = Netlist.n nl in
  let stats = { iterations = 0; flow_tests = 0; decompositions = 0; pld_hits = 0 } in
  let labels = Array.make n Rat.zero in
  let n_gates = List.length (Netlist.gates nl) in
  (* Labels of feasible targets are bounded by the mapping depth (at most
     the gate count); exceeding the bound proves infeasibility.  This
     shortcut is part of the PLD package — the no-PLD baseline reproduces
     the pre-TurboSYN stopping criterion (quadratic iteration cap only). *)
  let bound = if opts.pld then Some (Rat.of_int (n_gates + 1)) else None in
  for v = 0 to n - 1 do
    if Netlist.is_gate nl v then labels.(v) <- Rat.one
  done;
  (* SCCs over the full graph *)
  let succ =
    let out = Array.make n [] in
    for v = 0 to n - 1 do
      Array.iter (fun (u, _) -> out.(u) <- v :: out.(u)) (Netlist.fanins nl v)
    done;
    fun v -> out.(v)
  in
  let scc = Graphs.Scc.compute ~n ~succ in
  let order = Graphs.Scc.topo_order scc in
  let feasible = ref true in
  (try
     Array.iter
       (fun c ->
         if !feasible then begin
           let members =
             Array.of_list
               (List.filter
                  (fun v -> Netlist.is_gate nl v)
                  (Array.to_list scc.Graphs.Scc.members.(c)))
           in
           let m = Array.length members in
           if m > 0 then
             if Graphs.Scc.is_trivial scc ~succ c then begin
               stats.iterations <- stats.iterations + 1;
               Obs.Counter.incr c_iterations;
               ignore (update ?cache opts stats nl labels phi bound members.(0))
             end
             else Obs.Span.time s_scc @@ fun () ->
               Array.sort Int.compare members;
               let in_scc v = scc.Graphs.Scc.comp.(v) = c in
               (* Theorem 2 of the paper: a positive loop exists iff after
                  6n iterations the SCC is totally isolated in the support
                  graph.  The test is only meaningful from 6n on (before
                  that, transient equality-supported states of feasible
                  targets can look isolated); without PLD only the
                  conservative quadratic cap applies (the pre-TurboSYN
                  stopping criterion). *)
               let pld_gate = 6 * m in
               let hard_cap = (m * m) + 64 in
               let converged = ref false in
               let iter = ref 0 in
               while (not !converged) && !feasible do
                 incr iter;
                 stats.iterations <- stats.iterations + 1;
                 Obs.Counter.incr c_iterations;
                 let changed = ref false in
                 Array.iter
                   (fun v ->
                     if update ?cache opts stats nl labels phi bound v then
                       changed := true)
                   members;
                 if not !changed then converged := true
                 else begin
                   if
                     opts.pld && !iter >= pld_gate
                     && Pld.all_isolated nl ~labels ~phi ~members ~in_scc
                   then begin
                     stats.pld_hits <- stats.pld_hits + 1;
                     feasible := false
                   end;
                   if !iter > hard_cap then begin
                     Obs.Counter.incr c_cap_exits;
                     feasible := false
                   end
                 end
               done
         end)
       order
   with Diverged ->
     Obs.Counter.incr c_divergences;
     feasible := false);
  if not !feasible then (Infeasible, stats)
  else
    match harvest ?cache opts stats nl labels phi with
    | Some impls -> (Feasible { labels; impls }, stats)
    | None ->
        (* should not happen: convergence guarantees an implementation *)
        (Infeasible, stats)

let new_cache () : resyn_cache = Hashtbl.create 512
