open Prelude
open Circuit

(* observability (doc/OBSERVABILITY.md): the label-computation inner loop —
   what each probe spends its time on and why labels move *)
let c_iterations = Obs.Counter.make "label.iterations"
let c_cut_tests = Obs.Counter.make "label.cut_tests"
let c_cut_pass = Obs.Counter.make "label.cut_test_passes"
let c_cut_fail = Obs.Counter.make "label.cut_test_fails"
let c_decomp_attempts = Obs.Counter.make "label.decomp_attempts"
let c_decomp_rescues = Obs.Counter.make "label.decomp_rescues"
let c_cache_hits = Obs.Counter.make "label.resyn_cache_hits"
let c_divergences = Obs.Counter.make "label.divergences"
let c_cap_exits = Obs.Counter.make "label.cap_exits"
let c_wpushes = Obs.Counter.make "label.worklist_pushes"
let c_wskips = Obs.Counter.make "label.worklist_skips"
let c_harvest_reuse = Obs.Counter.make "label.harvest_cut_reuses"
let c_snap_reuse = Obs.Counter.make "label.snapshot_reuses"

(* three-layer cut engine (doc/PERF.md): how each K-cut query was
   answered — enumeration pre-filter, cross-phi memo, or max-flow *)
let c_enum_hits = Obs.Counter.make "cut.enum_hits"
let c_enum_misses = Obs.Counter.make "cut.enum_misses"
let c_memo_hits = Obs.Counter.make "cut.memo_hits"
let c_memo_misses = Obs.Counter.make "cut.memo_misses"
let c_memo_stores = Obs.Counter.make "cut.memo_stores"
let s_flow_test = Obs.Span.make "label.flow_test"
let h_cut_test = Obs.Histogram.make "label.cut_test_seconds"
let h_snap_trace = Obs.Histogram.make "label.snapshot_trace_len"
let s_decomp = Obs.Span.make "label.decomp"
let s_eval = Obs.Span.make "label.resyn_eval"
let s_mincut = Obs.Span.make "label.resyn_mincut"
let s_build = Obs.Span.make "label.expand_build"
let s_cone = Obs.Span.make "label.cone_bdd"
let s_dec = Obs.Span.make "label.decompose_call"
let s_scc = Obs.Span.make "label.scc"

(* intra-phi parallel scheduler (doc/CONCURRENCY.md); all three stay 0
   under [jobs = 1] *)
let c_scc_levels = Obs.Counter.make "label.scc_levels"
let c_domain_tasks = Obs.Counter.make "label.domain_tasks"

let c_merge_conflicts = Obs.Counter.make "label.merge_conflicts"
(* ownership-invariant tripwire: counts gates claimed by two tasks of one
   run.  SCC membership partitions the gates, so any nonzero value means
   the scheduler dispatched overlapping work — a determinism bug. *)

type impl =
  | Cut of (int * int) array
  | Resyn of Decomp.Decompose.tree * (int * int) array

type engine = Sweep | Worklist

type options = {
  k : int;
  resynthesize : bool;
  cmax : int;
  exhaustive : bool;
  pld : bool;
  extra_depth : int;
  max_expansion : int;
  resyn_depth : int;
  multi_output : bool;
  full_expansion : bool;
  engine : engine;
  jobs : int;
      (* intra-phi parallelism: lanes labeling independent SCCs of one
         condensation level concurrently (doc/CONCURRENCY.md).  1 =
         sequential; > 1 only takes effect under [Worklist].  Results
         are byte-identical for every value. *)
}

let default_options ~k =
  {
    k;
    resynthesize = false;
    cmax = 15;
    exhaustive = false;
    pld = true;
    extra_depth = 3;
    max_expansion = 4000;
    resyn_depth = 2;
    multi_output = false;
    full_expansion = false;
    engine = Worklist;
    jobs = 1;
  }

type stats = {
  mutable iterations : int;
  mutable flow_tests : int;
  mutable decompositions : int;
  mutable pld_hits : int;
}

(* Label provenance (doc/AUDIT.md): which mechanism justified each gate's
   final implementation at the converged labels, captured by the harvest
   pass for the audit layer's certificate. *)
type prov_source =
  | From_cut_test  (* fresh K-feasible-cut flow test passed *)
  | From_snapshot  (* snapshot revalidation answered the test (Worklist) *)
  | From_recorded  (* iteration-recorded passing cut reused (Worklist) *)
  | From_resyn of int  (* decomposition rescue at threshold l(v) - h *)

type prov = {
  p_source : prov_source;
  p_engine : engine;
  p_cut : (int * int) array;  (* implementation inputs: (driver, regs) *)
  p_height : Rat.t;  (* realized arrival of the implementation root *)
  p_label : Rat.t;  (* converged label l(v) the height stays within *)
  p_iteration : int;  (* iteration index of the last label change; 0 if
                         the initial label survived *)
}

type outcome =
  | Feasible of {
      labels : Rat.t array;
      impls : impl option array;
      prov : prov option array;
    }
  | Infeasible

exception Diverged

(* The decomposition tree is fully determined by the cut (which fixes the
   cone function) and the ORDER of the input arrivals (the bound-set
   heuristic sorts by arrival): memoize the tree on (cut, arrival
   permutation) and re-evaluate its level against the current arrivals on
   every hit — labels drift a little each iteration but rarely change the
   order, so this caches across iterations and probes. *)
(* One memoized cone decomposition.  [tree_level ~arrivals t] only
   depends on the arrivals through max_i (arrivals.(i) + depth_i) — the
   maximum LUT-depth of each input position over its leaf occurrences is
   pure tree shape — so the depths are computed once at store time and
   every later level re-evaluation is integer arithmetic on the scaled
   arrivals (Worklist engine), with no rational normalization and no
   tree walk. *)
type cone_entry = {
  ce_tree : Decomp.Decompose.tree option;  (* None: decomposition failed *)
  ce_depths : int array;  (* per input position; -1 when absent from tree *)
  ce_const : int;  (* max depth of input-less LUT leaves; -1 when none *)
}

let cone_entry nvars tree =
  match tree with
  | None -> { ce_tree = None; ce_depths = [||]; ce_const = -1 }
  | Some t ->
      let d = Array.make nvars (-1) in
      let cmax = ref (-1) in
      let rec go depth t =
        match t with
        | Decomp.Decompose.Input i -> if depth > d.(i) then d.(i) <- depth
        | Decomp.Decompose.Lut (_, [||]) ->
            if depth > !cmax then cmax := depth
        | Decomp.Decompose.Lut (_, ch) -> Array.iter (go (depth + 1)) ch
      in
      go 0 t;
      { ce_tree = tree; ce_depths = d; ce_const = !cmax }

type resyn_cache = {
  tbl : (int * (int * int) array * int array, cone_entry) Hashtbl.t;
  lock : Mutex.t;
      (* one cache is shared by every speculative probe domain of a
         parallel ratio search; the values are pure functions of the key,
         so concurrent recomputation is benign and only the table
         structure needs guarding *)
}

let cache_find c key =
  Mutex.lock c.lock;
  let r = Hashtbl.find_opt c.tbl key in
  Mutex.unlock c.lock;
  r

let cache_store c key v =
  Mutex.lock c.lock;
  Hashtbl.replace c.tbl key v;
  Mutex.unlock c.lock

(* Scaled-integer label view (Worklist engine): with [phi = p/q], every
   label and threshold the engine manipulates has a denominator dividing
   [q] (labels start integral and every update takes maxima, sums with
   integers and subtractions of [phi * w]), so heights reduce to exact
   integer arithmetic [slab.(u) - p*w] with [slab.(u) = q * label u] —
   the expansion's internality test runs without rational
   normalization. *)
type scaled = { slab : int array; pnum : int; pden : int }

let scaled_of_rat sc r = Rat.num r * (sc.pden / Rat.den r)

(* Expansion snapshot (Worklist engine).  [Expanded.build] is a
   deterministic BFS whose every branch depends on the labels only
   through the per-node internality predicate, so the (u, w, internal)
   trace of a past build determines it completely: if every trace entry
   evaluates to the same flag under the current labels and threshold,
   rebuilding would reproduce the expansion verbatim — and with it the
   flow verdict, the passing or minimum cut (the flow is deterministic
   on an identical network) and the resynthesis candidate cuts.
   Validating a snapshot is O(trace) integer compares against the
   scaled labels, replacing expansion + network + max-flow in the
   steady state of infeasible probes, where labels rise in lock-step
   with the threshold and the trace never changes. *)
(* Recorded resynthesis candidates of one snapshot slot.  [c_complete]
   distinguishes a fully materialized candidate list from one cut short
   because the frontier cut decomposed before the lazy min cut was ever
   computed: a replay that exhausts an incomplete list cannot conclude
   the attempt failed and must fall back to the full evaluation. *)
type cands = { c_pairs : (int * int) array list; c_complete : bool }

type snap = {
  s_u : int array;  (* expansion trace: (u, w, internal) per local node *)
  s_w : int array;
  s_flag : bool array;
  s_overflow : bool;
  s_pass : (int * int) array option;  (* slot 0: the passing K-cut *)
  mutable s_cands : cands option;
      (* resynthesis candidate cuts at this slot's threshold, widest
         first, already filtered; [None] until that attempt level runs *)
}

(* Cross-phi min-cut memo: the per-gate last-passing-cut table and the
   per-gate expansion-snapshot table, made shareable across the probes
   of one ratio search.  A cut's validity as a separating cut of a
   gate's (infinite) expansion is structural — independent of labels,
   thresholds and phi — so only its width (<= K) and the heights of its
   inputs need rechecking at a new threshold, the same O(|cut|) check
   the harvest pass already applies.  A snapshot's validity check
   ([snap_valid]) likewise re-derives every trace flag under the
   current scaled labels and phi, so a snapshot that validates at a new
   probe proves the rebuild there would be verbatim identical — verdict,
   passing cut and resynthesis candidates included — making reuse exact
   at any phi.  Entries are overwritten by every fresh pass and
   invalidated by those checks, so eviction is tied to the snapshot
   validation itself rather than to any explicit policy; sharing is
   sound only where the probe sequence is deterministic (the sequential
   descent and the final run — speculative probe domains get a [None]
   memo). *)
type cut_memo = {
  m_cuts : (int * int) array option array;
  mutable m_snaps : snap option array array;
      (* sized [n] x [resyn_depth + 1] by the first Worklist run that
         adopts the memo (the constructor cannot know [resyn_depth]);
         re-sized — dropping contents — if a later run disagrees *)
}

let new_cut_memo nl =
  { m_cuts = Array.make (Netlist.n nl) None; m_snaps = [||] }

(* Everything one label run reads and scribbles on.  The arenas make the
   per-cut-test allocations (expansion vectors, flow network, BFS scratch)
   a reuse instead of a churn; [note] is the worklist engine's read-set
   probe (called once per distinct gate consulted by the current test). *)
type ctx = {
  opts : options;
  stats : stats;
  nl : Netlist.t;
  labels : Rat.t array;
  phi : Rat.t;
  cache : resyn_cache option;
  (* [None] under the [Sweep] engine: the baseline allocates per test, as
     the pre-arena engine did, so benchmarks compare against it fairly *)
  karena : Flow.Kcut.arena option;
  earena : Expanded.arena option;
  parena : Flow.Pricut.arena option;
  scaled : scaled option;
  mutable note : (int -> unit) option;
  (* last passing K-cut per gate, recorded during iteration so both the
     in-run memo check and the harvest can reuse it instead of re-running
     a fresh flow test; aliases the caller's [cut_memo] when one is
     supplied, carrying cuts across the probes of a ratio search *)
  recorded : (int * int) array option array;
  (* per-gate expansion snapshots, slot [h] for resynthesis attempt
     threshold [target - h]; slot 0 doubles as the K-cut test's *)
  snaps : snap option array array;
  (* global iteration index of each gate's last label change (0 = the
     initial label survived); reported as provenance *)
  last_change : int array;
}

let big_l ctx v =
  let labels = ctx.labels and phi = ctx.phi in
  let fanins = Netlist.fanins ctx.nl v in
  if Array.length fanins = 0 then Rat.zero (* constant gate *)
  else
    Array.fold_left
      (fun acc (u, w) -> Rat.max acc (Rat.sub labels.(u) (Rat.mul_int phi w)))
      (let u, w = fanins.(0) in
       Rat.sub labels.(u) (Rat.mul_int phi w))
      fanins

(* SeqMapII-style full expansion keeps growing the candidate region to the
   node budget instead of stopping a few levels below the threshold — the
   pre-TurboMap network construction whose cost the paper's lineage
   improved on. *)
let effective_depth opts =
  if opts.full_expansion then max_int / 2 else opts.extra_depth

let note_expansion ctx (ex : Expanded.t) =
  match ctx.note with
  | None -> ()
  | Some f -> Array.iter (fun nd -> f nd.Expanded.u) ex.Expanded.nodes

let build_expanded ctx v ~threshold =
  let internal_of =
    match ctx.scaled with
    | None -> None
    | Some sc ->
        (* internal <=> l(u) - phi*w + 1 > threshold, all scaled by q *)
        let st = scaled_of_rat sc threshold in
        Some (fun u w -> sc.slab.(u) - (sc.pnum * w) + sc.pden > st)
  in
  let ex =
    Obs.Span.time s_build (fun () ->
        Expanded.build ?arena:ctx.earena ?internal_of ctx.nl ~root:v
          ~labels:ctx.labels ~phi:ctx.phi ~threshold
          ~extra_depth:(effective_depth ctx.opts)
          ~max_nodes:ctx.opts.max_expansion)
  in
  note_expansion ctx ex;
  ex

let cut_pairs (ex : Expanded.t) c =
  Array.of_list
    (List.map
       (fun i ->
         let nd = ex.Expanded.nodes.(i) in
         (nd.Expanded.u, nd.Expanded.w))
       c)

let argsort (arrivals : Rat.t array) =
  let idx = Array.init (Array.length arrivals) Fun.id in
  Array.stable_sort (fun a b -> Rat.compare arrivals.(a) arrivals.(b)) idx;
  idx

let snap_of (ex : Expanded.t) ~pass =
  let n = Array.length ex.Expanded.nodes in
  let s_u = Array.make n 0 and s_w = Array.make n 0 in
  Array.iteri
    (fun i nd ->
      s_u.(i) <- nd.Expanded.u;
      s_w.(i) <- nd.Expanded.w)
    ex.Expanded.nodes;
  {
    s_u;
    s_w;
    (* [build] returns a fresh flags array per expansion: share, don't copy *)
    s_flag = ex.Expanded.internal;
    s_overflow = ex.Expanded.overflow;
    s_pass = pass;
    s_cands = None;
  }

(* Validate [sn] at scaled threshold [st]; on success, register the trace
   in the worklist read set (exactly the notes a rebuild would emit).
   Index 0 is the root, internal by fiat — skipped. *)
let snap_valid ctx sn ~st =
  match ctx.scaled with
  | None -> false
  | Some sc ->
      let n = Array.length sn.s_u in
      let ok = ref true in
      let i = ref 1 in
      while !ok && !i < n do
        let j = !i in
        if
          sc.slab.(sn.s_u.(j)) - (sc.pnum * sn.s_w.(j)) + sc.pden > st
          <> sn.s_flag.(j)
        then ok := false
        else incr i
      done;
      if !ok then begin
        Obs.Counter.incr c_snap_reuse;
        Obs.Histogram.observe_int h_snap_trace n;
        match ctx.note with
        | None -> ()
        | Some f -> Array.iter f sn.s_u
      end;
      !ok

let snap_slot ctx v h ~threshold =
  match ctx.scaled with
  | None -> None
  | Some sc -> (
      match ctx.snaps.(v).(h) with
      | Some sn when snap_valid ctx sn ~st:(scaled_of_rat sc threshold) ->
          Some sn
      | _ -> None)

(* Decide whether a K-cut of height <= threshold exists.  The built
   expansion is returned either way: on failure the resynthesis fallback
   starts at the same threshold and can reuse it.

   Under the [Worklist] engine with resynthesis on, the flow runs with
   the larger limit [max k cmax]: on the passing side this is
   behavior-identical ([max_flow ~limit] only stops early once the flow
   exceeds the limit, so a flow of at most [k] never sees the
   difference), and on the failing side the continued run IS the
   candidate min cut the resynthesis fallback would otherwise recompute
   from scratch at the same threshold — returned as the third component
   ([None] when not precomputed, [Some mc] when it is). *)
let kcut_test ctx v ~threshold =
  ctx.stats.flow_tests <- ctx.stats.flow_tests + 1;
  Obs.Counter.incr c_cut_tests;
  let k = ctx.opts.k in
  let fast = ctx.opts.engine = Worklist in
  let deep = fast && ctx.opts.resynthesize in
  let kreq = if deep then max k ctx.opts.cmax else k in
  let t_start = if Obs.enabled () then Prelude.Timer.wall () else 0. in
  let ex, pass, mc0 =
    Obs.Span.time s_flow_test (fun () ->
        let ex = build_expanded ctx v ~threshold in
        if ex.Expanded.overflow then (ex, None, None)
        else
          (* a valid frontier of width <= K is itself a witness cut of the
             expansion, so the max flow is at most K and the flow verdict
             is a foregone pass — skip the network entirely *)
          let witness = if fast then Expanded.frontier_witness ex ~k else None in
          match witness with
          | Some fr -> (ex, Some fr, None)
          | None -> (
              let spec = Expanded.kcut_spec ex in
              (* priority-cut pre-filter (doc/PERF.md): an enumerated
                 witness or a proven infeasibility answers the query
                 without building a flow network.  Skipped entirely
                 under deep resynthesis: there a failing test must run
                 the flow anyway for its canonical min cut (the resyn
                 candidate), and a passing one is all but always caught
                 by the frontier witness above — measured on the MCNC
                 sweep the enumeration answered none of the deep-mode
                 queries while costing more than the flows it shadowed. *)
              let attempted = fast && not deep in
              let enum =
                if attempted then Flow.Pricut.decide ?arena:ctx.parena spec ~k
                else Flow.Pricut.Unknown
              in
              match enum with
              | Flow.Pricut.Cut c ->
                  Obs.Counter.incr c_enum_hits;
                  (ex, Some c, None)
              | Flow.Pricut.Exceeds when not deep ->
                  Obs.Counter.incr c_enum_hits;
                  (ex, None, None)
              | Flow.Pricut.Exceeds | Flow.Pricut.Unknown -> (
                  (* a skipped enumeration (deep mode) is not a miss *)
                  if attempted then Obs.Counter.incr c_enum_misses;
                  match Flow.Kcut.find ?arena:ctx.karena spec ~k:kreq with
                  | Flow.Kcut.Cut c when List.length c <= k -> (ex, Some c, None)
                  | Flow.Kcut.Cut c -> (ex, None, Some (Some c))
                  | Flow.Kcut.Exceeds ->
                      (ex, None, if deep then Some None else None))))
  in
  if Obs.enabled () then
    Obs.Histogram.observe h_cut_test (Prelude.Timer.wall () -. t_start);
  let pass_pairs = Option.map (cut_pairs ex) pass in
  (match pass with
  | Some _ -> Obs.Counter.incr c_cut_pass
  | None -> Obs.Counter.incr c_cut_fail);
  if fast then ctx.snaps.(v).(0) <- Some (snap_of ex ~pass:pass_pairs);
  (ex, pass_pairs, mc0)

(* TurboSYN sequential functional decomposition at lowered thresholds.
   [ex0], when given, is the expansion the failed cut test just built at
   [target] — the attempt-0 threshold — so the fast path starts from it
   instead of rebuilding; [mc0] is that test's precomputed candidate min
   cut of the same expansion; [snap0] is the validated slot-0 snapshot
   when the cut test itself was answered from one (then no expansion
   exists and attempt 0 evaluates the recorded candidate cuts).  The
   fast paths are gated on the [Worklist] engine so the [Sweep]
   baseline reproduces the original work. *)
let resyn_test ?ex0 ?mc0 ?snap0 ctx v ~target =
  let opts = ctx.opts and labels = ctx.labels and phi = ctx.phi in
  let fast = opts.engine = Worklist in
  (* Evaluate one candidate cut given as (u, w) pairs.  [cone], when
     available, computes the cone's decomposition on a cache miss;
     without it a miss answers [`Miss] and the caller falls back to the
     full rebuild (rare: the cache hits on almost every evaluation). *)
  let starget =
    match ctx.scaled with
    | Some sc -> scaled_of_rat sc target
    | None -> 0
  in
  let decompose_miss ~cone key inputs arrivals =
    match cone with
    | None -> None
    | Some build_cone ->
        ctx.stats.decompositions <- ctx.stats.decompositions + 1;
        let computed = build_cone ~arrivals in
        let entry = cone_entry (Array.length inputs) computed in
        (match ctx.cache with
        | Some c -> cache_store c key entry
        | None -> ());
        Some entry
  in
  let eval_candidate ~cone inputs =
   Obs.Span.time s_eval (fun () ->
    match ctx.scaled with
    | Some sc -> (
        (* scaled fast path (Worklist): the arrivals, their sort order
           (part of the cache key) and the level test against [target]
           are exact integer arithmetic on [slab]; rational arrivals are
           only materialized on a cache miss, for the decomposer *)
        let n = Array.length inputs in
        let sarr = Array.make n 0 in
        for i = 0 to n - 1 do
          let u, w = inputs.(i) in
          sarr.(i) <- sc.slab.(u) - (sc.pnum * w)
        done;
        let perm = Array.init n Fun.id in
        Array.stable_sort (fun a b -> Int.compare sarr.(a) sarr.(b)) perm;
        (* the root is part of the key: the same cut pairs under a
           different root denote a different cone function *)
        let key = (v, inputs, perm) in
        let entry =
          match
            match ctx.cache with
            | Some c -> cache_find c key
            | None -> None
          with
          | Some e ->
              Obs.Counter.incr c_cache_hits;
              Some e
          | None ->
              let arrivals =
                Array.map
                  (fun (u, w) -> Rat.sub labels.(u) (Rat.mul_int phi w))
                  inputs
              in
              decompose_miss ~cone key inputs arrivals
        in
        match entry with
        | None -> `Miss
        | Some { ce_tree = None; _ } -> `No
        | Some { ce_tree = Some t; ce_depths; ce_const } ->
            let lvl = ref (if ce_const >= 0 then ce_const * sc.pden else min_int) in
            Array.iteri
              (fun i di ->
                if di >= 0 then begin
                  let c = sarr.(i) + (di * sc.pden) in
                  if c > !lvl then lvl := c
                end)
              ce_depths;
            if !lvl <= starget then `Impl (Resyn (t, inputs)) else `No)
    | None -> (
        (* Sweep baseline: rational arrivals and the level walk, as the
           seed engine evaluated them *)
        let arrivals =
          Array.map
            (fun (u, w) -> Rat.sub labels.(u) (Rat.mul_int phi w))
            inputs
        in
        let key = (v, inputs, argsort arrivals) in
        let entry =
          match
            match ctx.cache with
            | Some c -> cache_find c key
            | None -> None
          with
          | Some e ->
              Obs.Counter.incr c_cache_hits;
              Some e
          | None -> decompose_miss ~cone key inputs arrivals
        in
        match entry with
        | None -> `Miss
        | Some { ce_tree = Some t; _ }
          when Rat.( <= ) (Decomp.Decompose.tree_level ~arrivals t) target ->
            `Impl (Resyn (t, inputs))
        | Some _ -> `No))
  in
  let rec attempt h =
    if h > opts.resyn_depth then None
    else
      let threshold = Rat.sub target (Rat.of_int h) in
      (* full evaluation: build (or adopt) the expansion at this level,
         derive the candidate cuts, record them in the snapshot slot *)
      let full () =
        let ex =
          match ex0 with
          | Some ex when h = 0 && fast -> ex
          | _ -> build_expanded ctx v ~threshold
        in
        if ex.Expanded.overflow then begin
          if fast && h > 0 then
            ctx.snaps.(v).(h) <- Some (snap_of ex ~pass:None);
          attempt (h + 1)
        end
        else begin
          (* candidate cuts, widest first: the frontier cut gives the
             decomposition the most room (it is what FlowSYN sees at a
             block boundary); the minimum cut keeps the function narrow *)
          let frontier = Expanded.frontier_cut ex in
          let candidate c =
            if c <> [] && List.length c <= opts.cmax then
              Some (c, cut_pairs ex c)
            else None
          in
          let min_candidate () =
           Obs.Span.time s_mincut (fun () ->
            let mc =
              match mc0 with
              | Some m when h = 0 && fast -> m
              | _ ->
                  (* cuts wider than cmax are discarded by [candidate],
                     so capping the flow at cmax is behavior-identical
                     and skips the expensive part of wide min-cut
                     computations *)
                  if fast then
                    match
                      Flow.Kcut.find ?arena:ctx.karena (Expanded.kcut_spec ex)
                        ~k:opts.cmax
                    with
                    | Flow.Kcut.Cut c -> Some c
                    | Flow.Kcut.Exceeds -> None
                  else
                    Flow.Kcut.min_cut ?arena:ctx.karena (Expanded.kcut_spec ex)
            in
            match mc with Some c when c <> frontier -> candidate c | _ -> None)
          in
          let eval_cut (c, inputs) =
            eval_candidate inputs
              ~cone:
                (Some
                   (fun ~arrivals ->
                     let man = Bdd.new_man () in
                     let vars = Array.init (Array.length inputs) Fun.id in
                     let f = Obs.Span.time s_cone (fun () -> Expanded.cone_bdd man ctx.nl ex ~cut:c ~vars) in
                     Option.map
                       (fun r -> r.Decomp.Decompose.tree)
                       (Obs.Span.time s_dec (fun () -> Decomp.Decompose.decompose ~exhaustive:opts.exhaustive
                          ~multi:opts.multi_output man ~f ~vars ~arrivals
                          ~k:opts.k))))
          in
          if not fast then begin
            (* Sweep baseline: eager candidates, as the seed engine
               computed them (uncapped min cut, then the trial loop) *)
            let candidates =
              List.filter_map Fun.id [ candidate frontier; min_candidate () ]
            in
            let rec try_cuts = function
              | [] -> attempt (h + 1)
              | cand :: rest -> (
                  match eval_cut cand with
                  | `Impl impl -> Some (impl, h)
                  | _ -> try_cuts rest)
            in
            try_cuts candidates
          end
          else begin
            (* Lazy min cut (doc/PERF.md): evaluate the frontier cut
               first and only materialize the min cut — a fresh capped
               flow at every h >= 1 — when the frontier fails to
               decompose, which the resynthesis cache makes the uncommon
               case.  The trial order and every verdict are identical to
               the eager loop; only unused work is skipped.  The
               snapshot records whether the candidate list was completed
               so a replay that exhausts it knows the attempt really
               failed (complete) or must re-evaluate (incomplete). *)
            let record pairs ~complete =
              let cs = Some { c_pairs = pairs; c_complete = complete } in
              match ctx.snaps.(v).(h) with
              | Some sn when h = 0 -> sn.s_cands <- cs
              | _ ->
                  let sn = snap_of ex ~pass:None in
                  sn.s_cands <- cs;
                  ctx.snaps.(v).(h) <- Some sn
            in
            let try_min ~tried =
              match min_candidate () with
              | Some ((_, minputs) as mc) -> (
                  record (tried @ [ minputs ]) ~complete:true;
                  match eval_cut mc with
                  | `Impl impl -> Some (impl, h)
                  | _ -> attempt (h + 1))
              | None ->
                  record tried ~complete:true;
                  attempt (h + 1)
            in
            match candidate frontier with
            | Some ((_, finputs) as fc) -> (
                match eval_cut fc with
                | `Impl impl ->
                    record [ finputs ] ~complete:false;
                    Some (impl, h)
                | _ -> try_min ~tried:[ finputs ])
            | None -> try_min ~tried:[]
          end
        end
      in
      let snapped =
        if not fast then None
        else if h = 0 then snap0
        else snap_slot ctx v h ~threshold
      in
      match snapped with
      | Some sn ->
          if sn.s_overflow then attempt (h + 1)
          else (
            match sn.s_cands with
            | None -> full ()
            | Some { c_pairs; c_complete } ->
                let rec try_pairs = function
                  | [] -> `No
                  | inputs :: rest -> (
                      match eval_candidate ~cone:None inputs with
                      | `Impl impl -> `Impl impl
                      | `No -> try_pairs rest
                      | `Miss -> `Miss)
                in
                (match try_pairs c_pairs with
                | `Impl impl -> Some (impl, h)
                | `No ->
                    (* an incomplete list ends where a past frontier
                       success cut evaluation short; exhausting it
                       proves nothing about the unmaterialized min cut *)
                    if c_complete then attempt (h + 1) else full ()
                | `Miss -> full ()))
      | None -> full ()
  in
  Obs.Counter.incr c_decomp_attempts;
  let result = Obs.Span.time s_decomp (fun () -> attempt 0) in
  (match result with Some _ -> Obs.Counter.incr c_decomp_rescues | None -> ());
  result

(* Memo layer of the cut engine: is the gate's remembered passing cut
   still a witness at [threshold]?  Validity as a separating cut is
   structural (all root-to-source paths cross it, at any phi), so only
   the width bound and the input heights are rechecked — scaled-integer
   compares, no expansion, no network.  On a hit the cut's inputs are
   registered in the worklist read set: the decision stays [lv] exactly
   while they hold still, so the no-op-skipping argument that makes the
   worklist trajectory match the sweep's is unaffected. *)
let memo_hit ctx v ~threshold =
  match ctx.scaled with
  | None -> None
  | Some sc -> (
      match ctx.recorded.(v) with
      | None -> None
      | Some cut ->
          let st = scaled_of_rat sc threshold in
          if
            Array.length cut <= ctx.opts.k
            && Array.for_all
                 (fun (u, w) ->
                   sc.slab.(u) - (sc.pnum * w) + sc.pden <= st)
                 cut
          then begin
            Obs.Counter.incr c_memo_hits;
            (match ctx.note with
            | None -> ()
            | Some f -> Array.iter (fun (u, _) -> f u) cut);
            Some cut
          end
          else begin
            Obs.Counter.incr c_memo_misses;
            None
          end)

(* One label update; returns true if the label changed. *)
let update ctx bound v =
  let labels = ctx.labels in
  (match ctx.note with
  | None -> ()
  | Some f -> Array.iter (fun (u, _) -> f u) (Netlist.fanins ctx.nl v));
  let l_cur = labels.(v) in
  let lv = big_l ctx v in
  if Rat.( <= ) (Rat.add lv Rat.one) l_cur then false
  else begin
    let decision =
      match memo_hit ctx v ~threshold:lv with
      | Some _ -> lv (* the witness is already the recorded entry *)
      | None -> (
      match snap_slot ctx v 0 ~threshold:lv with
      | Some sn -> (
          (* the last test's expansion would rebuild identically: its
             verdict stands without building or flowing anything *)
          match sn.s_pass with
          | Some pairs ->
              ctx.recorded.(v) <- Some pairs;
              Obs.Counter.incr c_memo_stores;
              lv
          | None ->
              let resyn =
                if ctx.opts.resynthesize then
                  resyn_test ~snap0:sn ctx v ~target:lv
                else None
              in
              (match resyn with Some _ -> lv | None -> Rat.add lv Rat.one))
      | None -> (
          match kcut_test ctx v ~threshold:lv with
          | _, Some pairs, _ ->
              if ctx.opts.engine = Worklist then begin
                ctx.recorded.(v) <- Some pairs;
                Obs.Counter.incr c_memo_stores
              end;
              lv
          | ex, None, mc0 ->
              let resyn =
                if ctx.opts.resynthesize then
                  resyn_test ~ex0:ex ?mc0 ctx v ~target:lv
                else None
              in
              (match resyn with Some _ -> lv | None -> Rat.add lv Rat.one)))
    in
    let l_new = Rat.max l_cur decision in
    (match bound with
    | Some b when Rat.( > ) l_new b -> raise Diverged
    | _ -> ());
    if Rat.( > ) l_new l_cur then begin
      labels.(v) <- l_new;
      ctx.last_change.(v) <- ctx.stats.iterations;
      (match ctx.scaled with
      | Some sc -> sc.slab.(v) <- scaled_of_rat sc l_new
      | None -> ());
      true
    end
    else false
  end

(* Post-convergence pass: record an implementation for every gate, reusing
   the last passing cut found during iteration when it is still valid
   under the converged labels (height within the label, width within K).
   Alongside each implementation it records its provenance — which
   mechanism justified it — for the audit layer.

   [make_harvester] returns the per-gate step so the parallel path can
   chunk gates across lanes: each gate's harvest reads only converged
   labels and its own recorded/snapshot state and writes only its own
   [impls]/[prov]/[snaps] slots, so gates are independent. *)
let make_harvester ctx ~impls ~prov =
  let { nl; labels; phi; opts; _ } = ctx in
  let arrival (u, w) = Rat.sub labels.(u) (Rat.mul_int phi w) in
  let impl_height = function
    | Cut cut ->
        if Array.length cut = 0 then Rat.one
        else
          Rat.add Rat.one
            (Array.fold_left
               (fun acc p -> Rat.max acc (arrival p))
               (arrival cut.(0)) cut)
    | Resyn (t, inputs) ->
        Decomp.Decompose.tree_level ~arrivals:(Array.map arrival inputs) t
  in
  let set v impl source =
    impls.(v) <- Some impl;
    prov.(v) <-
      Some
        {
          p_source = source;
          p_engine = opts.engine;
          p_cut = (match impl with Cut c -> c | Resyn (_, c) -> c);
          p_height = impl_height impl;
          p_label = labels.(v);
          p_iteration = ctx.last_change.(v);
        }
  in
  fun v ->
    if not (Netlist.is_gate nl v) then true
    else begin
      let target = labels.(v) in
      let reused =
        match ctx.recorded.(v) with
        | Some cut
          when Array.length cut <= opts.k
               && Array.for_all
                    (fun (u, w) ->
                      Rat.( <= )
                        (Rat.add
                           (Rat.sub labels.(u) (Rat.mul_int phi w))
                           Rat.one)
                        target)
                    cut ->
            Obs.Counter.incr c_harvest_reuse;
            Some cut
        | _ -> None
      in
      match reused with
      | Some cut ->
          set v (Cut cut) From_recorded;
          true
      | None -> (
          let fallback ?ex0 ?mc0 ?snap0 () =
            match
              if opts.resynthesize then resyn_test ?ex0 ?mc0 ?snap0 ctx v ~target
              else None
            with
            | Some (impl, h) ->
                set v impl (From_resyn h);
                true
            | None -> false
          in
          match snap_slot ctx v 0 ~threshold:target with
          | Some sn -> (
              match sn.s_pass with
              | Some pairs ->
                  set v (Cut pairs) From_snapshot;
                  true
              | None -> fallback ~snap0:sn ())
          | None -> (
              match kcut_test ctx v ~threshold:target with
              | _, Some pairs, _ ->
                  set v (Cut pairs) From_cut_test;
                  true
              | ex, None, mc0 -> fallback ~ex0:ex ?mc0 ()))
    end

let harvest ctx =
  let n = Netlist.n ctx.nl in
  let impls = Array.make n None in
  let prov = Array.make n None in
  let step = make_harvester ctx ~impls ~prov in
  let ok = ref true in
  for v = 0 to n - 1 do
    if !ok then ok := step v
  done;
  if !ok then Some (impls, prov) else None

(* ------------------------------------------------------------------ *)
(* Worklist scheduling state: dirty flags for the current and the next  *)
(* round, and per-gate dependents registered from the read set of each  *)
(* test (every gate whose label the test consulted — the expansion      *)
(* nodes, which include the direct fanins and, through loop unrolling,  *)
(* the tested gate itself).  A node is re-tested only when a registered *)
(* dependency's label actually changed, so the label trajectory is      *)
(* identical to the sweep engine's round for round.                     *)
(* ------------------------------------------------------------------ *)

type worklist = {
  pos : int array; (* node -> index in the current SCC's sorted members, -1 *)
  in_round : bool array;
  next_round : bool array;
  test_gen : int array; (* node -> generation of its latest test *)
  mutable dep_v : int array array; (* node -> dependents (gate ids) *)
  mutable dep_g : int array array; (* node -> generation at registration *)
  dep_len : int array;
  note_stamp : int array; (* per-test dedup of read-set notes *)
  mutable note_tick : int;
}

let new_worklist n =
  {
    pos = Array.make n (-1);
    in_round = Array.make n false;
    next_round = Array.make n false;
    test_gen = Array.make n 0;
    dep_v = Array.make n [||];
    dep_g = Array.make n [||];
    dep_len = Array.make n 0;
    note_stamp = Array.make n 0;
    note_tick = 0;
  }

let dep_append wl u v gen =
  let len = wl.dep_len.(u) in
  if len >= Array.length wl.dep_v.(u) then begin
    let cap = max 8 (2 * len) in
    let grow arr =
      let b = Array.make cap 0 in
      Array.blit arr 0 b 0 len;
      b
    in
    wl.dep_v.(u) <- grow wl.dep_v.(u);
    wl.dep_g.(u) <- grow wl.dep_g.(u)
  end;
  wl.dep_v.(u).(len) <- v;
  wl.dep_g.(u).(len) <- gen;
  wl.dep_len.(u) <- len + 1

(* Mark every live dependent of [u] dirty: ahead of the cursor in this
   round, or for the next round otherwise.  Entries whose generation is
   stale (the dependent re-tested since) are compacted away in place. *)
let dirty_dependents wl u ~cursor =
  let dv = wl.dep_v.(u) and dg = wl.dep_g.(u) in
  let len = ref wl.dep_len.(u) in
  let i = ref 0 in
  while !i < !len do
    let v = dv.(!i) in
    if dg.(!i) <> wl.test_gen.(v) then begin
      (* stale registration: drop by swapping the last entry in *)
      decr len;
      dv.(!i) <- dv.(!len);
      dg.(!i) <- dg.(!len)
    end
    else begin
      let p = wl.pos.(v) in
      if p >= 0 then
        if p > cursor then begin
          if not wl.in_round.(v) then begin
            wl.in_round.(v) <- true;
            Obs.Counter.incr c_wpushes
          end
        end
        else if not wl.next_round.(v) then begin
          wl.next_round.(v) <- true;
          Obs.Counter.incr c_wpushes
        end;
      incr i
    end
  done;
  wl.dep_len.(u) <- !len

(* One nontrivial SCC, worklist scheduling.  Rounds correspond one-to-one
   to the sweep engine's iterations: a round processes (in the same sorted
   member order) exactly the members whose read set changed, mid-round
   changes pull members at later positions into the same round, and the
   PLD / cap checks run on the same round boundaries — so labels,
   iteration counts and infeasibility verdicts match the sweep engine
   exactly while skipping the no-op re-tests. *)
let run_scc_worklist ctx wl bound members ~in_scc ~(feasible : bool ref) =
  let stats = ctx.stats in
  let m = Array.length members in
  Array.iteri (fun i v -> wl.pos.(v) <- i) members;
  Array.iter (fun v -> wl.in_round.(v) <- true) members;
  let pld_gate = 6 * m in
  let hard_cap = (m * m) + 64 in
  let converged = ref false in
  let iter = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      (* the pos/flag arrays are shared across SCCs: scrub our members *)
      ctx.note <- None;
      Array.iter
        (fun v ->
          wl.pos.(v) <- -1;
          wl.in_round.(v) <- false;
          wl.next_round.(v) <- false)
        members)
  @@ fun () ->
  while (not !converged) && !feasible do
    incr iter;
    stats.iterations <- stats.iterations + 1;
    Obs.Counter.incr c_iterations;
    let changed = ref false in
    let processed = ref 0 in
    Array.iteri
      (fun idx v ->
        if wl.in_round.(v) then begin
          wl.in_round.(v) <- false;
          incr processed;
          wl.test_gen.(v) <- wl.test_gen.(v) + 1;
          wl.note_tick <- wl.note_tick + 1;
          let tick = wl.note_tick in
          let gen = wl.test_gen.(v) in
          (* register [v] as a dependent of every distinct node its test
             consults; nodes of earlier SCCs (pos < 0) are final, so only
             current members matter *)
          ctx.note <-
            Some
              (fun u ->
                if wl.pos.(u) >= 0 && wl.note_stamp.(u) <> tick then begin
                  wl.note_stamp.(u) <- tick;
                  dep_append wl u v gen
                end);
          let did_change = update ctx bound v in
          ctx.note <- None;
          if did_change then begin
            changed := true;
            dirty_dependents wl v ~cursor:idx
          end
        end)
      members;
    Obs.Counter.add c_wskips (m - !processed);
    if not !changed then converged := true
    else begin
      if
        ctx.opts.pld && !iter >= pld_gate
        && Pld.all_isolated ctx.nl ~labels:ctx.labels ~phi:ctx.phi ~members
             ~in_scc
      then begin
        stats.pld_hits <- stats.pld_hits + 1;
        feasible := false
      end;
      if !iter > hard_cap then begin
        Obs.Counter.incr c_cap_exits;
        feasible := false
      end;
      (* promote next-round marks *)
      Array.iter
        (fun v ->
          if wl.next_round.(v) then begin
            wl.next_round.(v) <- false;
            wl.in_round.(v) <- true
          end)
        members
    end
  done

(* One nontrivial SCC, all-members sweep (the pre-worklist engine, kept as
   a baseline and for the equivalence tests). *)
let run_scc_sweep ctx bound members ~in_scc ~(feasible : bool ref) =
  let stats = ctx.stats in
  let m = Array.length members in
  let pld_gate = 6 * m in
  let hard_cap = (m * m) + 64 in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !feasible do
    incr iter;
    stats.iterations <- stats.iterations + 1;
    Obs.Counter.incr c_iterations;
    let changed = ref false in
    Array.iter
      (fun v -> if update ctx bound v then changed := true)
      members;
    if not !changed then converged := true
    else begin
      if
        ctx.opts.pld && !iter >= pld_gate
        && Pld.all_isolated ctx.nl ~labels:ctx.labels ~phi:ctx.phi ~members
             ~in_scc
      then begin
        stats.pld_hits <- stats.pld_hits + 1;
        feasible := false
      end;
      if !iter > hard_cap then begin
        Obs.Counter.incr c_cap_exits;
        feasible := false
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Intra-phi parallel scheduler (doc/CONCURRENCY.md).                   *)
(*                                                                      *)
(* SCCs of one condensation level are pairwise unreachable, so their    *)
(* label computations read only finalized upstream labels (published by *)
(* the previous level's barrier) and write only their own members'      *)
(* state: levels run as pool batches with no intra-level communication  *)
(* and a barrier between levels.  Each lane owns its arenas and         *)
(* worklist; per-task stats plus a sequential-order fixup reproduce the *)
(* sequential engine's global iteration numbering, so labels, phi       *)
(* verdicts, implementations and provenance are byte-identical for      *)
(* every [jobs] value.  The harvest pass chunks gates the same way.     *)
(* ------------------------------------------------------------------ *)

let fresh_stats () =
  { iterations = 0; flow_tests = 0; decompositions = 0; pld_hits = 0 }

let merge_stats ~into:(a : stats) (b : stats) =
  a.iterations <- a.iterations + b.iterations;
  a.flow_tests <- a.flow_tests + b.flow_tests;
  a.decompositions <- a.decompositions + b.decompositions;
  a.pld_hits <- a.pld_hits + b.pld_hits

let run_parallel ctx pool ~bound ~succ ~(scc : Graphs.Scc.t) =
  let nl = ctx.nl and stats = ctx.stats in
  let n = Netlist.n nl in
  let lanes = Pool.size pool in
  (* one set of scratch resources per lane: arenas and worklist are owned
     by whatever task is running on the lane (tasks on one lane run
     sequentially); labels, scaled slab, recorded cuts, snapshots and
     last_change are shared — disjoint per-gate writes under SCC
     ownership *)
  let lane_ctx =
    Array.init lanes (fun i ->
        if i = 0 then ctx
        else
          {
            ctx with
            karena = Some (Flow.Kcut.new_arena ());
            earena = Some (Expanded.new_arena ());
            parena = Some (Flow.Pricut.new_arena ());
            note = None;
          })
  in
  let lane_wl = Array.init lanes (fun _ -> new_worklist n) in
  (* per-lane observability shards: the Obs registries are global and
     unsynchronized, so worker-side hooks buffer locally and merge at
     the end of the run, in lane order *)
  let shards =
    if Obs.enabled () && lanes > 1 then
      Some (Array.init lanes (fun _ -> Obs.Shard.create ()))
    else None
  in
  let in_shard worker f =
    match shards with
    | None -> f ()
    | Some s -> Obs.Shard.wrap s.(worker) f
  in
  Fun.protect
    ~finally:(fun () ->
      match shards with
      | None -> ()
      | Some s ->
          Array.iter
            (fun sh ->
              Obs.Shard.merge sh;
              Obs.Shard.release sh)
            s)
  @@ fun () ->
  (* levels of the condensation DAG; comps of one level bucketed in the
     sequential processing order (descending comp id) so the stats merge
     and iteration fixup below replay the sequential numbering *)
  let levels = Graphs.Scc.levels scc ~succ in
  let nlevels = Array.fold_left (fun a l -> max a (l + 1)) 0 levels in
  let buckets = Array.make (max nlevels 1) [] in
  for c = 0 to scc.Graphs.Scc.count - 1 do
    buckets.(levels.(c)) <- c :: buckets.(levels.(c))
  done;
  let comp_stats : stats option array = Array.make scc.Graphs.Scc.count None in
  let comp_infeasible = Array.make scc.Graphs.Scc.count false in
  let comp_diverged = Array.make scc.Graphs.Scc.count false in
  let claimed = Array.make n (-1) in
  let run_comp worker c =
    let members =
      Array.of_list
        (List.filter
           (fun v -> Netlist.is_gate nl v)
           (Array.to_list scc.Graphs.Scc.members.(c)))
    in
    if Array.length members > 0 then begin
      Array.iter
        (fun v ->
          if claimed.(v) >= 0 then Obs.Counter.incr c_merge_conflicts
          else claimed.(v) <- c)
        members;
      let st = fresh_stats () in
      comp_stats.(c) <- Some st;
      let tctx = { (lane_ctx.(worker)) with stats = st } in
      let feasible = ref true in
      (try
         if Graphs.Scc.is_trivial scc ~succ c then begin
           st.iterations <- 1;
           Obs.Counter.incr c_iterations;
           ignore (update tctx bound members.(0))
         end
         else
           Obs.Span.time s_scc @@ fun () ->
           Array.sort Int.compare members;
           let in_scc v = scc.Graphs.Scc.comp.(v) = c in
           run_scc_worklist tctx lane_wl.(worker) bound members ~in_scc
             ~feasible
       with Diverged ->
         comp_diverged.(c) <- true;
         feasible := false);
      if not !feasible then comp_infeasible.(c) <- true
    end
  in
  let feasible = ref true in
  let level = ref 0 in
  while !feasible && !level < nlevels do
    let comps = Array.of_list buckets.(!level) in
    Obs.Counter.incr c_scc_levels;
    Obs.Counter.add c_domain_tasks (Array.length comps);
    Pool.run pool ~n:(Array.length comps) (fun worker i ->
        in_shard worker (fun () -> run_comp worker comps.(i)));
    (* level barrier: the infeasibility decision is taken here, once per
       level, so it depends only on the level's results — never on task
       scheduling *)
    Array.iter (fun c -> if comp_infeasible.(c) then feasible := false) comps;
    incr level
  done;
  if Array.exists Fun.id comp_diverged then Obs.Counter.incr c_divergences;
  (* merge per-task stats and rebase each gate's last-change round from
     its task-local numbering to the sequential engine's global one: in
     sequential comp order, each comp's rounds follow every earlier
     comp's, so the offset is a running prefix sum of iteration counts *)
  let offset = ref 0 in
  for c = scc.Graphs.Scc.count - 1 downto 0 do
    match comp_stats.(c) with
    | None -> ()
    | Some st ->
        if st.iterations > 0 then
          Array.iter
            (fun v ->
              if ctx.last_change.(v) > 0 then
                ctx.last_change.(v) <- ctx.last_change.(v) + !offset)
            scc.Graphs.Scc.members.(c);
        offset := !offset + st.iterations;
        merge_stats ~into:stats st
  done;
  if not !feasible then (Infeasible, stats)
  else begin
    (* parallel harvest: gates are independent post-convergence, so fixed
       contiguous chunks fan out across the lanes; chunking never affects
       results, only load balance *)
    let impls = Array.make n None in
    let prov = Array.make n None in
    let nchunks = if n = 0 then 0 else min n (4 * lanes) in
    let chunk_ok = Array.make (max nchunks 1) true in
    let chunk_stats : stats option array = Array.make (max nchunks 1) None in
    Obs.Counter.add c_domain_tasks nchunks;
    Pool.run pool ~n:nchunks (fun worker ci ->
        in_shard worker (fun () ->
            let st = fresh_stats () in
            chunk_stats.(ci) <- Some st;
            let tctx = { (lane_ctx.(worker)) with stats = st } in
            let step = make_harvester tctx ~impls ~prov in
            let lo = ci * n / nchunks and hi = (ci + 1) * n / nchunks in
            let ok = ref true in
            for v = lo to hi - 1 do
              if !ok then ok := step v
            done;
            chunk_ok.(ci) <- !ok));
    Array.iter
      (function Some st -> merge_stats ~into:stats st | None -> ())
      chunk_stats;
    if Array.for_all Fun.id chunk_ok then
      (Feasible { labels = ctx.labels; impls; prov }, stats)
    else
      (* should not happen: convergence guarantees an implementation *)
      (Infeasible, stats)
  end

let run ?cache ?cutmemo ?pool opts nl ~phi =
  Netlist.validate_exn ~k:opts.k nl;
  let n = Netlist.n nl in
  let stats = { iterations = 0; flow_tests = 0; decompositions = 0; pld_hits = 0 } in
  let labels = Array.make n Rat.zero in
  for v = 0 to n - 1 do
    if Netlist.is_gate nl v then labels.(v) <- Rat.one
  done;
  let arenas = opts.engine = Worklist in
  let recorded =
    (* the cross-phi memo is the recorded-cut table shared across runs;
       only the Worklist engine writes or validates it, so handing one to
       a Sweep run is a harmless no-op *)
    match cutmemo with
    | Some m when Array.length m.m_cuts = n -> m.m_cuts
    | Some _ -> invalid_arg "Label_engine.run: cut memo sized for another netlist"
    | None -> Array.make n None
  in
  let ctx =
    {
      opts;
      stats;
      nl;
      labels;
      phi;
      cache;
      karena = (if arenas then Some (Flow.Kcut.new_arena ()) else None);
      earena = (if arenas then Some (Expanded.new_arena ()) else None);
      parena = (if arenas then Some (Flow.Pricut.new_arena ()) else None);
      scaled =
        (if arenas then
           let pden = Rat.den phi in
           Some
             {
               slab = Array.map (fun r -> Rat.num r * pden) labels;
               pnum = Rat.num phi;
               pden;
             }
         else None);
      note = None;
      recorded;
      last_change = Array.make n 0;
      snaps =
        (* like [recorded], the snapshot table aliases the caller's memo
           so validated expansions carry across the probes of a ratio
           search; [snap_slot] revalidates under the current phi before
           any entry is trusted *)
        (if arenas then
           let fresh () =
             Array.init n (fun _ -> Array.make (opts.resyn_depth + 1) None)
           in
           match cutmemo with
           | Some m ->
               if
                 Array.length m.m_snaps <> n
                 || (n > 0 && Array.length m.m_snaps.(0) <> opts.resyn_depth + 1)
               then m.m_snaps <- fresh ();
               m.m_snaps
           | None -> fresh ()
         else [||]);
    }
  in
  let n_gates = List.length (Netlist.gates nl) in
  (* Labels of feasible targets are bounded by the mapping depth (at most
     the gate count); exceeding the bound proves infeasibility.  This
     shortcut is part of the PLD package — the no-PLD baseline reproduces
     the pre-TurboSYN stopping criterion (quadratic iteration cap only). *)
  let bound = if opts.pld then Some (Rat.of_int (n_gates + 1)) else None in
  (* SCCs over the full graph *)
  let succ =
    let out = Array.make n [] in
    for v = 0 to n - 1 do
      Array.iter (fun (u, _) -> out.(u) <- v :: out.(u)) (Netlist.fanins nl v)
    done;
    fun v -> out.(v)
  in
  let scc = Graphs.Scc.compute ~n ~succ in
  let sequential () =
    let order = Graphs.Scc.topo_order scc in
    let feasible = ref true in
    let wl =
      match opts.engine with Worklist -> Some (new_worklist n) | Sweep -> None
    in
    (try
       Array.iter
         (fun c ->
           if !feasible then begin
             let members =
               Array.of_list
                 (List.filter
                    (fun v -> Netlist.is_gate nl v)
                    (Array.to_list scc.Graphs.Scc.members.(c)))
             in
             let m = Array.length members in
             if m > 0 then
               if Graphs.Scc.is_trivial scc ~succ c then begin
                 stats.iterations <- stats.iterations + 1;
                 Obs.Counter.incr c_iterations;
                 ignore (update ctx bound members.(0))
               end
               else Obs.Span.time s_scc @@ fun () ->
                 Array.sort Int.compare members;
                 let in_scc v = scc.Graphs.Scc.comp.(v) = c in
                 (* Theorem 2 of the paper: a positive loop exists iff after
                    6n iterations the SCC is totally isolated in the support
                    graph.  The test is only meaningful from 6n on (before
                    that, transient equality-supported states of feasible
                    targets can look isolated); without PLD only the
                    conservative quadratic cap applies (the pre-TurboSYN
                    stopping criterion). *)
                 match wl with
                 | Some wl ->
                     run_scc_worklist ctx wl bound members ~in_scc ~feasible
                 | None -> run_scc_sweep ctx bound members ~in_scc ~feasible
           end)
         order
     with Diverged ->
       Obs.Counter.incr c_divergences;
       feasible := false);
    if not !feasible then (Infeasible, stats)
    else
      match harvest ctx with
      | Some (impls, prov) -> (Feasible { labels; impls; prov }, stats)
      | None ->
          (* should not happen: convergence guarantees an implementation *)
          (Infeasible, stats)
  in
  (* intra-phi parallelism: only the Worklist engine has the per-lane
     scratch model; a caller-supplied pool wins over [opts.jobs], and
     either way a single lane falls back to the sequential path *)
  match opts.engine with
  | Sweep -> sequential ()
  | Worklist -> (
      match pool with
      | Some p ->
          if Pool.size p > 1 then run_parallel ctx p ~bound ~succ ~scc
          else sequential ()
      | None ->
          if opts.jobs > 1 then
            Pool.with_pool ~domains:opts.jobs (fun p ->
                run_parallel ctx p ~bound ~succ ~scc)
          else sequential ())

let new_cache () : resyn_cache =
  { tbl = Hashtbl.create 512; lock = Mutex.create () }
