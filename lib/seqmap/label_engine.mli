(** Iterative sequential label computation (TurboMap, and TurboSYN when
    resynthesis is enabled).

    For a target clock-period ratio φ, every gate gets a label lower-bound
    (PIs are 0, gates start at 1) that is monotonically raised:

    - [L(v) = max over fanins e(u,v) of l(u) - φ·w(e)];
    - [l(v) = L(v)] when the partial expanded circuit [E_v] has a
      K-feasible cut of height [<= L(v)] (max-flow test), and otherwise
    - with resynthesis: still [L(v)] if a min-cut of size [<= cmax] at
      height threshold [L(v) - h] (h = 0, 1, …) has a single-output
      functional decomposition whose root level stays [<= L(v)]
      (the paper's sequential functional decomposition);
    - else [L(v) + 1].

    SCCs are processed in topological order.  Within an SCC the iteration
    stops on convergence (feasible), on total isolation in the support
    graph when PLD is enabled (infeasible), when a label exceeds the gate
    count (labels of feasible targets are bounded by the depth, infeasible),
    or at the hard n²-style cap (infeasible) — the paper's pre-PLD
    criterion. *)

open Prelude

type impl =
  | Cut of (int * int) array
      (** sequential cut: (driver, register count) pairs, distinct *)
  | Resyn of Decomp.Decompose.tree * (int * int) array
      (** decomposed LUT tree over the listed sequential inputs *)

type engine =
  | Sweep
      (** re-test every SCC member each iteration (the original engine) *)
  | Worklist
      (** dirty-set scheduling: a member is re-tested only when the label
          of a node its previous test consulted (its read set: direct
          fanins plus every node of its expanded circuit) actually
          changed.  Rounds replay the sweep's sorted member order, so the
          label trajectory — labels, iteration counts, PLD / divergence /
          cap verdicts — is identical to [Sweep]; only the provably no-op
          re-tests are skipped. *)

type options = {
  k : int;
  resynthesize : bool;  (** TurboSYN when true, TurboMap when false *)
  cmax : int;  (** max cut width handed to the decomposition engine *)
  exhaustive : bool;  (** decomposition bound-set search *)
  pld : bool;  (** positive loop detection (on = the paper's TurboSYN/TurboMap) *)
  extra_depth : int;  (** candidate expansion slack in [E_v] *)
  max_expansion : int;  (** node budget per expanded circuit *)
  resyn_depth : int;  (** thresholds L(v) - 0 .. L(v) - resyn_depth tried *)
  multi_output : bool;
      (** allow two-wire bound-set extraction when single-output
          decomposition is stuck (the paper's future-work extension) *)
  full_expansion : bool;
      (** SeqMapII-style baseline: expand candidate regions of [E_v] to
          the node budget instead of the partial-network frontier — the
          construction TurboMap's partial flow networks replaced; for the
          benchmark comparison *)
  engine : engine;  (** iteration scheduling within nontrivial SCCs *)
  jobs : int;
      (** intra-φ parallelism: number of domains labeling independent
          SCCs of one condensation level concurrently, with a barrier
          between levels ([doc/CONCURRENCY.md]).  [1] is fully
          sequential; values [> 1] take effect only under [Worklist]
          (the [Sweep] baseline stays sequential) and produce
          byte-identical results — labels, implementations, provenance
          and verdicts — for every value.  Ignored when {!run} is given
          an explicit [pool]. *)
}

val default_options : k:int -> options
(** k, resynthesize=false, cmax=15, exhaustive=false, pld=true,
    extra_depth=3, max_expansion=4000, resyn_depth=2, multi_output=false,
    full_expansion=false, engine=Worklist, jobs=1. *)

type stats = {
  mutable iterations : int;
  mutable flow_tests : int;
  mutable decompositions : int;
  mutable pld_hits : int;  (** SCCs proven infeasible by isolation *)
}

(** Provenance of one gate's harvested implementation: which mechanism
    justified it under the converged labels.  Produced for the audit
    layer ([doc/AUDIT.md]); the independent verifier re-derives the
    claimed facts from the cut alone. *)
type prov_source =
  | From_cut_test  (** fresh K-feasible-cut flow test passed at harvest *)
  | From_snapshot
      (** a validated expansion snapshot answered the harvest test
          without rebuilding (Worklist engine) *)
  | From_recorded
      (** the last passing cut recorded during iteration was still valid
          under the converged labels (Worklist engine) *)
  | From_resyn of int
      (** decomposition rescue; the payload is the attempt index [h]
          (candidate cuts taken at threshold [l(v) - h]) *)

type prov = {
  p_source : prov_source;
  p_engine : engine;  (** engine that ran the harvest *)
  p_cut : (int * int) array;
      (** the implementation's sequential inputs, (driver, registers) *)
  p_height : Rat.t;
      (** realized sequential arrival of the implementation root:
          [1 + max (l(u) - φ·w)] for a cut, the decomposition tree level
          for a rescue; always [<= p_label] *)
  p_label : Rat.t;  (** the gate's converged label [l(v)] *)
  p_iteration : int;
      (** global iteration index of the gate's last label change; [0]
          when the initial label survived *)
}

type outcome =
  | Feasible of {
      labels : Rat.t array;
      impls : impl option array;
      prov : prov option array;  (** defined exactly where [impls] is *)
    }
  | Infeasible

type resyn_cache
(** Memo table for decomposition attempts, shared across probes of one
    binary search (a cut and its arrivals fully determine the result). *)

val new_cache : unit -> resyn_cache

type cut_memo
(** Cross-phi min-cut memo: the per-gate last-passing-cut table of the
    Worklist engine, made shareable across the probes of one ratio
    search.  A cut's validity as a separating cut of a gate's expansion
    is structural — independent of labels and phi — so a run handed the
    memo revalidates each entry with an O(|cut|) width/height check
    before trusting it, skipping the expansion and the flow entirely on
    a hit ([cut.memo_hits] / [cut.memo_misses]).  Stale entries are
    overwritten by fresh passes; no explicit eviction exists or is
    needed.  Share a memo only between runs whose sequence is itself
    deterministic (the sequential descent's probes and the final run) —
    speculative probe domains must not receive it, or the memo contents
    would depend on probe timing. *)

val new_cut_memo : Circuit.Netlist.t -> cut_memo

val run :
  ?cache:resyn_cache ->
  ?cutmemo:cut_memo ->
  ?pool:Prelude.Pool.t ->
  options -> Circuit.Netlist.t -> phi:Rat.t ->
  outcome * stats
(** On [Feasible], [impls] is defined exactly on gates and every
    implementation realizes its gate with sequential arrival [<= l(v)]
    under the returned labels.

    [pool], when given, supplies the domains for the intra-φ parallel
    scheduler (overriding [options.jobs] — a pool of size 1 forces the
    sequential path); without it, [options.jobs > 1] spins up a
    per-call pool.  The outcome and, on feasible runs, the [stats] are
    byte-identical for every lane count; on infeasible runs the stats
    may differ (the sequential engine stops at the first infeasible
    SCC, the parallel one at that SCC's level barrier) while the
    verdict itself is invariant.  See [doc/CONCURRENCY.md].
    @raise Invalid_argument if the circuit is not K-bounded or has a
    combinational loop. *)
