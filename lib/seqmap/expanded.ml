open Prelude
open Circuit

(* observability (doc/OBSERVABILITY.md): expansion volume and budget
   overflows — the quantity the partial-network construction keeps small *)
let c_builds = Obs.Counter.make "expand.builds"
let c_nodes = Obs.Counter.make "expand.nodes"
let c_peak = Obs.Counter.make "expand.peak_nodes"
let c_overflows = Obs.Counter.make "expand.overflows"
let c_arena = Obs.Counter.make "expand.arena_reuses"
let h_nodes = Obs.Histogram.make "expand.nodes_per_build"

type node = { u : int; w : int }

type t = {
  nodes : node array;
  edges : (int * int) array;
  internal : bool array;
  sources : int list;
  overflow : bool;
}

let height labels phi u w = Rat.add (Rat.sub labels.(u) (Rat.mul_int phi w)) Rat.one

(* Open-addressing hash table over int pairs: parallel key arrays (ka, kb)
   and a value array, linear probing, power-of-two capacity, ka = -1 marks
   an empty slot.  Replaces the (int * int)-keyed Hashtbls of the build
   (tuple boxing + generic hashing on the hottest allocation path). *)
type pair_table = {
  mutable ka : int array;
  mutable kb : int array;
  mutable pv : int array;
  mutable mask : int;
  mutable count : int;
}

let pt_create cap =
  let cap = max 16 cap in
  (* round up to a power of two *)
  let c = ref 16 in
  while !c < cap do
    c := !c * 2
  done;
  { ka = Array.make !c (-1); kb = Array.make !c 0; pv = Array.make !c 0;
    mask = !c - 1; count = 0 }

let pt_clear t =
  Array.fill t.ka 0 (Array.length t.ka) (-1);
  t.count <- 0

let pt_hash a b =
  (* Fibonacci-style mix of the two keys; keys are small non-negative ints *)
  let h = (a * 0x9e3779b1) lxor (b * 0x85ebca77) in
  h lxor (h lsr 15)

let rec pt_grow t =
  let old_ka = t.ka and old_kb = t.kb and old_pv = t.pv in
  let cap = 2 * Array.length old_ka in
  t.ka <- Array.make cap (-1);
  t.kb <- Array.make cap 0;
  t.pv <- Array.make cap 0;
  t.mask <- cap - 1;
  t.count <- 0;
  Array.iteri
    (fun i a -> if a >= 0 then pt_put t a old_kb.(i) old_pv.(i))
    old_ka

and pt_put t a b v =
  if 3 * t.count >= 2 * Array.length t.ka then pt_grow t;
  let mask = t.mask in
  let i = ref (pt_hash a b land mask) in
  let slot = ref (-1) in
  while !slot < 0 do
    let j = !i in
    if t.ka.(j) < 0 then begin
      t.ka.(j) <- a;
      t.kb.(j) <- b;
      t.pv.(j) <- v;
      t.count <- t.count + 1;
      slot := j
    end
    else if t.ka.(j) = a && t.kb.(j) = b then begin
      t.pv.(j) <- v;
      slot := j
    end
    else i := (j + 1) land mask
  done

let pt_find t a b =
  let mask = t.mask in
  let i = ref (pt_hash a b land mask) in
  let res = ref (-1) in
  let stop = ref false in
  while not !stop do
    let j = !i in
    if t.ka.(j) < 0 then stop := true
    else if t.ka.(j) = a && t.kb.(j) = b then begin
      res := t.pv.(j);
      stop := true
    end
    else i := (j + 1) land mask
  done;
  !res

(* membership-only variant used for edge dedup: pv doubles as presence *)
let pt_add_if_absent t a b =
  if pt_find t a b < 0 then begin
    pt_put t a b 0;
    true
  end
  else false

(* Reusable build arena: the growable per-node vectors, the (u,w) -> local
   id index, the seen-edge set and the BFS queue, all reset (not
   re-allocated) per build. *)
type arena = {
  mutable a_node : node array;
  mutable a_internal : bool array;
  mutable a_cdepth : int array; (* candidate depth; max_int = unset *)
  mutable a_expanded : bool array;
  mutable a_len : int;
  index : pair_table; (* (u, w) -> local id *)
  seen_edge : pair_table; (* (src, dst) local pairs already recorded *)
  mutable e_src : int array;
  mutable e_dst : int array;
  mutable e_len : int;
  mutable queue : int array;
  mutable q_head : int;
  mutable q_len : int;
  mutable busy : bool;
      (* ownership tripwire: an arena belongs to exactly one build at a
         time (one pool lane, under the parallel label engine); a second
         build observing [busy] means two lanes share an arena — a
         determinism bug, reported loudly instead of corrupting state *)
}

let new_arena () =
  {
    a_node = Array.make 64 { u = -1; w = -1 };
    a_internal = Array.make 64 false;
    a_cdepth = Array.make 64 max_int;
    a_expanded = Array.make 64 false;
    a_len = 0;
    index = pt_create 256;
    seen_edge = pt_create 256;
    e_src = Array.make 64 0;
    e_dst = Array.make 64 0;
    e_len = 0;
    queue = Array.make 64 0;
    q_head = 0;
    q_len = 0;
    busy = false;
  }

let arena_reset a =
  a.a_len <- 0;
  a.e_len <- 0;
  a.q_head <- 0;
  a.q_len <- 0;
  pt_clear a.index;
  pt_clear a.seen_edge

let vec_push a n i =
  if a.a_len >= Array.length a.a_node then begin
    let cap = 2 * Array.length a.a_node in
    let grow init arr =
      let b = Array.make cap init in
      Array.blit arr 0 b 0 a.a_len;
      b
    in
    a.a_node <- grow { u = -1; w = -1 } a.a_node;
    a.a_internal <- grow false a.a_internal;
    a.a_cdepth <- grow max_int a.a_cdepth;
    a.a_expanded <- grow false a.a_expanded
  end;
  let id = a.a_len in
  a.a_node.(id) <- n;
  a.a_internal.(id) <- i;
  a.a_cdepth.(id) <- max_int;
  a.a_expanded.(id) <- false;
  a.a_len <- id + 1;
  id

let edge_push a j i =
  if a.e_len >= Array.length a.e_src then begin
    let cap = 2 * Array.length a.e_src in
    let grow arr =
      let b = Array.make cap 0 in
      Array.blit arr 0 b 0 a.e_len;
      b
    in
    a.e_src <- grow a.e_src;
    a.e_dst <- grow a.e_dst
  end;
  a.e_src.(a.e_len) <- j;
  a.e_dst.(a.e_len) <- i;
  a.e_len <- a.e_len + 1

let queue_push a i =
  if a.q_len >= Array.length a.queue then begin
    let b = Array.make (2 * Array.length a.queue) 0 in
    Array.blit a.queue 0 b 0 a.q_len;
    a.queue <- b
  end;
  a.queue.(a.q_len) <- i;
  a.q_len <- a.q_len + 1

let build ?arena ?internal_of nl ~root ~labels ~phi ~threshold ~extra_depth
    ~max_nodes =
  let a =
    match arena with
    | Some a ->
        if a.busy then
          invalid_arg
            "Expanded.build: arena is owned by an in-flight build — two \
             lanes are sharing one arena (doc/CONCURRENCY.md: one arena \
             per pool lane)";
        Obs.Counter.incr c_arena;
        arena_reset a;
        a
    | None -> new_arena ()
  in
  a.busy <- true;
  Fun.protect ~finally:(fun () -> a.busy <- false) @@ fun () ->
  let is_internal =
    match internal_of with
    | Some f -> f
    | None -> fun u w -> Rat.( > ) (height labels phi u w) threshold
  in
  let overflow = ref false in
  let get u w ~is_root =
    match pt_find a.index u w with
    | i when i >= 0 -> i
    | _ ->
        let internal = is_root || is_internal u w in
        let i = vec_push a { u; w } internal in
        pt_put a.index u w i;
        i
  in
  let rootid = get root 0 ~is_root:true in
  a.a_cdepth.(rootid) <- 0;
  queue_push a rootid;
  while a.q_head < a.q_len do
    let i = a.queue.(a.q_head) in
    a.q_head <- a.q_head + 1;
    if not a.a_expanded.(i) then begin
      let { u; w } = a.a_node.(i) in
      let my_cd = if a.a_cdepth.(i) = max_int then 0 else a.a_cdepth.(i) in
      let expandable =
        Netlist.kind nl u <> Netlist.Pi
        && (a.a_internal.(i) || my_cd < extra_depth)
      in
      if expandable then
        if a.a_len > max_nodes then begin
          if a.a_internal.(i) then overflow := true
        end
        else begin
          a.a_expanded.(i) <- true;
          Array.iter
            (fun (x, we) ->
              let j = get x (w + we) ~is_root:false in
              if pt_add_if_absent a.seen_edge j i then edge_push a j i;
              let child_cd = if a.a_internal.(j) then 0 else my_cd + 1 in
              if a.a_cdepth.(j) > child_cd then begin
                a.a_cdepth.(j) <- child_cd;
                (* (re)visit with the improved candidate depth *)
                a.a_expanded.(j) <- false;
                queue_push a j
              end)
            (Netlist.fanins nl u)
        end
    end
  done;
  let n = a.a_len in
  Obs.Counter.incr c_builds;
  Obs.Counter.add c_nodes n;
  Obs.Counter.record_max c_peak n;
  Obs.Histogram.observe_int h_nodes n;
  if !overflow then Obs.Counter.incr c_overflows;
  let nodes = Array.init n (fun i -> a.a_node.(i)) in
  let internal = Array.init n (fun i -> a.a_internal.(i)) in
  (* edges in reverse discovery order, as the assoc-list accumulator this
     replaced produced them (the flow decision is order-insensitive, but
     residual tie-breaks pick the same cut) *)
  let ne = a.e_len in
  let edges = Array.init ne (fun i -> (a.e_src.(ne - 1 - i), a.e_dst.(ne - 1 - i))) in
  let sources = ref [] in
  for i = n - 1 downto 0 do
    if not a.a_expanded.(i) then sources := i :: !sources
  done;
  { nodes; edges; internal; sources = !sources; overflow = !overflow }

(* Like [frontier_cut], but only when the frontier is valid and at most
   [k] wide: one marking pass, the list materialized only on success. *)
let frontier_witness t ~k =
  if List.exists (fun i -> t.internal.(i)) t.sources then None
  else begin
    let n = Array.length t.nodes in
    let on = Array.make n false in
    let width = ref 0 in
    Array.iter
      (fun (src, dst) ->
        if (not t.internal.(src)) && t.internal.(dst) && not on.(src) then begin
          on.(src) <- true;
          incr width
        end)
      t.edges;
    if !width = 0 || !width > k then None
    else begin
      let fr = ref [] in
      for i = n - 1 downto 0 do
        if on.(i) then fr := i :: !fr
      done;
      Some !fr
    end
  end

let frontier_cut t =
  (* invalid when the internal region touches an unexpandable node (an
     internal PI or a node cut off by the budget): some root path then
     never crosses the frontier *)
  if List.exists (fun i -> t.internal.(i)) t.sources then []
  else begin
    let n = Array.length t.nodes in
    let on = Array.make n false in
    Array.iter
      (fun (src, dst) ->
        if (not t.internal.(src)) && t.internal.(dst) then on.(src) <- true)
      t.edges;
    List.filter (fun i -> on.(i)) (List.init n Fun.id)
  end

let kcut_spec t =
  {
    Flow.Kcut.n = Array.length t.nodes;
    edges = t.edges;
    sink_side = t.internal;
    sources = t.sources;
  }

let cone_bdd man nl t ~cut ~vars =
  let cut_pos = Hashtbl.create 8 in
  List.iteri (fun j i -> Hashtbl.replace cut_pos i j) cut;
  let index = Hashtbl.create 64 in
  Array.iteri (fun i { u; w } -> Hashtbl.replace index (u, w) i) t.nodes;
  let memo = Hashtbl.create 64 in
  let rec go i =
    match Hashtbl.find_opt cut_pos i with
    | Some j -> Bdd.var man vars.(j)
    | None -> (
        match Hashtbl.find_opt memo i with
        | Some b -> b
        | None ->
            let { u; w } = t.nodes.(i) in
            let b =
              match Netlist.kind nl u with
              | Netlist.Pi | Netlist.Po ->
                  invalid_arg "Expanded.cone_bdd: path escapes the cut"
              | Netlist.Gate f ->
                  let args =
                    Array.map
                      (fun (x, we) ->
                        match Hashtbl.find_opt index (x, w + we) with
                        | Some j -> go j
                        | None ->
                            invalid_arg
                              "Expanded.cone_bdd: path escapes the expansion")
                      (Netlist.fanins nl u)
                  in
                  Bdd.apply_truthtable man f args
            in
            Hashtbl.replace memo i b;
            b)
  in
  go 0

let cone_truthtable nl t ~cut =
  let k = List.length cut in
  if k > Logic.Truthtable.max_arity then
    invalid_arg "Expanded.cone_truthtable: cut too wide";
  let man = Bdd.new_man () in
  let vars = Array.init k Fun.id in
  let f = cone_bdd man nl t ~cut ~vars in
  Bdd.to_truthtable man f vars
