open Prelude
open Circuit

(* observability (doc/OBSERVABILITY.md): expansion volume and budget
   overflows — the quantity the partial-network construction keeps small *)
let c_builds = Obs.Counter.make "expand.builds"
let c_nodes = Obs.Counter.make "expand.nodes"
let c_peak = Obs.Counter.make "expand.peak_nodes"
let c_overflows = Obs.Counter.make "expand.overflows"

type node = { u : int; w : int }

type t = {
  nodes : node array;
  edges : (int * int) array;
  internal : bool array;
  sources : int list;
  overflow : bool;
}

let height labels phi u w = Rat.add (Rat.sub labels.(u) (Rat.mul_int phi w)) Rat.one

(* growable parallel arrays for the expansion *)
type vec = {
  mutable node : node array;
  mutable internal_ : bool array;
  mutable len : int;
}

let vec_push v n i =
  if v.len >= Array.length v.node then begin
    let cap = 2 * Array.length v.node in
    let bigger = Array.make cap { u = -1; w = -1 } in
    Array.blit v.node 0 bigger 0 v.len;
    v.node <- bigger;
    let bigger_b = Array.make cap false in
    Array.blit v.internal_ 0 bigger_b 0 v.len;
    v.internal_ <- bigger_b
  end;
  v.node.(v.len) <- n;
  v.internal_.(v.len) <- i;
  v.len <- v.len + 1;
  v.len - 1

let build nl ~root ~labels ~phi ~threshold ~extra_depth ~max_nodes =
  let index = Hashtbl.create 256 in
  let vec = { node = Array.make 64 { u = -1; w = -1 }; internal_ = Array.make 64 false; len = 0 } in
  let edges = ref [] in
  let seen_edge = Hashtbl.create 256 in
  let add_edge j i =
    if not (Hashtbl.mem seen_edge (j, i)) then begin
      Hashtbl.replace seen_edge (j, i) ();
      edges := (j, i) :: !edges
    end
  in
  let cdepth = Hashtbl.create 256 in
  let expanded = Hashtbl.create 256 in
  let overflow = ref false in
  let get u w ~is_root =
    match Hashtbl.find_opt index (u, w) with
    | Some i -> i
    | None ->
        let internal =
          is_root || Rat.( > ) (height labels phi u w) threshold
        in
        let i = vec_push vec { u; w } internal in
        Hashtbl.replace index (u, w) i;
        i
  in
  let rootid = get root 0 ~is_root:true in
  Hashtbl.replace cdepth rootid 0;
  let queue = Queue.create () in
  Queue.add rootid queue;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if not (Hashtbl.mem expanded i) then begin
      let { u; w } = vec.node.(i) in
      let my_cd = match Hashtbl.find_opt cdepth i with Some d -> d | None -> 0 in
      let expandable =
        Netlist.kind nl u <> Netlist.Pi
        && (vec.internal_.(i) || my_cd < extra_depth)
      in
      if expandable then
        if vec.len > max_nodes then begin
          if vec.internal_.(i) then overflow := true
        end
        else begin
          Hashtbl.replace expanded i ();
          Array.iter
            (fun (x, we) ->
              let j = get x (w + we) ~is_root:false in
              add_edge j i;
              let child_cd = if vec.internal_.(j) then 0 else my_cd + 1 in
              match Hashtbl.find_opt cdepth j with
              | Some old when old <= child_cd -> ()
              | _ ->
                  Hashtbl.replace cdepth j child_cd;
                  (* (re)visit with the improved candidate depth *)
                  Hashtbl.remove expanded j;
                  Queue.add j queue)
            (Netlist.fanins nl u)
        end
    end
  done;
  let n = vec.len in
  Obs.Counter.incr c_builds;
  Obs.Counter.add c_nodes n;
  Obs.Counter.record_max c_peak n;
  if !overflow then Obs.Counter.incr c_overflows;
  let nodes = Array.init n (fun i -> vec.node.(i)) in
  let internal = Array.init n (fun i -> vec.internal_.(i)) in
  let sources =
    List.filter (fun i -> not (Hashtbl.mem expanded i)) (List.init n Fun.id)
  in
  { nodes; edges = Array.of_list !edges; internal; sources; overflow = !overflow }

let frontier_cut t =
  (* invalid when the internal region touches an unexpandable node (an
     internal PI or a node cut off by the budget): some root path then
     never crosses the frontier *)
  if List.exists (fun i -> t.internal.(i)) t.sources then []
  else begin
    let n = Array.length t.nodes in
    let on = Array.make n false in
    Array.iter
      (fun (src, dst) ->
        if (not t.internal.(src)) && t.internal.(dst) then on.(src) <- true)
      t.edges;
    List.filter (fun i -> on.(i)) (List.init n Fun.id)
  end

let kcut_spec t =
  {
    Flow.Kcut.n = Array.length t.nodes;
    edges = t.edges;
    sink_side = t.internal;
    sources = t.sources;
  }

let cone_bdd man nl t ~cut ~vars =
  let cut_pos = Hashtbl.create 8 in
  List.iteri (fun j i -> Hashtbl.replace cut_pos i j) cut;
  let index = Hashtbl.create 64 in
  Array.iteri (fun i { u; w } -> Hashtbl.replace index (u, w) i) t.nodes;
  let memo = Hashtbl.create 64 in
  let rec go i =
    match Hashtbl.find_opt cut_pos i with
    | Some j -> Bdd.var man vars.(j)
    | None -> (
        match Hashtbl.find_opt memo i with
        | Some b -> b
        | None ->
            let { u; w } = t.nodes.(i) in
            let b =
              match Netlist.kind nl u with
              | Netlist.Pi | Netlist.Po ->
                  invalid_arg "Expanded.cone_bdd: path escapes the cut"
              | Netlist.Gate f ->
                  let args =
                    Array.map
                      (fun (x, we) ->
                        match Hashtbl.find_opt index (x, w + we) with
                        | Some j -> go j
                        | None ->
                            invalid_arg
                              "Expanded.cone_bdd: path escapes the expansion")
                      (Netlist.fanins nl u)
                  in
                  Bdd.apply_truthtable man f args
            in
            Hashtbl.replace memo i b;
            b)
  in
  go 0

let cone_truthtable nl t ~cut =
  let k = List.length cut in
  if k > Logic.Truthtable.max_arity then
    invalid_arg "Expanded.cone_truthtable: cut too wide";
  let man = Bdd.new_man () in
  let vars = Array.init k Fun.id in
  let f = cone_bdd man nl t ~cut ~vars in
  Bdd.to_truthtable man f vars
