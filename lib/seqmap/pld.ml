open Prelude
open Circuit

(* observability (doc/OBSERVABILITY.md): how often the isolation test runs
   and how often it prunes a probe as infeasible *)
let c_checks = Obs.Counter.make "pld.checks"
let c_prunes = Obs.Counter.make "pld.prunes"
let s_check = Obs.Span.make "pld.check"

let all_isolated nl ~labels ~phi ~members ~in_scc =
  Obs.Counter.incr c_checks;
  Obs.Span.time s_check @@ fun () ->
  (* supporters of v: fanins u with l(u) - phi*w + 1 >= l(v) *)
  let supporters v =
    if Rat.( <= ) labels.(v) Rat.one then []
    else
      Array.to_list (Netlist.fanins nl v)
      |> List.filter_map (fun (u, w) ->
             let support =
               Rat.add (Rat.sub labels.(u) (Rat.mul_int phi w)) Rat.one
             in
             if Rat.( >= ) support labels.(v) then Some u else None)
  in
  let supported = Hashtbl.create (Array.length members) in
  (* seed: members grounded directly *)
  Array.iter
    (fun v ->
      if Rat.( <= ) labels.(v) Rat.one then Hashtbl.replace supported v ()
      else if List.exists (fun u -> not (in_scc u)) (supporters v) then
        Hashtbl.replace supported v ())
    members;
  (* propagate support along Gπ edges inside the SCC *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if not (Hashtbl.mem supported v) then
          if
            List.exists
              (fun u -> in_scc u && Hashtbl.mem supported u)
              (supporters v)
          then begin
            Hashtbl.replace supported v ();
            changed := true
          end)
      members
  done;
  let isolated = Array.for_all (fun v -> not (Hashtbl.mem supported v)) members in
  if isolated then Obs.Counter.incr c_prunes;
  isolated
