(** Partial expanded circuits (Pan–Liu's [E_v], TurboMap's partial flow
    network).

    The expanded circuit of a node [v] represents every LUT rooted at [v]
    under retiming and node replication: its nodes are pairs [u^w] (signal
    [u] seen through [w] registers), the root is [v^0], and the fanins of
    [u^w] are [x^(w + w(e))] for every circuit edge [e(x,u)].  A cut
    separates the root from the leaves; the cut-set nodes are the LUT's
    sequential inputs.

    The expansion is partial: with respect to a height threshold
    ([height(u^w) = l(u) - φ·w + 1] for the current label lower-bounds),
    nodes above the threshold must lie inside the LUT and are always
    expanded; nodes at or below it are cut candidates and are expanded only
    [extra_depth] levels further (deeper cuts can only shrink, never fix a
    height violation, because heights are non-increasing toward the leaves
    once labels settle).  PIs never expand.  If the [max_nodes] budget is
    hit while a must-inside node is unexpanded, the expansion reports
    overflow and the caller must treat the cut test as failed (sound:
    labels only over-approximate). *)

open Prelude

type node = { u : int; w : int }

type t = {
  nodes : node array;  (** index 0 is the root [v^0] *)
  edges : (int * int) array;  (** (fanin, consumer) in local indices *)
  internal : bool array;  (** height above threshold: must be inside the LUT *)
  sources : int list;  (** unexpanded leaves (PIs and depth-capped candidates) *)
  overflow : bool;
}

type arena
(** Reusable build scratch: the growable node/edge vectors, the open
    addressing [(u, w)] index and the BFS queue, reset per build instead of
    re-allocated.  One arena per pool lane (never shared between
    concurrent callers — see [doc/CONCURRENCY.md]); a build that finds its
    arena already owned by an in-flight build raises [Invalid_argument]
    rather than corrupting the scratch state.  The returned [t] copies out
    of the arena, so it stays valid across later builds. *)

val new_arena : unit -> arena

val build :
  ?arena:arena ->
  ?internal_of:(int -> int -> bool) ->
  Circuit.Netlist.t ->
  root:int ->
  labels:Rat.t array ->
  phi:Rat.t ->
  threshold:Rat.t ->
  extra_depth:int ->
  max_nodes:int ->
  t
(** [labels.(u)] must hold the current lower bound for every PI/gate [u]
    (PIs have label 0).  [internal_of u w], when given, replaces the
    rational internality test [height labels phi u w > threshold] on the
    hottest path of the build — the caller promises it decides exactly
    that predicate (e.g. in scaled-integer arithmetic). *)

val kcut_spec : t -> Flow.Kcut.spec
(** The node-cut problem: separate the sources from the internal region. *)

val frontier_cut : t -> int list
(** The widest natural cut: every non-internal node with an edge into the
    internal region (local indices, ascending).  Valid by construction —
    any source-to-root path crosses it — and the most generous input set
    for functional decomposition (FlowSYN's block boundary corresponds to
    this cut).  Empty when no such cut exists (the internal region reaches
    a PI or the expansion budget). *)

val frontier_witness : t -> k:int -> int list option
(** [frontier_cut] restricted to valid nonempty frontiers of width at most
    [k], without materializing anything on the failing side.  A witness
    makes the flow-based K-cut decision a foregone pass: the frontier is a
    cut of the expansion, so the max flow is bounded by its width. *)

val cone_bdd :
  Bdd.man -> Circuit.Netlist.t -> t -> cut:int list -> vars:int array ->
  Bdd.t
(** Function of the root over the cut signals ([vars.(i)] is the BDD
    variable of the i-th cut node).  Every path from the root must stop at
    the cut.
    @raise Invalid_argument otherwise. *)

val cone_truthtable :
  Circuit.Netlist.t -> t -> cut:int list -> Logic.Truthtable.t
(** Same as a truth table (cut of at most 6 nodes). *)
