open Prelude
open Circuit

(* observability (doc/OBSERVABILITY.md): the ratio search — one trace event
   and one span entry per probe, phase spans around the search itself, the
   final label run and mapping generation *)
let c_probes = Obs.Counter.make "search.probes"
let c_feasible = Obs.Counter.make "search.feasible_probes"
let c_infeasible = Obs.Counter.make "search.infeasible_probes"
let c_parallel = Obs.Counter.make "search.parallel_probes"
let s_probe = Obs.Span.make "search.probe"
let s_search = Obs.Span.make "synth.search"
let s_final = Obs.Span.make "synth.final_labels"
let s_mapgen = Obs.Span.make "synth.mapgen"

type report = {
  phi : Rat.t;
  luts : int;
  mapped_mdr : Graphs.Cycle_ratio.result;
  clock_period : int;
  probes : int;
  stats : Label_engine.stats;
  labels : Rat.t array;
  prov : Label_engine.prov option array;
}

let add_stats (acc : Label_engine.stats) (s : Label_engine.stats) =
  acc.Label_engine.iterations <- acc.Label_engine.iterations + s.Label_engine.iterations;
  acc.Label_engine.flow_tests <- acc.Label_engine.flow_tests + s.Label_engine.flow_tests;
  acc.Label_engine.decompositions <-
    acc.Label_engine.decompositions + s.Label_engine.decompositions;
  acc.Label_engine.pld_hits <- acc.Label_engine.pld_hits + s.Label_engine.pld_hits

(* ------------------------------------------------------------------ *)
(* Speculative parallel ratio search.                                  *)
(*                                                                     *)
(* The probe sequence of the search is a deterministic function of the *)
(* oracle's answers, so it can be REPLAYED over a memo of known        *)
(* (phi, feasible) pairs: the replay either terminates or stops at the *)
(* first memo miss — the next probe the sequential search would run.   *)
(* Expanding both possible answers of each pending miss (a BFS over    *)
(* the search's decision tree) yields up to [jobs] distinct probe      *)
(* points of which one is certainly needed and the rest are            *)
(* speculative; all are evaluated concurrently (one [Domain] each),    *)
(* their verdicts enter the memo, and the replay advances.  Since the  *)
(* real answer path is followed verdict for verdict, the terminal phi  *)
(* is exactly the sequential search's — speculation only changes how   *)
(* many probes run, never which answer decides.                        *)
(* ------------------------------------------------------------------ *)

exception Probe_miss of Rat.t

(* The pure decision procedure shared by the sequential and the parallel
   drivers (the [ub <= 1] shortcut needs no probe and stays in the
   caller).  Returns [None] only when the oracle calls [ub] infeasible —
   impossible for the real oracle (the trivial mapping realizes UB) but
   reachable under speculative assumptions. *)
let search_decision ~ub ~max_den ~feasible =
  if feasible Rat.one then Some Rat.one
  else Rat.stern_brocot_min ~lo:Rat.one ~hi:ub ~max_den ~feasible

let replay memo assumptions ~ub ~max_den =
  let feasible phi =
    match List.assoc_opt phi assumptions with
    | Some b -> b
    | None -> (
        match Hashtbl.find_opt memo phi with
        | Some b -> b
        | None -> raise (Probe_miss phi))
  in
  try `Done (search_decision ~ub ~max_den ~feasible)
  with Probe_miss phi -> `Miss phi

(* Up to [jobs] distinct probe points the search may need next: the
   certainly-needed one first, then the pending probes of the assumption
   branches in BFS order over the decision tree. *)
let speculative_frontier memo ~ub ~max_den ~jobs =
  let picked = ref [] in
  let npicked = ref 0 in
  let seen = Hashtbl.create 16 in
  let queue = Queue.create () in
  let budget = ref (64 * jobs) in
  Queue.add [] queue;
  while !npicked < jobs && !budget > 0 && not (Queue.is_empty queue) do
    decr budget;
    let asm = Queue.pop queue in
    match replay memo asm ~ub ~max_den with
    | `Done _ -> ()
    | `Miss phi ->
        if not (Hashtbl.mem seen phi) then begin
          Hashtbl.replace seen phi ();
          picked := phi :: !picked;
          incr npicked
        end;
        Queue.add ((phi, true) :: asm) queue;
        Queue.add ((phi, false) :: asm) queue
  done;
  List.rev !picked

let minimum_ratio ?cache ?cutmemo ?phi_max_den ?(jobs = 1) ?pool opts nl =
  let acc =
    {
      Label_engine.iterations = 0;
      flow_tests = 0;
      decompositions = 0;
      pld_hits = 0;
    }
  in
  let probes = ref 0 in
  let record phi ok (s : Label_engine.stats) =
    incr probes;
    Obs.Counter.incr c_probes;
    add_stats acc s;
    Obs.Counter.incr (if ok then c_feasible else c_infeasible);
    if Obs.enabled () then
      Obs.Trace.emit "search.probe"
        [
          ("phi", Obs.Json.Str (Rat.to_string phi));
          ("feasible", Obs.Json.Bool ok);
          ("iterations", Obs.Json.Int s.Label_engine.iterations);
          ("cut_tests", Obs.Json.Int s.Label_engine.flow_tests);
        ]
  in
  (* [use_pool = false] on speculative worker domains: the intra-phi pool
     (when one is supplied) belongs to the driver domain — Pool batches
     are single-caller, so only the non-speculative probe may use it.
     The cross-phi cut memo follows the same rule for a different
     reason: the memo's contents must be a deterministic function of the
     decisive probe sequence, and only the driver's probes replay the
     sequential descent — a speculative domain writing cuts would make
     them depend on scheduling (doc/CONCURRENCY.md). *)
  let run_probe ?(use_pool = true) cache phi =
    let pool = if use_pool then pool else None in
    let cutmemo = if use_pool then cutmemo else None in
    let outcome, s =
      Obs.Span.time s_probe (fun () ->
          Label_engine.run ?cache ?cutmemo ?pool opts nl ~phi)
    in
    let ok =
      match outcome with
      | Label_engine.Feasible _ -> true
      | Label_engine.Infeasible -> false
    in
    (ok, s)
  in
  let feasible phi =
    let ok, s = run_probe cache phi in
    record phi ok s;
    ok
  in
  match Netlist.mdr_ratio nl with
  | Graphs.Cycle_ratio.Infinite ->
      invalid_arg "Turbomap: combinational loop"
  | Graphs.Cycle_ratio.No_cycle -> (Rat.zero, !probes, acc)
  | Graphs.Cycle_ratio.Ratio ub ->
      let total_weight =
        Array.fold_left
          (fun a e -> a + e.Graphs.Cycle_ratio.weight)
          0 (Netlist.retiming_edges nl)
      in
      (* Simple cycles of a mapped circuit can carry more registers than
         the source's cycles: a LUT may read its own output through w
         registers by unrolling a loop (each unroll level consumes LUT
         inputs, so at most K-1 levels are useful).  Bound the ratio
         denominators accordingly. *)
      let max_den = max 1 (total_weight * (opts.Label_engine.k - 1)) in
      let max_den =
        match phi_max_den with
        | Some d -> min max_den (max 1 d)
        | None -> max_den
      in
      (* the paper searches targets in [1, UB]: the realizable clock period
         is max(1, ceil phi), so refining below ratio 1 only costs LUTs
         (deeper loop unrolling) without speeding the clock *)
      if Rat.( <= ) ub Rat.one then (ub, !probes, acc)
      else if jobs <= 1 then begin
        (* sequential path: probe for probe the original search *)
        if feasible Rat.one then (Rat.one, !probes, acc)
        else
          match
            Rat.stern_brocot_min ~lo:Rat.one ~hi:ub ~max_den ~feasible
          with
          | Some phi -> (phi, !probes, acc)
          | None ->
              (* UB is feasible by construction (the trivial mapping) *)
              assert false
      end
      else begin
        let memo : (Rat.t, bool) Hashtbl.t = Hashtbl.create 32 in
        (* the resyn memo table is mutex-guarded, so every speculative
           domain shares the driver's cache: a decomposition computed by
           any probe serves all later ones on any domain *)
        let result = ref None in
        while !result = None do
          match replay memo [] ~ub ~max_den with
          | `Done r -> result := Some r
          | `Miss _ ->
              let batch = speculative_frontier memo ~ub ~max_den ~jobs in
              let spawned =
                List.mapi
                  (fun i phi ->
                    if i = 0 then `Self phi
                    else
                      `Dom
                        ( phi,
                          Domain.spawn (fun () ->
                              run_probe ~use_pool:false cache phi) ))
                  batch
              in
              let evaluated =
                List.map
                  (function
                    | `Self phi -> (phi, run_probe cache phi)
                    | `Dom (phi, d) -> (phi, Domain.join d))
                  spawned
              in
              List.iter
                (fun (phi, (ok, s)) ->
                  Hashtbl.replace memo phi ok;
                  record phi ok s)
                evaluated;
              Obs.Counter.add c_parallel (List.length evaluated - 1)
        done;
        match !result with
        | Some (Some phi) -> (phi, !probes, acc)
        | Some None ->
            (* UB is feasible by construction (the trivial mapping) *)
            assert false
        | None -> assert false
      end

let realize_full mapped =
  match Retime.Pipeline.period_lower_bound mapped with
  | `Infinite -> None
  | `Period p ->
      let period, r = Retime.Pipeline.min_period mapped in
      assert (period = p);
      (* greedy FF minimization at the achieved period (skipped on very
         large circuits where the local search would dominate runtime) *)
      let r =
        if List.length (Netlist.gates mapped) <= 1500 then
          Retime.Retiming.minimize_ffs mapped ~period ~r
        else r
      in
      let out = Retime.Retiming.apply mapped ~r in
      Some (out, period, Retime.Pipeline.latency mapped ~r, r)

let realize mapped =
  Option.map
    (fun (out, period, latency, _r) -> (out, period, latency))
    (realize_full mapped)

let map_full ?options ?phi_max_den ?jobs nl ~k =
  let opts =
    match options with Some o -> o | None -> Label_engine.default_options ~k
  in
  let cache = Label_engine.new_cache () in
  (* cross-phi cut memo: cuts found by the search's decisive probes are
     revalidated instead of recomputed at nearby phi and by the final
     run; only the driver-domain probes see it (see [run_probe]) *)
  let cutmemo = Label_engine.new_cut_memo nl in
  (* one shared intra-phi pool across every probe and the final run —
     but only when probes are not themselves speculated onto domains
     (the two parallelism axes compose multiplicatively in domain count;
     with speculation on, each probe's [Label_engine.run] spins its own
     lanes from [opts.jobs] instead) *)
  let probe_jobs = match jobs with Some j -> j | None -> 1 in
  let pool =
    if opts.Label_engine.jobs > 1 && probe_jobs <= 1 then
      Some (Pool.create ~domains:opts.Label_engine.jobs)
    else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
  @@ fun () ->
  let phi, probes, stats =
    Obs.Span.time s_search (fun () ->
        minimum_ratio ~cache ~cutmemo ?phi_max_den ?jobs ?pool opts nl)
  in
  let outcome, s =
    Obs.Span.time s_final (fun () ->
        Label_engine.run ~cache ~cutmemo ?pool opts nl ~phi)
  in
  add_stats stats s;
  match outcome with
  | Label_engine.Infeasible ->
      (* cannot happen: phi came back feasible from the search *)
      assert false
  | Label_engine.Feasible { impls; labels; prov } ->
      let mapped =
        Obs.Span.time s_mapgen (fun () ->
            let mapped = Mapgen.generate nl ~impls in
            Netlist.validate_exn ~k mapped;
            mapped)
      in
      let mapped_mdr = Netlist.mdr_ratio mapped in
      let clock_period =
        match Retime.Pipeline.period_lower_bound mapped with
        | `Period p -> p
        | `Infinite -> -1
      in
      ( mapped,
        {
          phi;
          luts = Mapgen.lut_count mapped;
          mapped_mdr;
          clock_period;
          probes = probes + 1;
          stats;
          labels;
          prov;
        },
        impls )

let map ?options ?phi_max_den ?jobs nl ~k =
  let mapped, report, _ = map_full ?options ?phi_max_den ?jobs nl ~k in
  (mapped, report)
