(* A per-domain observability shard: domain-local counter cells,
   histogram mirrors, span mirrors and a timeline slice buffer, bundled
   so a parallel phase can install one per worker lane and fold them all
   back at its barrier.

   Protocol (doc/CONCURRENCY.md):
     1. coordinator: [create] one shard per lane (bumps
        [State.active_shards], which blocks [Obs.reset]);
     2. each lane runs its tasks inside [wrap shard f] — the shard is
        installed into the lane's domain-local storage for the duration
        of [f], so every Counter/Histogram/Span/Timeline hook the task
        hits writes domain-locally instead of into the unsynchronized
        global registries;
     3. coordinator, after the barrier: [merge] each shard, in lane
        order, folding the local state into the globals.

   Every merge is commutative except timeline slice order and float
   sums; merging in lane order keeps those deterministic for a fixed
   lane count.  A shard may be wrapped and merged repeatedly (merge
   empties it); [merge] must only run while no lane has the shard
   installed. *)

type t = {
  counters : Counter.shard;
  histograms : Histogram.shard;
  spans : Span.shard;
  timeline : Timeline.shard;
  mutable released : bool;
}

let create () =
  Atomic.incr State.active_shards;
  {
    counters = Counter.new_shard ();
    histograms = Histogram.new_shard ();
    spans = Span.new_shard ();
    timeline = Timeline.new_shard ();
    released = false;
  }

let install t =
  Counter.install_shard t.counters;
  Histogram.install_shard t.histograms;
  Span.install_shard t.spans;
  Timeline.install_shard t.timeline

let uninstall () =
  Counter.uninstall_shard ();
  Histogram.uninstall_shard ();
  Span.uninstall_shard ();
  Timeline.uninstall_shard ()

(* wrap saves and restores the previous installation instead of
   unconditionally uninstalling: a lane task wrapped inside an
   Obs.Scope (whose own shard is installed on this domain) must hand
   the domain back to the scope, not to the global registries *)
let wrap t f =
  let prev_c = Counter.current_shard () in
  let prev_h = Histogram.current_shard () in
  let prev_s = Span.current_shard () in
  let prev_t = Timeline.current_shard () in
  install t;
  Fun.protect
    ~finally:(fun () ->
      Counter.restore_shard prev_c;
      Histogram.restore_shard prev_h;
      Span.restore_shard prev_s;
      Timeline.restore_shard prev_t)
    f

let counters t = t.counters
let histograms t = t.histograms
let spans t = t.spans
let timeline t = t.timeline

let merge t =
  Counter.merge_shard t.counters;
  Histogram.merge_shard t.histograms;
  Span.merge_shard t.spans;
  Timeline.merge_shard t.timeline

let release t =
  if not t.released then begin
    t.released <- true;
    Atomic.decr State.active_shards
  end

let active () = Atomic.get State.active_shards
