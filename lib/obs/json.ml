type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> Float.equal a b
  | Str a, Str b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           a b
  | _ -> false

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* shortest decimal that parses back to the same float *)
let float_string f =
  if Float.is_nan f || Float.is_integer (f /. 0.) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_string f)
  | Str s -> Buffer.add_string buf (escape_string s)
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_pretty_string v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth v =
    match v with
    | Null | Bool _ | Int _ | Float _ | Str _ ->
        Buffer.add_string buf (to_string v)
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            go (depth + 1) x)
          xs;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf ": ";
            go (depth + 1) x)
          kvs;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_pretty_string v)

(* ---------------------------------------------------------------- *)
(* Parsing (recursive descent, for round-trip tests and tooling)    *)
(* ---------------------------------------------------------------- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let fail p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      p.pos <- p.pos + 1;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some x when x = c -> p.pos <- p.pos + 1
  | _ -> fail p (Printf.sprintf "expected '%c'" c)

let literal p word value =
  let n = String.length word in
  if
    p.pos + n <= String.length p.src
    && String.sub p.src p.pos n = word
  then begin
    p.pos <- p.pos + n;
    value
  end
  else fail p (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  (* encode a Unicode scalar value as UTF-8 bytes *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> p.pos <- p.pos + 1
    | Some '\\' -> (
        p.pos <- p.pos + 1;
        match peek p with
        | Some '"' -> Buffer.add_char buf '"'; p.pos <- p.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; p.pos <- p.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; p.pos <- p.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; p.pos <- p.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; p.pos <- p.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; p.pos <- p.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; p.pos <- p.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; p.pos <- p.pos + 1; go ()
        | Some 'u' ->
            if p.pos + 5 > String.length p.src then fail p "bad \\u escape";
            let hex = String.sub p.src (p.pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> utf8_of_code buf code
            | None -> fail p "bad \\u escape");
            p.pos <- p.pos + 5;
            go ()
        | _ -> fail p "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        p.pos <- p.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let advance_while cond =
    let rec go () =
      match peek p with
      | Some c when cond c -> p.pos <- p.pos + 1; go ()
      | _ -> ()
    in
    go ()
  in
  (match peek p with Some '-' -> p.pos <- p.pos + 1 | _ -> ());
  advance_while (fun c -> c >= '0' && c <= '9');
  (match peek p with
  | Some '.' ->
      is_float := true;
      p.pos <- p.pos + 1;
      advance_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  (match peek p with
  | Some ('e' | 'E') ->
      is_float := true;
      p.pos <- p.pos + 1;
      (match peek p with Some ('+' | '-') -> p.pos <- p.pos + 1 | _ -> ());
      advance_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let s = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail p "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* integer overflow: fall back to float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail p "bad number")

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> literal p "null" Null
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some '"' -> Str (parse_string p)
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some '[' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value p ] in
        skip_ws p;
        while peek p = Some ',' do
          p.pos <- p.pos + 1;
          items := parse_value p :: !items;
          skip_ws p
        done;
        expect p ']';
        List (List.rev !items)
      end
  | Some '{' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else begin
        let member () =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          (k, v)
        in
        let items = ref [ member () ] in
        while peek p = Some ',' do
          p.pos <- p.pos + 1;
          items := member () :: !items
        done;
        expect p '}';
        Obj (List.rev !items)
      end
  | Some c -> fail p (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
