(** Observability: counters, phase timers and event tracing for the
    synthesis pipeline.

    The paper's evaluation is about {e internal} algorithm behavior —
    how many flow tests PLD avoids, how often decomposition rescues a
    label the cut test rejects, how large expanded circuits get.  This
    module makes those quantities measurable: hot paths bump
    {!Counter}s, phases run inside {!Span}s, and notable occurrences
    (each ratio-search probe, each synthesis result) are {!Trace}d.
    {!Report.stats_json} assembles everything into the versioned JSON
    document described in [doc/OBSERVABILITY.md].

    Everything is disabled by default.  While disabled, every hook is a
    single load-and-branch no-op, so instrumented code pays (well under
    2% on the benchmark tables) for the hooks it does not use.  Enable
    collection around the work you want measured:

    {[
      Obs.set_enabled true;
      Obs.reset ();
      let r = Turbosyn.Synth.run `Turbosyn nl in
      Obs.Report.write_stats "-";
      Obs.set_enabled false
    ]}

    State is process-global and unsynchronized.  Coordinator-domain
    code uses it directly; worker domains of a parallel phase must run
    inside a per-domain {!Shard}, which buffers their writes locally
    and merges them back at the phase barrier
    ([doc/CONCURRENCY.md]). *)

module Json = Json
module Counter = Counter
module Gauge = Gauge
module Histogram = Histogram
module Span = Span
module Trace = Trace
module Timeline = Timeline
module Report = Report
module Prometheus = Prometheus
module Shard = Shard
module Scope = Scope
module Log = Log
module Flame = Flame
module Prof = Prof
module Slo = Slo

val set_enabled : bool -> unit
(** Master switch for all collection ({!Counter}, {!Span}, {!Trace}).
    Off by default. *)

val enabled : unit -> bool
(** Current state of the master switch. *)

val reset : unit -> unit
(** Zero all counters, gauges, histograms and spans (including their GC
    totals) and clear the trace and timeline buffers
    (including their dropped-event counts and the trace sequence numbers).
    Call between measured runs; registration is preserved.  Nothing in the
    reset can fail, so the state is never partially cleared.  A span that
    is {e entered} when reset runs loses its in-flight activation: its
    pending [exit]s are ignored (depth was zeroed) and [entries] counts
    only activations that both started and completed after the reset.

    @raise Invalid_argument while any {!Shard} is live (created and not
    yet released): a reset mid-parallel-phase would race worker domains
    and silently lose their un-merged observations, so it is rejected
    instead.  Finish the phase (or [Shard.release] leaked shards)
    first.  Likewise refused while the {!Prof} sampler is attached: its
    tick thread reads live span state concurrently, so detach first
    ([doc/PROFILING.md]). *)
