(** Prometheus text exposition format (0.0.4): a renderer over the
    metric registries and a strict validator for scrape bodies.

    The renderer prefixes every family with [turbosyn_] and maps
    registries as follows: counters become [_total] counter families;
    gauges become gauge families; spans become labeled families
    ([turbosyn_phase_seconds_total{phase="..."}] and friends, including
    the per-phase GC totals); histograms become cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]. *)

type sample = { labels : (string * string) list; value : float }

type family = {
  fname : string;  (** dotted name; sanitized and prefixed by the renderer *)
  fhelp : string;
  ftype : [ `Counter | `Gauge ];
  samples : sample list;
}

val render :
  ?exclude_prefixes:string list -> ?extra:family list -> unit -> string
(** Render a full scrape body.  [extra] appends caller-maintained
    families (e.g. the serve layer's labeled request counters);
    [exclude_prefixes] suppresses the generic one-family-per-counter
    rendering for counter-name prefixes a caller re-renders through
    [extra] instead, so one underlying registry counter never produces
    two exposition series. *)

val validate : string -> (unit, string list) result
(** Check a scrape body against the exposition format: HELP/TYPE shape
    and placement, metric/label name validity, label escaping, value
    parseability, family contiguity, and histogram bucket structure
    (cumulative counts, a [+Inf] bucket matching [_count], [_sum]
    present).  Returns every violation found. *)

val counter_values : string -> (string * float) list
(** Samples of counter-typed families, keyed by their series text (name
    plus label block) — the stable key for monotonicity checks across
    two scrapes of the same process. *)

val escape_label : string -> string
val sanitize : string -> string
