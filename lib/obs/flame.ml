(* Folding span timelines into flamegraph.pl-compatible folded stacks.

   Timeline slices are flat (name, start, stop) intervals; the call
   structure is recovered from interval containment — a slice lying
   inside another is its child, which is exactly how distinct spans
   nest on one domain (a child span completes before its parent's exit
   records).  Each stack's weight is SELF time: the slice's duration
   minus its direct children's, in integer microseconds, which is what
   flamegraph.pl expects ("a;b;c 1234" per line).

   Slices merged from parallel lanes can overlap without nesting; an
   overlapping slice is treated as a sibling (the stack unwinds to the
   innermost frame that fully contains it), and self time is clamped at
   zero when concurrent children overlap each other, so the output is
   always well-formed — a per-lane interleaving rather than a lie about
   the call structure (doc/OBSERVABILITY.md §Flamegraphs). *)

type entry = {
  name : string;
  start : float;
  stop : float;
  mutable child : float; (* seconds covered by direct children *)
}

(* frame separators are structural in the folded format *)
let clean_frame name =
  String.map (fun c -> if c = ';' || c = ' ' || c = '\n' then '_' else c) name

let fold_slices slices =
  (* parents first: by start ascending, then longer first at equal
     start, so a container always precedes its contents *)
  let sorted =
    List.stable_sort
      (fun (a : Timeline.slice) (b : Timeline.slice) ->
        match Float.compare a.Timeline.start b.Timeline.start with
        | 0 -> Float.compare b.Timeline.stop a.Timeline.stop
        | c -> c)
      slices
  in
  let acc : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  (* innermost first *)
  let emit e rest =
    let self = Float.max 0. (e.stop -. e.start -. e.child) in
    let key =
      String.concat ";"
        (List.rev_map (fun fr -> clean_frame fr.name) (e :: rest))
    in
    let prev = Option.value ~default:0. (Hashtbl.find_opt acc key) in
    Hashtbl.replace acc key (prev +. self)
  in
  let pop_one () =
    match !stack with
    | [] -> ()
    | e :: rest ->
        emit e rest;
        (match rest with
        | parent :: _ -> parent.child <- parent.child +. (e.stop -. e.start)
        | [] -> ());
        stack := rest
  in
  let contains outer (s : Timeline.slice) =
    (* starts are sorted, so s.start >= outer.start already holds *)
    s.Timeline.stop <= outer.stop
  in
  List.iter
    (fun (s : Timeline.slice) ->
      let rec unwind () =
        match !stack with
        | top :: _ when not (contains top s) ->
            pop_one ();
            unwind ()
        | _ -> ()
      in
      unwind ();
      stack :=
        {
          name = s.Timeline.name;
          start = s.Timeline.start;
          stop = s.Timeline.stop;
          child = 0.;
        }
        :: !stack)
    sorted;
  while !stack <> [] do
    pop_one ()
  done;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_string folded =
  let b = Buffer.create 256 in
  List.iter
    (fun (stack, self) ->
      let us = int_of_float (Float.round (self *. 1e6)) in
      if us > 0 then (
        Buffer.add_string b stack;
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int us);
        Buffer.add_char b '\n'))
    folded;
  Buffer.contents b

let of_slices slices = to_string (fold_slices slices)

(* Chrome-trace documents (Report.timeline_json / --timeline files)
   back into slices: every "X" complete event, ts/dur in microseconds. *)
let slices_of_timeline_json j =
  match Json.member "traceEvents" j with
  | Some (Json.List events) ->
      Ok
        (List.filter_map
           (fun ev ->
             match Json.member "ph" ev with
             | Some (Json.Str "X") -> (
                 let num key =
                   match Json.member key ev with
                   | Some (Json.Float f) -> Some f
                   | Some (Json.Int i) -> Some (float_of_int i)
                   | _ -> None
                 in
                 match (Json.member "name" ev, num "ts", num "dur") with
                 | Some (Json.Str name), Some ts, Some dur ->
                     Some
                       {
                         Timeline.name;
                         start = ts /. 1e6;
                         stop = (ts +. dur) /. 1e6;
                       }
                 | _ -> None)
             | _ -> None)
           events)
  | _ -> Error "not a Chrome-trace document (no traceEvents array)"

let write dest text =
  if dest = "-" then print_string text
  else begin
    let oc = open_out dest in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text)
  end
