(* Request-scoped telemetry: one Scope captures every counter, span,
   histogram and timeline slice recorded during one unit of work (one
   /map request, one CLI run) and folds it into the global registries
   on close.

   Built on the Shard machinery (doc/CONCURRENCY.md): a scope owns one
   shard, installed on the serving domain for the duration of the work.
   A parallel phase inside the scope creates its own lane shards as
   always; their barrier merge resolves through the domain-local sink,
   so lane work lands in the scope and reaches the registries when the
   scope itself merges — counters by sum, peaks by max, histogram
   buckets pointwise, all associative, so global totals are the same
   whether a scope interposes or not, for every --jobs N. *)

type t = {
  id : string;
  shard : Shard.t;
  started : float;
  mutable closed : bool;
}

type summary = {
  sc_id : string;
  sc_started : float;
  sc_finished : float;
  sc_counters : (string * int) list;
  sc_spans : (string * float * int) list;
  sc_histograms : (string * Histogram.snapshot) list;
  sc_slices : Timeline.slice list;
  sc_dropped_slices : int;
}

(* Correlation ids: 16 lower-case hex chars (the shape of a traceparent
   span-id).  A per-process random prefix (hashed from the startup
   clock) plus an atomic sequence number — unique within a process,
   collision-unlikely across concurrent processes. *)
let seq = Atomic.make 0

let id_prefix =
  lazy
    (Printf.sprintf "%07x"
       (Hashtbl.hash (Prelude.Timer.wall ()) land 0xFFFFFFF))

let fresh_id () =
  Printf.sprintf "%s%09x" (Lazy.force id_prefix)
    (Atomic.fetch_and_add seq 1 land 0xFFFFFFFFF)

let create ?id () =
  let id =
    match id with Some s when s <> "" -> s | _ -> fresh_id ()
  in
  {
    id;
    shard = Shard.create ();
    started = Prelude.Timer.wall ();
    closed = false;
  }

let id t = t.id
let started t = t.started

let run t f =
  if t.closed then invalid_arg "Obs.Scope.run: scope already closed";
  Log.with_request_id t.id (fun () -> Shard.wrap t.shard f)

let close t =
  if t.closed then invalid_arg "Obs.Scope.close: scope already closed";
  t.closed <- true;
  let finished = Prelude.Timer.wall () in
  let summary =
    {
      sc_id = t.id;
      sc_started = t.started;
      sc_finished = finished;
      sc_counters = Counter.shard_contents (Shard.counters t.shard);
      sc_spans =
        List.map
          (fun (n, s, e, _gc) -> (n, s, e))
          (Span.shard_contents (Shard.spans t.shard));
      sc_histograms = Histogram.shard_contents (Shard.histograms t.shard);
      sc_slices = Timeline.shard_slices (Shard.timeline t.shard);
      sc_dropped_slices = Timeline.shard_dropped (Shard.timeline t.shard);
    }
  in
  Shard.merge t.shard;
  Shard.release t.shard;
  summary

let wrap ?id f =
  let t = create ?id () in
  match run t (fun () -> f t) with
  | v -> (v, close t)
  | exception e ->
      ignore (close t);
      raise e

let span_seconds summary name =
  List.find_map
    (fun (n, s, _) -> if String.equal n name then Some s else None)
    summary.sc_spans

let summary_json s =
  Json.Obj
    [
      ("id", Json.Str s.sc_id);
      ("started", Json.Float s.sc_started);
      ("finished", Json.Float s.sc_finished);
      ("seconds", Json.Float (s.sc_finished -. s.sc_started));
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.sc_counters) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (n, secs, entries) ->
               ( n,
                 Json.Obj
                   [
                     ("seconds", Json.Float secs);
                     ("entries", Json.Int entries);
                   ] ))
             s.sc_spans) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, snap) -> (n, Histogram.snapshot_to_json snap))
             s.sc_histograms) );
      ( "slices",
        Json.List
          (List.map
             (fun (sl : Timeline.slice) ->
               Json.Obj
                 [
                   ("name", Json.Str sl.Timeline.name);
                   ("start", Json.Float sl.Timeline.start);
                   ("stop", Json.Float sl.Timeline.stop);
                 ])
             s.sc_slices) );
      ("dropped_slices", Json.Int s.sc_dropped_slices);
    ]
