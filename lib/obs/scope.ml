(* Request-scoped telemetry: one Scope captures every counter, span,
   histogram and timeline slice recorded during one unit of work (one
   /map request, one CLI run) and folds it into the global registries
   on close.

   Built on the Shard machinery (doc/CONCURRENCY.md): a scope owns one
   shard, installed on the serving domain for the duration of the work.
   A parallel phase inside the scope creates its own lane shards as
   always; their barrier merge resolves through the domain-local sink,
   so lane work lands in the scope and reaches the registries when the
   scope itself merges — counters by sum, peaks by max, histogram
   buckets pointwise, all associative, so global totals are the same
   whether a scope interposes or not, for every --jobs N. *)

type t = {
  id : string;
  shard : Shard.t;
  started : float;
  (* Resource baselines, captured at create on the domain that will run
     the work (create and close must happen on the same domain for the
     GC deltas to be the domain's own — quick_stat is per-domain). *)
  gc_at_open : Gc.stat;
  cpu_at_open : float;
  mutable closed : bool;
}

(* Per-request resource deltas.  GC words are the opening domain's own
   allocation (monotone counters, so deltas are non-negative and a
   parent scope's delta bounds the sum of its sequential children's —
   the additivity property qcheck exercises).  CPU seconds are
   process-wide processor time (Prelude.Timer.cpu): exact when one
   request runs alone, an upper bound under concurrent workers — an
   honest queueing signal either way.  Queue wait is supplied by the
   caller (the serve layer measures it from enqueue to dequeue). *)
type resources = {
  r_cpu_seconds : float;
  r_minor_words : float;
  r_promoted_words : float;
  r_major_words : float;
  r_queue_wait : float;
}

let zero_resources =
  {
    r_cpu_seconds = 0.;
    r_minor_words = 0.;
    r_promoted_words = 0.;
    r_major_words = 0.;
    r_queue_wait = 0.;
  }

type summary = {
  sc_id : string;
  sc_started : float;
  sc_finished : float;
  sc_counters : (string * int) list;
  sc_spans : (string * float * int) list;
  sc_histograms : (string * Histogram.snapshot) list;
  sc_slices : Timeline.slice list;
  sc_dropped_slices : int;
  sc_resources : resources;
}

(* Correlation ids: 16 lower-case hex chars (the shape of a traceparent
   span-id).  A per-process random prefix (hashed from the startup
   clock) plus an atomic sequence number — unique within a process,
   collision-unlikely across concurrent processes. *)
let seq = Atomic.make 0

let id_prefix =
  lazy
    (Printf.sprintf "%07x"
       (Hashtbl.hash (Prelude.Timer.wall ()) land 0xFFFFFFF))

let fresh_id () =
  Printf.sprintf "%s%09x" (Lazy.force id_prefix)
    (Atomic.fetch_and_add seq 1 land 0xFFFFFFFFF)

let create ?id () =
  let id =
    match id with Some s when s <> "" -> s | _ -> fresh_id ()
  in
  {
    id;
    shard = Shard.create ();
    started = Prelude.Timer.wall ();
    gc_at_open = Gc.quick_stat ();
    cpu_at_open = Prelude.Timer.cpu ();
    closed = false;
  }

let id t = t.id
let started t = t.started

let run t f =
  if t.closed then invalid_arg "Obs.Scope.run: scope already closed";
  Log.with_request_id t.id (fun () -> Shard.wrap t.shard f)

let close ?(queue_wait = 0.) t =
  if t.closed then invalid_arg "Obs.Scope.close: scope already closed";
  t.closed <- true;
  let finished = Prelude.Timer.wall () in
  let resources =
    let gc1 = Gc.quick_stat () in
    let pos f = Float.max 0. f in
    {
      r_cpu_seconds = pos (Prelude.Timer.cpu () -. t.cpu_at_open);
      r_minor_words = pos (gc1.Gc.minor_words -. t.gc_at_open.Gc.minor_words);
      r_promoted_words =
        pos (gc1.Gc.promoted_words -. t.gc_at_open.Gc.promoted_words);
      r_major_words = pos (gc1.Gc.major_words -. t.gc_at_open.Gc.major_words);
      r_queue_wait = pos queue_wait;
    }
  in
  let summary =
    {
      sc_id = t.id;
      sc_started = t.started;
      sc_finished = finished;
      sc_counters = Counter.shard_contents (Shard.counters t.shard);
      sc_spans =
        List.map
          (fun (n, s, e, _gc) -> (n, s, e))
          (Span.shard_contents (Shard.spans t.shard));
      sc_histograms = Histogram.shard_contents (Shard.histograms t.shard);
      sc_slices = Timeline.shard_slices (Shard.timeline t.shard);
      sc_dropped_slices = Timeline.shard_dropped (Shard.timeline t.shard);
      sc_resources = resources;
    }
  in
  Shard.merge t.shard;
  Shard.release t.shard;
  summary

let wrap ?id f =
  let t = create ?id () in
  match run t (fun () -> f t) with
  | v -> (v, close t)
  | exception e ->
      ignore (close t);
      raise e

let span_seconds summary name =
  List.find_map
    (fun (n, s, _) -> if String.equal n name then Some s else None)
    summary.sc_spans

let summary_json s =
  Json.Obj
    [
      ("id", Json.Str s.sc_id);
      ("started", Json.Float s.sc_started);
      ("finished", Json.Float s.sc_finished);
      ("seconds", Json.Float (s.sc_finished -. s.sc_started));
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.sc_counters) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (n, secs, entries) ->
               ( n,
                 Json.Obj
                   [
                     ("seconds", Json.Float secs);
                     ("entries", Json.Int entries);
                   ] ))
             s.sc_spans) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, snap) -> (n, Histogram.snapshot_to_json snap))
             s.sc_histograms) );
      ( "slices",
        Json.List
          (List.map
             (fun (sl : Timeline.slice) ->
               Json.Obj
                 [
                   ("name", Json.Str sl.Timeline.name);
                   ("start", Json.Float sl.Timeline.start);
                   ("stop", Json.Float sl.Timeline.stop);
                 ])
             s.sc_slices) );
      ("dropped_slices", Json.Int s.sc_dropped_slices);
      ( "resources",
        Json.Obj
          [
            ("cpu_seconds", Json.Float s.sc_resources.r_cpu_seconds);
            ("minor_words", Json.Float s.sc_resources.r_minor_words);
            ("promoted_words", Json.Float s.sc_resources.r_promoted_words);
            ("major_words", Json.Float s.sc_resources.r_major_words);
            ("queue_wait_seconds", Json.Float s.sc_resources.r_queue_wait);
          ] );
    ]
