(** Minimal JSON values: just enough for the stats report and the trace
    sink, with a parser for round-trip tests and downstream tooling.

    No external dependency: the container image carries no JSON library,
    and the subset used by the stats schema (finite numbers, UTF-8
    strings) is small enough to own. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
      (** Members keep their insertion order; duplicate keys are not
          rejected (the schema never produces them). *)

val equal : t -> t -> bool
(** Structural equality.  Floats compare with [Float.equal] (so [nan]
    equals [nan]); object member order is significant. *)

val to_string : t -> string
(** Compact one-line rendering.  Non-finite floats render as [null]
    (JSON has no representation for them); finite floats render as the
    shortest decimal that parses back to the same value. *)

val to_pretty_string : t -> string
(** Multi-line rendering with two-space indentation, for human eyes. *)

val pp : Format.formatter -> t -> unit
(** Same layout as {!to_pretty_string}. *)

val of_string : string -> (t, string) result
(** Parse one JSON document.  Numbers without a fraction or exponent
    become [Int] (falling back to [Float] on overflow); trailing
    non-whitespace input is an error. *)

val member : string -> t -> t option
(** [member k v] is the value of field [k] when [v] is an [Obj] that has
    one, [None] otherwise. *)
