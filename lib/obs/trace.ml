type event = {
  seq : int;
  at : float;
  name : string;
  fields : (string * Json.t) list;
}

let default_capacity = 4096
let capacity = ref default_capacity
let buffer : event Queue.t = Queue.create ()
let next_seq = ref 0
let dropped_count = ref 0

let clear () =
  Queue.clear buffer;
  next_seq := 0;
  dropped_count := 0

let set_capacity n =
  if n < 0 then invalid_arg "Obs.Trace.set_capacity: negative";
  capacity := n;
  while Queue.length buffer > n do
    ignore (Queue.pop buffer);
    incr dropped_count
  done

let emit name fields =
  if State.on () && !capacity > 0 then begin
    let e = { seq = !next_seq; at = Prelude.Timer.wall (); name; fields } in
    incr next_seq;
    if Queue.length buffer >= !capacity then begin
      ignore (Queue.pop buffer);
      incr dropped_count
    end;
    Queue.add e buffer
  end

let events () = List.rev (Queue.fold (fun acc e -> e :: acc) [] buffer)
let length () = Queue.length buffer
let dropped () = !dropped_count

let event_json e =
  Json.Obj
    ([ ("seq", Json.Int e.seq); ("t", Json.Float e.at); ("event", Json.Str e.name) ]
    @ e.fields)

let write_jsonl oc =
  Queue.iter
    (fun e ->
      output_string oc (Json.to_string (event_json e));
      output_char oc '\n')
    buffer

let to_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_jsonl oc)
