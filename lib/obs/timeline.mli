(** Completed span activations as timeline slices.

    {!Span.exit} records one slice per completed {e outermost} span entry
    while collection is enabled, into a bounded ring (default capacity
    65536; oldest slices are dropped and counted).  {!Report.timeline_json}
    merges these slices with the {!Trace} event ring into a Chrome-trace
    document that loads in Perfetto / [chrome://tracing]. *)

type slice = { name : string; start : float; stop : float }
(** [start]/[stop] are {!Prelude.Timer.wall} seconds (monotonic clock,
    arbitrary epoch — only differences are meaningful). *)

val record : string -> start:float -> stop:float -> unit
(** No-op while collection is disabled or the capacity is 0. *)

val slices : unit -> slice list
(** Oldest first. *)

val length : unit -> int
val dropped : unit -> int

val set_capacity : int -> unit
(** @raise Invalid_argument on a negative capacity. *)

val clear : unit -> unit
(** Drop all slices and zero the dropped counter (part of {!Obs.reset}). *)

(** {1 Per-domain shards}

    The slice ring is a plain [Queue]; worker domains buffer slices in a
    domain-local queue (same capacity bound) that the coordinator replays
    into the ring at the phase barrier.  Use {!Obs.Shard} rather than
    these directly. *)

type shard

val new_shard : unit -> shard
val install_shard : shard -> unit
val uninstall_shard : unit -> unit
val merge_shard : shard -> unit
(** Replay the shard's slices into the calling domain's installed sink
    (an enclosing shard, else the global ring), oldest first,
    re-applying the capacity bound, and empty the shard. *)

val current_shard : unit -> shard option
val restore_shard : shard option -> unit

val shard_slices : shard -> slice list
(** The shard's buffered slices, oldest first, without merging or
    emptying it. *)

val shard_dropped : shard -> int
