(** Assembly of the versioned stats report.

    The report is a single JSON object; [doc/OBSERVABILITY.md] is the
    normative description of the schema.  Version [turbosyn-stats/2]:

    {v
    {
      "schema":     "turbosyn-stats/2",
      "enabled":    true,
      ...caller-supplied extra members (e.g. "run")...,
      "counters":   { "<name>": <int>, ... },
      "gauges":     { "<name>": <float>, ... },
      "spans":      { "<name>": { "seconds": <float>, "entries": <int>,
                                  "gc": { "minor_words": <float>,
                                          "promoted_words": <float>,
                                          "major_words": <float>,
                                          "compactions": <int> } }, ... },
      "histograms": { "<name>": { "count": <int>, "sum": <float>,
                                  "min": <float|null>, "max": <float|null>,
                                  "p50": <float>, "p90": <float>,
                                  "p99": <float>,
                                  "buckets": [[<idx>, <count>], ...] }, ... }
    }
    v}

    Version [turbosyn-stats/1] lacked [gauges], [histograms] and the
    per-span [gc] object; {!Audit.Diff} still accepts v1 documents as
    baselines. *)

val schema_version : string
(** ["turbosyn-stats/2"].  Bumped on any incompatible change to the
    report layout or to the meaning of a documented counter/span. *)

val counters_json : unit -> Json.t
(** The [counters] object: every registered counter, sorted by name. *)

val gauges_json : unit -> Json.t
(** The [gauges] object: every registered gauge, sorted by name. *)

val spans_json : unit -> Json.t
(** The [spans] object: every registered span (with GC totals), sorted
    by name. *)

val histograms_json : unit -> Json.t
(** The [histograms] object: every registered histogram's snapshot,
    sorted by name. *)

val stats_json : ?extra:(string * Json.t) list -> unit -> Json.t
(** The full report.  [extra] members (e.g. a [run] description) are
    spliced between the schema header and the metric objects; their
    names must not collide with the reserved members [schema],
    [enabled], [counters], [gauges], [spans], [histograms]. *)

val write_stats : ?extra:(string * Json.t) list -> string -> unit
(** [write_stats dest] pretty-prints {!stats_json} to the file [dest],
    or to stdout when [dest] is ["-"]. *)

val timeline_json :
  ?slices:Timeline.slice list -> ?events:Trace.event list -> unit -> Json.t
(** Chrome-trace ("Trace Event Format") document over the {!Timeline}
    slice ring and the {!Trace} event ring: an object with a
    [traceEvents] array (["M"] [process_name]/[thread_name] metadata
    events naming the track, one ["X"] complete event per recorded span
    activation, one ["i"] instant per trace event, timestamps in
    microseconds relative to the earliest record) that loads directly in
    Perfetto or [chrome://tracing].  [slices]/[events] override the
    global rings — e.g. a single request's {!Scope} summary slices for
    the [/debug/trace] endpoint. *)

val write_timeline : string -> unit
(** [write_timeline dest] writes {!timeline_json} (compact) to the file
    [dest], or to stdout when [dest] is ["-"]. *)
