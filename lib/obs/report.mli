(** Assembly of the versioned stats report.

    The report is a single JSON object; [doc/OBSERVABILITY.md] is the
    normative description of the schema.  Version [turbosyn-stats/1]:

    {v
    {
      "schema":   "turbosyn-stats/1",
      "enabled":  true,
      ...caller-supplied extra members (e.g. "run")...,
      "counters": { "<name>": <int>, ... },
      "spans":    { "<name>": { "seconds": <float>, "entries": <int> }, ... }
    }
    v} *)

val schema_version : string
(** ["turbosyn-stats/1"].  Bumped on any incompatible change to the
    report layout or to the meaning of a documented counter/span. *)

val counters_json : unit -> Json.t
(** The [counters] object: every registered counter, sorted by name. *)

val spans_json : unit -> Json.t
(** The [spans] object: every registered span, sorted by name. *)

val stats_json : ?extra:(string * Json.t) list -> unit -> Json.t
(** The full report.  [extra] members (e.g. a [run] description) are
    spliced between the schema header and the [counters]/[spans]
    objects; their names must not collide with the reserved members
    [schema], [enabled], [counters], [spans]. *)

val write_stats : ?extra:(string * Json.t) list -> string -> unit
(** [write_stats dest] pretty-prints {!stats_json} to the file [dest],
    or to stdout when [dest] is ["-"]. *)

val timeline_json : unit -> Json.t
(** Chrome-trace ("Trace Event Format") document over the {!Timeline}
    slice ring and the {!Trace} event ring: an object with a
    [traceEvents] array (one ["X"] complete event per recorded span
    activation, one ["i"] instant per trace event, timestamps in
    microseconds relative to the earliest record) that loads directly in
    Perfetto or [chrome://tracing]. *)

val write_timeline : string -> unit
(** [write_timeline dest] writes {!timeline_json} (compact) to the file
    [dest], or to stdout when [dest] is ["-"]. *)
