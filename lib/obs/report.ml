let schema_version = "turbosyn-stats/2"

let counters_json () =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (Counter.all ()))

let gauges_json () =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) (Gauge.all ()))

let spans_json () =
  Json.Obj
    (List.map
       (fun (name, seconds, entries, (gc : Span.gc_totals)) ->
         ( name,
           Json.Obj
             [
               ("seconds", Json.Float seconds);
               ("entries", Json.Int entries);
               ( "gc",
                 Json.Obj
                   [
                     ("minor_words", Json.Float gc.Span.minor_words);
                     ("promoted_words", Json.Float gc.Span.promoted_words);
                     ("major_words", Json.Float gc.Span.major_words);
                     ("compactions", Json.Int gc.Span.compactions);
                   ] );
             ] ))
       (Span.all_full ()))

let histograms_json () =
  Json.Obj
    (List.map
       (fun (name, s) -> (name, Histogram.snapshot_to_json s))
       (Histogram.all ()))

let stats_json ?(extra = []) () =
  Json.Obj
    ([
       ("schema", Json.Str schema_version);
       ("enabled", Json.Bool (State.enabled ()));
     ]
    @ extra
    @ [
        ("counters", counters_json ());
        ("gauges", gauges_json ());
        ("spans", spans_json ());
        ("histograms", histograms_json ());
      ])

let write_stats ?extra dest =
  let json = stats_json ?extra () in
  let s = Json.to_pretty_string json in
  if dest = "-" then print_endline s
  else begin
    let oc = open_out dest in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc s;
        output_char oc '\n')
  end

(* Chrome-trace ("Trace Event Format") document over the timeline slices
   and the event ring; loads in Perfetto and chrome://tracing.  One
   process/track; "X" complete events for span activations (they nest in
   time on the single thread), "i" instants for trace events.  Timestamps
   are microseconds relative to the earliest recorded point. *)
let timeline_json ?slices ?events () =
  let slices =
    match slices with Some s -> s | None -> Timeline.slices ()
  in
  let events = match events with Some e -> e | None -> Trace.events () in
  let t0 =
    List.fold_left
      (fun acc (s : Timeline.slice) -> Float.min acc s.start)
      (List.fold_left
         (fun acc (e : Trace.event) -> Float.min acc e.at)
         infinity events)
      slices
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let us t = (t -. t0) *. 1e6 in
  let common name ph =
    [
      ("name", Json.Str name);
      ("ph", Json.Str ph);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  (* metadata events name the track: Perfetto and chrome://tracing show
     "turbosyn / synthesis pipeline" instead of bare pid/tid numbers *)
  let meta_events =
    [
      Json.Obj
        (common "process_name" "M"
        @ [ ("args", Json.Obj [ ("name", Json.Str "turbosyn") ]) ]);
      Json.Obj
        (common "thread_name" "M"
        @ [ ("args", Json.Obj [ ("name", Json.Str "synthesis pipeline") ]) ]);
    ]
  in
  let slice_events =
    List.map
      (fun (s : Timeline.slice) ->
        Json.Obj
          (common s.Timeline.name "X"
          @ [
              ("cat", Json.Str "span");
              ("ts", Json.Float (us s.Timeline.start));
              ("dur", Json.Float ((s.Timeline.stop -. s.Timeline.start) *. 1e6));
            ]))
      slices
  in
  let instant_events =
    List.map
      (fun (e : Trace.event) ->
        Json.Obj
          (common e.Trace.name "i"
          @ [
              ("cat", Json.Str "event");
              ("ts", Json.Float (us e.Trace.at));
              ("s", Json.Str "t");
              ("args", Json.Obj (("seq", Json.Int e.Trace.seq) :: e.Trace.fields));
            ]))
      events
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta_events @ slice_events @ instant_events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_timeline dest =
  let s = Json.to_string (timeline_json ()) in
  if dest = "-" then print_endline s
  else begin
    let oc = open_out dest in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc s;
        output_char oc '\n')
  end
