let schema_version = "turbosyn-stats/1"

let counters_json () =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (Counter.all ()))

let spans_json () =
  Json.Obj
    (List.map
       (fun (name, seconds, entries) ->
         ( name,
           Json.Obj
             [ ("seconds", Json.Float seconds); ("entries", Json.Int entries) ]
         ))
       (Span.all ()))

let stats_json ?(extra = []) () =
  Json.Obj
    ([
       ("schema", Json.Str schema_version);
       ("enabled", Json.Bool (State.enabled ()));
     ]
    @ extra
    @ [ ("counters", counters_json ()); ("spans", spans_json ()) ])

let write_stats ?extra dest =
  let json = stats_json ?extra () in
  let s = Json.to_pretty_string json in
  if dest = "-" then print_endline s
  else begin
    let oc = open_out dest in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc s;
        output_char oc '\n')
  end
