(** Named monotonic counters with a process-global registry.

    A counter is created once at module-initialization time (creation is
    idempotent per name) and bumped from hot paths.  Every mutation is
    gated on the global switch ({!Obs.set_enabled}): when observability is
    off, [incr]/[add]/[record_max] reduce to one load and one branch — no
    allocation, no hashing.

    The registered names form the [counters] object of the stats schema;
    [doc/OBSERVABILITY.md] documents each one. *)

type t
(** A registered counter.  Physically equal for equal names. *)

val make : string -> t
(** [make name] returns the counter registered under [name], creating it
    at zero on first use.  Dotted lower-case names ([subsystem.metric])
    by convention. *)

val name : t -> string

val value : t -> int
(** Current value; readable whether or not observability is enabled. *)

val incr : t -> unit
(** Add one.  No-op while observability is disabled. *)

val add : t -> int -> unit
(** Add a non-negative amount.  No-op while observability is disabled.
    @raise Invalid_argument on a negative amount. *)

val record_max : t -> int -> unit
(** High-water gauge: raise the counter to the given value if it is
    larger (used for peaks, e.g. BDD node counts).  No-op while
    observability is disabled. *)

val find : string -> int option
(** Look a counter up by name; [None] if never created. *)

val all : unit -> (string * int) list
(** Every registered counter with its value, sorted by name. *)

val reset_all : unit -> unit
(** Zero every registered counter (registration survives). *)

(** {2 Per-domain shards}

    The registry is unsynchronized; worker domains must never mutate it
    directly.  {!Obs.Shard} installs a shard into a domain with
    [install_shard], after which [incr]/[add]/[record_max] accumulate
    into domain-local cells, and the coordinator folds the cells back
    with [merge_shard] at the phase barrier ([adds] merge by sum,
    [record_max] by max — both commutative, so merge order cannot
    affect totals).  Use {!Obs.Shard} rather than these directly. *)

type shard

val new_shard : unit -> shard
val install_shard : shard -> unit
(** Route this domain's counter mutations into [shard]. *)

val uninstall_shard : unit -> unit
(** Restore direct registry writes on this domain. *)

val merge_shard : shard -> unit
(** Fold the shard's cells into the calling domain's installed sink —
    an enclosing shard (so an {!Obs.Scope} wrapping a parallel phase
    keeps lane work attributed to the scope) or, with none installed,
    the global registry — and empty it.  Call from a domain the shard
    is not installed on (the coordinator, after the barrier). *)

val current_shard : unit -> shard option
(** The shard installed on the calling domain, if any. *)

val restore_shard : shard option -> unit
(** Reinstate a previously saved installation state (used by
    {!Obs.Shard.wrap} to nest installations). *)

val shard_contents : shard -> (string * int) list
(** The shard's local counter values (adds folded with peaks), sorted
    by name, without merging or emptying it. *)
