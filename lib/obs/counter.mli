(** Named monotonic counters with a process-global registry.

    A counter is created once at module-initialization time (creation is
    idempotent per name) and bumped from hot paths.  Every mutation is
    gated on the global switch ({!Obs.set_enabled}): when observability is
    off, [incr]/[add]/[record_max] reduce to one load and one branch — no
    allocation, no hashing.

    The registered names form the [counters] object of the stats schema;
    [doc/OBSERVABILITY.md] documents each one. *)

type t
(** A registered counter.  Physically equal for equal names. *)

val make : string -> t
(** [make name] returns the counter registered under [name], creating it
    at zero on first use.  Dotted lower-case names ([subsystem.metric])
    by convention. *)

val name : t -> string

val value : t -> int
(** Current value; readable whether or not observability is enabled. *)

val incr : t -> unit
(** Add one.  No-op while observability is disabled. *)

val add : t -> int -> unit
(** Add a non-negative amount.  No-op while observability is disabled.
    @raise Invalid_argument on a negative amount. *)

val record_max : t -> int -> unit
(** High-water gauge: raise the counter to the given value if it is
    larger (used for peaks, e.g. BDD node counts).  No-op while
    observability is disabled. *)

val find : string -> int option
(** Look a counter up by name; [None] if never created. *)

val all : unit -> (string * int) list
(** Every registered counter with its value, sorted by name. *)

val reset_all : unit -> unit
(** Zero every registered counter (registration survives). *)
