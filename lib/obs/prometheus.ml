(* Prometheus text exposition format (version 0.0.4) over the metric
   registries, plus a strict validator for it.  The renderer is what
   [turbosyn serve] returns from /metrics; the validator backs the
   [promlint] subcommand and the scrape tests, so the two halves keep
   each other honest. *)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let prefix = "turbosyn_"

(* dotted registry names -> prometheus metric names *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* shortest float form that survives the round trip; integral values
   render without an exponent so counters read naturally *)
let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let fmt_le v =
  if v = infinity then "+Inf" else Printf.sprintf "%.9g" v

type sample = { labels : (string * string) list; value : float }

type family = {
  fname : string; (* without the [prefix]; sanitized by the renderer *)
  fhelp : string;
  ftype : [ `Counter | `Gauge ];
  samples : sample list;
}

(* one family: HELP, TYPE, then "<name><suffix><labels> <value>" lines *)
let add_family buf ~name ~help ~mtype samples =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name mtype);
  List.iter
    (fun (suffix, labels, v) ->
      let labels_s =
        match labels with
        | [] -> ""
        | ls ->
            "{"
            ^ String.concat ","
                (List.map
                   (fun (k, v) ->
                     Printf.sprintf "%s=\"%s\"" k (escape_label v))
                   ls)
            ^ "}"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s%s %s\n" name suffix labels_s (fmt_value v)))
    samples

let render ?(exclude_prefixes = []) ?(extra = []) () =
  let buf = Buffer.create 8192 in
  let excluded name =
    List.exists
      (fun p ->
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p)
      exclude_prefixes
  in
  (* event counters, one family each; [exclude_prefixes] skips counter
     namespaces a caller re-renders as a labeled family via [extra]
     (e.g. the serve layer's per-route/status request counters) *)
  List.iter
    (fun (name, v) ->
      if not (excluded name) then
        add_family buf
          ~name:(prefix ^ sanitize name ^ "_total")
          ~help:(Printf.sprintf "Event counter %s." name)
          ~mtype:"counter"
          [ ("", [], float_of_int v) ])
    (Counter.all ());
  (* gauges *)
  List.iter
    (fun (name, v) ->
      add_family buf
        ~name:(prefix ^ sanitize name)
        ~help:(Printf.sprintf "Gauge %s." name)
        ~mtype:"gauge"
        [ ("", [], v) ])
    (Gauge.all ());
  (* spans become labeled families: one series per phase.  The [phase]
     label carries the raw dotted name, exercising label escaping *)
  let spans = Span.all_full () in
  if spans <> [] then begin
    let series f =
      List.map (fun (name, sec, n, gc) -> (name, f sec n gc)) spans
    in
    let labeled vs =
      List.map (fun (name, v) -> ("", [ ("phase", name) ], v)) vs
    in
    add_family buf
      ~name:(prefix ^ "phase_seconds_total")
      ~help:"Wall seconds accumulated per phase span." ~mtype:"counter"
      (labeled (series (fun sec _ _ -> sec)));
    add_family buf
      ~name:(prefix ^ "phase_entries_total")
      ~help:"Completed outermost entries per phase span." ~mtype:"counter"
      (labeled (series (fun _ n _ -> float_of_int n)));
    add_family buf
      ~name:(prefix ^ "phase_minor_words_total")
      ~help:"Minor-heap words allocated inside each phase span."
      ~mtype:"counter"
      (labeled (series (fun _ _ gc -> gc.Span.minor_words)));
    add_family buf
      ~name:(prefix ^ "phase_promoted_words_total")
      ~help:"Words promoted to the major heap inside each phase span."
      ~mtype:"counter"
      (labeled (series (fun _ _ gc -> gc.Span.promoted_words)));
    add_family buf
      ~name:(prefix ^ "phase_major_words_total")
      ~help:"Major-heap words allocated inside each phase span."
      ~mtype:"counter"
      (labeled (series (fun _ _ gc -> gc.Span.major_words)));
    add_family buf
      ~name:(prefix ^ "phase_compactions_total")
      ~help:"Heap compactions observed inside each phase span."
      ~mtype:"counter"
      (labeled (series (fun _ _ gc -> float_of_int gc.Span.compactions)))
  end;
  (* histograms: cumulative le buckets (observed boundaries plus +Inf),
     then _sum and _count, per the exposition format *)
  List.iter
    (fun (name, (s : Histogram.snapshot)) ->
      let fam = prefix ^ sanitize name in
      let buckets, _ =
        List.fold_left
          (fun (acc, cum) (i, c) ->
            let cum = cum + c in
            ( ( "_bucket",
                [ ("le", fmt_le (Histogram.bucket_upper i)) ],
                float_of_int cum )
              :: acc,
              cum ))
          ([], 0) s.Histogram.s_buckets
      in
      let buckets =
        List.rev
          (("_bucket", [ ("le", "+Inf") ], float_of_int s.Histogram.s_count)
          :: buckets)
      in
      (* drop a duplicate +Inf when the top bucket was already infinite *)
      let buckets =
        let seen = Hashtbl.create 8 in
        List.filter
          (fun (_, labels, _) ->
            match labels with
            | [ ("le", le) ] ->
                if Hashtbl.mem seen le then false
                else begin
                  Hashtbl.replace seen le ();
                  true
                end
            | _ -> true)
          buckets
      in
      add_family buf ~name:fam
        ~help:(Printf.sprintf "Distribution %s." name)
        ~mtype:"histogram"
        (buckets
        @ [
            ("_sum", [], s.Histogram.s_sum);
            ("_count", [], float_of_int s.Histogram.s_count);
          ]))
    (Histogram.all ());
  (* caller-provided families (e.g. the serve request counters) *)
  List.iter
    (fun f ->
      add_family buf
        ~name:(prefix ^ sanitize f.fname)
        ~help:f.fhelp
        ~mtype:(match f.ftype with `Counter -> "counter" | `Gauge -> "gauge")
        (List.map (fun s -> ("", s.labels, s.value)) f.samples))
    extra;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  String.length s > 0
  && is_name_start s.[0]
  && String.for_all is_name_char s

(* a sample's family: strip the histogram sample suffixes *)
let family_of typed name =
  let strip suffix =
    if
      String.length name > String.length suffix
      && String.sub name
           (String.length name - String.length suffix)
           (String.length suffix)
         = suffix
    then
      let base =
        String.sub name 0 (String.length name - String.length suffix)
      in
      if Hashtbl.find_opt typed base = Some "histogram" then Some base
      else None
    else None
  in
  match strip "_bucket" with
  | Some b -> b
  | None -> (
      match strip "_sum" with
      | Some b -> b
      | None -> ( match strip "_count" with Some b -> b | None -> name))

type parsed_sample = {
  p_name : string; (* metric name as written, suffixes included *)
  p_labels : (string * string) list;
  p_value : float;
  p_line : int;
}

(* parse `name{k="v",...} value` — returns errors rather than raising *)
let parse_sample ~line_no line =
  let err msg = Error (Printf.sprintf "line %d: %s" line_no msg) in
  let n = String.length line in
  let rec name_end i = if i < n && is_name_char line.[i] then name_end (i + 1) else i in
  let ne = name_end 0 in
  if ne = 0 then err "sample line does not start with a metric name"
  else
    let name = String.sub line 0 ne in
    if not (valid_name name) then err ("invalid metric name " ^ name)
    else
      let labels_and_rest =
        if ne < n && line.[ne] = '{' then begin
          (* scan the label block honouring escapes *)
          let buf = Buffer.create 16 in
          let labels = ref [] in
          let key = ref "" in
          let state = ref `Key in
          let i = ref (ne + 1) in
          let error = ref None in
          let finished = ref (-1) in
          while !finished < 0 && !error = None && !i < n do
            let c = line.[!i] in
            (match !state with
            | `Key ->
                if c = '}' && Buffer.length buf = 0 && !labels <> [] then
                  finished := !i + 1
                else if c = '=' then begin
                  key := Buffer.contents buf;
                  Buffer.clear buf;
                  if not (valid_name !key) then
                    error := Some ("invalid label name " ^ !key)
                  else state := `Quote
                end
                else Buffer.add_char buf c
            | `Quote ->
                if c = '"' then state := `Value
                else error := Some "label value is not quoted"
            | `Value ->
                if c = '\\' then state := `Escape
                else if c = '"' then begin
                  labels := (!key, Buffer.contents buf) :: !labels;
                  Buffer.clear buf;
                  state := `Sep
                end
                else if c = '\n' then
                  error := Some "raw newline in label value"
                else Buffer.add_char buf c
            | `Escape ->
                (match c with
                | '\\' -> Buffer.add_char buf '\\'
                | '"' -> Buffer.add_char buf '"'
                | 'n' -> Buffer.add_char buf '\n'
                | c ->
                    error :=
                      Some (Printf.sprintf "invalid escape \\%c in label value" c));
                state := `Value
            | `Sep ->
                if c = ',' then state := `Key
                else if c = '}' then finished := !i + 1
                else error := Some "expected ',' or '}' after label value");
            incr i
          done;
          match !error with
          | Some e -> Error e
          | None ->
              if !finished < 0 then Error "unterminated label block"
              else Ok (List.rev !labels, !finished)
        end
        else Ok ([], ne)
      in
      match labels_and_rest with
      | Error e -> err e
      | Ok (labels, rest_at) ->
          let rest = String.sub line rest_at (n - rest_at) in
          let rest = String.trim rest in
          let value_str =
            match String.index_opt rest ' ' with
            | Some i -> String.sub rest 0 i (* optional timestamp follows *)
            | None -> rest
          in
          let value =
            match value_str with
            | "+Inf" -> Some infinity
            | "-Inf" -> Some neg_infinity
            | "NaN" -> Some Float.nan
            | s -> float_of_string_opt s
          in
          (match value with
          | None -> err (Printf.sprintf "unparseable value %S" value_str)
          | Some v -> Ok { p_name = name; p_labels = labels; p_value = v; p_line = line_no })

let known_types = [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]

(* Validate a scrape body.  Checks: HELP/TYPE shape and placement, metric
   and label name validity, label escaping, value parseability, family
   grouping (no interleaving), and histogram bucket structure
   (cumulative counts, +Inf bucket present and equal to _count). *)
let validate body =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let typed : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let helped : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let samples : parsed_sample list ref = ref [] in
  let family_order : string list ref = ref [] in
  let last_family = ref "" in
  let note_family fam line_no =
    if fam <> !last_family then begin
      if List.mem fam !family_order then
        add
          (Printf.sprintf "line %d: samples of family %s are not contiguous"
             line_no fam)
      else family_order := fam :: !family_order;
      last_family := fam
    end
  in
  let lines = String.split_on_char '\n' body in
  List.iteri
    (fun idx line ->
      let line_no = idx + 1 in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "HELP" :: name :: _ :: _ ->
            if not (valid_name name) then
              add
                (Printf.sprintf "line %d: invalid metric name in HELP: %s"
                   line_no name)
            else if Hashtbl.mem helped name then
              add (Printf.sprintf "line %d: duplicate HELP for %s" line_no name)
            else Hashtbl.replace helped name ()
        | "#" :: "HELP" :: _ ->
            add (Printf.sprintf "line %d: malformed HELP line" line_no)
        | "#" :: "TYPE" :: name :: ty :: [] ->
            if not (valid_name name) then
              add
                (Printf.sprintf "line %d: invalid metric name in TYPE: %s"
                   line_no name)
            else if not (List.mem ty known_types) then
              add (Printf.sprintf "line %d: unknown type %s" line_no ty)
            else if Hashtbl.mem typed name then
              add (Printf.sprintf "line %d: duplicate TYPE for %s" line_no name)
            else begin
              if
                List.exists
                  (fun s -> family_of typed s.p_name = name)
                  !samples
              then
                add
                  (Printf.sprintf
                     "line %d: TYPE for %s appears after its samples" line_no
                     name);
              Hashtbl.replace typed name ty
            end
        | "#" :: "TYPE" :: _ ->
            add (Printf.sprintf "line %d: malformed TYPE line" line_no)
        | _ -> () (* plain comment *)
      end
      else
        match parse_sample ~line_no line with
        | Error e -> add e
        | Ok s ->
            let fam = family_of typed s.p_name in
            if not (Hashtbl.mem typed fam) then
              add
                (Printf.sprintf "line %d: sample %s has no TYPE declaration"
                   line_no s.p_name)
            else note_family fam s.p_line;
            samples := s :: !samples)
    lines;
  let samples = List.rev !samples in
  (* histogram structure *)
  Hashtbl.iter
    (fun fam ty ->
      if ty = "histogram" then begin
        let of_suffix suffix =
          List.filter (fun s -> s.p_name = fam ^ suffix) samples
        in
        let buckets = of_suffix "_bucket" in
        let les =
          List.filter_map
            (fun s ->
              match List.assoc_opt "le" s.p_labels with
              | Some le -> (
                  match le with
                  | "+Inf" -> Some (infinity, s.p_value)
                  | l -> (
                      match float_of_string_opt l with
                      | Some f -> Some (f, s.p_value)
                      | None ->
                          add
                            (Printf.sprintf
                               "histogram %s: unparseable le %S" fam l);
                          None))
              | None ->
                  add
                    (Printf.sprintf
                       "histogram %s: _bucket sample without le label" fam);
                  None)
            buckets
        in
        if les = [] then
          add (Printf.sprintf "histogram %s: no _bucket samples" fam)
        else begin
          if not (List.exists (fun (le, _) -> le = infinity) les) then
            add (Printf.sprintf "histogram %s: missing +Inf bucket" fam);
          let sorted =
            List.sort (fun (a, _) (b, _) -> Float.compare a b) les
          in
          let rec check_cumulative = function
            | (_, c1) :: ((_, c2) :: _ as rest) ->
                if c2 < c1 then
                  add
                    (Printf.sprintf
                       "histogram %s: bucket counts are not cumulative" fam);
                check_cumulative rest
            | _ -> ()
          in
          check_cumulative sorted;
          match (of_suffix "_count", List.rev sorted) with
          | [ c ], (le_top, top) :: _ when le_top = infinity ->
              if c.p_value <> top then
                add
                  (Printf.sprintf
                     "histogram %s: _count does not equal the +Inf bucket" fam)
          | [], _ -> add (Printf.sprintf "histogram %s: missing _count" fam)
          | _ :: _ :: _, _ ->
              add (Printf.sprintf "histogram %s: duplicate _count" fam)
          | _ -> ()
        end;
        if of_suffix "_sum" = [] then
          add (Printf.sprintf "histogram %s: missing _sum" fam)
      end)
    typed;
  match List.rev !errors with [] -> Ok () | es -> Error es

(* Values of counter-typed samples keyed by their literal series text
   (name plus label block) — the stable key for cross-scrape
   monotonicity checks. *)
let counter_values body =
  let typed : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let out = ref [] in
  let lines = String.split_on_char '\n' body in
  List.iteri
    (fun idx line ->
      let line_no = idx + 1 in
      if String.length line > 0 && line.[0] = '#' then (
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: ty :: [] -> Hashtbl.replace typed name ty
        | _ -> ())
      else if line <> "" then
        match parse_sample ~line_no line with
        | Error _ -> ()
        | Ok s ->
            if Hashtbl.find_opt typed (family_of typed s.p_name) = Some "counter"
            then begin
              let key =
                s.p_name
                ^
                match s.p_labels with
                | [] -> ""
                | ls ->
                    "{"
                    ^ String.concat ","
                        (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
                    ^ "}"
              in
              out := (key, s.p_value) :: !out
            end)
    lines;
  List.rev !out
