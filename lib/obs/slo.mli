(** Declarative service-level objectives and scrape-time burn rates.

    Objectives are parsed from compact specs
    (["route=/map,p99=250ms,err=0.1%"]) and evaluated against data the
    registries already hold — a route's latency {!Histogram} snapshot
    and request/error totals — so burn rates cost nothing per request
    and reproduce exactly from a scraped [/metrics] body
    ([doc/PROFILING.md] §SLOs and burn rates).

    Latency burn = (fraction of requests over target) / (1 - q);
    error burn = error rate / budget.  1.0 means the budget is consumed
    exactly as fast as it accrues; above 1.0 the objective is being
    violated.  Latency is evaluated at the histogram bucket boundary at
    or above the target ([lv_good_upper]) — published so scrape-side
    reproduction is exact and the ≤ one-√2-bucket slack is visible. *)

type objective = {
  o_route : string;
  o_latency : (string * float * float) option;
      (** (objective label e.g. ["p99"], quantile, target seconds) *)
  o_err : float option;  (** error budget as a fraction of requests *)
}

val parse : string -> (objective, string) result
(** Parse one spec: comma-separated [key=value] with [route=<path>]
    (required), at most one [p<NN>=<duration>] ([ms]/[s] suffix, plain
    seconds otherwise), and [err=<pct>%] (or a plain fraction). *)

val parse_all : string list -> (objective list, string) result
(** First error wins. *)

val parse_file : string -> (objective list, string) result
(** One spec per line; blank lines and [#] comments ignored. *)

(** {1 Evaluation} *)

type latency_verdict = {
  lv_label : string;
  lv_quantile : float;
  lv_target : float;
  lv_good_upper : float;
      (** the bucket boundary actually evaluated,
          [Histogram.bucket_upper (bucket_of target)] *)
  lv_good : int;  (** observations at or under [lv_good_upper] *)
  lv_count : int;
  lv_bad_fraction : float;
  lv_burn : float;
  lv_ok : bool;
}

type err_verdict = {
  ev_budget : float;
  ev_errors : int;
  ev_total : int;
  ev_rate : float;
  ev_burn : float;
  ev_ok : bool;
}

type verdict = {
  v_route : string;
  v_latency : latency_verdict option;
  v_err : err_verdict option;
  v_ok : bool;  (** all present objectives within budget *)
}

val evaluate :
  objective ->
  latency:Histogram.snapshot ->
  total:int ->
  errors:int ->
  verdict
(** Pure arithmetic; an empty snapshot / zero totals yield burn 0
    (nothing served = nothing violated). *)

val verdict_json : verdict -> Json.t
(** One route's entry in the [/debug/slo] document (schema
    [turbosyn-slo/1]): [route], optional [latency] and [errors]
    objects, [ok]. *)

val families : verdict list -> Prometheus.family list
(** Gauge families for {!Prometheus.render}'s [?extra]:
    [slo.latency_burn_rate{route,objective}],
    [slo.latency_target_seconds{route,objective}],
    [slo.error_burn_rate{route}], [slo.error_budget{route}],
    [slo.ok{route}].  Empty-sample families are omitted. *)
