(** Bounded ring buffer of structured events with a JSON-lines sink.

    Tracing records {e individual} occurrences (one ratio-search probe,
    one synthesis result) where counters only keep totals.  The buffer
    keeps the most recent {!set_capacity} events; older events are
    dropped and counted in {!dropped}, so a runaway phase cannot exhaust
    memory.

    [emit] is gated on {!Obs.set_enabled} like every other hook.  Note
    that the caller constructs the field list before the gate is
    checked, so keep [emit] out of per-edge hot loops — per-probe and
    per-phase events are the intended granularity. *)

type event = {
  seq : int;  (** global emission index, 0-based, monotonic *)
  at : float;  (** wall-clock seconds (Unix epoch) at emission *)
  name : string;  (** event kind, e.g. ["search.probe"] *)
  fields : (string * Json.t) list;  (** event payload *)
}

val set_capacity : int -> unit
(** Resize the ring (default 4096).  Shrinking drops the oldest events;
    capacity 0 disables tracing entirely.
    @raise Invalid_argument on a negative capacity. *)

val emit : string -> (string * Json.t) list -> unit
(** [emit name fields] appends one event.  No-op while observability is
    disabled or the capacity is 0.  Field names should avoid the
    reserved keys [seq], [t] and [event] (see {!event_json}). *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val length : unit -> int
(** Number of buffered events. *)

val dropped : unit -> int
(** Events lost to the capacity bound since the last {!clear}. *)

val clear : unit -> unit
(** Drop all events and reset the sequence and drop counters. *)

val event_json : event -> Json.t
(** One event as a flat JSON object: the reserved members [seq], [t]
    and [event] followed by the payload fields. *)

val write_jsonl : out_channel -> unit
(** Write the buffered events as JSON lines (one {!event_json} object
    per line), oldest first. *)

val to_file : string -> unit
(** [to_file path] truncates [path] and writes {!write_jsonl} output. *)
