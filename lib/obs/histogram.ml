(* Log-bucketed distribution sketches with a process-global registry.

   Buckets grow geometrically by sqrt 2 (two buckets per doubling, so a
   quantile read off a bucket upper bound over-estimates by at most
   ~41%), spanning ~1e-9 .. ~3e12 — microsecond latencies and
   million-node expansion volumes land in the same fixed layout, which
   is what makes snapshots mergeable across domains and comparable
   across documents without carrying per-histogram bucket bounds. *)

let nbuckets = 144

(* upper bound of bucket [i]: 2^((i - 60) / 2); bucket 0 also absorbs
   everything at or below its bound (including zero and negatives) *)
let bucket_upper i =
  if i >= nbuckets - 1 then infinity
  else 2.0 ** (float_of_int (i - 60) /. 2.0)

let bucket_of v =
  if not (v > bucket_upper 0) then 0
  else
    let i = 60 + int_of_float (Float.ceil (2.0 *. Float.log2 v)) in
    if i < 0 then 0 else if i > nbuckets - 1 then nbuckets - 1 else i

type t = {
  name : string;
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let make name =
  match Hashtbl.find_opt registry name with
  | Some h -> h
  | None ->
      let h =
        {
          name;
          counts = Array.make nbuckets 0;
          n = 0;
          sum = 0.;
          mn = infinity;
          mx = neg_infinity;
        }
      in
      Hashtbl.replace registry name h;
      h

let name h = h.name
let count h = h.n
let sum h = h.sum

let record h v =
  let b = bucket_of v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.mn then h.mn <- v;
  if v > h.mx then h.mx <- v

(* Per-domain shards (Obs.Shard): with a shard installed, observations
   land in a domain-local histogram of the same fixed bucket layout and
   are folded into the registry at the phase barrier — the same pointwise
   merge the snapshot codec uses across documents.  Bucket counts merge
   exactly; [sum] is a float fold, so its last bits depend on merge
   order (doc/OBSERVABILITY.md §Sharding). *)
type shard = (string, t) Hashtbl.t

let shard_key : shard option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let new_shard () : shard = Hashtbl.create 16
let install_shard sh = Domain.DLS.set shard_key (Some sh)
let uninstall_shard () = Domain.DLS.set shard_key None
let current_shard () = Domain.DLS.get shard_key
let restore_shard s = Domain.DLS.set shard_key s

let cell_of sh name =
  match Hashtbl.find_opt sh name with
  | Some h -> h
  | None ->
      let h =
        {
          name;
          counts = Array.make nbuckets 0;
          n = 0;
          sum = 0.;
          mn = infinity;
          mx = neg_infinity;
        }
      in
      Hashtbl.replace sh name h;
      h

(* Merging folds into the calling domain's installed sink: an enclosing
   shard (an Obs.Scope wrapping a parallel phase) or the registry.
   Bucket counts merge exactly either way; [sum] is a float fold, so
   nesting can move its last bits (doc/OBSERVABILITY.md §Sharding). *)
let merge_shard sh =
  let fold_into (h : t) (local : t) =
    for i = 0 to nbuckets - 1 do
      h.counts.(i) <- h.counts.(i) + local.counts.(i)
    done;
    h.n <- h.n + local.n;
    h.sum <- h.sum +. local.sum;
    if local.mn < h.mn then h.mn <- local.mn;
    if local.mx > h.mx then h.mx <- local.mx
  in
  (match Domain.DLS.get shard_key with
  | Some dst when dst != sh ->
      Hashtbl.iter (fun name local -> fold_into (cell_of dst name) local) sh
  | _ -> Hashtbl.iter (fun name local -> fold_into (make name) local) sh);
  Hashtbl.reset sh

let observe h v =
  if State.on () && not (Float.is_nan v) then
    match Domain.DLS.get shard_key with
    | None -> record h v
    | Some sh -> record (cell_of sh h.name) v

let observe_int h v = observe h (float_of_int v)

(* A snapshot is the histogram's plain value: sparse nonzero buckets in
   index order.  Merging is pointwise and exactly commutative (float
   addition of the sums is the only float op, and it is commutative). *)
type snapshot = {
  s_buckets : (int * int) list;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
}

let snapshot h =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.counts.(i) > 0 then buckets := (i, h.counts.(i)) :: !buckets
  done;
  { s_buckets = !buckets; s_count = h.n; s_sum = h.sum; s_min = h.mn; s_max = h.mx }

let merge a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (i, ci) :: xs', (j, cj) :: ys' ->
        if i < j then (i, ci) :: go xs' ys
        else if j < i then (j, cj) :: go xs ys'
        else (i, ci + cj) :: go xs' ys'
  in
  {
    s_buckets = go a.s_buckets b.s_buckets;
    s_count = a.s_count + b.s_count;
    s_sum = a.s_sum +. b.s_sum;
    s_min = Float.min a.s_min b.s_min;
    s_max = Float.max a.s_max b.s_max;
  }

(* Quantile estimate: the upper bound of the first bucket whose
   cumulative count reaches ceil(q * n), clamped into [min, max] of the
   observed values.  Monotone in q by construction (cumulative counts
   and bucket bounds both increase), so p50 <= p90 <= p99 <= max. *)
let snapshot_quantile s q =
  if s.s_count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target =
      max 1 (int_of_float (Float.ceil (q *. float_of_int s.s_count)))
    in
    let rec find acc = function
      | [] -> s.s_max
      | (i, c) :: rest ->
          if acc + c >= target then bucket_upper i else find (acc + c) rest
    in
    let v = find 0 s.s_buckets in
    Float.max s.s_min (Float.min s.s_max v)
  end

let quantile h q = snapshot_quantile (snapshot h) q

let shard_contents (sh : shard) =
  Hashtbl.fold (fun name h acc -> (name, snapshot h) :: acc) sh []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
let min_value h = if h.n = 0 then None else Some h.mn
let max_value h = if h.n = 0 then None else Some h.mx

let snapshot_to_json s =
  let fin f = if Float.is_finite f then Json.Float f else Json.Null in
  Json.Obj
    [
      ("count", Json.Int s.s_count);
      ("sum", Json.Float s.s_sum);
      ("min", (if s.s_count = 0 then Json.Null else fin s.s_min));
      ("max", (if s.s_count = 0 then Json.Null else fin s.s_max));
      ("p50", Json.Float (snapshot_quantile s 0.5));
      ("p90", Json.Float (snapshot_quantile s 0.9));
      ("p99", Json.Float (snapshot_quantile s 0.99));
      ( "buckets",
        Json.List
          (List.map
             (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
             s.s_buckets) );
    ]

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let num = function
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error "histogram: not a number"
  in
  let* count =
    match Json.member "count" j with
    | Some (Json.Int n) when n >= 0 -> Ok n
    | _ -> Error "histogram: missing count"
  in
  let* sum =
    match Json.member "sum" j with
    | Some v -> num v
    | None -> Error "histogram: missing sum"
  in
  let opt k =
    match Json.member k j with
    | Some Json.Null | None -> Ok None
    | Some v -> Result.map Option.some (num v)
  in
  let* mn = opt "min" in
  let* mx = opt "max" in
  let* buckets =
    match Json.member "buckets" j with
    | Some (Json.List l) ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            match e with
            | Json.List [ Json.Int i; Json.Int c ]
              when i >= 0 && i < nbuckets && c > 0 ->
                Ok ((i, c) :: acc)
            | _ -> Error "histogram: malformed bucket")
          (Ok []) l
    | _ -> Error "histogram: missing buckets"
  in
  let buckets = List.rev buckets in
  let* () =
    let rec sorted = function
      | (i, _) :: ((j, _) :: _ as rest) ->
          if i < j then sorted rest else Error "histogram: buckets out of order"
      | _ -> Ok ()
    in
    sorted buckets
  in
  let* () =
    if List.fold_left (fun a (_, c) -> a + c) 0 buckets = count then Ok ()
    else Error "histogram: bucket counts do not sum to count"
  in
  Ok
    {
      s_buckets = buckets;
      s_count = count;
      s_sum = sum;
      s_min = Option.value ~default:infinity mn;
      s_max = Option.value ~default:neg_infinity mx;
    }

let find key = Option.map snapshot (Hashtbl.find_opt registry key)

let all () =
  Hashtbl.fold (fun _ h acc -> (h.name, snapshot h) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () =
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.counts 0 nbuckets 0;
      h.n <- 0;
      h.sum <- 0.;
      h.mn <- infinity;
      h.mx <- neg_infinity)
    registry
