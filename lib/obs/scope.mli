(** Request-scoped telemetry contexts.

    A scope captures every counter increment, span activation,
    histogram observation and timeline slice recorded during one unit
    of work — one [/map] request, one CLI run — and folds it into the
    global registries when it closes, returning a per-request
    {!summary} for access logs, [/debug/trace] and flamegraphs.

    Built on {!Shard}: the scope owns one shard, installed on the
    serving domain while {!run} is active.  A parallel phase inside the
    scope still creates its own lane shards; their barrier merge folds
    into the scope (the domain-local sink), and the scope's own merge
    reaches the registries on {!close}.  Counter sums, peaks and
    histogram buckets are associative under this nesting, so global
    totals — and the φ/labels/audit documents they gate — are identical
    with or without a scope, for every [--jobs N]
    ([doc/CONCURRENCY.md] §Scopes vs shards).

    Ownership rules: a scope belongs to the domain that entered {!run};
    never run one scope on two domains at once, and call {!close}
    outside {!run}, exactly once.  While a scope is open, {!Obs.reset}
    refuses to run (it holds a live shard). *)

type t

type resources = {
  r_cpu_seconds : float;
      (** process CPU-seconds delta over the scope (exact for a lone
          request, an upper bound under concurrent workers) *)
  r_minor_words : float;  (** opening domain's own allocation *)
  r_promoted_words : float;
  r_major_words : float;
  r_queue_wait : float;  (** supplied by the caller at {!close}; 0 when
                             unknown *)
}
(** Per-request resource deltas ([Gc.quick_stat] + [Prelude.Timer.cpu]
    at open/close).  All fields clamped non-negative; GC deltas are
    monotone-counter differences, so a parent scope's delta bounds the
    sum of its sequential children's. *)

val zero_resources : resources

type summary = {
  sc_id : string;
  sc_started : float;  (** [Prelude.Timer.wall] at {!create} *)
  sc_finished : float;  (** [Prelude.Timer.wall] at {!close} *)
  sc_counters : (string * int) list;  (** touched counters, sorted *)
  sc_spans : (string * float * int) list;
      (** (name, seconds, completed entries), sorted *)
  sc_histograms : (string * Histogram.snapshot) list;
  sc_slices : Timeline.slice list;  (** oldest first *)
  sc_dropped_slices : int;
  sc_resources : resources;
}

val create : ?id:string -> unit -> t
(** Open a scope.  [id] is the correlation id ({!id}); when absent (or
    empty) a {!fresh_id} is generated.  Counts as a live shard until
    {!close}. *)

val id : t -> string
val started : t -> float

val run : t -> (unit -> 'a) -> 'a
(** Route this domain's observability hooks — and the ambient
    {!Log.current_request_id} — into the scope for the duration of the
    callback.  May be entered repeatedly before {!close}; entries may
    not overlap across domains.
    @raise Invalid_argument on a closed scope. *)

val close : ?queue_wait:float -> t -> summary
(** Capture the scope's local observations as a summary, fold them into
    the global registries (or the enclosing scope's), and release the
    shard.  Call outside {!run}, once, on the domain that ran the work
    (the GC resource deltas are per-domain).  [queue_wait] is recorded
    verbatim (clamped non-negative) in [sc_resources].
    @raise Invalid_argument on a double close. *)

val wrap : ?id:string -> (t -> 'a) -> 'a * summary
(** [wrap f] = create, {!run} [f], {!close} — exception-safe (the scope
    is closed, and its partial observations merged, even when [f]
    raises). *)

val span_seconds : summary -> string -> float option
(** Seconds one span accumulated inside the scope, if it ran. *)

val summary_json : summary -> Json.t
(** The summary as a JSON object: [id], [started], [finished],
    [seconds], [counters], [spans], [histograms], [slices],
    [dropped_slices], [resources]. *)

val fresh_id : unit -> string
(** A new 16-hex-char correlation id: process-random prefix plus
    sequence number — unique within the process. *)
