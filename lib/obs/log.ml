(* Leveled, structured logging as JSON lines (schema turbosyn-log/1,
   doc/OBSERVABILITY.md §Logging).

   Orthogonal to the metric switch: a log line is an operator-facing
   event (a request served, a slow request, a startup banner), wanted
   even when counter collection is off, so emission is gated only on
   the level threshold.  Lines go to stderr by default — stdout stays
   reserved for machine-readable documents (--stats=-, bench tables) —
   or to a file sink; a bounded in-memory ring keeps the most recent
   records for the /debug endpoints and tests.

   The request-id is ambient, per-domain: Obs.Scope installs it for the
   duration of a request, and every line emitted inside picks it up. *)

type level = Debug | Info | Warn | Error

let level_value = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let threshold = ref Info
let set_level l = threshold := l
let level () = !threshold

type record = {
  ts : float;
  lvl : level;
  event : string;
  request_id : string option;
  fields : (string * Json.t) list;
}

(* ---------------------------------------------------------------- *)
(* Sink                                                             *)
(* ---------------------------------------------------------------- *)

type sink = Stderr | File of out_channel | Null

let sink = ref Stderr
let sink_path : string option ref = ref None

(* one mutex around ring + sink writes: the serve accept loop is
   single-threaded, but bench client domains and worker lanes may log
   concurrently, and interleaved half-lines would break the JSON-lines
   contract *)
let mutex = Mutex.create ()

let close_sink () =
  (match !sink with File oc -> (try close_out oc with Sys_error _ -> ()) | _ -> ());
  sink := Stderr;
  sink_path := None

let to_stderr () =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) close_sink

let to_null () =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      close_sink ();
      sink := Null)

let to_file path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      close_sink ();
      sink := File oc;
      sink_path := Some path)

let output_path () = !sink_path

(* ---------------------------------------------------------------- *)
(* Ambient request id                                               *)
(* ---------------------------------------------------------------- *)

let request_id_key : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_request_id () = Domain.DLS.get request_id_key

let with_request_id id f =
  let prev = Domain.DLS.get request_id_key in
  Domain.DLS.set request_id_key (Some id);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set request_id_key prev)
    f

(* ---------------------------------------------------------------- *)
(* Ring + emission                                                  *)
(* ---------------------------------------------------------------- *)

let default_ring_capacity = 1024
let ring_capacity = ref default_ring_capacity
let ring : record Queue.t = Queue.create ()
let ring_dropped = ref 0

let set_ring_capacity n =
  if n < 0 then invalid_arg "Obs.Log.set_ring_capacity: negative";
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      ring_capacity := n;
      while Queue.length ring > n do
        ignore (Queue.pop ring);
        incr ring_dropped
      done)

let clear () =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      Queue.clear ring;
      ring_dropped := 0)

let record_json r =
  Json.Obj
    ([ ("ts", Json.Float r.ts);
       ("level", Json.Str (level_name r.lvl));
       ("event", Json.Str r.event);
     ]
    @ (match r.request_id with
      | None -> []
      | Some id -> [ ("request_id", Json.Str id) ])
    @ r.fields)

let enabled_for lvl = level_value lvl >= level_value !threshold

let log lvl event fields =
  if enabled_for lvl then begin
    let r =
      {
        ts = Prelude.Timer.wall ();
        lvl;
        event;
        request_id = current_request_id ();
        fields;
      }
    in
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        if !ring_capacity > 0 then begin
          if Queue.length ring >= !ring_capacity then begin
            ignore (Queue.pop ring);
            incr ring_dropped
          end;
          Queue.add r ring
        end;
        match !sink with
        | Null -> ()
        | Stderr ->
            output_string stderr (Json.to_string (record_json r));
            output_char stderr '\n';
            flush stderr
        | File oc ->
            output_string oc (Json.to_string (record_json r));
            output_char oc '\n';
            flush oc)
  end

let debug event fields = log Debug event fields
let info event fields = log Info event fields
let warn event fields = log Warn event fields
let error event fields = log Error event fields

let recent () = List.rev (Queue.fold (fun acc r -> r :: acc) [] ring)
let length () = Queue.length ring
let dropped () = !ring_dropped
