(* Global observability switch.  Kept in its own (unexported) module so the
   hot-path hooks in Counter/Span/Trace can read one ref without a module
   cycle through Obs. *)

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* the hot-path spelling: a single load + branch *)
let on () = !enabled_flag

(* Open per-domain shards (Obs.Shard): created by a coordinating domain
   before a parallel phase, merged back after its barrier.  [reset] is
   only sound when this is zero — a worker could otherwise still be
   writing into a shard that the reset cannot see (doc/CONCURRENCY.md,
   doc/OBSERVABILITY.md §Reset). *)
let active_shards = Atomic.make 0

(* Sampling-profiler switch (Obs.Prof): while true, Span.enter/exit
   additionally maintain the per-domain live frame stacks the tick
   thread reads (Livestack, doc/PROFILING.md).  An Atomic so worker
   domains observe an attach promptly; the hot-path cost while detached
   is one load and one branch, mirroring [on].  [reset] refuses while
   the sampler is attached: the tick thread is concurrently reading
   span state the reset would clear under it. *)
let profiling = Atomic.make false
let profiling_on () = Atomic.get profiling
