(* Global observability switch.  Kept in its own (unexported) module so the
   hot-path hooks in Counter/Span/Trace can read one ref without a module
   cycle through Obs. *)

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* the hot-path spelling: a single load + branch *)
let on () = !enabled_flag
