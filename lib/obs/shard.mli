(** Per-domain observability shards for parallel phases.

    The Counter/Histogram/Span/Timeline registries are process-global
    and unsynchronized; a worker domain must never write them directly.
    A shard bundles domain-local mirrors of all four: the coordinator
    {!create}s one per lane before a parallel phase, each lane runs its
    tasks inside {!wrap} (which installs the shard into the lane's
    domain-local storage so every observability hook writes locally),
    and after the phase barrier the coordinator {!merge}s the shards
    back into the globals, in lane order, then {!release}s them.

    Counter sums, [record_max] peaks, histogram buckets, and span
    totals/entries/GC deltas all merge commutatively, so which lane ran
    which task never changes merged integer totals; float sums and
    timeline slice order depend only on the (fixed) lane merge order.
    While any shard is live, {!Obs.reset} refuses to run — see
    [doc/OBSERVABILITY.md] and [doc/CONCURRENCY.md]. *)

type t

val create : unit -> t
(** Make an empty shard and count it live ({!active}).  Call on the
    coordinator, before handing the shard to a lane. *)

val wrap : t -> (unit -> 'a) -> 'a
(** [wrap t f] installs [t] into the calling domain's local storage,
    runs [f], and restores whatever was installed before
    (exception-safely) — so wraps nest: a lane task wrapped inside an
    {!Obs.Scope} hands the domain back to the scope's shard, not to
    the global registries.  All observability hooks hit by [f] on this
    domain write into [t].  Do not wrap one shard on two domains at
    once. *)

val install : t -> unit
(** Low-level: route this domain's hooks into [t] until
    {!uninstall}. Prefer {!wrap}. *)

val uninstall : unit -> unit
(** Low-level: restore direct global writes on this domain. *)

val merge : t -> unit
(** Fold the shard's local state into the calling domain's installed
    sink — the enclosing shard when one is installed (e.g. an
    {!Obs.Scope} wrapping a parallel phase), the global registries
    otherwise — and empty it.  Call on the coordinator, after the
    barrier, while the shard is installed on no domain.  A shard may be
    wrapped and merged again afterwards (per-level reuse). *)

(** {2 Component access}

    Read-only views into the shard's four mirrors, for {!Obs.Scope}'s
    per-request summaries.  Read them only while no domain has the
    shard installed. *)

val counters : t -> Counter.shard
val histograms : t -> Histogram.shard
val spans : t -> Span.shard
val timeline : t -> Timeline.shard

val release : t -> unit
(** Mark the shard dead: decrements the live count that gates
    {!Obs.reset}.  Idempotent.  Call once per {!create}, after the
    final {!merge}. *)

val active : unit -> int
(** Number of live (created, not yet released) shards. *)
