(** Log-bucketed distribution sketches (latency, size distributions).

    Buckets grow geometrically by a factor of [sqrt 2] over a fixed
    global layout, so snapshots from different histograms, domains, or
    processes merge exactly.  Observation is gated on the global
    observability switch and is O(1); quantiles are estimated from the
    bucket layout and clamped into the observed [min, max]. *)

type t

val make : string -> t
(** [make name] returns the histogram registered under [name], creating
    it on first use.  Idempotent: the same name yields the same
    histogram. *)

val name : t -> string

val count : t -> int
(** Number of observations recorded. *)

val sum : t -> float
(** Sum of all observed values. *)

val observe : t -> float -> unit
(** Record one value.  No-op when observability is off or the value is
    NaN; values at or below the smallest bucket bound (including zero
    and negatives) land in bucket 0. *)

val observe_int : t -> int -> unit

val quantile : t -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) of the
    recorded values; [0.] when empty.  Monotone in [q] and always
    within the observed [min, max]. *)

val min_value : t -> float option
val max_value : t -> float option

(** {1 Snapshots} *)

type snapshot = {
  s_buckets : (int * int) list;  (** sparse (bucket index, count), ascending *)
  s_count : int;
  s_sum : float;
  s_min : float;  (** [infinity] when empty *)
  s_max : float;  (** [neg_infinity] when empty *)
}

val snapshot : t -> snapshot
val merge : snapshot -> snapshot -> snapshot
(** Pointwise bucket sum; commutative and associative. *)

val snapshot_quantile : snapshot -> float -> float
val snapshot_to_json : snapshot -> Json.t
val snapshot_of_json : Json.t -> (snapshot, string) result

val nbuckets : int
val bucket_upper : int -> float
(** Upper bound of bucket [i]; [infinity] for the last bucket. *)

val bucket_of : float -> int
(** Bucket index a value lands in; weakly monotone in the value. *)

(** {1 Registry} *)

val find : string -> snapshot option
val all : unit -> (string * snapshot) list
(** All registered histograms, sorted by name. *)

val reset_all : unit -> unit
(** Zero every registered histogram (names stay registered). *)

(** {1 Per-domain shards}

    Worker-domain observations go into domain-local histograms and fold
    back into the registry at the phase barrier with the same pointwise
    bucket merge the snapshot codec uses.  Bucket counts and [count]
    merge exactly; [sum] is a float fold whose last bits depend on merge
    order.  Use {!Obs.Shard} rather than these directly. *)

type shard

val new_shard : unit -> shard
val install_shard : shard -> unit
val uninstall_shard : unit -> unit
val merge_shard : shard -> unit
(** Fold the shard's local histograms into the calling domain's
    installed sink (an enclosing shard, else the registry) and empty
    it.  Call from the coordinator, after the barrier. *)

val current_shard : unit -> shard option
val restore_shard : shard option -> unit

val shard_contents : shard -> (string * snapshot) list
(** Snapshots of the shard's local histograms, sorted by name, without
    merging or emptying it. *)
