(* Obs.Slo — declarative service-level objectives and burn rates.

   An objective is parsed from the compact CLI spelling
   ("route=/map,p99=250ms,err=0.1%") or a config file of one spec per
   line.  Evaluation is scrape-time arithmetic over data that already
   exists: the route's log-bucketed latency Histogram snapshot and its
   request/error counters.  Nothing is recorded per-request for SLOs —
   which is why the burn rates are exactly reproducible from a scraped
   /metrics body (doc/PROFILING.md §SLOs and burn rates).

   Burn rate is the classic error-budget consumption speed:
     latency: bad_fraction / (1 - q)     (at burn 1.0 the route is
       exactly meeting "q of requests under target")
     errors:  error_rate / budget
   > 1 means the budget is being consumed faster than it accrues.

   Bucketed quantile honesty: a log-bucketed histogram cannot count
   "observations <= 250ms" exactly, only "observations <= the bucket
   boundary at or above 250ms".  We evaluate against that boundary
   ([good_upper_seconds], = Histogram.bucket_upper (bucket_of target))
   and publish it, so (a) the evaluation is deterministic, (b) anyone
   holding the scrape can reproduce [good] from the cumulative
   _bucket{le="..."} series exactly (bench serve-load gates this), and
   (c) the small systematic slack (at most one sqrt-2 bucket) is
   visible rather than hidden. *)

type objective = {
  o_route : string;  (* "/map" *)
  o_latency : (string * float * float) option;
      (* (label "p99", quantile 0.99, target seconds) *)
  o_err : float option;  (* error budget as a fraction *)
}

let spec_syntax =
  "expected route=<path>[,p<NN>=<dur>][,err=<pct>%], e.g. \
   route=/map,p99=250ms,err=0.1%"

let parse_duration v =
  let num s = float_of_string_opt (String.trim s) in
  let strip suffix s =
    if String.length s > String.length suffix
       && String.ends_with ~suffix s
    then Some (String.sub s 0 (String.length s - String.length suffix))
    else None
  in
  match strip "ms" v with
  | Some n -> Option.map (fun f -> f /. 1000.) (num n)
  | None -> (
      match strip "s" v with Some n -> num n | None -> num v)

let parse_fraction v =
  match
    if String.ends_with ~suffix:"%" v then
      Option.map
        (fun f -> f /. 100.)
        (float_of_string_opt (String.sub v 0 (String.length v - 1)))
    else float_of_string_opt v
  with
  | Some f when f > 0. && f < 1. -> Some f
  | _ -> None

let parse_quantile_key k =
  if String.length k >= 2 && k.[0] = 'p'
     && String.for_all
          (fun c -> c >= '0' && c <= '9')
          (String.sub k 1 (String.length k - 1))
  then
    let digits = String.sub k 1 (String.length k - 1) in
    let q =
      float_of_string digits /. (10. ** float_of_int (String.length digits))
    in
    if q > 0. && q < 1. then Some q else None
  else None

let parse spec =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let fields =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let kvs =
    List.map
      (fun field ->
        match String.index_opt field '=' with
        | Some i ->
            Ok
              ( String.sub field 0 i,
                String.sub field (i + 1) (String.length field - i - 1) )
        | None -> err "SLO spec: field %S is not key=value (%s)" field
                    spec_syntax)
      fields
  in
  let rec build o = function
    | [] -> Ok o
    | Error e :: _ -> Error e
    | Ok (k, v) :: rest -> (
        match k with
        | "route" ->
            if v = "" then err "SLO spec: empty route (%s)" spec_syntax
            else build { o with o_route = v } rest
        | "err" -> (
            match parse_fraction v with
            | Some f -> build { o with o_err = Some f } rest
            | None ->
                err "SLO spec: bad error budget %S (want e.g. 0.1%% or 0.001)"
                  v)
        | _ -> (
            match parse_quantile_key k with
            | Some q -> (
                match parse_duration v with
                | Some t when t > 0. ->
                    build { o with o_latency = Some (k, q, t) } rest
                | _ ->
                    err "SLO spec: bad duration %S for %s (want e.g. 250ms \
                         or 0.25s)"
                      v k)
            | None -> err "SLO spec: unknown key %S (%s)" k spec_syntax))
  in
  match build { o_route = ""; o_latency = None; o_err = None } kvs with
  | Error e -> Error e
  | Ok o ->
      if o.o_route = "" then err "SLO spec: missing route= (%s)" spec_syntax
      else if o.o_latency = None && o.o_err = None then
        err "SLO spec for %s: needs at least one objective (%s)" o.o_route
          spec_syntax
      else Ok o

let parse_all specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        match parse spec with
        | Ok o -> go (o :: acc) rest
        | Error e -> Error e)
  in
  go [] specs

(* Config file: one spec per line, '#' comments and blank lines
   ignored. *)
let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | body ->
      String.split_on_char '\n' body
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && not (String.starts_with ~prefix:"#" l))
      |> parse_all

type latency_verdict = {
  lv_label : string;
  lv_quantile : float;
  lv_target : float;
  lv_good_upper : float;  (* the bucket boundary actually evaluated *)
  lv_good : int;
  lv_count : int;
  lv_bad_fraction : float;
  lv_burn : float;
  lv_ok : bool;
}

type err_verdict = {
  ev_budget : float;
  ev_errors : int;
  ev_total : int;
  ev_rate : float;
  ev_burn : float;
  ev_ok : bool;
}

type verdict = {
  v_route : string;
  v_latency : latency_verdict option;
  v_err : err_verdict option;
  v_ok : bool;
}

let eval_latency (label, q, target) (snap : Histogram.snapshot) =
  let bucket = Histogram.bucket_of target in
  let good_upper = Histogram.bucket_upper bucket in
  let good =
    List.fold_left
      (fun acc (i, c) -> if i <= bucket then acc + c else acc)
      0 snap.Histogram.s_buckets
  in
  let count = snap.Histogram.s_count in
  let bad_fraction =
    if count = 0 then 0. else float_of_int (count - good) /. float_of_int count
  in
  let burn = bad_fraction /. (1. -. q) in
  {
    lv_label = label;
    lv_quantile = q;
    lv_target = target;
    lv_good_upper = good_upper;
    lv_good = good;
    lv_count = count;
    lv_bad_fraction = bad_fraction;
    lv_burn = burn;
    lv_ok = burn <= 1.;
  }

let eval_err budget ~total ~errors =
  let rate =
    if total = 0 then 0. else float_of_int errors /. float_of_int total
  in
  let burn = rate /. budget in
  {
    ev_budget = budget;
    ev_errors = errors;
    ev_total = total;
    ev_rate = rate;
    ev_burn = burn;
    ev_ok = burn <= 1.;
  }

let evaluate o ~latency ~total ~errors =
  let v_latency = Option.map (fun l -> eval_latency l latency) o.o_latency in
  let v_err = Option.map (fun b -> eval_err b ~total ~errors) o.o_err in
  {
    v_route = o.o_route;
    v_latency;
    v_err;
    v_ok =
      Option.fold ~none:true ~some:(fun l -> l.lv_ok) v_latency
      && Option.fold ~none:true ~some:(fun e -> e.ev_ok) v_err;
  }

let verdict_json v =
  let latency =
    match v.v_latency with
    | None -> []
    | Some l ->
        [
          ( "latency",
            Json.Obj
              [
                ("objective", Json.Str l.lv_label);
                ("quantile", Json.Float l.lv_quantile);
                ("target_seconds", Json.Float l.lv_target);
                ("good_upper_seconds", Json.Float l.lv_good_upper);
                ("good", Json.Int l.lv_good);
                ("count", Json.Int l.lv_count);
                ("bad_fraction", Json.Float l.lv_bad_fraction);
                ("burn_rate", Json.Float l.lv_burn);
                ("ok", Json.Bool l.lv_ok);
              ] );
        ]
  in
  let err =
    match v.v_err with
    | None -> []
    | Some e ->
        [
          ( "errors",
            Json.Obj
              [
                ("budget", Json.Float e.ev_budget);
                ("errors", Json.Int e.ev_errors);
                ("total", Json.Int e.ev_total);
                ("rate", Json.Float e.ev_rate);
                ("burn_rate", Json.Float e.ev_burn);
                ("ok", Json.Bool e.ev_ok);
              ] );
        ]
  in
  Json.Obj
    ([ ("route", Json.Str v.v_route) ]
    @ latency @ err
    @ [ ("ok", Json.Bool v.v_ok) ])

(* Prometheus families for the scrape (the renderer adds the turbosyn_
   prefix and sanitizes dots): slo.latency_burn_rate{route,objective},
   slo.latency_target_seconds{route,objective}, slo.error_burn_rate
   {route}, slo.error_budget{route}, slo.ok{route}. *)
let families verdicts =
  let gauge fname fhelp samples =
    if samples = [] then None
    else Some { Prometheus.fname; fhelp; ftype = `Gauge; samples }
  in
  let latencies =
    List.filter_map
      (fun v ->
        Option.map
          (fun l ->
            ( [ ("route", v.v_route); ("objective", l.lv_label) ],
              l ))
          v.v_latency)
      verdicts
  in
  let errs =
    List.filter_map
      (fun v ->
        Option.map (fun e -> ([ ("route", v.v_route) ], e)) v.v_err)
      verdicts
  in
  List.filter_map Fun.id
    [
      gauge "slo.latency_burn_rate"
        "Latency error-budget burn rate per objective (>1 = violating)."
        (List.map
           (fun (labels, l) -> { Prometheus.labels; value = l.lv_burn })
           latencies);
      gauge "slo.latency_target_seconds"
        "Configured latency target per objective."
        (List.map
           (fun (labels, l) -> { Prometheus.labels; value = l.lv_target })
           latencies);
      gauge "slo.error_burn_rate"
        "Error-rate budget burn rate per route (>1 = violating)."
        (List.map
           (fun (labels, e) -> { Prometheus.labels; value = e.ev_burn })
           errs);
      gauge "slo.error_budget"
        "Configured error budget (fraction of requests) per route."
        (List.map
           (fun (labels, e) -> { Prometheus.labels; value = e.ev_budget })
           errs);
      gauge "slo.ok" "1 when every objective for the route is within budget."
        (List.map
           (fun v ->
             {
               Prometheus.labels = [ ("route", v.v_route) ];
               value = (if v.v_ok then 1. else 0.);
             })
           verdicts);
    ]
