(** Leveled, structured logging as JSON lines.

    Each line is one JSON object (schema [turbosyn-log/1], documented
    in [doc/OBSERVABILITY.md] §Logging):

    {v
    {"ts": <epoch seconds>, "level": "debug|info|warn|error",
     "event": "<subsystem.event>", "request_id": "<id, when ambient>",
     ...event-specific fields...}
    v}

    Emission is gated only on the level threshold, {e not} on
    {!Obs.set_enabled}: log lines are operator events, wanted even when
    metric collection is off.  Lines go to stderr by default (stdout
    stays reserved for machine-readable output) or to a file sink, and
    the most recent records are kept in a bounded in-memory ring.
    Writes are serialized with a mutex, so concurrent domains never
    interleave half-lines. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option
(** Case-insensitive; accepts ["warning"] for [Warn]. *)

val set_level : level -> unit
(** Threshold: records strictly below it are dropped entirely (not
    written, not ringed).  Default [Info]. *)

val level : unit -> level

(** {1 Sink} *)

val to_stderr : unit -> unit
(** Route lines to stderr (the default; closes any open file sink). *)

val to_file : string -> unit
(** Route lines to a file, opened in append mode.
    @raise Sys_error when the file cannot be opened. *)

val to_null : unit -> unit
(** Drop lines (the ring still records them). *)

val output_path : unit -> string option
(** The file sink's path, when one is open — used by the CLI to refuse
    colliding [--log-file]/[--stats] destinations. *)

(** {1 Ambient request id}

    The correlation id is per-domain ambient state: {!Obs.Scope.run}
    installs the scope's id for the duration of a request, and every
    line logged inside carries it as [request_id]. *)

val with_request_id : string -> (unit -> 'a) -> 'a
val current_request_id : unit -> string option

(** {1 Emission} *)

val log : level -> string -> (string * Json.t) list -> unit
(** [log lvl event fields] emits one record.  [event] is a dotted
    lower-case name ([subsystem.event]); [fields] must not collide with
    the reserved keys [ts], [level], [event], [request_id]. *)

val debug : string -> (string * Json.t) list -> unit
val info : string -> (string * Json.t) list -> unit
val warn : string -> (string * Json.t) list -> unit
val error : string -> (string * Json.t) list -> unit

val enabled_for : level -> bool
(** Whether a record at this level would currently be emitted. *)

(** {1 Ring} *)

type record = {
  ts : float;  (** [Prelude.Timer.wall] (epoch) seconds *)
  lvl : level;
  event : string;
  request_id : string option;
  fields : (string * Json.t) list;
}

val record_json : record -> Json.t
(** The record as its JSON-line object. *)

val recent : unit -> record list
(** Ringed records, oldest first. *)

val length : unit -> int
val dropped : unit -> int

val set_ring_capacity : int -> unit
(** Default 1024; 0 disables ringing.
    @raise Invalid_argument on a negative capacity. *)

val clear : unit -> unit
(** Empty the ring and zero the dropped counter. *)

val default_ring_capacity : int
