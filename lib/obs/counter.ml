type t = { name : string; mutable n : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let make name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { name; n = 0 } in
      Hashtbl.replace registry name c;
      c

let name c = c.name
let value c = c.n
let incr c = if State.on () then c.n <- c.n + 1

let add c k =
  if k < 0 then invalid_arg "Obs.Counter.add: negative increment";
  if State.on () then c.n <- c.n + k

let record_max c v = if State.on () && v > c.n then c.n <- v
let find key = Option.map value (Hashtbl.find_opt registry key)

let all () =
  Hashtbl.fold (fun _ c acc -> (c.name, c.n) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () = Hashtbl.iter (fun _ c -> c.n <- 0) registry
