type t = { name : string; mutable n : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let make name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { name; n = 0 } in
      Hashtbl.replace registry name c;
      c

let name c = c.name
let value c = c.n

(* Per-domain shards (installed by Obs.Shard around parallel phases).
   The global registry is unsynchronized, so a worker domain must never
   mutate it; with a shard installed, increments land in a domain-local
   table instead and are folded into the registry at the phase barrier.
   A cell keeps the additive part and the high-water part separately —
   Counter exposes both [add] and [record_max], and the two merge
   differently (sum vs max). *)
type cell = { mutable adds : int; mutable peak : int }
type shard = (string, cell) Hashtbl.t

let shard_key : shard option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let new_shard () : shard = Hashtbl.create 32
let install_shard sh = Domain.DLS.set shard_key (Some sh)
let uninstall_shard () = Domain.DLS.set shard_key None
let current_shard () = Domain.DLS.get shard_key
let restore_shard s = Domain.DLS.set shard_key s

let cell_of sh name =
  match Hashtbl.find_opt sh name with
  | Some cell -> cell
  | None ->
      let cell = { adds = 0; peak = 0 } in
      Hashtbl.replace sh name cell;
      cell

(* Merging folds into the calling domain's installed sink: an enclosing
   shard (an Obs.Scope wrapping a parallel phase — lane work then stays
   attributed to the scope and reaches the registry when the scope
   itself merges) or, with none installed, the global registry.  Adds
   merge by sum and peaks by max in both directions, so the nesting
   depth never changes final registry values. *)
let merge_shard sh =
  (match Domain.DLS.get shard_key with
  | Some dst when dst != sh ->
      Hashtbl.iter
        (fun name cell ->
          let d = cell_of dst name in
          d.adds <- d.adds + cell.adds;
          if cell.peak > d.peak then d.peak <- cell.peak)
        sh
  | _ ->
      Hashtbl.iter
        (fun name cell ->
          let c = make name in
          c.n <- c.n + cell.adds;
          if cell.peak > c.n then c.n <- cell.peak)
        sh);
  Hashtbl.reset sh

let shard_contents (sh : shard) =
  Hashtbl.fold
    (fun name cell acc -> (name, max cell.adds cell.peak) :: acc)
    sh []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let incr c =
  if State.on () then
    match Domain.DLS.get shard_key with
    | None -> c.n <- c.n + 1
    | Some sh ->
        let cell = cell_of sh c.name in
        cell.adds <- cell.adds + 1

let add c k =
  if k < 0 then invalid_arg "Obs.Counter.add: negative increment";
  if State.on () then
    match Domain.DLS.get shard_key with
    | None -> c.n <- c.n + k
    | Some sh ->
        let cell = cell_of sh c.name in
        cell.adds <- cell.adds + k

let record_max c v =
  if State.on () then
    match Domain.DLS.get shard_key with
    | None -> if v > c.n then c.n <- v
    | Some sh ->
        let cell = cell_of sh c.name in
        if v > cell.peak then cell.peak <- v
let find key = Option.map value (Hashtbl.find_opt registry key)

let all () =
  Hashtbl.fold (fun _ c acc -> (c.name, c.n) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () = Hashtbl.iter (fun _ c -> c.n <- 0) registry
