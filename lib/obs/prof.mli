(** Wall-clock sampling profiler.

    While attached, a tick thread snapshots every domain's live
    {!Span} stack each [interval] seconds and aggregates the snapshots
    into folded stacks ([doc/PROFILING.md]).  No signals: {!Span}
    maintains a per-domain frame stack the sampler reads racily but
    memory-safely, so attaching changes no observable output of the
    profiled program — φ, labels, audit documents and the metrics
    registries are byte-identical with the sampler on or off (gated in
    [bench perf]).

    The profiler keeps all of its state privately (one internal mutex);
    it never writes the unsynchronized Obs registries.  Servers surface
    {!samples}/{!dropped}/{!overhead_seconds} as [prof.*] series at
    scrape time. *)

val attach : ?interval:float -> unit -> unit
(** Start sampling every [interval] seconds (default 0.01).  Previously
    accumulated data is retained (call {!reset} for a fresh run).
    While attached, {!Obs.reset} refuses.
    @raise Invalid_argument if already attached or [interval <= 0]. *)

val detach : unit -> unit
(** Stop the sampler and join its thread; accumulated data stays
    readable.  No-op when not attached. *)

val attached : unit -> bool

val interval : unit -> float
(** The configured tick interval in seconds (last [attach]'s, or the
    default before any attach). *)

val reset : unit -> unit
(** Drop accumulated samples and zero all counters.  Independent of
    {!Obs.reset}, which refuses while the sampler is attached. *)

(** {1 Accounting} *)

val samples : unit -> int
(** Stack snapshots recorded (one per tick per domain with at least one
    open span). *)

val dropped : unit -> int
(** Raw samples evicted from the bounded Chrome-trace ring.  Their
    folded aggregate is retained; only per-sample timing detail is
    lost. *)

val overhead_seconds : unit -> float
(** Wall seconds the tick thread spent sampling (sleep excluded) — the
    profiler's own cost. *)

(** {1 Route attribution} *)

val set_route : string -> unit
(** Tag subsequent samples taken on the calling domain with a route
    ([""] clears).  The serve worker sets this around each request. *)

val with_route : string -> (unit -> 'a) -> 'a
(** {!set_route} scoped to [f], restoring the previous tag. *)

val routes : unit -> string list
(** Distinct non-empty route tags seen in accumulated samples. *)

(** {1 Output} *)

val folded : ?route:string -> unit -> (string * float) list
(** Folded stacks (frames joined with [';'], outermost first, names
    {!Flame.clean_frame}-sanitized at sample time; sampled seconds =
    count × interval), sorted by stack.  [?route] filters to one route
    tag; omitted = whole process. *)

val folded_text : ?route:string -> unit -> string
(** {!Flame.to_string} of {!folded}: flamegraph.pl-ready text, weights
    in integer microseconds. *)

val top_self : ?route:string -> unit -> (string * float) list
(** Self seconds per frame (a sample's time belongs to its deepest
    frame), heaviest first. *)

val slices : ?route:string -> unit -> Timeline.slice list
(** The raw-sample ring as Timeline slices (each sample's frames nest
    over one [interval]-wide window) — feed to
    {!Report.timeline_json} for a Chrome-trace rendering. *)
