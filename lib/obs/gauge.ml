(* Point-in-time values (pool sizes, request concurrency).  Same
   registry discipline as Counter, but set/add-signed semantics and no
   monotonicity guarantee. *)

type t = { name : string; mutable v : float }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let make name =
  match Hashtbl.find_opt registry name with
  | Some g -> g
  | None ->
      let g = { name; v = 0. } in
      Hashtbl.replace registry name g;
      g

let name g = g.name
let value g = g.v
let set g v = if State.on () then g.v <- v
let set_int g v = set g (float_of_int v)
let add g d = if State.on () then g.v <- g.v +. d
let incr g = add g 1.
let decr g = add g (-1.)
let find key = Option.map (fun g -> g.v) (Hashtbl.find_opt registry key)

let all () =
  Hashtbl.fold (fun _ g acc -> (g.name, g.v) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () = Hashtbl.iter (fun _ g -> g.v <- 0.) registry
