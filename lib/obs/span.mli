(** Nestable phase timers with a process-global registry.

    A span accumulates wall-clock time over every [enter]/[exit] pair.
    Distinct spans nest freely (a ratio-search probe contains SCC
    rounds, which contain flow tests and decompositions); a span that
    re-enters {e itself} recursively accounts only its outermost
    activation, so recursion never double-counts.

    As with counters, all mutation is gated on {!Obs.set_enabled}:
    disabled spans cost one load and one branch, and [time] calls the
    thunk directly without installing an exception handler.

    Toggling the global switch while a span is open loses that
    activation (the [exit] guard keeps the depth consistent); enable
    observability before the phase you want timed.

    The registered names form the [spans] object of the stats schema;
    [doc/OBSERVABILITY.md] documents each one. *)

type gc_totals = {
  minor_words : float;  (** words allocated in the minor heap *)
  promoted_words : float;  (** words promoted minor -> major *)
  major_words : float;  (** words allocated directly in the major heap *)
  compactions : int;
}
(** [Gc.quick_stat] deltas accumulated over a span's completed outermost
    entries: what the phase allocated, not what the whole process has. *)

type t
(** A registered span.  Physically equal for equal names. *)

val make : string -> t
(** [make name] returns the span registered under [name], creating it on
    first use.  Dotted lower-case names ([subsystem.phase]) by
    convention. *)

val name : t -> string

val seconds : t -> float
(** Total wall seconds accumulated over completed outermost entries. *)

val count : t -> int
(** Number of completed outermost entries. *)

val gc_totals : t -> gc_totals
(** Allocation/GC deltas accumulated over completed outermost entries.
    Sampled with [Gc.quick_stat] at the outermost [enter]/[exit] pair,
    so nested activations and other live spans attribute their
    allocation to every span open around them. *)

val enter : t -> unit
(** Start (or nest into) the span.  No-op while observability is
    disabled. *)

val exit : t -> unit
(** Leave the span; the outermost exit accumulates the elapsed time.
    A spurious exit (depth already zero) is ignored. *)

val time : t -> (unit -> 'a) -> 'a
(** [time s f] runs [f ()] inside the span, exception-safely. *)

val all : unit -> (string * float * int) list
(** Every registered span as [(name, seconds, entries)], sorted by
    name. *)

val all_full : unit -> (string * float * int * gc_totals) list
(** Like {!all} with the GC totals included. *)

val reset_all : unit -> unit
(** Zero every registered span (registration survives). *)

(** {1 Per-domain shards}

    With a shard installed, [enter]/[exit]/[time] operate on a
    domain-local mirror of the span (own depth, own GC deltas — OCaml 5
    [Gc.quick_stat] is per-domain); totals and entry counts fold back
    into the registry at the phase barrier.  Use {!Obs.Shard} rather
    than these directly. *)

type shard

val new_shard : unit -> shard
val install_shard : shard -> unit
val uninstall_shard : unit -> unit
val merge_shard : shard -> unit
(** Fold the shard's span totals into the calling domain's installed
    sink (an enclosing shard, else the registry) and empty it.  Call
    from the coordinator, after the barrier. *)

val current_shard : unit -> shard option
val restore_shard : shard option -> unit

val shard_contents : shard -> (string * float * int * gc_totals) list
(** The shard's local span totals ([name], seconds, entries, GC),
    sorted by name, without merging or emptying it. *)
