(* Per-entry span slices for the Chrome-trace/Perfetto timeline export.

   Spans only keep aggregates (total seconds, entry count); a timeline
   needs every completed outermost activation as an interval.  Span.exit
   records one slice here per outermost completion while the master
   switch is on.  Bounded ring, same shape as Trace: oldest slices are
   dropped and counted once the capacity is reached. *)

type slice = { name : string; start : float; stop : float }

let default_capacity = 65536
let capacity = ref default_capacity
let buffer : slice Queue.t = Queue.create ()
let dropped_count = ref 0

let clear () =
  Queue.clear buffer;
  dropped_count := 0

let set_capacity n =
  if n < 0 then invalid_arg "Obs.Timeline.set_capacity: negative";
  capacity := n;
  while Queue.length buffer > n do
    ignore (Queue.pop buffer);
    incr dropped_count
  done

(* Per-domain shards (Obs.Shard): the Queue ring is not thread-safe, so
   with a shard installed, slices buffer in a domain-local queue (same
   capacity bound) and replay into the ring at the phase barrier, one
   lane at a time in lane order. *)
type shard = { q : slice Queue.t; mutable drops : int }

let shard_key : shard option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let new_shard () = { q = Queue.create (); drops = 0 }
let install_shard sh = Domain.DLS.set shard_key (Some sh)
let uninstall_shard () = Domain.DLS.set shard_key None
let current_shard () = Domain.DLS.get shard_key
let restore_shard s = Domain.DLS.set shard_key s

let push_global s =
  if Queue.length buffer >= !capacity then begin
    ignore (Queue.pop buffer);
    incr dropped_count
  end;
  Queue.add s buffer

let record name ~start ~stop =
  if State.on () && !capacity > 0 then
    match Domain.DLS.get shard_key with
    | None -> push_global { name; start; stop }
    | Some sh ->
        if Queue.length sh.q >= !capacity then begin
          ignore (Queue.pop sh.q);
          sh.drops <- sh.drops + 1
        end;
        Queue.add { name; start; stop } sh.q

(* Merging replays into the calling domain's installed sink: an
   enclosing shard (an Obs.Scope wrapping a parallel phase) or the
   global ring, the same capacity bound either way. *)
let merge_shard sh =
  (match Domain.DLS.get shard_key with
  | Some dst when dst != sh ->
      if !capacity > 0 then
        Queue.iter
          (fun s ->
            if Queue.length dst.q >= !capacity then begin
              ignore (Queue.pop dst.q);
              dst.drops <- dst.drops + 1
            end;
            Queue.add s dst.q)
          sh.q;
      dst.drops <- dst.drops + sh.drops
  | _ ->
      if !capacity > 0 then Queue.iter push_global sh.q;
      dropped_count := !dropped_count + sh.drops);
  Queue.clear sh.q;
  sh.drops <- 0

let shard_slices sh =
  List.rev (Queue.fold (fun acc s -> s :: acc) [] sh.q)

let shard_dropped sh = sh.drops

let slices () = List.rev (Queue.fold (fun acc s -> s :: acc) [] buffer)
let length () = Queue.length buffer
let dropped () = !dropped_count
