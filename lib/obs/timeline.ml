(* Per-entry span slices for the Chrome-trace/Perfetto timeline export.

   Spans only keep aggregates (total seconds, entry count); a timeline
   needs every completed outermost activation as an interval.  Span.exit
   records one slice here per outermost completion while the master
   switch is on.  Bounded ring, same shape as Trace: oldest slices are
   dropped and counted once the capacity is reached. *)

type slice = { name : string; start : float; stop : float }

let default_capacity = 65536
let capacity = ref default_capacity
let buffer : slice Queue.t = Queue.create ()
let dropped_count = ref 0

let clear () =
  Queue.clear buffer;
  dropped_count := 0

let set_capacity n =
  if n < 0 then invalid_arg "Obs.Timeline.set_capacity: negative";
  capacity := n;
  while Queue.length buffer > n do
    ignore (Queue.pop buffer);
    incr dropped_count
  done

let record name ~start ~stop =
  if State.on () && !capacity > 0 then begin
    if Queue.length buffer >= !capacity then begin
      ignore (Queue.pop buffer);
      incr dropped_count
    end;
    Queue.add { name; start; stop } buffer
  end

let slices () = List.rev (Queue.fold (fun acc s -> s :: acc) [] buffer)
let length () = Queue.length buffer
let dropped () = !dropped_count
