type t = {
  name : string;
  mutable total : float; (* accumulated wall seconds, outermost entries *)
  mutable entries : int; (* completed outermost entries *)
  mutable depth : int; (* live nesting depth (recursive re-entry) *)
  mutable started : float; (* wall clock of the outermost enter *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let make name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
      let s = { name; total = 0.; entries = 0; depth = 0; started = 0. } in
      Hashtbl.replace registry name s;
      s

let name s = s.name
let seconds s = s.total
let count s = s.entries

let enter s =
  if State.on () then begin
    if s.depth = 0 then s.started <- Prelude.Timer.wall ();
    s.depth <- s.depth + 1
  end

let exit s =
  if State.on () && s.depth > 0 then begin
    s.depth <- s.depth - 1;
    if s.depth = 0 then begin
      let now = Prelude.Timer.wall () in
      s.total <- s.total +. (now -. s.started);
      s.entries <- s.entries + 1;
      Timeline.record s.name ~start:s.started ~stop:now
    end
  end

let time s f =
  if not (State.on ()) then f ()
  else begin
    enter s;
    Fun.protect ~finally:(fun () -> exit s) f
  end

let all () =
  Hashtbl.fold (fun _ s acc -> (s.name, s.total, s.entries) :: acc) registry []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let reset_all () =
  Hashtbl.iter
    (fun _ s ->
      s.total <- 0.;
      s.entries <- 0;
      s.depth <- 0;
      s.started <- 0.)
    registry
