type gc_totals = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  compactions : int;
}

let gc_zero =
  { minor_words = 0.; promoted_words = 0.; major_words = 0.; compactions = 0 }

type t = {
  name : string;
  mutable total : float; (* accumulated wall seconds, outermost entries *)
  mutable entries : int; (* completed outermost entries *)
  mutable depth : int; (* live nesting depth (recursive re-entry) *)
  mutable started : float; (* wall clock of the outermost enter *)
  (* Gc.quick_stat snapshot at the outermost enter, and the deltas
     accumulated over completed outermost entries.  quick_stat reads
     live counters without walking the heap, so the sampling itself
     allocates nothing and costs a few loads per phase boundary. *)
  mutable gc_at_enter : Gc.stat option;
  mutable gc : gc_totals;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let make name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
      let s =
        {
          name;
          total = 0.;
          entries = 0;
          depth = 0;
          started = 0.;
          gc_at_enter = None;
          gc = gc_zero;
        }
      in
      Hashtbl.replace registry name s;
      s

let name s = s.name
let seconds s = s.total
let count s = s.entries
let gc_totals s = s.gc

(* Per-domain shards (Obs.Shard): the registry records are plain mutable
   state, so with a shard installed, enter/exit operate on a domain-local
   mirror of the span (including nesting depth and GC deltas — quick_stat
   is per-domain in OCaml 5, so the deltas are the worker's own
   allocation).  Totals fold back into the registry at the phase
   barrier.  A span still open at the barrier (task raised between
   enter and exit without Fun.protect) loses that activation, matching
   the sequential toggle-while-open behaviour. *)
type shard = (string, t) Hashtbl.t

let shard_key : shard option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let new_shard () : shard = Hashtbl.create 16
let install_shard sh = Domain.DLS.set shard_key (Some sh)
let uninstall_shard () = Domain.DLS.set shard_key None
let current_shard () = Domain.DLS.get shard_key
let restore_shard s = Domain.DLS.set shard_key s

let cell_of sh name =
  match Hashtbl.find_opt sh name with
  | Some s -> s
  | None ->
      let s =
        {
          name;
          total = 0.;
          entries = 0;
          depth = 0;
          started = 0.;
          gc_at_enter = None;
          gc = gc_zero;
        }
      in
      Hashtbl.replace sh name s;
      s

(* Merging folds into the calling domain's installed sink: an enclosing
   shard (an Obs.Scope wrapping a parallel phase) or the registry. *)
let merge_shard sh =
  let fold_into (s : t) (local : t) =
    s.total <- s.total +. local.total;
    s.entries <- s.entries + local.entries;
    s.gc <-
      {
        minor_words = s.gc.minor_words +. local.gc.minor_words;
        promoted_words = s.gc.promoted_words +. local.gc.promoted_words;
        major_words = s.gc.major_words +. local.gc.major_words;
        compactions = s.gc.compactions + local.gc.compactions;
      }
  in
  (match Domain.DLS.get shard_key with
  | Some dst when dst != sh ->
      Hashtbl.iter (fun name local -> fold_into (cell_of dst name) local) sh
  | _ -> Hashtbl.iter (fun name local -> fold_into (make name) local) sh);
  Hashtbl.reset sh

let shard_contents (sh : shard) =
  Hashtbl.fold
    (fun name s acc -> (name, s.total, s.entries, s.gc) :: acc)
    sh []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

let resolve s =
  match Domain.DLS.get shard_key with
  | None -> s
  | Some sh -> cell_of sh s.name

let enter s =
  if State.on () then begin
    let s = resolve s in
    if s.depth = 0 then begin
      s.started <- Prelude.Timer.wall ();
      s.gc_at_enter <- Some (Gc.quick_stat ());
      (* live-stack mirror for the sampling profiler: allocation-free
         (stores an existing string into a pre-sized array), so GC
         deltas and every other observable stay byte-identical whether
         the sampler is attached or not *)
      if State.profiling_on () then Livestack.push s.name
    end;
    s.depth <- s.depth + 1
  end

let exit s =
  let s = if State.on () then resolve s else s in
  if State.on () && s.depth > 0 then begin
    s.depth <- s.depth - 1;
    if s.depth = 0 then begin
      let now = Prelude.Timer.wall () in
      s.total <- s.total +. (now -. s.started);
      s.entries <- s.entries + 1;
      (match s.gc_at_enter with
      | Some g0 ->
          let g1 = Gc.quick_stat () in
          s.gc <-
            {
              minor_words =
                s.gc.minor_words +. (g1.Gc.minor_words -. g0.Gc.minor_words);
              promoted_words =
                s.gc.promoted_words
                +. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
              major_words =
                s.gc.major_words +. (g1.Gc.major_words -. g0.Gc.major_words);
              compactions =
                s.gc.compactions + (g1.Gc.compactions - g0.Gc.compactions);
            };
          s.gc_at_enter <- None
      | None -> ());
      Timeline.record s.name ~start:s.started ~stop:now;
      if State.profiling_on () then Livestack.pop s.name
    end
  end

let time s f =
  if not (State.on ()) then f ()
  else begin
    enter s;
    Fun.protect ~finally:(fun () -> exit s) f
  end

let all () =
  Hashtbl.fold (fun _ s acc -> (s.name, s.total, s.entries) :: acc) registry []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let all_full () =
  Hashtbl.fold
    (fun _ s acc -> (s.name, s.total, s.entries, s.gc) :: acc)
    registry []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

let reset_all () =
  Hashtbl.iter
    (fun _ s ->
      s.total <- 0.;
      s.entries <- 0;
      s.depth <- 0;
      s.started <- 0.;
      s.gc_at_enter <- None;
      s.gc <- gc_zero)
    registry
