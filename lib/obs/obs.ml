module Json = Json
module Counter = Counter
module Span = Span
module Trace = Trace
module Timeline = Timeline
module Report = Report

let set_enabled = State.set_enabled
let enabled = State.enabled

let reset () =
  Counter.reset_all ();
  Span.reset_all ();
  Trace.clear ();
  Timeline.clear ()
