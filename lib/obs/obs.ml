module Json = Json
module Counter = Counter
module Gauge = Gauge
module Histogram = Histogram
module Span = Span
module Trace = Trace
module Timeline = Timeline
module Report = Report
module Prometheus = Prometheus

let set_enabled = State.set_enabled
let enabled = State.enabled

let reset () =
  Counter.reset_all ();
  Gauge.reset_all ();
  Histogram.reset_all ();
  Span.reset_all ();
  Trace.clear ();
  Timeline.clear ()
