module Json = Json
module Counter = Counter
module Gauge = Gauge
module Histogram = Histogram
module Span = Span
module Trace = Trace
module Timeline = Timeline
module Report = Report
module Prometheus = Prometheus
module Shard = Shard
module Scope = Scope
module Log = Log
module Flame = Flame
module Prof = Prof
module Slo = Slo

let set_enabled = State.set_enabled
let enabled = State.enabled

let reset () =
  if Atomic.get State.active_shards > 0 then
    invalid_arg
      (Printf.sprintf
         "Obs.reset: %d observability shard(s) live — a parallel phase is \
          in flight (or a shard was not released); resetting now would race \
          worker domains and lose their pending merges"
         (Atomic.get State.active_shards));
  if Atomic.get State.profiling then
    invalid_arg
      "Obs.reset: the sampling profiler is attached — its tick thread is \
       concurrently reading live span state that the reset would clear \
       under it; Prof.detach () first";
  Counter.reset_all ();
  Gauge.reset_all ();
  Histogram.reset_all ();
  Span.reset_all ();
  Trace.clear ();
  Timeline.clear ()
