(* Per-domain live span stacks for the sampling profiler (Obs.Prof).

   Span only keeps aggregates; a wall-clock sampler needs to know which
   spans are open RIGHT NOW on each domain.  While the profiler is
   attached (State.profiling), Span.enter/exit push and pop the span
   name on a small per-domain frame stack registered here; the tick
   thread walks the registry and snapshots every stack.

   Memory model: a stack is written only by its owning domain and read
   racily by the sampler thread.  Frames are immutable strings and the
   depth is an int, so every racy read observes a valid (if possibly
   stale or momentarily inconsistent) stack — acceptable for statistical
   sampling, and exactly why no signal machinery is needed
   (doc/PROFILING.md §Sampling without signals).  The registry itself is
   mutex-protected: domains register once, the sampler snapshots the
   list per tick.

   Pops match by name: [pop name] only removes the top frame when it
   equals [name].  A profiler attached mid-span would otherwise pop
   frames it never saw pushed and skew every later sample on that
   domain; name-matched pops self-correct within one request. *)

let capacity = 64

type t = {
  frames : string array; (* valid in [0, min depth capacity) *)
  mutable depth : int; (* live frames; may exceed [capacity] (deep
                          recursion of distinct spans — extra frames are
                          counted but not recorded) *)
  mutable route : string; (* serving context ("" outside a request) *)
}

let registry : t list ref = ref []
let registry_mutex = Mutex.create ()

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () =
  match Domain.DLS.get key with
  | Some st -> st
  | None ->
      let st = { frames = Array.make capacity ""; depth = 0; route = "" } in
      Mutex.lock registry_mutex;
      registry := st :: !registry;
      Mutex.unlock registry_mutex;
      Domain.DLS.set key (Some st);
      st

let push name =
  let st = current () in
  if st.depth < capacity then st.frames.(st.depth) <- name;
  st.depth <- st.depth + 1

let pop name =
  let st = current () in
  if st.depth > 0 then
    if st.depth > capacity then st.depth <- st.depth - 1
    else if String.equal st.frames.(st.depth - 1) name then begin
      st.depth <- st.depth - 1;
      st.frames.(st.depth) <- ""
    end

let set_route route = (current ()).route <- route

let with_route route f =
  let st = current () in
  let prev = st.route in
  st.route <- route;
  Fun.protect ~finally:(fun () -> st.route <- prev) f

(* Sampler-side snapshot of one stack: (route, frames outermost-first),
   or None when the stack is empty.  Reads race the owning domain; the
   depth is clamped and re-checked so the result is always well-formed. *)
let snapshot st =
  let d = min st.depth capacity in
  if d <= 0 then None
  else begin
    let frames = Array.sub st.frames 0 d in
    (* a concurrent pop may have blanked a tail frame between the depth
       read and the copy; drop empty frames rather than emit them *)
    let frames = Array.to_list frames |> List.filter (fun f -> f <> "") in
    match frames with [] -> None | fs -> Some (st.route, fs)
  end

let all () =
  Mutex.lock registry_mutex;
  let l = !registry in
  Mutex.unlock registry_mutex;
  l

(* Called by Prof.attach while State.profiling is still false (owners
   only write while it is true), so stale frames left by a detach that
   happened mid-span are cleared before sampling starts. *)
let clear_all () =
  List.iter
    (fun st ->
      st.depth <- 0;
      Array.fill st.frames 0 capacity "")
    (all ())
