(* Obs.Prof — wall-clock sampling profiler (doc/PROFILING.md).

   A single tick thread (systhreads, not a domain: it spends its life in
   [Thread.delay] and must not occupy a core) wakes every [interval]
   seconds and snapshots the live span stack of every registered domain
   (Livestack).  Each non-empty snapshot becomes one sample, folded
   immediately into an aggregate table keyed by (route, sanitized
   stack), plus a bounded raw ring kept for Chrome-trace synthesis.

   Isolation rules, load-bearing for the byte-identity guarantee:
   - the tick thread NEVER touches the Obs registries (they are
     unsynchronized by design; worker domains own them under the
     caller's locking discipline).  All profiler state lives here,
     behind [mu].  Servers surface prof.samples/dropped/
     overhead_seconds as Obs series at scrape time, on a domain that
     already holds the registry lock.
   - the observed program is only ever READ.  The per-domain stack
     push/pop in Span.enter/exit stores pre-existing strings into a
     pre-allocated array — no allocation, no synchronization — so GC
     telemetry, φ search, labels and audit documents are unchanged by
     attaching (gated in bench perf for --jobs 1/2/4).

   Accounting: [samples] counts recorded stack snapshots; [dropped]
   counts raw samples evicted from the ring (their folded aggregate is
   retained — only Chrome-trace fidelity degrades); [overhead_seconds]
   accumulates wall time the tick thread spent actually sampling,
   excluding sleep — the profiler's own budget, surfaced so a regression
   in it is visible before it shows up as serve latency. *)

let default_interval = 0.010
let ring_capacity = 65536

type sample = { at : float; route : string; frames : string list }

type state = {
  mutable thread : Thread.t option;
  mutable stop : bool;
  mutable interval : float;
  (* (route, "f1;f2;...") -> sampled seconds (count x interval) *)
  folded_tbl : (string * string, float) Hashtbl.t;
  ring : sample Queue.t;
  mutable samples : int;
  mutable dropped : int;
  mutable overhead : float;
}

let st =
  {
    thread = None;
    stop = false;
    interval = default_interval;
    folded_tbl = Hashtbl.create 256;
    ring = Queue.create ();
    samples = 0;
    dropped = 0;
    overhead = 0.;
  }

let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let attached () = locked (fun () -> st.thread <> None)
let samples () = locked (fun () -> st.samples)
let dropped () = locked (fun () -> st.dropped)
let overhead_seconds () = locked (fun () -> st.overhead)
let interval () = locked (fun () -> st.interval)

let set_route = Livestack.set_route
let with_route = Livestack.with_route

let record_sample now (route, frames) =
  let frames = List.map Flame.clean_frame frames in
  let key = (route, String.concat ";" frames) in
  let prev = Option.value ~default:0. (Hashtbl.find_opt st.folded_tbl key) in
  Hashtbl.replace st.folded_tbl key (prev +. st.interval);
  if Queue.length st.ring >= ring_capacity then begin
    ignore (Queue.pop st.ring);
    st.dropped <- st.dropped + 1
  end;
  Queue.push { at = now; route; frames } st.ring;
  st.samples <- st.samples + 1

let tick () =
  let t0 = Prelude.Timer.wall () in
  let snaps = List.filter_map Livestack.snapshot (Livestack.all ()) in
  locked (fun () ->
      List.iter (record_sample t0) snaps;
      st.overhead <- st.overhead +. (Prelude.Timer.wall () -. t0))

let loop () =
  let rec go () =
    let stop_now = locked (fun () -> st.stop) in
    if not stop_now then begin
      Thread.delay (locked (fun () -> st.interval));
      let stop_now = locked (fun () -> st.stop) in
      if not stop_now then begin
        tick ();
        go ()
      end
    end
  in
  go ()

let attach ?(interval = default_interval) () =
  if interval <= 0. then invalid_arg "Obs.Prof.attach: interval must be > 0";
  let start =
    locked (fun () ->
        if st.thread <> None then
          invalid_arg "Obs.Prof.attach: sampler already attached";
        st.interval <- interval;
        st.stop <- false;
        true)
  in
  if start then begin
    (* stale frames can survive a detach mid-span (the matching pops run
       only while profiling is on); start from clean stacks *)
    Livestack.clear_all ();
    Atomic.set State.profiling true;
    let t = Thread.create loop () in
    locked (fun () -> st.thread <- Some t)
  end

let detach () =
  let t =
    locked (fun () ->
        let t = st.thread in
        st.stop <- true;
        st.thread <- None;
        t)
  in
  match t with
  | None -> ()
  | Some t ->
      Atomic.set State.profiling false;
      Thread.join t

let reset () =
  locked (fun () ->
      Hashtbl.reset st.folded_tbl;
      Queue.clear st.ring;
      st.samples <- 0;
      st.dropped <- 0;
      st.overhead <- 0.)

let routes () =
  locked (fun () ->
      let seen = Hashtbl.create 8 in
      Hashtbl.iter
        (fun (route, _) _ ->
          if route <> "" then Hashtbl.replace seen route ())
        st.folded_tbl;
      Hashtbl.fold (fun r () acc -> r :: acc) seen []
      |> List.sort String.compare)

let matches route_filter route =
  match route_filter with None -> true | Some r -> String.equal r route

let folded ?route () =
  locked (fun () ->
      let acc = Hashtbl.create 64 in
      Hashtbl.iter
        (fun (r, stack) secs ->
          if matches route r then begin
            let prev = Option.value ~default:0. (Hashtbl.find_opt acc stack) in
            Hashtbl.replace acc stack (prev +. secs)
          end)
        st.folded_tbl;
      Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let folded_text ?route () = Flame.to_string (folded ?route ())

(* Self time of a sampled stack belongs to its leaf (deepest) frame. *)
let top_self ?route () =
  let leaf stack =
    match String.rindex_opt stack ';' with
    | None -> stack
    | Some i -> String.sub stack (i + 1) (String.length stack - i - 1)
  in
  let acc = Hashtbl.create 64 in
  List.iter
    (fun (stack, secs) ->
      let f = leaf stack in
      let prev = Option.value ~default:0. (Hashtbl.find_opt acc f) in
      Hashtbl.replace acc f (prev +. secs))
    (folded ?route ());
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, sa) (b, sb) ->
         match Float.compare sb sa with 0 -> String.compare a b | c -> c)

(* Raw ring samples as Timeline slices for Chrome-trace synthesis: a
   sample's frames become nested [at, at + interval) slices (equal
   intervals nest outermost-first under Flame/Perfetto containment
   rules), so one sample renders as one stack column of width
   [interval]. *)
let slices ?route () =
  let iv, samples =
    locked (fun () ->
        (st.interval, Queue.fold (fun acc s -> s :: acc) [] st.ring))
  in
  List.rev samples
  |> List.concat_map (fun s ->
         if matches route s.route then
           List.map
             (fun name ->
               { Timeline.name; start = s.at; stop = s.at +. iv })
             s.frames
         else [])
