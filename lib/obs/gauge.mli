(** Point-in-time values: pool sizes, in-flight request counts.

    Unlike {!Counter}, gauges may go down.  Mutation is gated on the
    global observability switch; [make] is idempotent per name. *)

type t

val make : string -> t
val name : t -> string
val value : t -> float
val set : t -> float -> unit
val set_int : t -> int -> unit
val add : t -> float -> unit
val incr : t -> unit
val decr : t -> unit
val find : string -> float option
val all : unit -> (string * float) list
(** All registered gauges, sorted by name. *)

val reset_all : unit -> unit
