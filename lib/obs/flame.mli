(** Span timelines as flamegraph.pl folded stacks.

    [flamegraph.pl] (and every compatible renderer: speedscope,
    inferno, d3-flame-graph) consumes "folded stacks": one line per
    distinct call stack, frames joined with [';'], followed by an
    integer weight.  This module folds {!Timeline} slices — whole-run
    rings, per-request {!Scope} summaries, or re-parsed [--timeline]
    Chrome-trace documents — into that format, weighting each stack by
    its SELF time in microseconds (duration minus direct children).

    Call nesting is recovered from interval containment; slices merged
    from parallel lanes that overlap without nesting fold as siblings
    with self time clamped at zero, so the output stays well-formed
    (see [doc/OBSERVABILITY.md] §Flamegraphs). *)

val clean_frame : string -> string
(** Frame-name sanitization used throughout: [';'], [' '] and newlines
    (structural in the folded format) replaced by ['_']. *)

val fold_slices : Timeline.slice list -> (string * float) list
(** Folded stacks: (frames joined with [';'], outermost first; self
    seconds), sorted by stack, zero-self stacks included.  Frame names
    have [';'], [' '] and newlines replaced by ['_']. *)

val to_string : (string * float) list -> string
(** The folded-stack text: one ["stack weight\n"] line per entry with
    self time rounded to integer microseconds; stacks rounding to zero
    weight are omitted (flamegraph.pl ignores them anyway). *)

val of_slices : Timeline.slice list -> string
(** [to_string (fold_slices slices)]. *)

val slices_of_timeline_json : Json.t -> (Timeline.slice list, string) result
(** Recover slices from a Chrome-trace document (as written by
    {!Report.write_timeline} / [--timeline]): every ["X"] complete
    event, [ts]/[dur] microseconds back to seconds. *)

val write : string -> string -> unit
(** [write dest text] writes to the file [dest], or stdout for ["-"]. *)
