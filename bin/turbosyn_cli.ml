(* Command-line driver for the TurboSYN library.

   Examples:
     turbosyn_cli list
     turbosyn_cli stats --workload bbara
     turbosyn_cli map --workload bbara --algo turbosyn -k 5
     turbosyn_cli map --input my.blif --algo turbomap --output mapped.blif
*)

open Cmdliner

let load ~input ~workload =
  match (input, workload) with
  | Some path, None -> (
      match Circuit.Blif.parse_file path with
      | Ok nl -> Ok nl
      | Error e -> Error (Printf.sprintf "cannot parse %s: %s" path e))
  | None, Some name -> (
      match Workloads.Suite.find name with
      | Some spec -> Ok (Workloads.Suite.build spec)
      | None -> Error (Printf.sprintf "unknown workload %s (try `list`)" name))
  | Some _, Some _ -> Error "give either --input or --workload, not both"
  | None, None -> Error "give --input FILE or --workload NAME"

let input_arg =
  Arg.(value & opt (some string) None & info [ "input"; "i" ] ~docv:"FILE"
         ~doc:"Read the circuit from a BLIF file.")

let workload_arg =
  Arg.(value & opt (some string) None & info [ "workload"; "w" ] ~docv:"NAME"
         ~doc:"Use a named benchmark workload (see $(b,list)).")

let k_arg =
  Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"LUT input count (2-6).")

let algo_conv =
  Arg.enum
    [ ("turbosyn", `Turbosyn); ("turbomap", `Turbomap); ("flowsyn-s", `Flowsyn_s) ]

let algo_arg =
  Arg.(value & opt algo_conv `Turbosyn & info [ "algo"; "a" ] ~docv:"ALGO"
         ~doc:"Mapping algorithm: $(b,turbosyn), $(b,turbomap) or $(b,flowsyn-s).")

let output_arg =
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
         ~doc:"Write the mapped circuit as BLIF.")

let verilog_arg =
  Arg.(value & opt (some string) None & info [ "verilog" ] ~docv:"FILE"
         ~doc:"Write the mapped circuit as structural Verilog.")

let verify_arg =
  Arg.(value & flag & info [ "verify" ]
         ~doc:"Check the mapped circuit against the source by simulation.")

let no_pld_arg =
  Arg.(value & flag & info [ "no-pld" ] ~doc:"Disable positive loop detection.")

let no_area_arg =
  Arg.(value & flag & info [ "no-area" ] ~doc:"Skip area recovery.")

let multi_arg =
  Arg.(value & flag & info [ "multi" ]
         ~doc:"Enable two-wire multi-output decomposition (wider search,                more area).")

let exact_arg =
  Arg.(value & flag & info [ "exact" ]
         ~doc:"Search clock-period ratios over every denominator up to the                register count (default caps at 24).")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Label the independent SCCs of each condensation level on \
               $(docv) domains inside every label run (intra-phi lanes, \
               doc/CONCURRENCY.md; byte-identical result for every N; \
               N=1 is fully sequential).")

let probe_jobs_arg =
  Arg.(value & opt int 1 & info [ "probe-jobs" ] ~docv:"N"
         ~doc:"Run up to $(docv) speculative ratio-search probes in parallel \
               (same result for every N; N=1 is the sequential search).  \
               Orthogonal to $(b,--jobs): combining both multiplies the \
               domain count.")

let sweep_arg =
  Arg.(value & flag & info [ "sweep-engine" ]
         ~doc:"Use the all-members-per-iteration label engine instead of the \
               worklist scheduler (same labels and mapping; for comparison).")

let stats_arg =
  Arg.(value & opt ~vopt:(Some "-") (some string) None
       & info [ "stats" ] ~docv:"FILE"
           ~doc:"Collect algorithm counters and phase timings and write the \
                 JSON report (schema: doc/OBSERVABILITY.md) to $(docv); with \
                 no $(docv), print it to stdout and move the human-readable \
                 summary to stderr.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record structured events (one ratio-search probe per line) \
                 and write them as JSON lines to $(docv).")

let timeline_arg =
  Arg.(value & opt (some string) None
       & info [ "timeline" ] ~docv:"FILE"
           ~doc:"Record per-phase activations and write them as a Chrome-trace \
                 JSON document (loads in Perfetto / chrome://tracing) to \
                 $(docv).")

let audit_arg =
  Arg.(value & opt (some string) None
       & info [ "audit" ] ~docv:"FILE"
           ~doc:"Write the turbosyn-audit/1 evidence document (critical-loop \
                 certificate, retiming witness, label provenance; see \
                 doc/AUDIT.md) to $(docv).")

let log_level_arg =
  Arg.(value & opt (some string) None
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Structured-log threshold: $(b,debug), $(b,info), $(b,warn) \
                 or $(b,error) (default info).  Lines below the threshold \
                 are dropped.")

let log_file_arg =
  Arg.(value & opt (some string) None
       & info [ "log-file" ] ~docv:"FILE"
           ~doc:"Append structured JSON log lines (schema turbosyn-log/1, \
                 doc/OBSERVABILITY.md) to $(docv) instead of stderr.")

let exit_err msg =
  Format.eprintf "error: %s@." msg;
  exit 1

let profile_interval_arg =
  Arg.(value & opt float 0.01 & info [ "profile-interval" ] ~docv:"SECONDS"
         ~doc:"Sampling-profiler tick interval (doc/PROFILING.md).  \
               Effective granularity on compute-bound work is bounded by \
               the runtime's thread tick (~50ms), so smaller values mainly \
               sharpen timestamps, not cost.")

(* resolve --slo/--slo-file into objectives, refusing bad specs up front *)
let resolve_slos ~slo_specs ~slo_file =
  let from_file =
    match slo_file with
    | None -> []
    | Some path -> (
        match Obs.Slo.parse_file path with
        | Ok objectives -> objectives
        | Error e -> exit_err (Printf.sprintf "--slo-file %s: %s" path e))
  in
  match Obs.Slo.parse_all slo_specs with
  | Ok from_flags -> from_file @ from_flags
  | Error e -> exit_err e

(* Route the structured logger per the common --log-level/--log-file
   flags.  [outputs] lists every (flag, destination) this invocation
   will write machine-readable documents to; sending log lines into the
   same file would corrupt both, so the collision is refused up front. *)
let setup_logging ~log_level ~log_file ~outputs =
  (match log_level with
  | None -> ()
  | Some s -> (
      match Obs.Log.level_of_string s with
      | Some lvl -> Obs.Log.set_level lvl
      | None ->
          exit_err
            (Printf.sprintf
               "unknown --log-level %S (debug, info, warn, error)" s)));
  match log_file with
  | None -> Obs.Log.to_stderr ()
  | Some path -> (
      if path = "-" then
        exit_err "--log-file does not accept -: stdout is reserved for \
                  machine-readable output (logs go to stderr by default)";
      List.iter
        (fun (flag, dest) ->
          match dest with
          | Some d when d <> "-" && d = path ->
              exit_err
                (Printf.sprintf
                   "--log-file and %s both name %s; interleaving JSON log \
                    lines with a report would corrupt both — pick distinct \
                    files" flag d)
          | _ -> ())
        outputs;
      try Obs.Log.to_file path
      with Sys_error e -> exit_err e)

let list_cmd =
  let run () =
    Format.printf "%-10s %-10s %6s %4s %4s %4s@." "name" "style" "gates" "ffs"
      "pis" "pos";
    List.iter
      (fun s ->
        let style =
          match s.Workloads.Suite.style with
          | Workloads.Suite.Fsm -> "fsm"
          | Workloads.Suite.Mixer d -> Printf.sprintf "mixer %.2f" d
          | Workloads.Suite.Lfsr -> "lfsr"
          | Workloads.Suite.Counter -> "counter"
          | Workloads.Suite.Datapath -> "datapath"
        in
        Format.printf "%-10s %-10s %6d %4d %4d %4d@." s.Workloads.Suite.name
          style s.Workloads.Suite.gates s.Workloads.Suite.ffs
          s.Workloads.Suite.pis s.Workloads.Suite.pos)
      Workloads.Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the named benchmark workloads.")
    Term.(const run $ const ())

let stats_cmd =
  let run input workload =
    match load ~input ~workload with
    | Error e -> exit_err e
    | Ok nl ->
        Format.printf "%s: %a@." (Circuit.Netlist.name nl)
          Circuit.Netlist.pp_stats
          (Circuit.Netlist.stats nl);
        (match Circuit.Netlist.mdr_ratio nl with
        | Graphs.Cycle_ratio.Ratio r ->
            Format.printf "MDR ratio: %a (clock-period bound %d)@." Prelude.Rat.pp
              r
              (max 1 (Prelude.Rat.ceil r))
        | Graphs.Cycle_ratio.No_cycle ->
            Format.printf "MDR ratio: none (acyclic: fully pipelinable)@."
        | Graphs.Cycle_ratio.Infinite ->
            Format.printf "MDR ratio: infinite (combinational loop!)@.");
        Format.printf "clock period without retiming: %d@."
          (Retime.Retiming.clock_period nl)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print circuit statistics and the MDR bound.")
    Term.(const run $ input_arg $ workload_arg)

let map_cmd =
  let run input workload algo k output verilog verify no_pld no_area multi exact
      jobs probe_jobs sweep stats trace timeline audit profile profile_interval
      log_level log_file =
    setup_logging ~log_level ~log_file
      ~outputs:
        [
          ("--stats", stats);
          ("--trace", trace);
          ("--timeline", timeline);
          ("--audit", audit);
          ("--output", output);
          ("--verilog", verilog);
          ("--profile", profile);
        ];
    match load ~input ~workload with
    | Error e -> exit_err e
    | Ok nl -> (
        let options =
          {
            (Turbosyn.Synth.default_options ~k ()) with
            Turbosyn.Synth.pld = not no_pld;
            area_recovery = not no_area;
            multi_output = multi;
            phi_max_den = (if exact then None else Some 24);
            jobs = max 1 jobs;
            probe_jobs = max 1 probe_jobs;
            engine =
              (if sweep then Seqmap.Label_engine.Sweep
               else Seqmap.Label_engine.Worklist);
          }
        in
        (* --trace, --timeline and --profile record even without --stats *)
        if stats <> None || trace <> None || timeline <> None
           || profile <> None
        then begin
          Obs.set_enabled true;
          Obs.reset ()
        end;
        (* reset before attach: Obs.reset refuses while the sampler is on *)
        if profile <> None then begin
          if profile_interval <= 0. then
            exit_err "--profile-interval must be > 0";
          Obs.Prof.reset ();
          Obs.Prof.attach ~interval:profile_interval ()
        end;
        let detach_prof () = if profile <> None then Obs.Prof.detach () in
        (* keep stdout parseable when the JSON report goes there *)
        let out =
          if stats = Some "-" || profile = Some "-" then Format.err_formatter
          else Format.std_formatter
        in
        let algo_name =
          match algo with
          | `Turbosyn -> "turbosyn"
          | `Turbomap -> "turbomap"
          | `Flowsyn_s -> "flowsyn-s"
        in
        Obs.Log.debug "map.start"
          [
            ("circuit", Obs.Json.Str (Circuit.Netlist.name nl));
            ("algo", Obs.Json.Str algo_name);
            ("k", Obs.Json.Int k);
            ("jobs", Obs.Json.Int (max 1 jobs));
          ];
        match Turbosyn.Synth.run ~options algo nl with
        | exception Invalid_argument msg ->
            detach_prof ();
            exit_err msg
        | r ->
            detach_prof ();
            Obs.Log.debug "map.done"
              [
                ("circuit", Obs.Json.Str (Circuit.Netlist.name nl));
                ("algo", Obs.Json.Str algo_name);
                ( "phi",
                  Obs.Json.Str (Prelude.Rat.to_string r.Turbosyn.Synth.phi) );
                ("clock_period", Obs.Json.Int r.Turbosyn.Synth.clock_period);
                ("luts", Obs.Json.Int r.Turbosyn.Synth.luts);
                ("seconds", Obs.Json.Float r.Turbosyn.Synth.cpu_seconds);
              ];
            Format.fprintf out "algorithm: %s@."
              (match r.Turbosyn.Synth.algo with
              | `Turbosyn -> "TurboSYN"
              | `Turbomap -> "TurboMap"
              | `Flowsyn_s -> "FlowSYN-s");
            Format.fprintf out "phi (min MDR ratio): %s@."
              (Prelude.Rat.to_string r.Turbosyn.Synth.phi);
            Format.fprintf out "clock period: %d   pipeline latency: %d@."
              r.Turbosyn.Synth.clock_period r.Turbosyn.Synth.latency;
            Format.fprintf out "LUTs: %d (before area recovery: %d)@."
              r.Turbosyn.Synth.luts r.Turbosyn.Synth.luts_before_area;
            Format.fprintf out "CPU: %.2fs  probes: %d@."
              r.Turbosyn.Synth.cpu_seconds r.Turbosyn.Synth.probes;
            if verify then begin
              let rng = Prelude.Rng.create 7 in
              let ok = Sim.Equiv.mapped_equal rng nl r.Turbosyn.Synth.mapped in
              Format.fprintf out "verification: %s@."
                (if ok then "PASS" else "FAIL");
              if not ok then exit 2
            end;
            let write path f =
              match f () with
              | () -> ()
              | exception Sys_error msg -> exit_err msg
              | exception _ -> exit_err (Printf.sprintf "cannot write %s" path)
            in
            (match output with
            | Some path ->
                write path (fun () ->
                    Circuit.Blif.write_file r.Turbosyn.Synth.mapped path);
                Format.fprintf out "wrote %s@." path
            | None -> ());
            (match verilog with
            | Some path ->
                write path (fun () ->
                    Circuit.Verilog.write_file r.Turbosyn.Synth.mapped path);
                Format.fprintf out "wrote %s@." path
            | None -> ());
            (match trace with
            | Some path ->
                write path (fun () -> Obs.Trace.to_file path);
                Format.fprintf out "wrote %s (%d events, %d dropped)@." path
                  (Obs.Trace.length ()) (Obs.Trace.dropped ())
            | None -> ());
            (match timeline with
            | Some path ->
                write path (fun () -> Obs.Report.write_timeline path);
                if path <> "-" then
                  Format.fprintf out "wrote %s (%d slices)@." path
                    (Obs.Timeline.length ())
            | None -> ());
            (match profile with
            | Some path ->
                write path (fun () ->
                    Obs.Flame.write path (Obs.Prof.folded_text ()));
                Format.eprintf
                  "profile: %d samples (%d dropped), %.3fs sampler overhead@."
                  (Obs.Prof.samples ()) (Obs.Prof.dropped ())
                  (Obs.Prof.overhead_seconds ());
                if path <> "-" then Format.fprintf out "wrote %s@." path
            | None -> ());
            (match audit with
            | Some path -> (
                match Audit.build ~source:nl ~options r with
                | Error e -> exit_err (Printf.sprintf "audit: %s" e)
                | Ok doc ->
                    write path (fun () ->
                        let oc = open_out path in
                        Fun.protect
                          ~finally:(fun () -> close_out oc)
                          (fun () ->
                            output_string oc (Obs.Json.to_pretty_string doc);
                            output_char oc '\n'));
                    Format.fprintf out "wrote %s@." path)
            | None -> ());
            match stats with
            | Some dest ->
                let extra =
                  [
                    ( "run",
                      Obs.Json.Obj
                        [
                          ("circuit", Obs.Json.Str (Circuit.Netlist.name nl));
                          ( "algo",
                            Obs.Json.Str
                              (match r.Turbosyn.Synth.algo with
                              | `Turbosyn -> "turbosyn"
                              | `Turbomap -> "turbomap"
                              | `Flowsyn_s -> "flowsyn-s") );
                          ("k", Obs.Json.Int k);
                          ( "phi",
                            Obs.Json.Str
                              (Prelude.Rat.to_string r.Turbosyn.Synth.phi) );
                          ( "clock_period",
                            Obs.Json.Int r.Turbosyn.Synth.clock_period );
                          ("latency", Obs.Json.Int r.Turbosyn.Synth.latency);
                          ("luts", Obs.Json.Int r.Turbosyn.Synth.luts);
                          ("probes", Obs.Json.Int r.Turbosyn.Synth.probes);
                          ( "cpu_seconds",
                            Obs.Json.Float r.Turbosyn.Synth.cpu_seconds );
                        ] );
                  ]
                in
                write dest (fun () -> Obs.Report.write_stats ~extra dest);
                if dest <> "-" then Format.fprintf out "wrote %s@." dest
            | None -> ())
  in
  let profile_arg =
    Arg.(value & opt ~vopt:(Some "-") (some string) None
         & info [ "profile" ] ~docv:"FILE"
             ~doc:"Attach the wall-clock sampling profiler for the run and \
                   write its folded stacks (flamegraph.pl format, \
                   doc/PROFILING.md) to $(docv); with no $(docv), print \
                   them to stdout and move the human-readable summary to \
                   stderr.  The mapping result is byte-identical with or \
                   without this flag.")
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:"Map a circuit to K-LUTs minimizing the clock period under \
             retiming and pipelining.")
    Term.(
      const run $ input_arg $ workload_arg $ algo_arg $ k_arg $ output_arg
      $ verilog_arg $ verify_arg $ no_pld_arg $ no_area_arg $ multi_arg
      $ exact_arg $ jobs_arg $ probe_jobs_arg $ sweep_arg $ stats_arg
      $ trace_arg $ timeline_arg $ audit_arg $ profile_arg
      $ profile_interval_arg $ log_level_arg $ log_file_arg)

let audit_cmd =
  let run check input workload algo k sweep out seed =
    let write path f =
      match f () with
      | () -> ()
      | exception Sys_error msg -> exit_err msg
      | exception _ -> exit_err (Printf.sprintf "cannot write %s" path)
    in
    let report_verdict v =
      print_string (Audit.render_verdict v);
      if not v.Audit.v_ok then exit 2
    in
    match check with
    | Some path -> (
        (* check mode: independently verify an existing document *)
        match
          try Ok (In_channel.with_open_bin path In_channel.input_all)
          with Sys_error e -> Error e
        with
        | Error e -> exit_err e
        | Ok text -> (
            match Obs.Json.of_string text with
            | Error e -> exit_err (Printf.sprintf "%s: %s" path e)
            | Ok doc -> (
                match Audit.verify ~seed doc with
                | Error e ->
                    exit_err
                      (Printf.sprintf "%s: malformed audit document: %s" path e)
                | Ok v -> report_verdict v)))
    | None -> (
        match load ~input ~workload with
        | Error e -> exit_err e
        | Ok nl -> (
            let options =
              {
                (Turbosyn.Synth.default_options ~k ()) with
                Turbosyn.Synth.engine =
                  (if sweep then Seqmap.Label_engine.Sweep
                   else Seqmap.Label_engine.Worklist);
              }
            in
            match Turbosyn.Synth.run ~options algo nl with
            | exception Invalid_argument msg -> exit_err msg
            | r -> (
                match Audit.build ~source:nl ~options r with
                | Error e -> exit_err e
                | Ok doc ->
                    (match out with
                    | Some path ->
                        write path (fun () ->
                            let oc = open_out path in
                            Fun.protect
                              ~finally:(fun () -> close_out oc)
                              (fun () ->
                                output_string oc
                                  (Obs.Json.to_pretty_string doc);
                                output_char oc '\n'));
                        Format.printf "wrote %s@." path
                    | None -> ());
                    (match Audit.verify ~seed doc with
                    | Error e -> exit_err e
                    | Ok v -> report_verdict v))))
  in
  let check_arg =
    Arg.(value & opt (some string) None & info [ "check" ] ~docv:"FILE"
           ~doc:"Verify an existing audit document instead of generating one.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write the generated audit document to $(docv).")
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for the simulation-based equivalence check.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Generate (and independently verify) the turbosyn-audit/1 \
             evidence document: critical-loop certificate, retiming witness \
             and label provenance (doc/AUDIT.md).  With $(b,--check), verify \
             an existing document instead.")
    Term.(
      const run $ check_arg $ input_arg $ workload_arg $ algo_arg $ k_arg
      $ sweep_arg $ out_arg $ seed_arg)

let simulate_cmd =
  let run input workload cycles seed =
    match load ~input ~workload with
    | Error e -> exit_err e
    | Ok nl ->
        let rng = Prelude.Rng.create seed in
        let width = List.length (Circuit.Netlist.pis nl) in
        let sim = Sim.Simulator.create nl in
        let bit b = if b then '1' else '0' in
        Format.printf "cycle  %s  ->  %s@."
          (String.concat " " (List.map (Circuit.Netlist.node_name nl) (Circuit.Netlist.pis nl)))
          (String.concat " " (List.map (Circuit.Netlist.node_name nl) (Circuit.Netlist.pos nl)));
        for t = 0 to cycles - 1 do
          let inputs = Array.init width (fun _ -> Prelude.Rng.bool rng) in
          let outs = Sim.Simulator.step sim inputs in
          Format.printf "%5d  %s  ->  %s@." t
            (String.init width (fun i -> bit inputs.(i)))
            (String.init (Array.length outs) (fun i -> bit outs.(i)))
        done
  in
  let cycles_arg =
    Arg.(value & opt int 16 & info [ "cycles"; "n" ] ~docv:"N"
           ~doc:"Number of cycles to simulate.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Input stream seed.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a circuit on a random input stream.")
    Term.(const run $ input_arg $ workload_arg $ cycles_arg $ seed_arg)

let equiv_cmd =
  let run file_a file_b mapped =
    match (Circuit.Blif.parse_file file_a, Circuit.Blif.parse_file file_b) with
    | Error e, _ | _, Error e -> exit_err e
    | Ok a, Ok b ->
        let rng = Prelude.Rng.create 7 in
        let ok =
          if mapped then Sim.Equiv.mapped_equal rng a b
          else Sim.Equiv.io_equal rng a b
        in
        Format.printf "%s@." (if ok then "EQUIVALENT" else "DIFFERENT");
        if not ok then exit 2
  in
  let a_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"A.blif") in
  let b_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"B.blif") in
  let mapped_arg =
    Arg.(value & flag & info [ "mapped" ]
           ~doc:"Use the consistent-initial-state notion (for circuits mapped                  with retiming); node names of B must match signals of A.")
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Check two BLIF circuits for sequential equivalence by simulation.")
    Term.(const run $ a_arg $ b_arg $ mapped_arg)

let serve_cmd =
  let run port slow_seconds workers queue_depth cache_entries profile
      profile_interval slo_specs slo_file log_level log_file =
    setup_logging ~log_level ~log_file ~outputs:[];
    (* metrics must be live for /metrics to have content; never reset
       between requests so scrape counters stay monotone.  Reset before
       the server attaches the profiler (reset refuses while attached). *)
    Obs.set_enabled true;
    Obs.reset ();
    if queue_depth < 0 then exit_err "--queue-depth must be >= 0";
    if cache_entries < 0 then exit_err "--cache-entries must be >= 0";
    if profile_interval <= 0. then exit_err "--profile-interval must be > 0";
    let slos = resolve_slos ~slo_specs ~slo_file in
    match
      Serve.Server.create ~port ~slow_seconds ?workers ~queue_depth
        ~cache_entries ~slos ~profile ~profile_interval ()
    with
    | exception Unix.Unix_error (e, _, _) ->
        exit_err
          (Printf.sprintf "cannot listen on port %d: %s" port
             (Unix.error_message e))
    | server ->
        Format.eprintf
          "turbosyn serve: listening on http://127.0.0.1:%d (%d worker \
           domain(s), queue depth %d, cache %d entries%s%s; routes: /map, \
           /metrics, /healthz, /debug/requests, /debug/trace/<id>, \
           /debug/prof, /debug/slo)@."
          (Serve.Server.port server)
          (Serve.Server.workers server)
          queue_depth cache_entries
          (if profile then
             Printf.sprintf ", profiler every %gs" profile_interval
           else "")
          (match List.length slos with
          | 0 -> ""
          | n -> Printf.sprintf ", %d SLO objective(s)" n);
        Obs.Log.info "serve.start"
          [
            ("port", Obs.Json.Int (Serve.Server.port server));
            ("workers", Obs.Json.Int (Serve.Server.workers server));
            ("queue_depth", Obs.Json.Int queue_depth);
            ("cache_entries", Obs.Json.Int cache_entries);
            ("slow_seconds", Obs.Json.Float slow_seconds);
            ("profile", Obs.Json.Bool profile);
            ("slos", Obs.Json.Int (List.length slos));
          ];
        Serve.Server.run server
  in
  let port_arg =
    Arg.(value & opt int 8080 & info [ "port"; "p" ] ~docv:"PORT"
           ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let slow_arg =
    Arg.(value & opt float 1.0 & info [ "slow-seconds" ] ~docv:"SECONDS"
           ~doc:"Requests slower than $(docv) additionally log a \
                 $(b,serve.slow) warning with per-phase timings.")
  in
  let workers_arg =
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains draining the /map queue (default: \
                 host-derived, between 1 and 4; clamped to at least 1).")
  in
  let queue_depth_arg =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Admission bound: /map jobs queued beyond the in-flight \
                 ones before the server sheds with 429 + Retry-After \
                 (0 sheds every /map request).")
  in
  let cache_entries_arg =
    Arg.(value & opt int 256 & info [ "cache-entries" ] ~docv:"N"
           ~doc:"LRU capacity of the canonical-hash result cache \
                 (0 disables caching; responses then carry \
                 $(b,X-Cache: bypass)).")
  in
  let profile_flag_arg =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Attach the wall-clock sampling profiler for the server's \
                 lifetime; inspect it via GET /debug/prof (JSON summary, \
                 ?format=folded, ?format=chrome, ?route=map) and the \
                 $(b,turbosyn_prof_*) scrape gauges.  Served documents \
                 are byte-identical with or without this flag \
                 (doc/PROFILING.md).")
  in
  let slo_arg =
    Arg.(value & opt_all string [] & info [ "slo" ] ~docv:"SPEC"
           ~doc:"Add a per-route service-level objective, e.g. \
                 $(b,route=/map,p99=250ms,err=0.1%).  Repeatable.  \
                 Burn rates are served on GET /debug/slo and as \
                 $(b,turbosyn_slo_*) scrape families.")
  in
  let slo_file_arg =
    Arg.(value & opt (some string) None & info [ "slo-file" ] ~docv:"FILE"
           ~doc:"Read SLO specs from $(docv), one per line ($(b,#) comments \
                 and blank lines ignored), in addition to any $(b,--slo) \
                 flags.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the mapping pipeline over HTTP: POST /map runs a request \
             ({\"circuit\": ..., \"k\": ..., \"algo\": ...}) on a pool of \
             worker domains behind a bounded queue with a canonical-hash \
             result cache (X-Cache: hit|miss marker, 429 + Retry-After \
             load shedding), GET /metrics answers a Prometheus \
             text-exposition scrape, GET /healthz a liveness probe with \
             pool and cache gauges; GET /debug/requests and \
             /debug/trace/<id> introspect the recent-request ring.  Every \
             request carries a correlation id (X-Request-Id or traceparent, \
             echoed back) and emits a structured access-log line.  \
             $(b,--profile) attaches the sampling profiler (GET \
             /debug/prof), $(b,--slo)/$(b,--slo-file) declare latency and \
             error objectives evaluated at scrape time (GET /debug/slo).  \
             Runs until interrupted.")
    Term.(
      const run $ port_arg $ slow_arg $ workers_arg $ queue_depth_arg
      $ cache_entries_arg $ profile_flag_arg $ profile_interval_arg
      $ slo_arg $ slo_file_arg $ log_level_arg $ log_file_arg)

let flame_cmd =
  let run trace_file input workload algo k jobs output log_level log_file =
    setup_logging ~log_level ~log_file ~outputs:[ ("--output", Some output) ];
    let write_folded text =
      match Obs.Flame.write output text with
      | () ->
          if output <> "-" then Format.eprintf "wrote %s@." output
      | exception Sys_error e -> exit_err e
    in
    match trace_file with
    | Some path ->
        (* fold an existing Chrome-trace document: --timeline output or a
           /debug/trace/<id>?format=chrome body *)
        let text =
          match path with
          | "-" -> In_channel.input_all In_channel.stdin
          | _ -> (
              try In_channel.with_open_bin path In_channel.input_all
              with Sys_error e -> exit_err e)
        in
        (match Obs.Json.of_string text with
        | Error e -> exit_err (Printf.sprintf "%s: %s" path e)
        | Ok doc -> (
            match Obs.Flame.slices_of_timeline_json doc with
            | Error e -> exit_err (Printf.sprintf "%s: %s" path e)
            | Ok slices -> write_folded (Obs.Flame.of_slices slices)))
    | None -> (
        (* whole-run mode: map the circuit with the timeline live and
           fold the recorded span activations *)
        match load ~input ~workload with
        | Error e -> exit_err e
        | Ok nl -> (
            let options =
              {
                (Turbosyn.Synth.default_options ~k ()) with
                Turbosyn.Synth.jobs = max 1 jobs;
              }
            in
            Obs.set_enabled true;
            Obs.reset ();
            match Turbosyn.Synth.run ~options algo nl with
            | exception Invalid_argument msg -> exit_err msg
            | _ ->
                if Obs.Timeline.dropped () > 0 then
                  Format.eprintf
                    "flame: timeline ring dropped %d slices; deep stacks may \
                     fold with missing parents@."
                    (Obs.Timeline.dropped ());
                write_folded (Obs.Flame.of_slices (Obs.Timeline.slices ()))))
  in
  let trace_file_arg =
    Arg.(value & opt (some string) None & info [ "from-timeline"; "t" ]
           ~docv:"FILE"
           ~doc:"Fold an existing Chrome-trace document ($(b,map --timeline) \
                 output, or a /debug/trace/<id>?format=chrome body) instead \
                 of running a mapping; - reads stdin.")
  in
  let out_arg =
    Arg.(value & opt string "-" & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Write the folded stacks to $(docv) (default stdout).")
  in
  Cmd.v
    (Cmd.info "flame"
       ~doc:"Fold the span timeline into flamegraph.pl-compatible folded \
             stacks (one $(i,stack weight) line per distinct stack, weighted \
             by self time in microseconds).  Either run a mapping \
             ($(b,--workload)/$(b,--input)) and fold the whole run, or fold \
             an existing Chrome-trace document ($(b,--from-timeline)).  \
             Render with: flamegraph.pl out.folded > flame.svg.")
    Term.(
      const run $ trace_file_arg $ input_arg $ workload_arg $ algo_arg $ k_arg
      $ jobs_arg $ out_arg $ log_level_arg $ log_file_arg)

let prof_cmd =
  let run input workload algo k jobs interval top output log_level log_file =
    setup_logging ~log_level ~log_file ~outputs:[ ("--output", Some output) ];
    if interval <= 0. then exit_err "--profile-interval must be > 0";
    match load ~input ~workload with
    | Error e -> exit_err e
    | Ok nl -> (
        let options =
          {
            (Turbosyn.Synth.default_options ~k ()) with
            Turbosyn.Synth.jobs = max 1 jobs;
          }
        in
        (* spans only maintain the live stacks while collection is on;
           reset before attach (Obs.reset refuses while attached) *)
        Obs.set_enabled true;
        Obs.reset ();
        Obs.Prof.reset ();
        Obs.Prof.attach ~interval ();
        let finish () = Obs.Prof.detach () in
        match Turbosyn.Synth.run ~options algo nl with
        | exception Invalid_argument msg ->
            finish ();
            exit_err msg
        | _r -> (
            finish ();
            Format.eprintf
              "prof: %d samples (%d dropped), %.3fs sampler overhead@."
              (Obs.Prof.samples ()) (Obs.Prof.dropped ())
              (Obs.Prof.overhead_seconds ());
            if Obs.Prof.samples () = 0 then
              Format.eprintf
                "prof: no samples — the run finished inside one tick; try a \
                 larger workload or a smaller --profile-interval@.";
            match top with
            | Some n ->
                (* top-K self-time table to stdout (or --output) *)
                let rows =
                  Obs.Prof.top_self () |> List.filteri (fun i _ -> i < max 1 n)
                in
                let b = Buffer.create 256 in
                Buffer.add_string b
                  (Printf.sprintf "%12s  %8s  %s\n" "self-seconds" "samples"
                     "frame");
                List.iter
                  (fun (frame, secs) ->
                    Buffer.add_string b
                      (Printf.sprintf "%12.6f  %8.0f  %s\n" secs
                         (secs /. Obs.Prof.interval ())
                         frame))
                  rows;
                (try Obs.Flame.write output (Buffer.contents b)
                 with Sys_error e -> exit_err e);
                if output <> "-" then Format.eprintf "wrote %s@." output
            | None -> (
                (* folded stacks, flamegraph.pl-ready *)
                try
                  Obs.Flame.write output (Obs.Prof.folded_text ());
                  if output <> "-" then Format.eprintf "wrote %s@." output
                with Sys_error e -> exit_err e)))
  in
  let interval_arg =
    Arg.(value & opt float 0.01 & info [ "profile-interval"; "interval" ]
           ~docv:"SECONDS" ~doc:"Sampling tick interval.")
  in
  let top_arg =
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"K"
           ~doc:"Print a top-$(docv) self-time table (heaviest sampled \
                 frames) instead of folded stacks.")
  in
  let out_arg =
    Arg.(value & opt string "-" & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Write the folded stacks (or table) to $(docv) \
                 (default stdout).")
  in
  Cmd.v
    (Cmd.info "prof"
       ~doc:"Run a mapping under the wall-clock sampling profiler \
             (doc/PROFILING.md) and print flamegraph.pl-ready folded \
             stacks, or a top-K self-time table with $(b,--top).  Unlike \
             $(b,flame) (which folds exact span activations), the output \
             is statistical — weights are sample counts times the tick \
             interval — but reflects where wall time was actually spent, \
             including inside long-running phases.  Render with: \
             flamegraph.pl out.folded > flame.svg.")
    Term.(
      const run $ input_arg $ workload_arg $ algo_arg $ k_arg $ jobs_arg
      $ interval_arg $ top_arg $ out_arg $ log_level_arg $ log_file_arg)

let promlint_cmd =
  let run file =
    let text =
      match file with
      | "-" -> In_channel.input_all In_channel.stdin
      | path -> (
          try In_channel.with_open_bin path In_channel.input_all
          with Sys_error e -> exit_err e)
    in
    match Obs.Prometheus.validate text with
    | Ok () -> Format.printf "promlint: OK@."
    | Error errors ->
        List.iter (fun e -> Format.eprintf "promlint: %s@." e) errors;
        exit 2
  in
  let file_arg =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
           ~doc:"Scrape body to validate; - reads stdin.")
  in
  Cmd.v
    (Cmd.info "promlint"
       ~doc:"Validate a Prometheus text-exposition scrape (as served by \
             $(b,serve) /metrics): HELP/TYPE shape, name and label-escaping \
             rules, family grouping, histogram bucket structure.  Exits 2 on \
             violations.")
    Term.(const run $ file_arg)

let () =
  let doc = "TurboSYN: FPGA synthesis with retiming and pipelining (DAC'97)" in
  let main =
    Cmd.group (Cmd.info "turbosyn_cli" ~doc)
      [
        list_cmd;
        stats_cmd;
        map_cmd;
        audit_cmd;
        simulate_cmd;
        equiv_cmd;
        serve_cmd;
        flame_cmd;
        prof_cmd;
        promlint_cmd;
      ]
  in
  exit (Cmd.eval main)
