type t = { class_of : int array; representatives : Bdd.t array }

let compute man f ~bound =
  let b = Array.length bound in
  if b > 16 then invalid_arg "Classes.compute: bound set too large";
  let count = 1 lsl b in
  let class_of = Array.make count (-1) in
  let reps = ref [] in
  let nclasses = ref 0 in
  let seen = Hashtbl.create 16 in
  for m = 0 to count - 1 do
    let assigns =
      Array.to_list (Array.mapi (fun j v -> (v, m land (1 lsl j) <> 0)) bound)
    in
    let cof = Bdd.restrict_many man f assigns in
    match Hashtbl.find_opt seen cof with
    | Some c -> class_of.(m) <- c
    | None ->
        let c = !nclasses in
        incr nclasses;
        Hashtbl.replace seen cof c;
        class_of.(m) <- c;
        reps := cof :: !reps
  done;
  { class_of; representatives = Array.of_list (List.rev !reps) }

let multiplicity man f ~bound =
  Array.length (compute man f ~bound).representatives
