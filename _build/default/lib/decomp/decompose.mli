(** Single-output disjoint functional decomposition into K-LUT trees.

    This is the resynthesis engine of TurboSYN (and of the FlowSYN
    baseline): a cut function with more than K inputs is iteratively
    re-expressed as [f = f'(g(B), free)] where [B] is a bound set of at
    most K of the earliest-arriving inputs with column multiplicity µ <= 2,
    until at most K inputs remain.  Following the paper, inputs are sorted
    by increasing sequential arrival ([l(u) - φ·w] in TurboSYN's label
    computation), so extracted sub-LUTs are built from early signals and
    the root level stays low.

    Only single-output extraction is implemented, as in the paper (which
    notes the resulting area penalty and leaves multi-output decomposition
    to future work). *)

open Prelude

type tree =
  | Input of int  (** index into the caller's input array *)
  | Lut of Logic.Truthtable.t * tree array
      (** a LUT whose truth-table input [j] is fanin [j] *)

type result = {
  tree : tree;
  level : Rat.t;  (** arrival of the root under the given input arrivals *)
  luts : int;  (** number of LUT nodes in the tree *)
}

val tree_level : arrivals:Rat.t array -> tree -> Rat.t
(** Arrival of a tree: [arrivals.(i)] for [Input i], max of fanin levels
    plus one for a LUT ([Rat.zero] for a constant 0-input LUT). *)

val tree_luts : tree -> int

val eval_tree : tree -> (int -> bool) -> bool
(** Evaluate under an assignment of the original inputs. *)

val tree_inputs : tree -> int list
(** Distinct input indices used, ascending. *)

val decompose :
  ?exhaustive:bool ->
  ?multi:bool ->
  Bdd.man ->
  f:Bdd.t ->
  vars:int array ->
  arrivals:Rat.t array ->
  k:int ->
  result option
(** [decompose man ~f ~vars ~arrivals ~k] where [vars.(i)] is the BDD
    variable of input [i].  Returns a K-feasible LUT tree computing [f], or
    [None] when single-output disjoint decomposition gets stuck (no bound
    set of size >= 2 among the candidates has µ <= 2).

    [exhaustive] (default false) also tries non-prefix bound sets drawn
    from the K+3 earliest inputs when the earliest-prefix heuristic fails.

    [multi] (default false) enables two-wire extraction when no
    single-output bound set exists: a bound set of at least 3 inputs with
    column multiplicity <= 4 is replaced by two encoding wires.  This is
    the multiple-output decomposition the paper leaves as future work
    (citing Wurth et al. [26]); it widens the search space at an area
    cost.

    @raise Invalid_argument if [k < 2], [k > 6], or array lengths differ. *)
