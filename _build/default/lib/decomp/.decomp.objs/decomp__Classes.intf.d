lib/decomp/classes.mli: Bdd
