lib/decomp/decompose.ml: Array Bdd Classes Hashtbl Int Int64 List Logic Prelude Rat Truthtable
