lib/decomp/classes.ml: Array Bdd Hashtbl List
