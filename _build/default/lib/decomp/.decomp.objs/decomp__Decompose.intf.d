lib/decomp/decompose.mli: Bdd Logic Prelude Rat
