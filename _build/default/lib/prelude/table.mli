(** Plain-text table rendering for the benchmark harness.

    The harness prints each reproduced paper table with the same row/column
    structure as the original; this module handles alignment and rules. *)

type align = Left | Right

type t

val create : (string * align) list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a data row.  Rows shorter than the header are padded with empty
    cells; longer rows are rejected.
    @raise Invalid_argument on too many cells. *)

val add_rule : t -> unit
(** Append a horizontal rule (printed between summary and data rows). *)

val pp : Format.formatter -> t -> unit
val print : t -> unit
(** [print t] renders to stdout followed by a newline. *)
