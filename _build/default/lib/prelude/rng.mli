(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Every workload generator in this project derives its randomness from a
    seed so that benchmark circuits are reproducible across runs and
    machines.  The implementation is the standard SplitMix64 mixer. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator.  Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val of_string : string -> t
(** Seed a generator from a string (FNV-1a hash of the bytes), used to give
    each named workload its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> int -> int list
(** [sample t k n] draws [k] distinct values from [\[0, n)] (requires
    [k <= n]); order is unspecified. *)
