type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Rat.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num r = r.num
let den r = r.den
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero;
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }
let abs a = { a with num = Stdlib.abs a.num }
let mul_int a k = make (a.num * k) a.den
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let sign a = Stdlib.compare a.num 0

let floor a =
  if Stdlib.( >= ) a.num 0 then a.num / a.den
  else
    let q = a.num / a.den in
    if q * a.den = a.num then q else q - 1

let ceil a = -floor (neg a)
let is_integer a = a.den = 1
let mediant a b = make (a.num + b.num) (a.den + b.den)
let to_float a = float_of_int a.num /. float_of_int a.den

let pp fmt a =
  if a.den = 1 then Format.fprintf fmt "%d" a.num
  else Format.fprintf fmt "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

(* Exponential-then-binary search for the largest [k] in [1, kmax] with
   [p k], assuming [p] holds on a prefix and [p 1] holds. *)
let max_k_with ~kmax p =
  assert (Stdlib.( >= ) kmax 1 && p 1);
  let rec expo k = if Stdlib.( >= ) k kmax then kmax else if p (Stdlib.min kmax (2 * k)) then expo (2 * k) else k in
  let hi0 = expo 1 in
  if hi0 = kmax then kmax
  else begin
    (* p hi0 holds; p (min kmax (2*hi0)) fails. *)
    let lo = ref hi0 and hi = ref (Stdlib.min kmax (2 * hi0)) in
    while Stdlib.( > ) (!hi - !lo) 1 do
      let m = (!lo + !hi) / 2 in
      if p m then lo := m else hi := m
    done;
    !lo
  end

let stern_brocot_min ~lo ~hi ~max_den ~feasible =
  if not (feasible hi) then None
  else if feasible lo then Some lo
  else begin
    (* Descend the Stern–Brocot tree from the root anchors 0/1 and 1/0
       (Farey neighbors: a*d - b*c = -1 is preserved by every step, so when
       b + d exceeds [max_den] no fraction strictly between a/b and c/d has a
       denominator within budget and c/d is the answer).  The caller's [lo]
       and [hi] only bracket the threshold: monotonicity of [feasible]
       guarantees the minimum feasible fraction lies in (lo, hi]. *)
    let a = ref 0 and b = ref 1 in
    (* c/d = 1/0 represents +infinity until the first feasible probe. *)
    let c = ref 1 and d = ref 0 in
    let big = max_int / 4 in
    let result = ref None in
    while !result = None do
      if Stdlib.( > ) (!b + !d) max_den then result := Some (make !c !d)
      else if feasible (make (!a + !c) (!b + !d)) then begin
        (* Walk hi toward lo: m_k = (k*a + c)/(k*b + d), feasible on a
           prefix of k (values decrease toward a/b). *)
        let kmax = if !b = 0 then big else Stdlib.max 1 ((max_den - !d) / !b) in
        let k =
          max_k_with ~kmax (fun k ->
              feasible (make ((k * !a) + !c) ((k * !b) + !d)))
        in
        c := (k * !a) + !c;
        d := (k * !b) + !d
      end
      else begin
        (* Walk lo toward hi: m_k = (a + k*c)/(b + k*d), infeasible on a
           prefix of k (values increase toward c/d). *)
        let kmax = if !d = 0 then big else Stdlib.max 1 ((max_den - !b) / !d) in
        let k =
          max_k_with ~kmax (fun k ->
              not (feasible (make (!a + (k * !c)) (!b + (k * !d)))))
        in
        a := !a + (k * !c);
        b := !b + (k * !d)
      end
    done;
    !result
  end
