(** Exact rational arithmetic over native integers.

    All values are kept normalized: the denominator is strictly positive and
    [gcd |num| den = 1].  Numerators and denominators stay small in this
    project (clock-period ratios of circuits with at most a few thousand
    nodes), so native 63-bit arithmetic never overflows in practice; the
    operations nevertheless normalize eagerly to keep magnitudes minimal. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Invalid_argument if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val abs : t -> t

val mul_int : t -> int -> t
(** [mul_int r k] is [r * k]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val sign : t -> int

val floor : t -> int
(** Largest integer [k] with [k <= r]. *)

val ceil : t -> int
(** Smallest integer [k] with [k >= r]. *)

val is_integer : t -> bool

val mediant : t -> t -> t
(** [mediant a/b c/d = (a+c)/(b+d)] — the Stern–Brocot mediant.  Used for
    exact binary search over bounded-denominator rationals. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val stern_brocot_min :
  lo:t -> hi:t -> max_den:int -> feasible:(t -> bool) -> t option
(** [stern_brocot_min ~lo ~hi ~max_den ~feasible] finds the smallest rational
    [r] in [(lo, hi]] with denominator at most [max_den] such that
    [feasible r], assuming [feasible] is monotone (once true, true for all
    larger values).  Returns [None] when even [feasible hi] is false.  The
    search is exact: it descends the Stern–Brocot tree restricted to
    denominators [<= max_den], so the result is the true minimum feasible
    ratio of the underlying parametric problem when that ratio has
    denominator [<= max_den]. *)
