(** Wall-clock and CPU timing for the benchmark harness. *)

val wall : unit -> float
(** Monotonic wall-clock seconds (arbitrary epoch). *)

val cpu : unit -> float
(** Process CPU seconds, as [Sys.time]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed wall seconds. *)

val time_cpu : (unit -> 'a) -> 'a * float
(** [time_cpu f] runs [f ()] and returns its result with CPU seconds. *)
