lib/prelude/timer.mli:
