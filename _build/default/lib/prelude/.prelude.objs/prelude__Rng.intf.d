lib/prelude/rng.mli:
