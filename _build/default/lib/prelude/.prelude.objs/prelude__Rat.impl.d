lib/prelude/rat.ml: Format Stdlib
