lib/prelude/table.ml: Format List String
