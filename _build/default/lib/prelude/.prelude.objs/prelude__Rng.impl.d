lib/prelude/rng.ml: Array Char Hashtbl Int64 String
