lib/prelude/timer.ml: Sys Unix
