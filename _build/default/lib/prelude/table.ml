type align = Left | Right
type row = Cells of string list | Rule

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t cells =
  let n = List.length t.headers in
  let k = List.length cells in
  if k > n then invalid_arg "Table.add_row: too many cells";
  let cells = cells @ List.init (n - k) (fun _ -> "") in
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pp fmt t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Rule -> acc
            | Cells cs -> max acc (String.length (List.nth cs i)))
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let gap = width - String.length s in
    let gap = max 0 gap in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let print_cells cs =
    let padded = List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) cs in
    Format.fprintf fmt "| %s |@," (String.concat " | " padded)
  in
  let rule () =
    let dashes = List.map (fun w -> String.make (w + 2) '-') widths in
    Format.fprintf fmt "|%s|@," (String.concat "|" dashes)
  in
  Format.fprintf fmt "@[<v>";
  print_cells headers;
  rule ();
  List.iter (function Rule -> rule () | Cells cs -> print_cells cs) rows;
  Format.fprintf fmt "@]"

let print t = Format.printf "%a@." pp t
