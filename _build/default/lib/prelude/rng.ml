type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix (Int64.logxor s 0x1F83D9ABFB41BD6BL) }

let of_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  { state = mix !h }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value is a non-negative native int on 64-bit
     platforms (OCaml ints are 63-bit). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k n =
  if k > n || k < 0 then invalid_arg "Rng.sample";
  (* Floyd's algorithm: k distinct values without materializing [0,n). *)
  let seen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem seen r then Hashtbl.replace seen j ()
    else Hashtbl.replace seen r ()
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) seen []
