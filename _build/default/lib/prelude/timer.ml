let wall () = Unix.gettimeofday ()
let cpu () = Sys.time ()

let time f =
  let t0 = wall () in
  let r = f () in
  (r, wall () -. t0)

let time_cpu f =
  let t0 = cpu () in
  let r = f () in
  (r, cpu () -. t0)
