open Logic

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* Strip comments, join continuation lines, drop blanks. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment l =
    match String.index_opt l '#' with Some i -> String.sub l 0 i | None -> l
  in
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | l :: rest ->
        let l = strip_comment l in
        let l = String.trim l in
        if l = "" then join acc pending rest
        else if String.length l > 0 && l.[String.length l - 1] = '\\' then
          join acc (pending ^ String.sub l 0 (String.length l - 1) ^ " ") rest
        else join ((pending ^ l) :: acc) "" rest
  in
  join [] "" raw

let tokens l =
  List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) l))

type raw_gate = { out : string; ins : string list; cubes : (string * char) list }

type raw = {
  mutable model : string option;
  mutable inputs : string list; (* reversed *)
  mutable outputs : string list; (* reversed *)
  mutable latches : (string * string) list; (* (d, q), reversed *)
  mutable gates : raw_gate list; (* reversed *)
}

let parse_cube_line gate_name toks =
  match toks with
  | [ pat; out ] when String.length out = 1 && (out.[0] = '0' || out.[0] = '1') ->
      (pat, out.[0])
  | [ out ] when String.length out = 1 && (out.[0] = '0' || out.[0] = '1') ->
      ("", out.[0])
  | _ -> fail "bad cube line in .names %s" gate_name

let parse_raw lines =
  let raw = { model = None; inputs = []; outputs = []; latches = []; gates = [] } in
  let rec go = function
    | [] -> raw
    | line :: rest -> (
        match tokens line with
        | [] -> go rest
        | cmd :: args when String.length cmd > 0 && cmd.[0] = '.' -> (
            match cmd with
            | ".model" ->
                raw.model <- (match args with nm :: _ -> Some nm | [] -> None);
                go rest
            | ".inputs" ->
                raw.inputs <- List.rev_append args raw.inputs;
                go rest
            | ".outputs" ->
                raw.outputs <- List.rev_append args raw.outputs;
                go rest
            | ".latch" -> (
                match args with
                | d :: q :: _ ->
                    raw.latches <- (d, q) :: raw.latches;
                    go rest
                | _ -> fail ".latch needs input and output")
            | ".names" -> (
                match List.rev args with
                | [] -> fail ".names needs a signal"
                | out :: rev_ins ->
                    let ins = List.rev rev_ins in
                    (* consume cube lines *)
                    let rec cubes acc = function
                      | l :: more when (match tokens l with
                                        | t :: _ -> t.[0] <> '.'
                                        | [] -> false) ->
                          cubes (parse_cube_line out (tokens l) :: acc) more
                      | more -> (List.rev acc, more)
                    in
                    let cs, rest' = cubes [] rest in
                    raw.gates <- { out; ins; cubes = cs } :: raw.gates;
                    go rest')
            | ".end" -> raw
            | ".clock" | ".default_input_arrival" | ".default_output_required"
            | ".area" | ".delay" | ".wire_load_slope" ->
                go rest
            | other -> fail "unsupported BLIF construct %s" other)
        | _ -> fail "unexpected line %S" line)
  in
  go lines

(* Build the truth table of one .names cover. *)
let table_of_cubes ~out ~k cubes =
  assert (k <= Truthtable.max_arity);
  match cubes with
  | [] -> Truthtable.const0 k
  | (_, pol0) :: _ ->
      if not (List.for_all (fun (_, p) -> p = pol0) cubes) then
        fail ".names %s mixes ON-set and OFF-set cubes" out;
      List.iter
        (fun (pat, _) ->
          if String.length pat <> k then fail ".names %s: cube width mismatch" out)
        cubes;
      let covered = ref 0L in
      for m = 0 to (1 lsl k) - 1 do
        let matches (pat, _) =
          let ok = ref true in
          String.iteri
            (fun j c ->
              let bit = m land (1 lsl j) <> 0 in
              match c with
              | '1' -> if not bit then ok := false
              | '0' -> if bit then ok := false
              | '-' -> ()
              | _ -> fail ".names %s: bad cube char %c" out c)
            pat;
          !ok
        in
        if List.exists matches cubes then
          covered := Int64.logor !covered (Int64.shift_left 1L m)
      done;
      let tt = Truthtable.create k !covered in
      if pol0 = '1' then tt else Truthtable.not_ tt

let build raw override_name =
  let nl =
    Netlist.create
      ?name:(match override_name with Some n -> Some n | None -> raw.model)
      ()
  in
  let inputs = List.rev raw.inputs in
  let outputs = List.rev raw.outputs in
  let latches = List.rev raw.latches in
  let gates = List.rev raw.gates in
  (* signal name -> defining entity *)
  let pi_ids = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace pi_ids s (Netlist.add_pi ~name:s nl)) inputs;
  let gate_ids = Hashtbl.create 64 in
  List.iter
    (fun g ->
      if Hashtbl.mem gate_ids g.out || Hashtbl.mem pi_ids g.out then
        fail "signal %s defined twice" g.out;
      Hashtbl.replace gate_ids g.out (Netlist.reserve_gate ~name:g.out nl))
    gates;
  let latch_of = Hashtbl.create 16 in
  List.iter
    (fun (d, q) ->
      if Hashtbl.mem latch_of q || Hashtbl.mem gate_ids q || Hashtbl.mem pi_ids q
      then fail "signal %s defined twice" q;
      Hashtbl.replace latch_of q d)
    latches;
  (* Resolve a signal to (base node, accumulated latch count). *)
  let resolved = Hashtbl.create 64 in
  let rec resolve ?(seen = []) s =
    match Hashtbl.find_opt resolved s with
    | Some r -> r
    | None ->
        if List.mem s seen then fail "latch cycle through %s has no driver" s;
        let r =
          match Hashtbl.find_opt pi_ids s with
          | Some id -> (id, 0)
          | None -> (
              match Hashtbl.find_opt gate_ids s with
              | Some id -> (id, 0)
              | None -> (
                  match Hashtbl.find_opt latch_of s with
                  | Some d ->
                      let base, w = resolve ~seen:(s :: seen) d in
                      (base, w + 1)
                  | None -> fail "undefined signal %s" s))
        in
        Hashtbl.replace resolved s r;
        r
  in
  (* Define gates.  Covers with more than 6 inputs cannot be held in one
     truth table; they are decomposed into balanced AND trees (one per
     cube) feeding a balanced OR tree — the classic balanced-tree gate
     decomposition used to K-bound netlists before mapping. *)
  let tree_arity = 4 in
  let balanced op zero nl leaves =
    (* reduce [leaves] with [tree_arity]-ary gates of function [op] *)
    match leaves with
    | [] -> Build.const nl (Truthtable.is_const zero = Some true)
    | [ (d, w) ] when w = 0 -> d
    | _ ->
        let rec reduce leaves =
          match leaves with
          | [ (d, 0) ] -> d
          | [ (d, w) ] ->
              (* a lone registered leaf still needs a node of its own *)
              Netlist.add_gate nl (Truthtable.var 1 0) [| (d, w) |]
          | _ ->
              let rec take n = function
                | x :: rest when n > 0 ->
                    let got, rem = take (n - 1) rest in
                    (x :: got, rem)
                | rest -> ([], rest)
              in
              let rec level acc = function
                | [] -> List.rev acc
                | leaves ->
                    let group, rest = take tree_arity leaves in
                    let arity = List.length group in
                    if arity = 1 then level (List.hd group :: acc) rest
                    else
                      let g =
                        Netlist.add_gate nl (op arity) (Array.of_list group)
                      in
                      level ((g, 0) :: acc) rest
              in
              reduce (level [] leaves)
        in
        reduce leaves
  in
  let define_wide id g =
    let fanins = List.map (fun s -> resolve s) g.ins in
    let fanin_arr = Array.of_list fanins in
    (match g.cubes with
    | [] -> Netlist.define_gate nl id (Truthtable.const0 0) [||]
    | (_, pol0) :: _ ->
        if not (List.for_all (fun (_, p) -> p = pol0) g.cubes) then
          fail ".names %s mixes ON-set and OFF-set cubes" g.out;
        (* one balanced AND tree per cube over its literals *)
        let cube_roots =
          List.map
            (fun (pat, _) ->
              if String.length pat <> List.length g.ins then
                fail ".names %s: cube width mismatch" g.out;
              let literals = ref [] in
              String.iteri
                (fun j c ->
                  match c with
                  | '-' -> ()
                  | '1' -> literals := fanin_arr.(j) :: !literals
                  | '0' ->
                      let d, w = fanin_arr.(j) in
                      let inv =
                        Netlist.add_gate nl
                          (Truthtable.not_ (Truthtable.var 1 0))
                          [| (d, w) |]
                      in
                      literals := (inv, 0) :: !literals
                  | c -> fail ".names %s: bad cube char %c" g.out c)
                pat;
              match !literals with
              | [] -> (Build.const nl true, 0)
              | ls -> (balanced Truthtable.and_all (Truthtable.const0 0) nl ls, 0))
            g.cubes
        in
        let or_root = balanced Truthtable.or_all (Truthtable.const0 0) nl cube_roots in
        if pol0 = '1' then
          Netlist.define_gate nl id (Truthtable.var 1 0) [| (or_root, 0) |]
        else
          Netlist.define_gate nl id
            (Truthtable.not_ (Truthtable.var 1 0))
            [| (or_root, 0) |])
  in
  List.iter
    (fun g ->
      let id = Hashtbl.find gate_ids g.out in
      let k = List.length g.ins in
      if k <= Truthtable.max_arity then begin
        let tt = table_of_cubes ~out:g.out ~k g.cubes in
        let fanins = Array.of_list (List.map (fun s -> resolve s) g.ins) in
        Netlist.define_gate nl id tt fanins
      end
      else define_wide id g)
    gates;
  (* Primary outputs. *)
  List.iter
    (fun s ->
      let base, w = resolve s in
      let name =
        (* keep the signal name on the PO only when no other node holds it *)
        if Hashtbl.mem pi_ids s || Hashtbl.mem gate_ids s then None else Some s
      in
      ignore (Netlist.add_po ?name nl ~driver:base ~weight:w))
    outputs;
  nl

let parse_string ?name text =
  match build (parse_raw (logical_lines text)) name with
  | nl -> (
      match Netlist.validate nl with
      | [] -> Ok nl
      | errs ->
          Error
            (Format.asprintf "invalid circuit: %a"
               (Format.pp_print_list
                  ~pp_sep:(fun f () -> Format.fprintf f "; ")
                  Netlist.pp_error)
               errs))
  | exception Parse_error msg -> Error msg

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let to_string nl =
  let buf = Buffer.create 4096 in
  (* signal names must be unique even when explicit names collide with the
     generated names of anonymous nodes *)
  let names = Array.make (Netlist.n nl) "" in
  let taken = Hashtbl.create 64 in
  for v = 0 to Netlist.n nl - 1 do
    let base = Netlist.node_name nl v in
    let name = ref base in
    let i = ref 0 in
    while Hashtbl.mem taken !name do
      incr i;
      name := Printf.sprintf "%s_d%d" base !i
    done;
    Hashtbl.replace taken !name ();
    names.(v) <- !name
  done;
  let sig_name v = names.(v) in
  (* the signal name of driver v seen through w latches *)
  let delayed v w = if w = 0 then sig_name v else Printf.sprintf "%s_ff%d" (sig_name v) w in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Netlist.name nl));
  let pis = Netlist.pis nl and pos = Netlist.pos nl in
  Buffer.add_string buf
    (".inputs " ^ String.concat " " (List.map sig_name pis) ^ "\n");
  Buffer.add_string buf
    (".outputs " ^ String.concat " " (List.map sig_name pos) ^ "\n");
  (* latch chains: one shared chain per driver up to its max fanout weight *)
  let maxw = Array.make (Netlist.n nl) 0 in
  for v = 0 to Netlist.n nl - 1 do
    Array.iter
      (fun (d, w) -> if w > maxw.(d) then maxw.(d) <- w)
      (Netlist.fanins nl v)
  done;
  for v = 0 to Netlist.n nl - 1 do
    for i = 1 to maxw.(v) do
      Buffer.add_string buf
        (Printf.sprintf ".latch %s %s 0\n" (delayed v (i - 1)) (delayed v i))
    done
  done;
  (* gates as minterm covers *)
  let emit_gate v =
    let f = Netlist.gate_function nl v in
    let fanins = Netlist.fanins nl v in
    let in_names =
      Array.to_list (Array.map (fun (d, w) -> delayed d w) fanins)
    in
    Buffer.add_string buf
      (".names " ^ String.concat " " (in_names @ [ sig_name v ]) ^ "\n");
    let k = Truthtable.arity f in
    if k = 0 then begin
      match Truthtable.is_const f with
      | Some true -> Buffer.add_string buf "1\n"
      | _ -> ()
    end
    else
      for m = 0 to (1 lsl k) - 1 do
        if Truthtable.eval_bits f m then begin
          for j = 0 to k - 1 do
            Buffer.add_char buf (if m land (1 lsl j) <> 0 then '1' else '0')
          done;
          Buffer.add_string buf " 1\n"
        end
      done
  in
  List.iter emit_gate (Netlist.gates nl);
  (* POs: buffer from the (possibly delayed) driver signal *)
  List.iter
    (fun po ->
      match Netlist.fanins nl po with
      | [| (d, w) |] ->
          Buffer.add_string buf
            (Printf.sprintf ".names %s %s\n1 1\n" (delayed d w) (sig_name po))
      | _ -> invalid_arg "Blif.to_string: malformed PO")
    pos;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file nl path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string nl))

(* ------------------------------------------------------------------ *)
(* Structural comparison modulo buffers and latch chains                *)
(* ------------------------------------------------------------------ *)

let is_buffer tt = Truthtable.equal tt (Truthtable.var 1 0)

let roundtrip_equal a b =
  (* Chase through identity gates, accumulating weight. *)
  let rec chase nl v w =
    match Netlist.kind nl v with
    | Netlist.Gate tt when is_buffer tt ->
        let d, we = (Netlist.fanins nl v).(0) in
        chase nl d (w + we)
    | _ -> (v, w)
  in
  let memo = Hashtbl.create 256 in
  let rec eq va wa vb wb =
    let va, wa = chase a va wa and vb, wb = chase b vb wb in
    if wa <> wb then false
    else
      let key = (va, vb) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          (* optimistically assume equal to terminate on sequential loops;
             any later mismatch falsifies the whole comparison *)
          Hashtbl.replace memo key true;
          let r =
            match (Netlist.kind a va, Netlist.kind b vb) with
            | Netlist.Pi, Netlist.Pi ->
                Netlist.node_name a va = Netlist.node_name b vb
            | Netlist.Gate fa, Netlist.Gate fb ->
                Truthtable.equal fa fb
                && Array.length (Netlist.fanins a va)
                   = Array.length (Netlist.fanins b vb)
                && Array.for_all2
                     (fun (da, wea) (db, web) -> eq da wea db web)
                     (Netlist.fanins a va) (Netlist.fanins b vb)
            | _ -> false
          in
          Hashtbl.replace memo key r;
          r
  in
  let pos_a = Netlist.pos a and pos_b = Netlist.pos b in
  List.length (Netlist.pis a) = List.length (Netlist.pis b)
  && List.length pos_a = List.length pos_b
  && List.for_all2
       (fun pa pb ->
         let da, wa = (Netlist.fanins a pa).(0) in
         let db, wb = (Netlist.fanins b pb).(0) in
         eq da wa db wb)
       pos_a pos_b
