lib/netlist/build.ml: Array Logic Netlist Truthtable
