lib/netlist/netlist.mli: Format Graphs Logic
