lib/netlist/build.mli: Logic Netlist Truthtable
