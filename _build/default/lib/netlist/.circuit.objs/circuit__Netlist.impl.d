lib/netlist/netlist.ml: Array Format Graphs Hashtbl List Logic Printf String
