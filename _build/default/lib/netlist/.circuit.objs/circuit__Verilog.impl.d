lib/netlist/verilog.ml: Array Buffer Fun Hashtbl List Logic Netlist Out_channel Printf String Truthtable
