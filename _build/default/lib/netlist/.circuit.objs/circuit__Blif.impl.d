lib/netlist/blif.ml: Array Buffer Build Format Hashtbl In_channel Int64 List Logic Netlist Out_channel Printf String Truthtable
