type node_id = int

type kind =
  | Pi
  | Po
  | Gate of Logic.Truthtable.t

type t = {
  mutable circuit_name : string;
  mutable kinds : kind array;
  mutable fanin : (node_id * int) array array;
  mutable names : string option array;
  mutable count : int;
  mutable pi_rev : node_id list;
  mutable po_rev : node_id list;
  by_name : (string, node_id) Hashtbl.t;
}

let initial = 64

let create ?(name = "circuit") () =
  {
    circuit_name = name;
    kinds = Array.make initial Pi;
    fanin = Array.make initial [||];
    names = Array.make initial None;
    count = 0;
    pi_rev = [];
    po_rev = [];
    by_name = Hashtbl.create 64;
  }

let name t = t.circuit_name
let set_name t s = t.circuit_name <- s
let n t = t.count

let grow t =
  let cap = Array.length t.kinds in
  let cap' = 2 * cap in
  let extend a fill =
    let b = Array.make cap' fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.kinds <- extend t.kinds Pi;
  t.fanin <- extend t.fanin [||];
  t.names <- extend t.names None

let alloc t kind fanins nm =
  if t.count >= Array.length t.kinds then grow t;
  let id = t.count in
  t.count <- id + 1;
  t.kinds.(id) <- kind;
  t.fanin.(id) <- fanins;
  t.names.(id) <- nm;
  (match nm with Some s -> Hashtbl.replace t.by_name s id | None -> ());
  id

let check_fanins t fanins =
  Array.iteri
    (fun j (drv, w) ->
      if drv < 0 || drv >= t.count then
        invalid_arg
          (Printf.sprintf "Netlist: fanin %d references unknown node %d" j drv);
      if w < 0 then invalid_arg "Netlist: negative edge weight")
    fanins

let add_pi ?name t =
  let id = alloc t Pi [||] name in
  t.pi_rev <- id :: t.pi_rev;
  id

let add_po ?name t ~driver ~weight =
  if driver < 0 || driver >= t.count then invalid_arg "Netlist.add_po: driver";
  if weight < 0 then invalid_arg "Netlist.add_po: negative weight";
  let id = alloc t Po [| (driver, weight) |] name in
  t.po_rev <- id :: t.po_rev;
  id

let add_gate ?name t f fanins =
  if Logic.Truthtable.arity f <> Array.length fanins then
    invalid_arg "Netlist.add_gate: arity mismatch";
  check_fanins t fanins;
  alloc t (Gate f) (Array.copy fanins) name

let reserve_gate ?name t = alloc t (Gate (Logic.Truthtable.const0 0)) [||] name

let define_gate t v f fanins =
  (match t.kinds.(v) with
  | Gate _ -> ()
  | Pi | Po -> invalid_arg "Netlist.define_gate: not a gate");
  if Logic.Truthtable.arity f <> Array.length fanins then
    invalid_arg "Netlist.define_gate: arity mismatch";
  check_fanins t fanins;
  t.kinds.(v) <- Gate f;
  t.fanin.(v) <- Array.copy fanins

let kind t v = t.kinds.(v)
let is_gate t v = match t.kinds.(v) with Gate _ -> true | Pi | Po -> false

let gate_function t v =
  match t.kinds.(v) with
  | Gate f -> f
  | Pi | Po -> invalid_arg "Netlist.gate_function: not a gate"

let fanins t v = t.fanin.(v)

let set_fanins t v fanins =
  check_fanins t fanins;
  (match t.kinds.(v) with
  | Gate f ->
      if Logic.Truthtable.arity f <> Array.length fanins then
        invalid_arg "Netlist.set_fanins: arity mismatch"
  | Po ->
      if Array.length fanins <> 1 then
        invalid_arg "Netlist.set_fanins: PO takes one fanin"
  | Pi ->
      if Array.length fanins <> 0 then
        invalid_arg "Netlist.set_fanins: PI takes no fanin");
  t.fanin.(v) <- Array.copy fanins

let set_weight t v j w =
  if w < 0 then invalid_arg "Netlist.set_weight: negative";
  let drv, _ = t.fanin.(v).(j) in
  t.fanin.(v).(j) <- (drv, w)

let set_gate_function t v f =
  match t.kinds.(v) with
  | Gate _ ->
      if Logic.Truthtable.arity f <> Array.length t.fanin.(v) then
        invalid_arg "Netlist.set_gate_function: arity mismatch";
      t.kinds.(v) <- Gate f
  | Pi | Po -> invalid_arg "Netlist.set_gate_function: not a gate"

let node_name t v =
  match t.names.(v) with Some s -> s | None -> Printf.sprintf "n%d" v

let find_by_name t s = Hashtbl.find_opt t.by_name s
let pis t = List.rev t.pi_rev
let pos t = List.rev t.po_rev

let gates t =
  let acc = ref [] in
  for v = t.count - 1 downto 0 do
    match t.kinds.(v) with Gate _ -> acc := v :: !acc | Pi | Po -> ()
  done;
  !acc

let delay t v = match t.kinds.(v) with Gate _ -> 1 | Pi | Po -> 0

let fanouts t =
  let out = Array.make t.count [] in
  for v = t.count - 1 downto 0 do
    Array.iter (fun (drv, _) -> out.(drv) <- v :: out.(drv)) t.fanin.(v)
  done;
  out

let max_fanin_weight t =
  let m = ref 0 in
  for v = 0 to t.count - 1 do
    Array.iter (fun (_, w) -> if w > !m then m := w) t.fanin.(v)
  done;
  !m

let retiming_edges t =
  let acc = ref [] in
  for v = t.count - 1 downto 0 do
    let d = delay t v in
    Array.iter
      (fun (drv, w) ->
        acc := { Graphs.Cycle_ratio.src = drv; dst = v; delay = d; weight = w } :: !acc)
      t.fanin.(v)
  done;
  Array.of_list !acc

let comb_succ t =
  let out = Array.make t.count [] in
  for v = t.count - 1 downto 0 do
    Array.iter (fun (drv, w) -> if w = 0 then out.(drv) <- v :: out.(drv)) t.fanin.(v)
  done;
  fun v -> out.(v)

let comb_topo_order t =
  match Graphs.Topo.sort ~n:t.count ~succ:(comb_succ t) with
  | Some o -> o
  | None -> invalid_arg "Netlist.comb_topo_order: combinational loop"

let mdr_ratio t = Graphs.Cycle_ratio.max_ratio ~n:t.count ~edges:(retiming_edges t)

type stats = {
  n_pi : int;
  n_po : int;
  n_gates : int;
  n_ff : int;
  total_edge_weight : int;
  max_fanin : int;
  comb_depth : int;
}

let stats t =
  let n_pi = List.length (pis t) and n_po = List.length (pos t) in
  let n_gates = ref 0 and total = ref 0 and maxfi = ref 0 in
  let max_w_out = Array.make t.count 0 in
  for v = 0 to t.count - 1 do
    (match t.kinds.(v) with
    | Gate _ ->
        incr n_gates;
        if Array.length t.fanin.(v) > !maxfi then maxfi := Array.length t.fanin.(v)
    | Pi | Po -> ());
    Array.iter
      (fun (drv, w) ->
        total := !total + w;
        if w > max_w_out.(drv) then max_w_out.(drv) <- w)
      t.fanin.(v)
  done;
  let n_ff = Array.fold_left ( + ) 0 max_w_out in
  let depth =
    match Graphs.Topo.sort ~n:t.count ~succ:(comb_succ t) with
    | None -> -1
    | Some order ->
        let lvl = Array.make t.count 0 in
        let d = ref 0 in
        Array.iter
          (fun v ->
            let dv = delay t v in
            Array.iter
              (fun (drv, w) ->
                if w = 0 && lvl.(drv) + dv > lvl.(v) then lvl.(v) <- lvl.(drv) + dv)
              t.fanin.(v);
            (* gates with only registered fanins still count their own delay *)
            if dv > 0 && Array.for_all (fun (_, w) -> w > 0) t.fanin.(v)
               && Array.length t.fanin.(v) > 0
            then lvl.(v) <- max lvl.(v) dv;
            if lvl.(v) > !d then d := lvl.(v))
          order;
        !d
  in
  {
    n_pi;
    n_po;
    n_gates = !n_gates;
    n_ff;
    total_edge_weight = !total;
    max_fanin = !maxfi;
    comb_depth = depth;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[pi=%d po=%d gates=%d ff=%d edge-ffs=%d max-fanin=%d depth=%d@]" s.n_pi
    s.n_po s.n_gates s.n_ff s.total_edge_weight s.max_fanin s.comb_depth

type error =
  | Arity_mismatch of node_id
  | Negative_weight of node_id * int
  | Dangling_driver of node_id * int
  | Po_without_driver of node_id
  | Combinational_loop
  | Fanin_exceeds of node_id * int

let pp_error fmt = function
  | Arity_mismatch v -> Format.fprintf fmt "node %d: truth-table arity mismatch" v
  | Negative_weight (v, j) -> Format.fprintf fmt "node %d: fanin %d has negative weight" v j
  | Dangling_driver (v, j) -> Format.fprintf fmt "node %d: fanin %d dangling" v j
  | Po_without_driver v -> Format.fprintf fmt "PO %d has no driver" v
  | Combinational_loop -> Format.fprintf fmt "combinational loop"
  | Fanin_exceeds (v, k) -> Format.fprintf fmt "node %d: fanin count exceeds K=%d" v k

let validate ?k t =
  let errs = ref [] in
  for v = 0 to t.count - 1 do
    (match t.kinds.(v) with
    | Gate f ->
        if Logic.Truthtable.arity f <> Array.length t.fanin.(v) then
          errs := Arity_mismatch v :: !errs;
        (match k with
        | Some k ->
            if Array.length t.fanin.(v) > k then errs := Fanin_exceeds (v, k) :: !errs
        | None -> ())
    | Po -> if Array.length t.fanin.(v) <> 1 then errs := Po_without_driver v :: !errs
    | Pi -> ());
    Array.iteri
      (fun j (drv, w) ->
        if w < 0 then errs := Negative_weight (v, j) :: !errs;
        if drv < 0 || drv >= t.count then errs := Dangling_driver (v, j) :: !errs)
      t.fanin.(v)
  done;
  (match Graphs.Topo.sort ~n:t.count ~succ:(comb_succ t) with
  | Some _ -> ()
  | None -> errs := Combinational_loop :: !errs);
  List.rev !errs

let validate_exn ?k t =
  match validate ?k t with
  | [] -> ()
  | errs ->
      invalid_arg
        (Format.asprintf "Netlist.validate: %a"
           (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_error)
           errs)

let copy t =
  {
    circuit_name = t.circuit_name;
    kinds = Array.copy t.kinds;
    fanin = Array.map Array.copy t.fanin;
    names = Array.copy t.names;
    count = t.count;
    pi_rev = t.pi_rev;
    po_rev = t.po_rev;
    by_name = Hashtbl.copy t.by_name;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>circuit %s (%d nodes)@," t.circuit_name t.count;
  for v = 0 to t.count - 1 do
    let k =
      match t.kinds.(v) with
      | Pi -> "pi"
      | Po -> "po"
      | Gate f -> Format.asprintf "gate %a" Logic.Truthtable.pp f
    in
    let fi =
      String.concat ", "
        (Array.to_list
           (Array.map (fun (d, w) -> Printf.sprintf "%d^%d" d w) t.fanin.(v)))
    in
    Format.fprintf fmt "  %d %s [%s] %s@," v (node_name t v) fi k
  done;
  Format.fprintf fmt "@]"
