open Logic

let const ?name t b =
  Netlist.add_gate ?name t
    (if b then Truthtable.const1 0 else Truthtable.const0 0)
    [||]

let unary ?name ?(w = 0) t f a = Netlist.add_gate ?name t f [| (a, w) |]
let not_ ?name ?w t a = unary ?name ?w t (Truthtable.not_ (Truthtable.var 1 0)) a
let buf ?name ?w t a = unary ?name ?w t (Truthtable.var 1 0) a

let binary ?name ?(wa = 0) ?(wb = 0) t f a b =
  Netlist.add_gate ?name t f [| (a, wa); (b, wb) |]

let and2 ?name ?wa ?wb t a b = binary ?name ?wa ?wb t (Truthtable.and_all 2) a b
let or2 ?name ?wa ?wb t a b = binary ?name ?wa ?wb t (Truthtable.or_all 2) a b
let xor2 ?name ?wa ?wb t a b = binary ?name ?wa ?wb t (Truthtable.xor_all 2) a b

let nand2 ?name ?wa ?wb t a b =
  binary ?name ?wa ?wb t (Truthtable.not_ (Truthtable.and_all 2)) a b

let mux ?name t ~sel ~t1 ~t0 =
  let f =
    Truthtable.ite (Truthtable.var 3 0) (Truthtable.var 3 1) (Truthtable.var 3 2)
  in
  Netlist.add_gate ?name t f [| (sel, 0); (t1, 0); (t0, 0) |]

let gate ?name t f fanins = Netlist.add_gate ?name t f (Array.of_list fanins)

let full_adder t ~a ~b ~cin =
  let sum_f = Truthtable.xor_all 3 in
  (* majority function of three inputs *)
  let v i = Truthtable.var 3 i in
  let carry_f =
    Truthtable.or_
      (Truthtable.and_ (v 0) (v 1))
      (Truthtable.or_
         (Truthtable.and_ (v 0) (v 2))
         (Truthtable.and_ (v 1) (v 2)))
  in
  let sum = Netlist.add_gate t sum_f [| (a, 0); (b, 0); (cin, 0) |] in
  let carry = Netlist.add_gate t carry_f [| (a, 0); (b, 0); (cin, 0) |] in
  (sum, carry)
