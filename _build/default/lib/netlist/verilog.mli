(** Structural Verilog output for mapped circuits.

    Gates become continuous assignments over their truth tables (sum of
    minterms) and every weighted edge becomes a chain of DFF instances in a
    single always block, so the output drops into a standard FPGA or ASIC
    flow for inspection.  Identifiers are sanitized ([a-zA-Z0-9_], prefixed
    with [n_] when needed); the module has one clock input [clk] when the
    circuit contains registers. *)

val to_string : Netlist.t -> string
val write_file : Netlist.t -> string -> unit
