(** BLIF (Berkeley Logic Interchange Format) reader and writer.

    The subset handled is what SIS-era benchmark flows use: [.model],
    [.inputs], [.outputs], [.names] (single-output cover with [0]/[1]/[-]
    cubes), [.latch] and [.end].  Latches become edge weights of the
    retiming graph: a chain of latches from signal [d] to signal [q]
    contributes weight equal to the chain length wherever [q] is consumed.
    Latch clocking and initial values are accepted and ignored (the
    retiming-graph model is initial-state agnostic; see DESIGN.md).

    Writing inverts the transformation: every edge of weight [w > 0] is
    emitted as a shared chain of [w] latches on its driver.

    Covers with more than 6 inputs (the [Truthtable] limit) are accepted
    and decomposed on the fly into balanced AND/OR trees over their cubes —
    the classic balanced-tree gate decomposition the paper cites for
    K-bounding netlists before mapping. *)

val parse_string : ?name:string -> string -> (Netlist.t, string) result
(** [name] overrides the [.model] name. *)

val parse_file : string -> (Netlist.t, string) result

val to_string : Netlist.t -> string
val write_file : Netlist.t -> string -> unit

val roundtrip_equal : Netlist.t -> Netlist.t -> bool
(** Structural comparison used by the tests: same PI/PO names in order and,
    for every PO, the same cone structure (gate functions, fanin order and
    accumulated weights) when traversed from the outputs. *)
