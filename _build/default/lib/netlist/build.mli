(** Convenience constructors for building circuits programmatically
    (examples, tests and workload generators). *)

open Logic

val const : ?name:string -> Netlist.t -> bool -> Netlist.node_id
(** A 0-input gate producing a constant. *)

val not_ : ?name:string -> ?w:int -> Netlist.t -> Netlist.node_id -> Netlist.node_id
val buf : ?name:string -> ?w:int -> Netlist.t -> Netlist.node_id -> Netlist.node_id
(** Identity gate; [buf ~w:k] also serves as an explicit k-FF delay stage. *)

val and2 :
  ?name:string -> ?wa:int -> ?wb:int ->
  Netlist.t -> Netlist.node_id -> Netlist.node_id -> Netlist.node_id

val or2 :
  ?name:string -> ?wa:int -> ?wb:int ->
  Netlist.t -> Netlist.node_id -> Netlist.node_id -> Netlist.node_id

val xor2 :
  ?name:string -> ?wa:int -> ?wb:int ->
  Netlist.t -> Netlist.node_id -> Netlist.node_id -> Netlist.node_id

val nand2 :
  ?name:string -> ?wa:int -> ?wb:int ->
  Netlist.t -> Netlist.node_id -> Netlist.node_id -> Netlist.node_id

val mux :
  ?name:string ->
  Netlist.t ->
  sel:Netlist.node_id -> t1:Netlist.node_id -> t0:Netlist.node_id ->
  Netlist.node_id
(** [mux ~sel ~t1 ~t0]: output is [t1] when [sel], else [t0] (weight-0
    fanins). *)

val gate :
  ?name:string ->
  Netlist.t -> Truthtable.t -> (Netlist.node_id * int) list -> Netlist.node_id
(** General gate from a fanin list. *)

val full_adder :
  Netlist.t ->
  a:Netlist.node_id -> b:Netlist.node_id -> cin:Netlist.node_id ->
  Netlist.node_id * Netlist.node_id
(** [(sum, carry)] built from two 3-input gates. *)
