open Logic

let sanitize s =
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let b = Buffer.create (String.length s) in
  String.iter (fun c -> Buffer.add_char b (if ok c then c else '_')) s;
  let s = Buffer.contents b in
  if s = "" || not ((s.[0] >= 'a' && s.[0] <= 'z') || (s.[0] >= 'A' && s.[0] <= 'Z') || s.[0] = '_')
  then "n_" ^ s
  else s

let to_string nl =
  let buf = Buffer.create 4096 in
  let names = Array.make (Netlist.n nl) "" in
  let taken = Hashtbl.create 64 in
  for v = 0 to Netlist.n nl - 1 do
    let base = sanitize (Netlist.node_name nl v) in
    let nm = ref base in
    let i = ref 0 in
    while Hashtbl.mem taken !nm || !nm = "clk" do
      incr i;
      nm := Printf.sprintf "%s_d%d" base !i
    done;
    Hashtbl.replace taken !nm ();
    names.(v) <- !nm
  done;
  let name v = names.(v) in
  (* delayed signal names *)
  let delayed v w = if w = 0 then name v else Printf.sprintf "%s_ff%d" (name v) w in
  let pis = Netlist.pis nl and pos = Netlist.pos nl in
  let maxw = Array.make (Netlist.n nl) 0 in
  for v = 0 to Netlist.n nl - 1 do
    Array.iter (fun (d, w) -> if w > maxw.(d) then maxw.(d) <- w) (Netlist.fanins nl v)
  done;
  let has_regs = Array.exists (fun w -> w > 0) maxw in
  let ports =
    (if has_regs then [ "clk" ] else [])
    @ List.map name pis @ List.map name pos
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" (sanitize (Netlist.name nl))
       (String.concat ", " ports));
  if has_regs then Buffer.add_string buf "  input clk;\n";
  List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" (name p))) pis;
  List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" (name p))) pos;
  (* declarations *)
  List.iter
    (fun v ->
      Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (name v)))
    (Netlist.gates nl);
  for v = 0 to Netlist.n nl - 1 do
    for i = 1 to maxw.(v) do
      Buffer.add_string buf
        (Printf.sprintf "  reg %s = 1'b0;\n" (delayed v i))
    done
  done;
  (* register chains *)
  if has_regs then begin
    Buffer.add_string buf "  always @(posedge clk) begin\n";
    for v = 0 to Netlist.n nl - 1 do
      for i = 1 to maxw.(v) do
        Buffer.add_string buf
          (Printf.sprintf "    %s <= %s;\n" (delayed v i) (delayed v (i - 1)))
      done
    done;
    Buffer.add_string buf "  end\n"
  end;
  (* gates as sum-of-minterms assigns *)
  List.iter
    (fun v ->
      let f = Netlist.gate_function nl v in
      let fanins = Netlist.fanins nl v in
      let k = Truthtable.arity f in
      let term m =
        let lits =
          List.init k (fun j ->
              let d, w = fanins.(j) in
              let s = delayed d w in
              if m land (1 lsl j) <> 0 then s else "~" ^ s)
        in
        match lits with
        | [] -> "1'b1"
        | _ -> "(" ^ String.concat " & " lits ^ ")"
      in
      let minterms =
        List.filter_map
          (fun m -> if Truthtable.eval_bits f m then Some (term m) else None)
          (List.init (1 lsl k) Fun.id)
      in
      let rhs =
        match (Truthtable.is_const f, minterms) with
        | Some true, _ -> "1'b1"
        | Some false, _ | _, [] -> "1'b0"
        | None, ms -> String.concat " | " ms
      in
      Buffer.add_string buf (Printf.sprintf "  assign %s = %s;\n" (name v) rhs))
    (Netlist.gates nl);
  (* outputs *)
  List.iter
    (fun po ->
      let d, w = (Netlist.fanins nl po).(0) in
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (name po) (delayed d w)))
    pos;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file nl path =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string nl))
