(** Sequential circuits as retiming graphs.

    A circuit is a directed graph whose nodes are primary inputs, primary
    outputs and gates (each gate carries a truth table whose input [j]
    corresponds to fanin [j]).  Every fanin edge has a non-negative integer
    weight: the number of flip-flops between the driver and the consumer
    (Leiserson–Saxe retiming-graph form).  There are no explicit FF nodes;
    retiming and pipelining only change edge weights.

    Weight-0 edges must form a DAG (no combinational loops); [validate]
    checks this along with arity and K-boundedness. *)

type t
type node_id = int

type kind =
  | Pi
  | Po
  | Gate of Logic.Truthtable.t

val create : ?name:string -> unit -> t
val name : t -> string
val set_name : t -> string -> unit

val n : t -> int
(** Number of nodes; node ids are [0 .. n-1] in creation order. *)

val add_pi : ?name:string -> t -> node_id
val add_po : ?name:string -> t -> driver:node_id -> weight:int -> node_id
val add_gate :
  ?name:string -> t -> Logic.Truthtable.t -> (node_id * int) array -> node_id
(** [add_gate t f fanins] where [fanins.(j)] is [(driver, weight)] for truth
    table input [j].
    @raise Invalid_argument if the truth-table arity differs from the fanin
    count, a weight is negative, or a driver id is out of range. *)

val reserve_gate : ?name:string -> t -> node_id
(** Allocate a gate node whose function and fanins are supplied later with
    [define_gate] — needed by parsers where gates may reference signals
    defined further down the file.  Until defined, the node is a 0-input
    constant-false gate. *)

val define_gate :
  t -> node_id -> Logic.Truthtable.t -> (node_id * int) array -> unit
(** Fill in a node allocated with [reserve_gate] (or re-define any gate).
    @raise Invalid_argument on arity mismatch or bad fanins. *)

val kind : t -> node_id -> kind
val is_gate : t -> node_id -> bool
val gate_function : t -> node_id -> Logic.Truthtable.t
(** @raise Invalid_argument on a non-gate node. *)

val fanins : t -> node_id -> (node_id * int) array
(** Physical array — do not mutate; use [set_fanins]/[set_weight]. *)

val set_fanins : t -> node_id -> (node_id * int) array -> unit
val set_weight : t -> node_id -> int -> int -> unit
(** [set_weight t v j w] sets the weight of fanin [j] of [v]. *)

val set_gate_function : t -> node_id -> Logic.Truthtable.t -> unit
(** Replace a gate's function (arity must match its fanin count). *)

val node_name : t -> node_id -> string
(** The given name, or a generated one ([n<id>]). *)

val find_by_name : t -> string -> node_id option

val pis : t -> node_id list
(** In creation order. *)

val pos : t -> node_id list

val gates : t -> node_id list
(** In creation order (a topological order of weight-0 edges is NOT
    implied; see [comb_topo_order]). *)

val delay : t -> node_id -> int
(** Unit delay model: 1 for gates, 0 for PIs and POs. *)

val fanouts : t -> node_id list array
(** Freshly computed fanout lists (consumers of each node, with
    multiplicity). *)

val max_fanin_weight : t -> int

(** {1 Graph views} *)

val retiming_edges : t -> Graphs.Cycle_ratio.edge array
(** One edge per fanin, [delay = delay t dst], [weight] = FF count.  This is
    the view used for MDR-ratio computations. *)

val comb_succ : t -> node_id -> node_id list
(** Successors through weight-0 edges only. *)

val comb_topo_order : t -> node_id array
(** Topological order of the weight-0 subgraph.
    @raise Invalid_argument when the circuit has a combinational loop. *)

val mdr_ratio : t -> Graphs.Cycle_ratio.result
(** Maximum delay-to-register ratio of the circuit under the unit delay
    model — the paper's optimization objective. *)

(** {1 Statistics} *)

type stats = {
  n_pi : int;
  n_po : int;
  n_gates : int;
  n_ff : int;
      (** flip-flop count with fanout sharing: for every driver, the maximum
          weight over its fanout edges (a chain of FFs is shared by all
          consumers at lower depths) *)
  total_edge_weight : int;
  max_fanin : int;
  comb_depth : int;  (** longest weight-0 path, in gates *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {1 Validation} *)

type error =
  | Arity_mismatch of node_id
  | Negative_weight of node_id * int
  | Dangling_driver of node_id * int
  | Po_without_driver of node_id
  | Combinational_loop
  | Fanin_exceeds of node_id * int  (** gate with more than K fanins *)

val pp_error : Format.formatter -> error -> unit

val validate : ?k:int -> t -> error list
(** Empty when the circuit is well-formed (and K-bounded when [k] is
    given). *)

val validate_exn : ?k:int -> t -> unit
(** @raise Invalid_argument listing the problems. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line dump for debugging. *)
