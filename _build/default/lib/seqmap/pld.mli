(** Positive loop detection (the paper's PLD technique).

    For the current label lower-bounds, the predecessor (support) graph Gπ
    has an edge [u -> v] when fanin [u] justifies [v]'s label:
    [l(u) - φ·w(e) + 1 >= l(v)] (and no edges into [v] when [l(v) <= 1]).
    A target ratio is infeasible when an SCC becomes *totally isolated*:
    no node of the SCC is supported — directly or transitively — by a
    grounded node (a PI, an upstream node outside the SCC, or a node with
    label [<= 1]).  Divergent label growth is exactly self-referential
    support, so isolation detects positive loops long before the
    conservative n² iteration bound. *)

open Prelude

val all_isolated :
  Circuit.Netlist.t ->
  labels:Rat.t array ->
  phi:Rat.t ->
  members:int array ->
  in_scc:(int -> bool) ->
  bool
(** [members] are the gate nodes of one SCC; [in_scc] tests membership.
    True when no member is reachable from grounded support. *)
