open Circuit

(* Unroll the circuit from (root, 0), stopping at cut pairs. *)
let cut_bdd man nl ~root ~cut ~vars =
  let cut_pos = Hashtbl.create 8 in
  Array.iteri (fun j (u, w) -> Hashtbl.replace cut_pos (u, w) j) cut;
  (* an invalid cut on a registered cycle would unroll forever *)
  let wmax =
    Array.fold_left
      (fun acc e -> acc + e.Graphs.Cycle_ratio.weight)
      (Netlist.n nl + 8)
      (Netlist.retiming_edges nl)
  in
  let memo = Hashtbl.create 64 in
  let rec go u w =
    if w > wmax then invalid_arg "Mapgen.cut_function: cut does not cover a path";
    match Hashtbl.find_opt cut_pos (u, w) with
    | Some j -> Bdd.var man vars.(j)
    | None -> (
        match Hashtbl.find_opt memo (u, w) with
        | Some b -> b
        | None ->
            let b =
              match Netlist.kind nl u with
              | Netlist.Pi | Netlist.Po ->
                  invalid_arg "Mapgen.cut_function: cut does not cover a path"
              | Netlist.Gate f ->
                  Bdd.apply_truthtable man f
                    (Array.map
                       (fun (x, we) -> go x (w + we))
                       (Netlist.fanins nl u))
            in
            Hashtbl.replace memo (u, w) b;
            b
  )
  in
  go root 0

let cut_function nl ~root ~cut =
  let k = Array.length cut in
  if k > Logic.Truthtable.max_arity then invalid_arg "Mapgen.cut_function: width";
  let man = Bdd.new_man () in
  let vars = Array.init k Fun.id in
  let f = cut_bdd man nl ~root ~cut ~vars in
  Bdd.to_truthtable man f vars

let generate nl ~impls =
  let n = Netlist.n nl in
  (* collect the needed gates *)
  let needed = Array.make n false in
  let work = Queue.create () in
  let need u =
    if Netlist.is_gate nl u && not needed.(u) then begin
      needed.(u) <- true;
      Queue.add u work
    end
  in
  List.iter
    (fun po ->
      let d, _ = (Netlist.fanins nl po).(0) in
      need d)
    (Netlist.pos nl);
  while not (Queue.is_empty work) do
    let v = Queue.pop work in
    match impls.(v) with
    | None -> invalid_arg "Mapgen.generate: missing implementation"
    | Some (Label_engine.Cut cut) -> Array.iter (fun (u, _) -> need u) cut
    | Some (Label_engine.Resyn (_, inputs)) ->
        Array.iter (fun (u, _) -> need u) inputs
  done;
  (* build the result *)
  let out = Netlist.create ~name:(Netlist.name nl ^ "_mapped") () in
  let new_pi = Array.make n (-1) in
  List.iter
    (fun p -> new_pi.(p) <- Netlist.add_pi ~name:(Netlist.node_name nl p) out)
    (Netlist.pis nl);
  let new_gate = Array.make n (-1) in
  for v = 0 to n - 1 do
    if needed.(v) then
      new_gate.(v) <- Netlist.reserve_gate ~name:(Netlist.node_name nl v) out
  done;
  let driver_of u =
    match Netlist.kind nl u with
    | Netlist.Pi -> new_pi.(u)
    | Netlist.Gate _ ->
        assert (new_gate.(u) >= 0);
        new_gate.(u)
    | Netlist.Po -> assert false
  in
  for v = 0 to n - 1 do
    if needed.(v) then
      match impls.(v) with
      | None -> assert false
      | Some (Label_engine.Cut cut) ->
          let tt = cut_function nl ~root:v ~cut in
          (* the cut function may not depend on every cut signal *)
          let tt, sup = Logic.Truthtable.shrink_support tt in
          let cut = Array.of_list (List.map (fun j -> cut.(j)) sup) in
          let fanins = Array.map (fun (u, w) -> (driver_of u, w)) cut in
          Netlist.define_gate out new_gate.(v) tt fanins
      | Some (Label_engine.Resyn (tree, inputs)) -> (
          (* instantiate the LUT tree bottom-up; Input i refers to
             inputs.(i) = (driver, weight) *)
          let rec build t =
            match t with
            | Decomp.Decompose.Input i ->
                let u, w = inputs.(i) in
                (driver_of u, w)
            | Decomp.Decompose.Lut (tt, fs) ->
                let fanins = Array.map build fs in
                let name = Printf.sprintf "_syn%d" (Netlist.n out) in
                (Netlist.add_gate ~name out tt fanins, 0)
          in
          match tree with
          | Decomp.Decompose.Input i ->
              (* the root is a plain (possibly delayed) copy of an input:
                 realize it as a 1-input identity LUT to keep one node per
                 mapped signal *)
              let u, w = inputs.(i) in
              Netlist.define_gate out new_gate.(v)
                (Logic.Truthtable.var 1 0)
                [| (driver_of u, w) |]
          | Decomp.Decompose.Lut (tt, fs) ->
              let fanins = Array.map build fs in
              Netlist.define_gate out new_gate.(v) tt fanins)
  done;
  List.iter
    (fun po ->
      let d, w = (Netlist.fanins nl po).(0) in
      ignore
        (Netlist.add_po ~name:(Netlist.node_name nl po) out ~driver:(driver_of d)
           ~weight:w))
    (Netlist.pos nl);
  out

let lut_count nl = List.length (Netlist.gates nl)
