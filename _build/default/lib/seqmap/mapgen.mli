(** LUT network generation from converged sequential labels.

    Every needed gate becomes one LUT (or a small LUT tree for resynthesized
    nodes).  A sequential cut input [(u, w)] becomes an edge of weight [w]
    from the LUT of [u] — the registers absorbed into the expanded circuit
    reappear as edge weights, so cycle register counts are preserved and the
    mapped circuit is I/O-equivalent to the original from reset (all
    flip-flops start at 0 in both).  Clock-period realization (retiming +
    pipelining) is a separate, later step. *)

val cut_function :
  Circuit.Netlist.t ->
  root:int ->
  cut:(int * int) array ->
  Logic.Truthtable.t
(** Function of gate [root] over the sequential cut signals (cut width at
    most 6): the circuit is unrolled from [root], stopping exactly at cut
    pairs [(driver, accumulated registers)].
    @raise Invalid_argument if the cut does not cover all paths. *)

val generate :
  Circuit.Netlist.t -> impls:Label_engine.impl option array -> Circuit.Netlist.t
(** Build the mapped netlist (PIs/POs preserved with names).
    @raise Invalid_argument if a needed gate lacks an implementation. *)

val lut_count : Circuit.Netlist.t -> int
(** Gates of a mapped netlist. *)
