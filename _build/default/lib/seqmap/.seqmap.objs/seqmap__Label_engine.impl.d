lib/seqmap/label_engine.ml: Array Bdd Circuit Decomp Expanded Flow Fun Graphs Hashtbl Int List Netlist Option Pld Prelude Rat
