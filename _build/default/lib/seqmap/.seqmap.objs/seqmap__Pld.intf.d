lib/seqmap/pld.mli: Circuit Prelude Rat
