lib/seqmap/turbomap.mli: Circuit Graphs Label_engine Prelude Rat
