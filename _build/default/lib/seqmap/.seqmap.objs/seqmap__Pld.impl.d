lib/seqmap/pld.ml: Array Circuit Hashtbl List Netlist Prelude Rat
