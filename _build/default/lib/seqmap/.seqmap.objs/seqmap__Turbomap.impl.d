lib/seqmap/turbomap.ml: Array Circuit Graphs Label_engine List Mapgen Netlist Prelude Rat Retime
