lib/seqmap/mapgen.mli: Circuit Label_engine Logic
