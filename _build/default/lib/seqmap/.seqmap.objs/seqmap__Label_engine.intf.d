lib/seqmap/label_engine.mli: Circuit Decomp Prelude Rat
