lib/seqmap/expanded.mli: Bdd Circuit Flow Logic Prelude Rat
