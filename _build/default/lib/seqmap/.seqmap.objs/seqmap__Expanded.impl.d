lib/seqmap/expanded.ml: Array Bdd Circuit Flow Fun Hashtbl List Logic Netlist Prelude Queue Rat
