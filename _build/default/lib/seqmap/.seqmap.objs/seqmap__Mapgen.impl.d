lib/seqmap/mapgen.ml: Array Bdd Circuit Decomp Fun Graphs Hashtbl Label_engine List Logic Netlist Printf Queue
