open Prelude

type style = Fsm | Mixer of float | Lfsr | Counter | Datapath

type spec = {
  name : string;
  style : style;
  gates : int;
  ffs : int;
  pis : int;
  pos : int;
}

(* 12 MCNC-FSM stand-ins + 4 ISCAS'89 stand-ins, scaled like the paper's
   Table 1 circuits (tens to hundreds of gates, 5-75 FFs). *)
let table1 =
  [
    { name = "bbara"; style = Fsm; gates = 58; ffs = 4; pis = 4; pos = 2 };
    { name = "bbsse"; style = Fsm; gates = 104; ffs = 4; pis = 7; pos = 7 };
    { name = "cse"; style = Fsm; gates = 190; ffs = 4; pis = 7; pos = 7 };
    { name = "dk16"; style = Fsm; gates = 231; ffs = 5; pis = 2; pos = 3 };
    { name = "donfile"; style = Fsm; gates = 157; ffs = 5; pis = 2; pos = 1 };
    { name = "ex1"; style = Fsm; gates = 211; ffs = 5; pis = 9; pos = 19 };
    { name = "keyb"; style = Fsm; gates = 193; ffs = 5; pis = 7; pos = 2 };
    { name = "planet"; style = Fsm; gates = 414; ffs = 6; pis = 7; pos = 19 };
    { name = "s1"; style = Fsm; gates = 153; ffs = 5; pis = 8; pos = 6 };
    { name = "sand"; style = Fsm; gates = 427; ffs = 5; pis = 11; pos = 9 };
    { name = "styr"; style = Fsm; gates = 313; ffs = 5; pis = 9; pos = 10 };
    { name = "tbk"; style = Fsm; gates = 278; ffs = 5; pis = 6; pos = 3 };
    { name = "s298"; style = Mixer 0.25; gates = 119; ffs = 14; pis = 3; pos = 6 };
    { name = "s420"; style = Mixer 0.2; gates = 196; ffs = 16; pis = 18; pos = 1 };
    { name = "s526"; style = Mixer 0.3; gates = 193; ffs = 21; pis = 3; pos = 6 };
    { name = "s1423"; style = Datapath; gates = 657; ffs = 74; pis = 17; pos = 5 };
  ]

let scaling =
  [
    { name = "big1k"; style = Mixer 0.25; gates = 1000; ffs = 0; pis = 16; pos = 8 };
    { name = "big2k"; style = Mixer 0.25; gates = 2000; ffs = 0; pis = 16; pos = 8 };
    { name = "big4k"; style = Mixer 0.25; gates = 4000; ffs = 0; pis = 24; pos = 8 };
    { name = "big8k"; style = Mixer 0.25; gates = 8000; ffs = 0; pis = 32; pos = 8 };
  ]

let all = table1 @ scaling

let build spec =
  let rng = Rng.of_string spec.name in
  let nl =
    match spec.style with
    | Fsm ->
        Generate.fsm rng ~pis:spec.pis ~pos:spec.pos ~gates:spec.gates
          ~ffs:spec.ffs
    | Mixer density ->
        Generate.mixer rng ~pis:spec.pis ~pos:spec.pos ~gates:spec.gates
          ~ff_density:density
    | Lfsr -> Generate.lfsr rng ~bits:spec.ffs ~taps:(max 2 (spec.ffs / 4))
    | Counter -> Generate.counter ~bits:spec.ffs
    | Datapath ->
        (* width*stages mixing gates + ~2*width adder gates: solve width
           from the target *)
        let width = max 4 (spec.ffs / 4) in
        let stages = max 1 ((spec.gates - (2 * width)) / width) in
        Generate.datapath rng ~width ~stages
  in
  Circuit.Netlist.set_name nl spec.name;
  nl

let find name = List.find_opt (fun s -> s.name = name) all
