(** Deterministic synthetic benchmark circuits.

    The paper evaluates on 12 MCNC FSM benchmarks and 4 ISCAS'89 circuits
    prepared with SIS + dmig; those netlists are not redistributable here,
    so each named workload is a seeded synthetic circuit with the same
    structural statistics (gate count, flip-flop count, K-boundedness,
    loop structure) — see DESIGN.md's substitution table.  All generators
    are deterministic in the given RNG and produce K-bounded (fanin <= 4)
    circuits with no combinational loops. *)

open Prelude

val fsm :
  Rng.t -> pis:int -> pos:int -> gates:int -> ffs:int -> Circuit.Netlist.t
(** Finite-state-machine shape: [ffs] state signals held in registered
    loops, fed by random next-state logic cones over the inputs and the
    registered state, plus output logic.  Exactly [gates] gates. *)

val mixer :
  Rng.t ->
  pis:int -> pos:int -> gates:int -> ff_density:float ->
  Circuit.Netlist.t
(** Random K-bounded sequential graph: combinational edges only point
    backward (no combinational loops); roughly [ff_density] of all edges
    carry 1–2 registers, closing feedback loops of varied length. *)

val lfsr : Rng.t -> bits:int -> taps:int -> Circuit.Netlist.t
(** Fibonacci LFSR with an injection input: a [bits]-long registered shift
    chain whose feedback xors [taps] stages. *)

val counter : bits:int -> Circuit.Netlist.t
(** Synchronous binary counter with enable: ripple carry logic (AND chain)
    and one registered toggle loop per bit. *)

val datapath :
  Rng.t -> width:int -> stages:int -> Circuit.Netlist.t
(** Accumulating datapath: [stages] pipelined xor/and mixing layers of
    [width] bits feeding a ripple-carry accumulator loop ([width] full
    adders whose sums are registered back). *)

val crc : bits:int -> taps:int list -> Circuit.Netlist.t
(** Serial CRC over a one-bit data input: a [bits]-stage register ring
    whose feedback (msb xor data-in) is xored into the tapped stages —
    a Galois LFSR with input.  [taps] are stage indices in [1, bits). *)

val traffic : unit -> Circuit.Netlist.t
(** A small concrete Moore FSM (two-road traffic-light controller with
    sensors): 3 state bits, 2 inputs, 4 outputs — a classic MCNC-style
    control circuit with hand-written next-state logic. *)
