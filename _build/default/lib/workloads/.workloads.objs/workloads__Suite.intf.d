lib/workloads/suite.mli: Circuit
