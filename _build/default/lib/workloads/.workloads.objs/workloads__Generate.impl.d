lib/workloads/generate.ml: Array Build Circuit List Logic Netlist Prelude Printf Rng Truthtable
