lib/workloads/suite.ml: Circuit Generate List Prelude Rng
