lib/workloads/generate.mli: Circuit Prelude Rng
