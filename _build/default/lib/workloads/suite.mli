(** The named benchmark suite mirroring the paper's evaluation.

    Table 1 of the paper uses 12 MCNC FSM benchmarks and 4 ISCAS'89
    circuits (prepared with SIS sequential synthesis + dmig).  Each name
    below builds a deterministic synthetic stand-in of the same scale
    (see DESIGN.md): the circuit is produced by the generator listed in its
    spec, seeded by the benchmark name, so every run of the harness sees
    the identical netlist. *)

type style =
  | Fsm
  | Mixer of float  (** registered-edge density *)
  | Lfsr
  | Counter
  | Datapath

type spec = {
  name : string;
  style : style;
  gates : int;  (** target gate count *)
  ffs : int;  (** state/register signals (style-dependent meaning) *)
  pis : int;
  pos : int;
}

val table1 : spec list
(** 16 circuits: 12 FSM-style (MCNC stand-ins) + 4 ISCAS'89 stand-ins. *)

val scaling : spec list
(** Larger circuits (up to ~8k gates / ~1k FFs) for the PLD speedup and
    scalability experiment (the paper's 10^4-gates claim). *)

val build : spec -> Circuit.Netlist.t
(** Deterministic: seeded by [spec.name]. *)

val find : string -> spec option
(** Look up by name across [table1] and [scaling]. *)

val all : spec list
