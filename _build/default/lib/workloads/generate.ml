open Prelude
open Logic
open Circuit

(* Gate functions biased toward the decomposable families real synthesis
   produces (xor/and/or trees out of SIS): column multiplicity 2 for every
   bound set, which is what gives TurboSYN's sequential decomposition its
   leverage.  A share of dense random functions keeps the mix honest. *)
let biased_tt rng arity =
  match Rng.int rng 100 with
  | n when n < 35 -> Truthtable.xor_all arity
  | n when n < 50 -> Truthtable.and_all arity
  | n when n < 60 -> Truthtable.or_all arity
  | n when n < 70 -> Truthtable.not_ (Truthtable.and_all arity)
  | _ -> Truthtable.random_nondegenerate rng arity

(* random gate over the given (driver, weight) candidate pool *)
let random_gate rng nl pool ~max_arity =
  let arity = 2 + Rng.int rng (max_arity - 1) in
  let arity = min arity (max 1 (Array.length pool)) in
  let fanins = Array.init arity (fun _ -> Rng.pick rng pool) in
  Netlist.add_gate nl (biased_tt rng arity) fanins

let add_outputs rng nl ~pool ~pos =
  for j = 0 to pos - 1 do
    ignore
      (Netlist.add_po ~name:(Printf.sprintf "y%d" j) nl
         ~driver:(Rng.pick rng pool) ~weight:0)
  done

let fsm rng ~pis ~pos ~gates ~ffs =
  if ffs < 2 || gates < ffs + 2 then invalid_arg "Generate.fsm: sizes";
  let nl = Netlist.create ~name:"fsm" () in
  let pi_ids =
    Array.init pis (fun i -> Netlist.add_pi ~name:(Printf.sprintf "x%d" i) nl)
  in
  (* state signals, defined later; read through one register everywhere *)
  let state =
    Array.init ffs (fun i ->
        Netlist.reserve_gate ~name:(Printf.sprintf "s%d" i) nl)
  in
  let pi_pool = Array.map (fun p -> (p, 0)) pi_ids in
  let state_pool = Array.map (fun s -> (s, 1)) state in
  (* next-state and output logic: a random cone over PIs + registered state *)
  let logic = ref [] in
  for _ = 1 to gates - ffs do
    let pool =
      Array.concat
        [ pi_pool; state_pool; Array.of_list (List.map (fun g -> (g, 0)) !logic) ]
    in
    logic := random_gate rng nl pool ~max_arity:4 :: !logic
  done;
  let logic_pool = Array.of_list (List.map (fun g -> (g, 0)) !logic) in
  (* state gates: one logic cone input, the neighbour state (registered,
     guaranteeing a loop through every state bit), and one free input *)
  Array.iteri
    (fun i s ->
      let a = Rng.pick rng logic_pool in
      let b = (state.((i + 1) mod ffs), 1) in
      let c = Rng.pick rng (Array.append pi_pool logic_pool) in
      Netlist.define_gate nl s (biased_tt rng 3) [| a; b; c |])
    state;
  add_outputs rng nl ~pool:(Array.map fst logic_pool) ~pos;
  Netlist.validate_exn ~k:4 nl;
  nl

let mixer rng ~pis ~pos ~gates ~ff_density =
  let nl = Netlist.create ~name:"mixer" () in
  let pi_ids =
    Array.init pis (fun i -> Netlist.add_pi ~name:(Printf.sprintf "x%d" i) nl)
  in
  let gate_ids =
    Array.init gates (fun i -> Netlist.reserve_gate ~name:(Printf.sprintf "g%d" i) nl)
  in
  for i = 0 to gates - 1 do
    (* a third of the gates extend 2-input chains (serpentine structure
       whose registers fragment FlowSYN-s's combinational blocks) *)
    let arity = if Rng.int rng 3 = 0 then 2 else 2 + Rng.int rng 3 in
    let fanins =
      Array.init arity (fun j ->
          if j = 0 && i > 0 && arity = 2 then
            (* chain edge from the previous gate, sometimes registered *)
            (gate_ids.(i - 1), if Rng.int rng 4 = 0 then 1 else 0)
          else if Rng.float rng < ff_density then
            (* registered edge may target any node, closing loops *)
            (Rng.pick rng (Array.append pi_ids gate_ids), 1 + Rng.int rng 2)
          else
            (* combinational edges point backward only *)
            (Rng.pick rng (Array.append pi_ids (Array.sub gate_ids 0 i)), 0))
    in
    Netlist.define_gate nl gate_ids.(i) (biased_tt rng arity) fanins
  done;
  add_outputs rng nl ~pool:gate_ids ~pos;
  Netlist.validate_exn ~k:4 nl;
  nl

let lfsr rng ~bits ~taps =
  if bits < 2 || taps < 2 || taps > bits then invalid_arg "Generate.lfsr";
  let nl = Netlist.create ~name:"lfsr" () in
  let inj = Netlist.add_pi ~name:"inj" nl in
  let cells =
    Array.init bits (fun i -> Netlist.reserve_gate ~name:(Printf.sprintf "b%d" i) nl)
  in
  (* pick [taps] distinct tap positions (always including the last cell) *)
  let tap_set =
    let rest = Rng.sample rng (taps - 1) (bits - 1) in
    (bits - 1) :: rest
  in
  (* feedback = xor of taps (registered) xor injection *)
  let fb = ref inj in
  let fb_w = ref 0 in
  List.iter
    (fun t ->
      let g =
        Netlist.add_gate nl (Truthtable.xor_all 2)
          [| (!fb, !fb_w); (cells.(t), 1) |]
      in
      fb := g;
      fb_w := 0)
    tap_set;
  Netlist.define_gate nl cells.(0) (Truthtable.var 1 0) [| (!fb, !fb_w) |];
  for i = 1 to bits - 1 do
    Netlist.define_gate nl cells.(i) (Truthtable.var 1 0) [| (cells.(i - 1), 1) |]
  done;
  ignore (Netlist.add_po ~name:"out" nl ~driver:cells.(bits - 1) ~weight:0);
  Netlist.validate_exn ~k:4 nl;
  nl

let counter ~bits =
  if bits < 1 then invalid_arg "Generate.counter";
  let nl = Netlist.create ~name:"counter" () in
  let en = Netlist.add_pi ~name:"en" nl in
  (* bit i toggles when en and all lower bits are 1 *)
  let bitsg =
    Array.init bits (fun i -> Netlist.reserve_gate ~name:(Printf.sprintf "b%d" i) nl)
  in
  let carry = ref en and carry_w = ref 0 in
  for i = 0 to bits - 1 do
    (* b_i = b_i xor carry_i, with b_i read through its register *)
    Netlist.define_gate nl bitsg.(i) (Truthtable.xor_all 2)
      [| (bitsg.(i), 1); (!carry, !carry_w) |];
    if i < bits - 1 then begin
      let c =
        Netlist.add_gate ~name:(Printf.sprintf "c%d" i) nl (Truthtable.and_all 2)
          [| (!carry, !carry_w); (bitsg.(i), 1) |]
      in
      carry := c;
      carry_w := 0
    end
  done;
  ignore (Netlist.add_po ~name:"msb" nl ~driver:bitsg.(bits - 1) ~weight:0);
  Netlist.validate_exn ~k:4 nl;
  nl

let datapath rng ~width ~stages =
  if width < 2 || stages < 1 then invalid_arg "Generate.datapath";
  let nl = Netlist.create ~name:"datapath" () in
  let ins =
    Array.init width (fun i -> Netlist.add_pi ~name:(Printf.sprintf "d%d" i) nl)
  in
  (* feedback from the accumulator MSB into the first mixing layer closes a
     long loop through the datapath (declared below, defined later) *)
  let acc0 = Netlist.reserve_gate ~name:"afb" nl in
  (* pipelined mixing layers *)
  let layer = ref (Array.map (fun p -> (p, 0)) ins) in
  (!layer).(0) <- (acc0, 1);
  for _ = 1 to stages do
    let prev = !layer in
    layer :=
      Array.init width (fun i ->
          let a = prev.(i) in
          let b = prev.((i + 1 + Rng.int rng (width - 1)) mod width) in
          let tt =
            if Rng.bool rng then Truthtable.xor_all 2 else Truthtable.and_all 2
          in
          let g = Netlist.add_gate nl tt [| a; b |] in
          (* register the stage boundary *)
          (g, 1))
  done;
  (* accumulator: acc = acc + stage_out (ripple carry), sums registered *)
  let acc =
    Array.init width (fun i ->
        if i = 0 then acc0
        else Netlist.reserve_gate ~name:(Printf.sprintf "a%d" i) nl)
  in
  let carry = ref None in
  for i = 0 to width - 1 do
    let x = !layer.(i) in
    let acc_in = (acc.(i), 1) in
    let cin =
      match !carry with None -> None | Some c -> Some (c, 0)
    in
    (match cin with
    | None ->
        (* half adder *)
        Netlist.define_gate nl acc.(i) (Truthtable.xor_all 2) [| x; acc_in |];
        let c = Netlist.add_gate nl (Truthtable.and_all 2) [| x; acc_in |] in
        carry := Some c
    | Some c ->
        Netlist.define_gate nl acc.(i) (Truthtable.xor_all 3) [| x; acc_in; c |];
        let v j = Truthtable.var 3 j in
        let maj =
          Truthtable.or_
            (Truthtable.and_ (v 0) (v 1))
            (Truthtable.or_
               (Truthtable.and_ (v 0) (v 2))
               (Truthtable.and_ (v 1) (v 2)))
        in
        let cg = Netlist.add_gate nl maj [| x; acc_in; c |] in
        carry := Some cg)
  done;
  Array.iteri
    (fun i a ->
      ignore (Netlist.add_po ~name:(Printf.sprintf "q%d" i) nl ~driver:a ~weight:0))
    acc;
  Netlist.validate_exn ~k:4 nl;
  nl

let crc ~bits ~taps =
  if bits < 2 then invalid_arg "Generate.crc";
  List.iter (fun t -> if t < 1 || t >= bits then invalid_arg "Generate.crc: tap") taps;
  let nl = Netlist.create ~name:"crc" () in
  let din = Netlist.add_pi ~name:"din" nl in
  let cells =
    Array.init bits (fun i -> Netlist.reserve_gate ~name:(Printf.sprintf "c%d" i) nl)
  in
  (* feedback bit = msb(prev) xor din *)
  let fb =
    Netlist.add_gate ~name:"fb" nl (Truthtable.xor_all 2)
      [| (cells.(bits - 1), 1); (din, 0) |]
  in
  for i = 0 to bits - 1 do
    if i = 0 then
      Netlist.define_gate nl cells.(0) (Truthtable.var 1 0) [| (fb, 0) |]
    else if List.mem i taps then
      Netlist.define_gate nl cells.(i) (Truthtable.xor_all 2)
        [| (cells.(i - 1), 1); (fb, 0) |]
    else
      Netlist.define_gate nl cells.(i) (Truthtable.var 1 0)
        [| (cells.(i - 1), 1) |]
  done;
  ignore (Netlist.add_po ~name:"crc_out" nl ~driver:cells.(bits - 1) ~weight:0);
  Netlist.validate_exn ~k:4 nl;
  nl

let traffic () =
  (* Moore FSM: states G1(000) Y1(001) R1R2(010) G2(011) Y2(100); inputs:
     car sensors s1 s2; outputs: green1 yellow1 green2 yellow2.  Hand-coded
     next-state equations over 3 state bits. *)
  let nl = Netlist.create ~name:"traffic" () in
  let s1 = Netlist.add_pi ~name:"s1" nl in
  let s2 = Netlist.add_pi ~name:"s2" nl in
  let q0 = Netlist.reserve_gate ~name:"q0" nl in
  let q1 = Netlist.reserve_gate ~name:"q1" nl in
  let q2 = Netlist.reserve_gate ~name:"q2" nl in
  (* helpers over registered state *)
  let v3 i = Truthtable.var 3 i in
  (* state decode from registered bits (weight 1 reads) *)
  let st b2 b1 b0 =
    let t = Truthtable.and_ (if b2 then v3 2 else Truthtable.not_ (v3 2))
        (Truthtable.and_ (if b1 then v3 1 else Truthtable.not_ (v3 1))
           (if b0 then v3 0 else Truthtable.not_ (v3 0))) in
    Netlist.add_gate nl t [| (q0, 1); (q1, 1); (q2, 1) |]
  in
  let g1 = st false false false in
  let y1 = st false false true in
  let rr = st false true false in
  let g2 = st false true true in
  let y2 = st true false false in
  (* transitions: G1 -> Y1 when s2 (cross traffic waiting); Y1 -> RR;
     RR -> G2; G2 -> Y2 when s1; Y2 -> G1 *)
  let adv_g1 = Build.and2 ~name:"adv_g1" nl g1 s2 in
  let adv_g2 = Build.and2 ~name:"adv_g2" nl g2 s1 in
  (* next state bits: next = Y1(001) from adv_g1; RR(010) from y1;
     G2(011) from rr; Y2(100) from adv_g2; G1(000) from y2;
     holds: g1 & !s2 stays 000, g2 & !s1 stays 011 *)
  let and_not = Truthtable.and_ (Truthtable.var 2 0) (Truthtable.not_ (Truthtable.var 2 1)) in
  let hold_g2 = Netlist.add_gate ~name:"hold_g2" nl and_not [| (g2, 0); (s1, 0) |] in
  (* q0' = adv_g1 | (rr) | hold_g2 ; q1' = y1 | rr | hold_g2 ; q2' = adv_g2 *)
  let q0n = Build.or2 ~name:"q0n" nl (Build.or2 nl adv_g1 rr) hold_g2 in
  let q1n = Build.or2 ~name:"q1n" nl (Build.or2 nl y1 rr) hold_g2 in
  Netlist.define_gate nl q0 (Truthtable.var 1 0) [| (q0n, 0) |];
  Netlist.define_gate nl q1 (Truthtable.var 1 0) [| (q1n, 0) |];
  Netlist.define_gate nl q2 (Truthtable.var 1 0) [| (adv_g2, 0) |];
  (* outputs *)
  ignore (Netlist.add_po ~name:"green1" nl ~driver:g1 ~weight:0);
  ignore (Netlist.add_po ~name:"yellow1" nl ~driver:y1 ~weight:0);
  ignore (Netlist.add_po ~name:"green2" nl ~driver:g2 ~weight:0);
  ignore (Netlist.add_po ~name:"yellow2" nl ~driver:y2 ~weight:0);
  Netlist.validate_exn ~k:4 nl;
  nl
