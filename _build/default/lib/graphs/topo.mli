(** Topological ordering of directed acyclic graphs (Kahn's algorithm). *)

val sort : n:int -> succ:(int -> int list) -> int array option
(** [sort ~n ~succ] returns the nodes in an order where every edge goes
    from an earlier to a later position, or [None] when the graph has a
    cycle. *)

val sort_exn : n:int -> succ:(int -> int list) -> int array
(** @raise Invalid_argument on a cyclic graph. *)

val levels : n:int -> succ:(int -> int list) -> sources:int list -> int array
(** Longest-path level of every node from the given sources over a DAG:
    sources get level 0, every other reachable node gets
    [1 + max(levels of predecessors)]; unreachable nodes get [-1].
    Used for combinational depth computations.
    @raise Invalid_argument on a cyclic graph. *)
