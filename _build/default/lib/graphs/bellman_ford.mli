(** Positive-cycle detection and longest paths with integer edge lengths.

    The max delay-to-register (MDR) feasibility probe reduces to: does the
    retiming graph contain a cycle of positive total length when each edge
    [e] has length [q*delay(e) - p*weight(e)] for a candidate ratio [p/q]?
    Lengths fit comfortably in native ints for every circuit size this
    project handles. *)

type edge = { src : int; dst : int; len : int }

val has_positive_cycle : n:int -> edges:edge array -> bool
(** Bellman–Ford from a virtual source connected to every node with
    length-0 edges (detects positive cycles anywhere in the graph); early
    exit when a relaxation pass changes nothing. *)

val longest_paths :
  n:int -> edges:edge array -> sources:int list -> int array option
(** Longest path distances from the sources ([min_int] marks unreachable
    nodes); [None] when a positive cycle is reachable from a source. *)
