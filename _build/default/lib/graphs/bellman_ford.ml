type edge = { src : int; dst : int; len : int }

let has_positive_cycle ~n ~edges =
  (* All-zero initialization is equivalent to a virtual source with 0-length
     edges to every node: any positive cycle keeps relaxing forever. *)
  let dist = Array.make n 0 in
  let changed = ref true in
  let pass = ref 0 in
  let result = ref false in
  while !changed && not !result do
    changed := false;
    Array.iter
      (fun { src; dst; len } ->
        if dist.(src) + len > dist.(dst) then begin
          dist.(dst) <- dist.(src) + len;
          changed := true
        end)
      edges;
    incr pass;
    if !changed && !pass >= n then result := true
  done;
  !result

let longest_paths ~n ~edges ~sources =
  let dist = Array.make n min_int in
  List.iter (fun s -> dist.(s) <- 0) sources;
  let changed = ref true in
  let pass = ref 0 in
  let cyclic = ref false in
  while !changed && not !cyclic do
    changed := false;
    Array.iter
      (fun { src; dst; len } ->
        if dist.(src) <> min_int && dist.(src) + len > dist.(dst) then begin
          dist.(dst) <- dist.(src) + len;
          changed := true
        end)
      edges;
    incr pass;
    if !changed && !pass >= n then cyclic := true
  done;
  if !cyclic then None else Some dist
