open Prelude

(* Karp on one SCC with local ids. *)
let scc_max_mean m (edges : (int * int * int) list) =
  (* d.(k).(v) = max length of a k-edge walk ending at v, from an arbitrary
     root (all nodes: SCC, so reachability is total after m steps) *)
  let neg = min_int / 4 in
  let d = Array.make_matrix (m + 1) m neg in
  (* start from every node: classic formulation uses a single source that
     reaches all; within an SCC, starting from node 0 reaches everything
     within m-1 steps, but walks shorter than the distance are undefined —
     initializing every node at level 0 is the standard strongly-connected
     variant *)
  for v = 0 to m - 1 do
    d.(0).(v) <- 0
  done;
  for k = 1 to m do
    List.iter
      (fun (u, v, len) ->
        if d.(k - 1).(u) > neg && d.(k - 1).(u) + len > d.(k).(v) then
          d.(k).(v) <- d.(k - 1).(u) + len)
      edges
  done;
  (* max over v of min over k of (d_m(v) - d_k(v)) / (m - k) *)
  let best = ref None in
  for v = 0 to m - 1 do
    if d.(m).(v) > neg then begin
      let worst = ref None in
      for k = 0 to m - 1 do
        if d.(k).(v) > neg then begin
          let r = Rat.make (d.(m).(v) - d.(k).(v)) (m - k) in
          match !worst with
          | None -> worst := Some r
          | Some w -> if Rat.( < ) r w then worst := Some r
        end
      done;
      match (!worst, !best) with
      | Some w, None -> best := Some w
      | Some w, Some b -> if Rat.( > ) w b then best := Some w
      | None, _ -> ()
    end
  done;
  !best

let max_mean ~n ~edges =
  let succ =
    let out = Array.make n [] in
    Array.iter (fun (s, d, _) -> out.(s) <- d :: out.(s)) edges;
    fun v -> out.(v)
  in
  let scc = Scc.compute ~n ~succ in
  let nontrivial = Array.make scc.Scc.count false in
  Array.iter
    (fun (s, d, _) ->
      if scc.Scc.comp.(s) = scc.Scc.comp.(d) then nontrivial.(scc.Scc.comp.(s)) <- true)
    edges;
  let best = ref None in
  for c = 0 to scc.Scc.count - 1 do
    if nontrivial.(c) then begin
      let members = scc.Scc.members.(c) in
      let m = Array.length members in
      let renum = Hashtbl.create m in
      Array.iteri (fun i v -> Hashtbl.replace renum v i) members;
      let local =
        Array.to_list edges
        |> List.filter_map (fun (s, d, len) ->
               if scc.Scc.comp.(s) = c && scc.Scc.comp.(d) = c then
                 Some (Hashtbl.find renum s, Hashtbl.find renum d, len)
               else None)
      in
      match (scc_max_mean m local, !best) with
      | Some r, None -> best := Some r
      | Some r, Some b -> if Rat.( > ) r b then best := Some r
      | None, _ -> ()
    end
  done;
  !best
