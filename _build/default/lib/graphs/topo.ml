let sort ~n ~succ =
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    List.iter (fun w -> indeg.(w) <- indeg.(w) + 1) (succ v)
  done;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!k) <- v;
    incr k;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (succ v)
  done;
  if !k = n then Some order else None

let sort_exn ~n ~succ =
  match sort ~n ~succ with
  | Some o -> o
  | None -> invalid_arg "Topo.sort_exn: graph has a cycle"

let levels ~n ~succ ~sources =
  let order = sort_exn ~n ~succ in
  let level = Array.make n (-1) in
  List.iter (fun s -> level.(s) <- 0) sources;
  Array.iter
    (fun v ->
      if level.(v) >= 0 then
        List.iter
          (fun w -> if level.(w) < level.(v) + 1 then level.(w) <- level.(v) + 1)
          (succ v))
    order;
  level
