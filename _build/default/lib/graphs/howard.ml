type edge = { src : int; dst : int; delay : int; weight : int }

(* Policy iteration on one strongly connected subgraph (local ids).
   Every node has at least one outgoing edge.  [out.(u)] lists
   (dst, delay, weight); the policy picks one of them per node. *)
let scc_max_ratio m (out : (int * int * int) list array) =
  let pol =
    Array.map (fun l -> match l with e :: _ -> e | [] -> assert false) out
  in
  let lambda = Array.make m neg_infinity in
  let value = Array.make m 0.0 in
  let eps = 1e-10 in
  let changed = ref true in
  let guard = ref ((m * m) + 64) in
  while !changed && !guard > 0 do
    decr guard;
    changed := false;
    (* --- evaluate the policy (a functional graph) --- *)
    let state = Array.make m 0 (* 0 unseen, 1 on current path, 2 done *) in
    (* resolve a node whose successor chain is already evaluated *)
    let rec resolve v =
      if state.(v) <> 2 then begin
        let dst, d, w = pol.(v) in
        resolve dst;
        lambda.(v) <- lambda.(dst);
        value.(v) <-
          float_of_int d -. (lambda.(dst) *. float_of_int w) +. value.(dst);
        state.(v) <- 2
      end
    in
    for start = 0 to m - 1 do
      if state.(start) = 0 then begin
        (* walk the policy chain until reaching a done node or closing a
           cycle among the nodes of this walk *)
        let path = ref [] in
        let u = ref start in
        while state.(!u) = 0 do
          state.(!u) <- 1;
          path := !u :: !path;
          let dst, _, _ = pol.(!u) in
          u := dst
        done;
        if state.(!u) = 1 then begin
          (* closed a fresh cycle anchored at !u *)
          let anchor = !u in
          let rec collect v acc =
            let dst, _, _ = pol.(v) in
            if dst = anchor then v :: acc else collect dst (v :: acc)
          in
          let cycle = collect anchor [] in
          let dsum = ref 0 and wsum = ref 0 in
          List.iter
            (fun v ->
              let _, d, w = pol.(v) in
              dsum := !dsum + d;
              wsum := !wsum + w)
            cycle;
          let lam =
            if !wsum = 0 then if !dsum > 0 then infinity else 0.0
            else float_of_int !dsum /. float_of_int !wsum
          in
          lambda.(anchor) <- lam;
          value.(anchor) <- 0.0;
          state.(anchor) <- 2;
          (* values around the cycle, following successors first *)
          let rec set_back v =
            if state.(v) <> 2 then begin
              let dst, d, w = pol.(v) in
              set_back dst;
              lambda.(v) <- lam;
              value.(v) <-
                float_of_int d -. (lam *. float_of_int w) +. value.(dst);
              state.(v) <- 2
            end
          in
          List.iter set_back cycle
        end;
        (* tree nodes of this walk hang off the evaluated part *)
        List.iter resolve !path
      end
    done;
    (* --- improve the policy --- *)
    for u = 0 to m - 1 do
      List.iter
        (fun ((dst, d, w) as e) ->
          let better =
            lambda.(dst) > lambda.(u) +. eps
            || (Float.abs (lambda.(dst) -. lambda.(u)) <= eps
               && float_of_int d -. (lambda.(u) *. float_of_int w) +. value.(dst)
                  > value.(u) +. eps)
          in
          if better then begin
            pol.(u) <- e;
            changed := true
          end)
        out.(u)
    done
  done;
  Array.fold_left max neg_infinity lambda

let max_ratio ~n ~edges =
  let succ =
    let out = Array.make n [] in
    Array.iter (fun e -> out.(e.src) <- e.dst :: out.(e.src)) edges;
    fun v -> out.(v)
  in
  let scc = Scc.compute ~n ~succ in
  let nontrivial = Array.make scc.Scc.count false in
  Array.iter
    (fun e ->
      if scc.Scc.comp.(e.src) = scc.Scc.comp.(e.dst) then
        nontrivial.(scc.Scc.comp.(e.src)) <- true)
    edges;
  let best = ref None in
  for c = 0 to scc.Scc.count - 1 do
    if nontrivial.(c) then begin
      let members = scc.Scc.members.(c) in
      let m = Array.length members in
      let renum = Hashtbl.create m in
      Array.iteri (fun i v -> Hashtbl.replace renum v i) members;
      let out = Array.make m [] in
      Array.iter
        (fun e ->
          if scc.Scc.comp.(e.src) = c && scc.Scc.comp.(e.dst) = c then
            out.(Hashtbl.find renum e.src) <-
              (Hashtbl.find renum e.dst, e.delay, e.weight)
              :: out.(Hashtbl.find renum e.src))
        edges;
      let lam = scc_max_ratio m out in
      match !best with
      | None -> best := Some lam
      | Some b -> if lam > b then best := Some lam
    end
  done;
  !best
