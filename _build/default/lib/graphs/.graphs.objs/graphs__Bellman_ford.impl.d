lib/graphs/bellman_ford.ml: Array List
