lib/graphs/cycle_ratio.mli: Prelude
