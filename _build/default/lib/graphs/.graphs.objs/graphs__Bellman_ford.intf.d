lib/graphs/bellman_ford.mli:
