lib/graphs/howard.ml: Array Float Hashtbl List Scc
