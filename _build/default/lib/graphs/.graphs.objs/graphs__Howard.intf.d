lib/graphs/howard.mli:
