lib/graphs/topo.mli:
