lib/graphs/scc.ml: Array List Stack
