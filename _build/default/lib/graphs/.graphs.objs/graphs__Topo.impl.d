lib/graphs/topo.ml: Array List Queue
