lib/graphs/scc.mli:
