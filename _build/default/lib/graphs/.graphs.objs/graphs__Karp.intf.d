lib/graphs/karp.mli: Prelude
