lib/graphs/karp.ml: Array Hashtbl List Prelude Rat Scc
