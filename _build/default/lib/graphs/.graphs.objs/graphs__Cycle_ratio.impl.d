lib/graphs/cycle_ratio.ml: Array Bellman_ford Float Hashtbl Howard List Prelude Rat Scc
