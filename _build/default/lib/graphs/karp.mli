(** Karp's algorithm for the maximum mean cycle (exact, integer).

    The maximum mean cycle is the MDR ratio specialized to one register per
    edge; Karp's dynamic program computes it exactly in O(nm) with integer
    arithmetic.  Included for the benchmark comparison against the
    parametric search (and as a correctness cross-check). *)

val max_mean :
  n:int -> edges:(int * int * int) array -> Prelude.Rat.t option
(** [max_mean ~n ~edges] with [(src, dst, length)] edges: the maximum over
    cycles of (total length / number of edges), or [None] when the graph is
    acyclic. *)
