(** Howard's policy-iteration algorithm for the maximum cycle ratio
    (floating point).

    Much faster in practice than parametric search with Bellman–Ford
    probes, but approximate (float arithmetic) — the library's reference
    MDR computation remains {!Cycle_ratio.max_ratio}; this implementation
    exists for the benchmark comparison and as a fast estimator.

    Precondition: every cycle must have strictly positive total weight
    (check for combinational loops first, e.g. with
    {!Cycle_ratio.max_ratio} or by construction: unit-delay mapped
    circuits only have registered cycles). *)

type edge = { src : int; dst : int; delay : int; weight : int }

val max_ratio : n:int -> edges:edge array -> float option
(** [None] when the graph has no cycle.  Runs policy iteration on every
    non-trivial SCC and returns the maximum cycle ratio found, accurate to
    float precision (a few ulps on well-conditioned inputs). *)
