open Logic
open Circuit

(* Rebuild the netlist keeping only nodes reachable from the POs (PIs are
   always kept, in order, to preserve the interface). *)
let compact nl =
  let n = Netlist.n nl in
  let needed = Array.make n false in
  let rec mark v =
    if not needed.(v) then begin
      needed.(v) <- true;
      Array.iter (fun (u, _) -> mark u) (Netlist.fanins nl v)
    end
  in
  List.iter (fun po -> mark (fst (Netlist.fanins nl po).(0))) (Netlist.pos nl);
  let out = Netlist.create ~name:(Netlist.name nl) () in
  let map = Array.make n (-1) in
  List.iter
    (fun p -> map.(p) <- Netlist.add_pi ~name:(Netlist.node_name nl p) out)
    (Netlist.pis nl);
  for v = 0 to n - 1 do
    if needed.(v) && Netlist.is_gate nl v then
      map.(v) <- Netlist.reserve_gate ~name:(Netlist.node_name nl v) out
  done;
  for v = 0 to n - 1 do
    if needed.(v) && Netlist.is_gate nl v then
      Netlist.define_gate out map.(v)
        (Netlist.gate_function nl v)
        (Array.map (fun (u, w) -> (map.(u), w)) (Netlist.fanins nl v))
  done;
  List.iter
    (fun po ->
      let u, w = (Netlist.fanins nl po).(0) in
      ignore
        (Netlist.add_po ~name:(Netlist.node_name nl po) out ~driver:map.(u)
           ~weight:w))
    (Netlist.pos nl);
  out

let dedup nl =
  let nl = Netlist.copy nl in
  let n = Netlist.n nl in
  let redirect = Array.init n Fun.id in
  let rec find v = if redirect.(v) = v then v else find redirect.(v) in
  let changed = ref true in
  while !changed do
    changed := false;
    let seen = Hashtbl.create 256 in
    for v = 0 to n - 1 do
      if Netlist.is_gate nl v && find v = v then begin
        let key =
          ( Truthtable.bits (Netlist.gate_function nl v),
            Truthtable.arity (Netlist.gate_function nl v),
            Array.map (fun (u, w) -> (find u, w)) (Netlist.fanins nl v) )
        in
        match Hashtbl.find_opt seen key with
        | Some u when u <> v ->
            redirect.(v) <- u;
            changed := true
        | Some _ -> ()
        | None -> Hashtbl.replace seen key v
      end
    done
  done;
  (* rewrite all fanins through the redirection *)
  for v = 0 to n - 1 do
    let fi = Netlist.fanins nl v in
    if Array.length fi > 0 then
      Netlist.set_fanins nl v (Array.map (fun (u, w) -> (find u, w)) fi)
  done;
  compact nl

let pack nl ~k =
  let nl = Netlist.copy nl in
  let n = Netlist.n nl in
  let changed = ref true in
  while !changed do
    changed := false;
    (* consumer census *)
    let consumers = Array.make n [] in
    for v = 0 to n - 1 do
      Array.iteri
        (fun j (u, w) -> consumers.(u) <- (v, j, w) :: consumers.(u))
        (Netlist.fanins nl v)
    done;
    for v = 0 to n - 1 do
      if Netlist.is_gate nl v then
        match consumers.(v) with
        | [ (c, j, 0) ]
          when c <> v && Netlist.is_gate nl c
               (* the census may be stale after an earlier merge in this
                  pass rewired [c]; re-check that fanin [j] is still [v] *)
               && Array.length (Netlist.fanins nl c) > j
               && (Netlist.fanins nl c).(j) = (v, 0) ->
            (* candidate: absorb v into its unique consumer c at input j *)
            let fv = Netlist.fanins nl v and fc = Netlist.fanins nl c in
            (* merged distinct inputs: c's other fanins + v's fanins *)
            let inputs = ref [] in
            let add p = if not (List.mem p !inputs) then inputs := !inputs @ [ p ] in
            Array.iteri (fun i p -> if i <> j then add p) fc;
            Array.iter add fv;
            let merged = Array.of_list !inputs in
            if Array.length merged <= k then begin
              (* build the merged truth table by exhaustive evaluation *)
              let pos p =
                let r = ref (-1) in
                Array.iteri (fun i q -> if q = p then r := i) merged;
                !r
              in
              let kk = Array.length merged in
              let bits = ref 0L in
              for m = 0 to (1 lsl kk) - 1 do
                let value p = m land (1 lsl pos p) <> 0 in
                let v_out =
                  Truthtable.eval (Netlist.gate_function nl v)
                    (Array.map value fv)
                in
                let c_in =
                  Array.mapi
                    (fun i p -> if i = j then v_out else value p)
                    fc
                in
                if Truthtable.eval (Netlist.gate_function nl c) c_in then
                  bits := Int64.logor !bits (Int64.shift_left 1L m)
              done;
              let tt = Truthtable.create kk !bits in
              Netlist.define_gate nl c tt merged;
              changed := true
            end
        | _ -> ()
    done
  done;
  compact nl

let reduce nl ~k = dedup (pack (dedup nl) ~k)
