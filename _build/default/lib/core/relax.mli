(** Label relaxation (the paper's first LUT-reduction technique): stop
    using the resynthesized implementation of a node — letting its label
    grow by one — whenever doing so does not create a positive loop, i.e.
    whenever the regenerated mapping still meets the target MDR ratio.
    Decomposition trees cost extra LUTs, so every node relaxed back to a
    plain cut is area saved. *)

val relax :
  Circuit.Netlist.t ->
  impls:Seqmap.Label_engine.impl option array ->
  phi:Prelude.Rat.t ->
  Circuit.Netlist.t * int
(** [relax nl ~impls ~phi] greedily replaces [Resyn] implementations with
    the node's trivial cut (its immediate fanins) when the resulting
    mapping's MDR ratio stays within [phi] and the LUT count does not grow
    (the replacement makes the node's former cut inputs needed, which can
    offset the saved tree LUTs); returns the final mapped netlist and the
    number of nodes relaxed. *)
