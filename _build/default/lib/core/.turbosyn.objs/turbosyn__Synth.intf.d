lib/core/synth.mli: Circuit Prelude Rat Seqmap
