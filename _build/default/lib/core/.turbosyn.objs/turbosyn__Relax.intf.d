lib/core/relax.mli: Circuit Prelude Seqmap
