lib/core/synth.ml: Area Circuit Flowmap Graphs List Netlist Prelude Rat Relax Seqmap Sys
