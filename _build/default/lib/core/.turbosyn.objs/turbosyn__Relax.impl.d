lib/core/relax.ml: Array Circuit Graphs Hashtbl List Netlist Prelude Rat Seqmap
