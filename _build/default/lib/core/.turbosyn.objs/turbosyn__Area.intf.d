lib/core/area.mli: Circuit
