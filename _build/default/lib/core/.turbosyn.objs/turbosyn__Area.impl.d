lib/core/area.ml: Array Circuit Fun Hashtbl Int64 List Logic Netlist Truthtable
