(** Post-mapping area recovery (the paper's Step 2/3 reductions: low-cost
    cut sharing, mpack/flow-pack style packing, dead-logic removal).

    All passes preserve functionality signal-by-signal and never increase
    the MDR ratio: merging only removes gates or collapses a single-fanout
    LUT into its unique consumer through a weight-0 edge (path delays only
    shrink, cycle register counts are untouched). *)

val dedup : Circuit.Netlist.t -> Circuit.Netlist.t
(** Merge gates with identical functions and identical fanin arrays
    (iterated to a fixed point), then drop gates unreachable from the
    POs. *)

val pack : Circuit.Netlist.t -> k:int -> Circuit.Netlist.t
(** Flow-pack style greedy packing: a LUT whose only consumer reads it
    through a weight-0 edge is absorbed into that consumer when the merged
    support stays within [k]. *)

val reduce : Circuit.Netlist.t -> k:int -> Circuit.Netlist.t
(** [dedup] then [pack] then [dedup], the default area flow. *)
