open Prelude
open Circuit

let dedup_fanins nl v =
  let seen = Hashtbl.create 8 in
  Array.of_list
    (List.filter
       (fun p ->
         if Hashtbl.mem seen p then false
         else begin
           Hashtbl.replace seen p ();
           true
         end)
       (Array.to_list (Netlist.fanins nl v)))

let meets_phi nl phi =
  match Netlist.mdr_ratio nl with
  | Graphs.Cycle_ratio.Ratio r -> Rat.( <= ) r phi
  | Graphs.Cycle_ratio.No_cycle -> true
  | Graphs.Cycle_ratio.Infinite -> false

let relax nl ~impls ~phi =
  let current = Array.copy impls in
  let best = ref (Seqmap.Mapgen.generate nl ~impls:current) in
  let relaxed = ref 0 in
  Array.iteri
    (fun v impl ->
      match impl with
      | Some (Seqmap.Label_engine.Resyn _) -> (
          let saved = current.(v) in
          current.(v) <- Some (Seqmap.Label_engine.Cut (dedup_fanins nl v));
          let candidate = Seqmap.Mapgen.generate nl ~impls:current in
          (* accept only if the ratio target holds and the trade (tree LUTs
             out, newly-needed plain LUTs in) does not grow the mapping *)
          if
            meets_phi candidate phi
            && Seqmap.Mapgen.lut_count candidate
               <= Seqmap.Mapgen.lut_count !best
          then begin
            best := candidate;
            incr relaxed
          end
          else current.(v) <- saved)
      | _ -> ())
    impls;
  (!best, !relaxed)
