lib/flow/kcut.ml: Array Fun List Maxflow
