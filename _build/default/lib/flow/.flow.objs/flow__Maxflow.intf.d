lib/flow/maxflow.mli:
