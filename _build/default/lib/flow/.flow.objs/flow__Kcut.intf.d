lib/flow/kcut.mli:
