(** Cycle-accurate simulation of retiming-graph circuits.

    All flip-flops start at 0 (the retiming-graph model is initial-state
    agnostic; see DESIGN.md).  A fanin of weight [w] reads the driver's
    value from [w] cycles ago. *)

type t

val create :
  ?prehistory:(Circuit.Netlist.node_id -> int -> bool) -> Circuit.Netlist.t -> t
(** [prehistory v t] (with [t < 0]) supplies pre-reset values read through
    registers; default all-0.  Technology mapping with retiming absorbs
    registers into LUT-input delays, so checking a mapped circuit against
    its source requires initializing those delays with the source's actual
    signal history (see {!Equiv.mapped_equal}).
    @raise Invalid_argument if the circuit fails validation. *)

val circuit : t -> Circuit.Netlist.t

val reset : t -> unit
(** Clear all history to 0. *)

val step : t -> bool array -> bool array
(** [step sim pi_values] advances one clock cycle and returns the PO
    values (in PO creation order).
    @raise Invalid_argument when the input width differs from the PI
    count. *)

val run : Circuit.Netlist.t -> bool array array -> bool array array
(** Simulate from reset over a sequence of input vectors. *)

val node_value : t -> Circuit.Netlist.node_id -> bool
(** Value computed for a node on the most recent [step]. *)
