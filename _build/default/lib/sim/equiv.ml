open Circuit

let check_widths a b =
  List.length (Netlist.pis a) = List.length (Netlist.pis b)
  && List.length (Netlist.pos a) = List.length (Netlist.pos b)

let random_vector rng width = Array.init width (fun _ -> Prelude.Rng.bool rng)

let io_equal ?(cycles = 64) ?(runs = 8) rng a b =
  check_widths a b
  &&
  let width = List.length (Netlist.pis a) in
  let ok = ref true in
  for _ = 1 to runs do
    if !ok then begin
      let sa = Simulator.create a and sb = Simulator.create b in
      for _ = 1 to cycles do
        if !ok then begin
          let v = random_vector rng width in
          if Simulator.step sa v <> Simulator.step sb v then ok := false
        end
      done
    end
  done;
  !ok

let latency_equal ?(cycles = 64) ?(runs = 8) ~warmup ~latency rng a b =
  if latency < 0 then invalid_arg "Equiv.latency_equal: negative latency";
  check_widths a b
  &&
  let width = List.length (Netlist.pis a) in
  let ok = ref true in
  for _ = 1 to runs do
    if !ok then begin
      let sa = Simulator.create a and sb = Simulator.create b in
      (* one input stream, replayed into both; b additionally consumes
         [latency] trailing cycles of arbitrary input to flush outputs *)
      let total = cycles + latency in
      let stream = Array.init total (fun _ -> random_vector rng width) in
      let outs_a = Array.map (fun v -> Simulator.step sa v) (Array.sub stream 0 cycles) in
      let outs_b = Array.map (fun v -> Simulator.step sb v) stream in
      for t = warmup to cycles - 1 do
        if outs_a.(t) <> outs_b.(t + latency) then ok := false
      done
    end
  done;
  !ok

let mapped_equal ?(cycles = 64) ?(runs = 6) ?(warmup = 48) rng original mapped =
  check_widths original mapped
  &&
  let width = List.length (Netlist.pis original) in
  (* source node for each mapped node, via names; auto-generated names
     ("n<id>") of unnamed source nodes are resolved by id *)
  let resolve nm =
    match Netlist.find_by_name original nm with
    | Some o -> Some o
    | None ->
        if String.length nm > 1 && nm.[0] = 'n' then
          match int_of_string_opt (String.sub nm 1 (String.length nm - 1)) with
          | Some id
            when id >= 0 && id < Netlist.n original
                 && Netlist.node_name original id = nm ->
              Some id
          | _ -> None
        else None
  in
  let source_of =
    Array.init (Netlist.n mapped) (fun m ->
        match resolve (Netlist.node_name mapped m) with
        | Some o -> o
        | None -> -1)
  in
  let total = warmup + cycles in
  let ok = ref true in
  for _ = 1 to runs do
    if !ok then begin
      let stream = Array.init total (fun _ -> random_vector rng width) in
      (* simulate the source, recording every node's full history *)
      let sa = Simulator.create original in
      let hist = Array.make_matrix (Netlist.n original) total false in
      let outs_a = Array.make total [||] in
      Array.iteri
        (fun t v ->
          outs_a.(t) <- Simulator.step sa v;
          for o = 0 to Netlist.n original - 1 do
            hist.(o).(t) <- Simulator.node_value sa o
          done)
        stream;
      (* mapped circuit starts at global time [warmup]; its register chains
         read the source's actual trajectory *)
      let prehistory m t =
        (* t < 0 relative to warmup *)
        let o = source_of.(m) in
        let abs = warmup + t in
        if o < 0 || abs < 0 then false else hist.(o).(abs)
      in
      let sb = Simulator.create ~prehistory mapped in
      for t = warmup to total - 1 do
        let out_b = Simulator.step sb stream.(t) in
        if out_b <> outs_a.(t) then ok := false
      done
    end
  done;
  !ok

let find_io_mismatch ?(cycles = 256) rng a b =
  if not (check_widths a b) then invalid_arg "Equiv.find_io_mismatch: widths";
  let width = List.length (Netlist.pis a) in
  let sa = Simulator.create a and sb = Simulator.create b in
  let played = ref [] in
  let result = ref None in
  (try
     for t = 0 to cycles - 1 do
       let v = random_vector rng width in
       played := v :: !played;
       if Simulator.step sa v <> Simulator.step sb v then begin
         result := Some (t, Array.of_list (List.rev !played));
         raise Exit
       end
     done
   with Exit -> ());
  !result
