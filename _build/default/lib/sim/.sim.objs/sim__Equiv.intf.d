lib/sim/equiv.mli: Circuit Prelude
