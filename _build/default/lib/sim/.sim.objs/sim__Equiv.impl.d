lib/sim/equiv.ml: Array Circuit List Netlist Prelude Simulator String
