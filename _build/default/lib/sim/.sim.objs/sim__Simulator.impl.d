lib/sim/simulator.ml: Array Circuit Logic Netlist
