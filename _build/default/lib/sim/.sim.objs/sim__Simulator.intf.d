lib/sim/simulator.mli: Circuit
