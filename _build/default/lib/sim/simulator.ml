open Circuit

type t = {
  nl : Netlist.t;
  order : int array; (* combinational topological order *)
  hist : bool array array; (* node -> circular buffer of depth histlen *)
  histlen : int;
  mutable time : int; (* number of completed steps *)
  pis : int array;
  pos : int array;
  prehistory : (int -> int -> bool) option;
}

let create ?prehistory nl =
  Netlist.validate_exn nl;
  let histlen = Netlist.max_fanin_weight nl + 1 in
  {
    nl;
    order = Netlist.comb_topo_order nl;
    hist = Array.init (Netlist.n nl) (fun _ -> Array.make histlen false);
    histlen;
    time = 0;
    pis = Array.of_list (Netlist.pis nl);
    pos = Array.of_list (Netlist.pos nl);
    prehistory;
  }

let circuit t = t.nl

let reset t =
  Array.iter (fun h -> Array.fill h 0 (Array.length h) false) t.hist;
  t.time <- 0

(* slot of node value at [time] in the circular buffer *)
let slot t time = ((time mod t.histlen) + t.histlen) mod t.histlen

(* value of [v] at absolute time [time]; times before 0 read the prehistory
   (default 0) *)
let value_at t v time =
  if time < 0 then
    match t.prehistory with None -> false | Some f -> f v time
  else t.hist.(v).(slot t time)

let step t pi_values =
  if Array.length pi_values <> Array.length t.pis then
    invalid_arg "Simulator.step: PI width mismatch";
  let now = t.time in
  Array.iteri (fun i pi -> t.hist.(pi).(slot t now) <- pi_values.(i)) t.pis;
  Array.iter
    (fun v ->
      match Netlist.kind t.nl v with
      | Netlist.Pi -> ()
      | Netlist.Po ->
          let d, w = (Netlist.fanins t.nl v).(0) in
          t.hist.(v).(slot t now) <- value_at t d (now - w)
      | Netlist.Gate f ->
          let inputs =
            Array.map
              (fun (d, w) -> value_at t d (now - w))
              (Netlist.fanins t.nl v)
          in
          t.hist.(v).(slot t now) <- Logic.Truthtable.eval f inputs)
    t.order;
  t.time <- now + 1;
  Array.map (fun po -> t.hist.(po).(slot t now)) t.pos

let run nl vectors =
  let sim = create nl in
  Array.map (fun v -> step sim v) vectors

let node_value t v =
  if t.time = 0 then invalid_arg "Simulator.node_value: no step taken";
  t.hist.(v).(slot t (t.time - 1))
